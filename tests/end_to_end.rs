//! Cross-crate integration tests: full applications through both
//! engines, checking functional equivalence and speculation invariants.

use std::sync::Arc;

use specfaas::prelude::*;

/// Builds a chain app whose final global state encodes the whole data
/// flow, so baseline-vs-SpecFaaS equivalence is externally observable.
fn audit_chain(n: usize) -> Arc<AppSpec> {
    let mut reg = FunctionRegistry::new();
    let mut names = Vec::new();
    for i in 0..n {
        let name = format!("f{i}");
        reg.register(FunctionSpec::new(
            &name,
            Program::builder()
                .compute_ms(4)
                .let_(
                    "next",
                    add(mul(field(input(), "v"), lit(3i64)), lit(i as i64)),
                )
                .set(concat([lit("audit:"), lit(i as i64)]), var("next"))
                .ret(make_map([("v", var("next"))])),
        ));
        names.push(name);
    }
    Arc::new(AppSpec::new(
        "AuditChain",
        "Test",
        reg,
        Workflow::sequence(names.iter().map(Workflow::task).collect()),
    ))
}

#[test]
fn speculative_execution_preserves_program_semantics() {
    let app = audit_chain(6);
    let input = Value::map([("v", Value::Int(5))]);

    let mut base = BaselineEngine::new(Arc::clone(&app), 3);
    base.prewarm();
    base.run_single(input.clone());

    let mut spec = SpecEngine::new(Arc::clone(&app), SpecConfig::full(), 3);
    spec.prewarm();
    // Two speculative runs (first trains, second speculates heavily).
    spec.run_single(input.clone());
    spec.run_single(input);

    // Every audit record must match the baseline exactly.
    for i in 0..6 {
        let key = format!("audit:{i}");
        assert_eq!(
            base.kv.peek(&key),
            spec.kv.peek(&key),
            "speculation changed observable state at {key}"
        );
    }
}

#[test]
fn speculation_gets_faster_with_training_and_never_wrong() {
    let app = audit_chain(8);
    let input = Value::map([("v", Value::Int(9))]);
    let mut spec = SpecEngine::new(Arc::clone(&app), SpecConfig::full(), 5);
    spec.prewarm();
    let first = spec.run_single(input.clone());
    let second = spec.run_single(input.clone());
    let third = spec.run_single(input);
    assert!(
        second < first,
        "training should speed up: {first} -> {second}"
    );
    assert!(third <= second + SimDuration::from_millis(1));
    // audit:7 = folding v=9 through 8 stages.
    let mut v = 9i64;
    for i in 0..8 {
        v = v * 3 + i;
    }
    assert_eq!(spec.kv.peek("audit:7"), Some(&Value::Int(v)));
}

#[test]
fn all_16_paper_apps_agree_between_engines() {
    // Run every suite app once on both engines with identical inputs and
    // compare the committed function counts.
    for suite in specfaas::apps::all_suites() {
        for bundle in &suite.apps {
            let mut rng = SimRng::seed(77);
            let input = (bundle.make_input)(&mut rng);

            let mut base = BaselineEngine::new(Arc::clone(&bundle.app), 9);
            base.prewarm();
            let mut srng = SimRng::seed(9);
            (bundle.seed)(&mut base.kv, &mut srng);
            base.run_single(input.clone());
            let mb = base.run_closed(0, |_| Value::Null);

            let mut spec = SpecEngine::new(Arc::clone(&bundle.app), SpecConfig::full(), 9);
            spec.prewarm();
            let mut srng = SimRng::seed(9);
            (bundle.seed)(&mut spec.kv, &mut srng);
            spec.run_single(input);
            let ms = spec.run_closed(0, |_| Value::Null);

            assert_eq!(
                mb.records[0].sequence,
                ms.records[0].sequence,
                "{}: committed sequences diverge",
                bundle.name()
            );
        }
    }
}

#[test]
fn ablation_configs_order_sanely_on_a_chain() {
    // With everything deterministic and no data hazards, more speculation
    // can only help (or tie).
    let app = audit_chain(8);
    let input = Value::map([("v", Value::Int(2))]);
    let time_with = |cfg: SpecConfig| {
        let mut e = SpecEngine::new(Arc::clone(&app), cfg, 13);
        e.prewarm();
        for _ in 0..2 {
            e.run_single(input.clone());
        }
        e.run_single(input.clone())
    };
    let full = time_with(SpecConfig::full());
    let bp_only = time_with(SpecConfig::branch_prediction_only());
    let mut none = SpecConfig::full();
    none.branch_prediction = false;
    none.memoization = false;
    let none_t = time_with(none);
    assert!(full <= bp_only, "full {full} vs bp-only {bp_only}");
    assert!(bp_only <= none_t, "bp-only {bp_only} vs none {none_t}");
}

#[test]
fn non_speculative_annotation_is_honoured_end_to_end() {
    let mut reg = FunctionRegistry::new();
    reg.register(FunctionSpec::new(
        "a",
        Program::builder()
            .compute_ms(5)
            .ret(make_map([("v", lit(1i64))])),
    ));
    reg.register(FunctionSpec::with_annotations(
        "external",
        Program::builder()
            .compute_ms(5)
            .http(lit("https://example.com/charge"))
            .ret(make_map([("v", lit(2i64))])),
        Annotations::non_speculative(),
    ));
    let app = Arc::new(AppSpec::new(
        "Annotated",
        "Test",
        reg,
        Workflow::sequence(vec![Workflow::task("a"), Workflow::task("external")]),
    ));
    let mut spec = SpecEngine::new(Arc::clone(&app), SpecConfig::full(), 21);
    spec.prewarm();
    spec.run_single(Value::Null);
    spec.run_single(Value::Null);
    let m = spec.run_closed(0, |_| Value::Null);
    for r in &m.records {
        assert_eq!(
            r.functions_squashed, 0,
            "non-speculative work never squashes"
        );
        assert_eq!(r.sequence.len(), 2);
    }
}

/// Snapshot of the global store, ordered for comparison.
fn kv_map(kv: &KvStore) -> std::collections::BTreeMap<String, Value> {
    kv.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()
}

/// A fault plan every request should survive given a generous retry
/// budget: occasional crashes, transient storage errors, rare hangs.
fn survivable_plan() -> FaultPlan {
    FaultPlan::none()
        .with_container_crash(0.05)
        .with_kv_get(0.05)
        .with_kv_set(0.05)
        .with_hang(0.02)
}

fn generous_retries() -> RetryPolicy {
    RetryPolicy::default()
        .with_max_attempts(10)
        .with_timeout(SimDuration::from_secs(2))
}

#[test]
fn spec_under_survivable_faults_matches_fault_free_baseline_state() {
    // On every app of all three suites (FaaSChain, TrainTicket, Alibaba):
    // SpecFaaS with faults injected — but retries generous enough that
    // nothing aborts — must leave the global store exactly as a
    // fault-free baseline run does.
    for suite in specfaas::apps::all_suites() {
        for bundle in &suite.apps {
            let mut rng = SimRng::seed(0xFA);
            let inputs: Vec<Value> = (0..3).map(|_| (bundle.make_input)(&mut rng)).collect();

            let mut base = BaselineEngine::new(Arc::clone(&bundle.app), 9);
            base.prewarm();
            let mut srng = SimRng::seed(9);
            (bundle.seed)(&mut base.kv, &mut srng);
            for i in &inputs {
                base.run_single(i.clone());
            }
            let mb = base.run_closed(0, |_| Value::Null);
            assert_eq!(
                mb.failed,
                0,
                "{}: fault-free baseline failed",
                bundle.name()
            );

            let mut spec = SpecEngine::new(Arc::clone(&bundle.app), SpecConfig::full(), 9);
            spec.enable_faults(survivable_plan(), generous_retries());
            spec.prewarm();
            let mut srng = SimRng::seed(9);
            (bundle.seed)(&mut spec.kv, &mut srng);
            for i in &inputs {
                spec.run_single(i.clone());
            }
            let ms = spec.run_closed(0, |_| Value::Null);
            assert_eq!(
                ms.failed,
                0,
                "{}: a survivable fault aborted a request",
                bundle.name()
            );
            assert_eq!(
                kv_map(&base.kv),
                kv_map(&spec.kv),
                "{}: fault recovery diverged from fault-free state",
                bundle.name()
            );
        }
    }
}

#[test]
fn baseline_under_survivable_faults_matches_fault_free_state() {
    // Retried executions are at-least-once: values written must still be
    // those of a clean run.
    for suite in specfaas::apps::all_suites() {
        for bundle in &suite.apps {
            let mut rng = SimRng::seed(0xFB);
            let inputs: Vec<Value> = (0..3).map(|_| (bundle.make_input)(&mut rng)).collect();

            let run = |faulty: bool| {
                let mut e = BaselineEngine::new(Arc::clone(&bundle.app), 9);
                if faulty {
                    e.enable_faults(survivable_plan(), generous_retries());
                }
                e.prewarm();
                let mut srng = SimRng::seed(9);
                (bundle.seed)(&mut e.kv, &mut srng);
                for i in &inputs {
                    e.run_single(i.clone());
                }
                let m = e.run_closed(0, |_| Value::Null);
                assert_eq!(m.failed, 0, "{}: request aborted", bundle.name());
                kv_map(&e.kv)
            };
            assert_eq!(
                run(false),
                run(true),
                "{}: baseline fault recovery changed observable state",
                bundle.name()
            );
        }
    }
}

#[test]
fn exhausted_retries_fail_terminally_without_panicking() {
    // Crash every execution with a minimal retry budget: every request
    // must abort cleanly with a Failed outcome — no drain panic, no
    // leaked request state.
    let app = audit_chain(4);
    for spec_engine in [false, true] {
        let (failed, live) = if spec_engine {
            let mut e = SpecEngine::new(Arc::clone(&app), SpecConfig::full(), 7);
            e.enable_faults(
                FaultPlan::none().with_container_crash(1.0),
                RetryPolicy::default().with_max_attempts(2),
            );
            e.prewarm();
            e.run_single(Value::map([("v", Value::Int(1))]));
            e.run_single(Value::map([("v", Value::Int(2))]));
            let m = e.run_closed(0, |_| Value::Null);
            (m.failed, m.records.len())
        } else {
            let mut e = BaselineEngine::new(Arc::clone(&app), 7);
            e.enable_faults(
                FaultPlan::none().with_container_crash(1.0),
                RetryPolicy::default().with_max_attempts(2),
            );
            e.prewarm();
            e.run_single(Value::map([("v", Value::Int(1))]));
            e.run_single(Value::map([("v", Value::Int(2))]));
            let m = e.run_closed(0, |_| Value::Null);
            (m.failed, m.records.len())
        };
        assert_eq!(failed, 2, "engine spec={spec_engine}");
        assert_eq!(live, 2, "every aborted request leaves a record");
    }
}

#[test]
fn squash_mechanisms_all_converge_to_correct_state() {
    for squash in [
        SquashMechanism::Lazy,
        SquashMechanism::ProcessKill,
        SquashMechanism::ContainerKill,
    ] {
        // A branch app trained one way, then flipped: forces squashes.
        let mut reg = FunctionRegistry::new();
        reg.register(FunctionSpec::new(
            "cond",
            Program::builder()
                .compute_ms(4)
                .ret(make_map([("t", field(input(), "flag"))])),
        ));
        reg.register(FunctionSpec::new(
            "yes",
            Program::builder()
                .compute_ms(4)
                .set(lit("path"), lit("yes"))
                .ret(lit(1i64)),
        ));
        reg.register(FunctionSpec::new(
            "no",
            Program::builder()
                .compute_ms(4)
                .set(lit("path"), lit("no"))
                .ret(lit(0i64)),
        ));
        let app = Arc::new(AppSpec::new(
            "Flip",
            "Test",
            reg,
            Workflow::when_field(
                "cond",
                "t",
                Workflow::task("yes"),
                Some(Workflow::task("no")),
            ),
        ));
        let mut cfg = SpecConfig::full();
        cfg.squash = squash;
        let mut e = SpecEngine::new(Arc::clone(&app), cfg, 31);
        e.prewarm();
        for _ in 0..4 {
            e.run_single(Value::map([("flag", Value::Bool(true))]));
        }
        // Mispredicted run: the wrong path is squashed; its write must
        // never reach global storage.
        e.run_single(Value::map([("flag", Value::Bool(false))]));
        let m = e.run_closed(0, |_| Value::Null);
        assert_eq!(
            e.kv.peek("path"),
            Some(&Value::str("no")),
            "{squash:?}: squashed path leaked state"
        );
        assert!(m.records.last().unwrap().functions_squashed >= 1);
    }
}
