//! Property-based tests over the core speculation data structures and
//! the simulation kernel.

use proptest::prelude::*;
use specfaas::core::databuffer::{DataBuffer, ReadResult};
use specfaas::core::pipeline::SlotId;
use specfaas::core::{MemoTable, PathHistory};
use specfaas::sim::stats::{Cdf, LatencyRecorder, OnlineStats};
use specfaas::sim::{SimDuration, Simulator};
use specfaas::storage::Value;

proptest! {
    /// The simulator delivers events in non-decreasing time order,
    /// regardless of scheduling order.
    #[test]
    fn simulator_is_time_ordered(delays in proptest::collection::vec(0u64..10_000, 1..100)) {
        let mut sim = Simulator::new();
        for (i, d) in delays.iter().enumerate() {
            sim.schedule_in(SimDuration::from_micros(*d), i);
        }
        let mut last = 0;
        let mut count = 0;
        while let Some((t, _)) = sim.step() {
            prop_assert!(t.as_micros() >= last);
            last = t.as_micros();
            count += 1;
        }
        prop_assert_eq!(count, delays.len());
    }

    /// Events scheduled at the same instant keep FIFO order.
    #[test]
    fn simulator_fifo_at_equal_times(n in 1usize..50) {
        let mut sim = Simulator::new();
        for i in 0..n {
            sim.schedule_in(SimDuration::from_millis(5), i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| sim.step()).map(|(_, e)| e).collect();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    /// A memoization table never exceeds its capacity and always returns
    /// exactly what was last inserted for a key.
    #[test]
    fn memo_table_capacity_and_fidelity(
        ops in proptest::collection::vec((0i64..40, 0i64..1000), 1..300),
        cap in 1usize..20,
    ) {
        let mut table = MemoTable::new(cap);
        let mut last = std::collections::HashMap::new();
        for (k, v) in ops {
            table.insert(Value::Int(k), Value::Int(v), vec![]);
            last.insert(k, v);
            prop_assert!(table.len() <= cap);
        }
        // Whatever is still resident must be the latest value.
        for (k, v) in &last {
            if let Some(e) = table.peek(&Value::Int(*k)) {
                prop_assert_eq!(&e.output, &Value::Int(*v));
            }
        }
    }

    /// Data Buffer: an in-order write→read pair always forwards the
    /// written value, never global state.
    #[test]
    fn data_buffer_forwards_in_order_raw(
        writer in 0u64..5,
        gap in 1u64..5,
        val in any::<i64>(),
    ) {
        let reader = writer + gap;
        let order: Vec<SlotId> = (0..10).map(SlotId).collect();
        let mut db = DataBuffer::new();
        let victims = db.write(SlotId(writer), "k", Value::Int(val), &order);
        prop_assert!(victims.is_empty());
        match db.read(SlotId(reader), "k", &order) {
            ReadResult::Forwarded(v) => prop_assert_eq!(v, Value::Int(val)),
            other => prop_assert!(false, "expected forward, got {:?}", other),
        }
    }

    /// Data Buffer: an out-of-order read→write pair always squashes the
    /// premature reader (and commit never flushes squashed data).
    #[test]
    fn data_buffer_squashes_out_of_order_raw(
        writer in 0u64..5,
        gap in 1u64..5,
    ) {
        let reader = writer + gap;
        let order: Vec<SlotId> = (0..10).map(SlotId).collect();
        let mut db = DataBuffer::new();
        db.read(SlotId(reader), "k", &order);
        let victims = db.write(SlotId(writer), "k", Value::Int(1), &order);
        prop_assert_eq!(victims, vec![SlotId(reader)]);
        db.squash(SlotId(reader));
        prop_assert!(db.commit(SlotId(reader)).is_empty());
    }

    /// Commit flushes exactly the keys the slot wrote, each with its
    /// latest value.
    #[test]
    fn data_buffer_commit_flushes_last_writes(
        writes in proptest::collection::vec((0u8..6, any::<i64>()), 1..40),
    ) {
        let order = vec![SlotId(0)];
        let mut db = DataBuffer::new();
        let mut last = std::collections::BTreeMap::new();
        for (k, v) in writes {
            let key = format!("k{k}");
            db.write(SlotId(0), &key, Value::Int(v), &order);
            last.insert(key, v);
        }
        let flushed: std::collections::BTreeMap<String, i64> = db
            .commit(SlotId(0))
            .into_iter()
            .map(|(k, v)| (k, v.as_int().unwrap()))
            .collect();
        prop_assert_eq!(flushed, last);
    }

    /// Path history is deterministic and order-sensitive.
    #[test]
    fn path_history_properties(path in proptest::collection::vec(0u32..100, 1..20)) {
        let fold = |xs: &[u32]| xs.iter().fold(PathHistory::start(), |h, f| h.extend(*f));
        prop_assert_eq!(fold(&path), fold(&path));
        if path.len() >= 2 && path[0] != path[1] {
            let mut swapped = path.clone();
            swapped.swap(0, 1);
            prop_assert_ne!(fold(&path), fold(&swapped));
        }
    }

    /// Latency percentiles are monotone in p and bounded by min/max.
    #[test]
    fn percentiles_monotone(samples in proptest::collection::vec(0.0f64..10_000.0, 2..200)) {
        let mut r = LatencyRecorder::new();
        for s in &samples {
            r.record_ms(*s);
        }
        let p50 = r.percentile_ms(50.0);
        let p90 = r.percentile_ms(90.0);
        let p99 = r.percentile_ms(99.0);
        prop_assert!(p50 <= p90 && p90 <= p99);
        let max = samples.iter().cloned().fold(f64::MIN, f64::max);
        let min = samples.iter().cloned().fold(f64::MAX, f64::min);
        prop_assert!(p99 <= max + 1e-9 && p50 >= min - 1e-9);
    }

    /// Welford merge equals sequential accumulation.
    #[test]
    fn online_stats_merge_associative(
        a in proptest::collection::vec(-1e6f64..1e6, 1..50),
        b in proptest::collection::vec(-1e6f64..1e6, 1..50),
    ) {
        let mut all = OnlineStats::new();
        for x in a.iter().chain(&b) {
            all.record(*x);
        }
        let mut sa = OnlineStats::new();
        let mut sb = OnlineStats::new();
        for x in &a { sa.record(*x); }
        for x in &b { sb.record(*x); }
        sa.merge(&sb);
        prop_assert!((sa.mean() - all.mean()).abs() < 1e-6);
        prop_assert!((sa.variance() - all.variance()).abs() / all.variance().max(1.0) < 1e-6);
    }

    /// CDF fraction_at is monotone and hits 0/1 at the extremes.
    #[test]
    fn cdf_is_monotone(samples in proptest::collection::vec(0.0f64..1.0, 1..200)) {
        let cdf = Cdf::from_samples(samples.clone());
        let mut prev = 0.0;
        for i in 0..=20 {
            let x = i as f64 / 20.0;
            let f = cdf.fraction_at(x);
            prop_assert!(f >= prev);
            prev = f;
        }
        prop_assert_eq!(cdf.fraction_at(1.0), 1.0);
    }
}
