//! Property-based tests over the core speculation data structures and
//! the simulation kernel.
//!
//! Randomized inputs are drawn from the repo's own seeded `SimRng` (the
//! offline build environment cannot fetch `proptest`), so every case is
//! reproducible from the loop seed embedded in the assertion message.

use specfaas::core::databuffer::{DataBuffer, ReadResult};
use specfaas::core::pipeline::SlotId;
use specfaas::core::{MemoTable, PathHistory};
use specfaas::sim::stats::{Cdf, LatencyRecorder, OnlineStats};
use specfaas::sim::{SimDuration, SimRng, Simulator};
use specfaas::storage::Value;

const CASES: u64 = 100;

fn vec_u64(rng: &mut SimRng, lo: u64, hi: u64, min_len: u64, max_len: u64) -> Vec<u64> {
    let n = rng.uniform_range(min_len, max_len);
    (0..n).map(|_| rng.uniform_range(lo, hi)).collect()
}

fn vec_f64(rng: &mut SimRng, lo: f64, hi: f64, min_len: u64, max_len: u64) -> Vec<f64> {
    let n = rng.uniform_range(min_len, max_len);
    (0..n).map(|_| lo + rng.uniform_f64() * (hi - lo)).collect()
}

/// The simulator delivers events in non-decreasing time order,
/// regardless of scheduling order.
#[test]
fn simulator_is_time_ordered() {
    for case in 0..CASES {
        let mut rng = SimRng::seed(0x10 + case);
        let delays = vec_u64(&mut rng, 0, 9_999, 1, 99);
        let mut sim = Simulator::new();
        for (i, d) in delays.iter().enumerate() {
            sim.schedule_in(SimDuration::from_micros(*d), i);
        }
        let mut last = 0;
        let mut count = 0;
        while let Some((t, _)) = sim.step() {
            assert!(t.as_micros() >= last, "case {case}: time went backwards");
            last = t.as_micros();
            count += 1;
        }
        assert_eq!(count, delays.len(), "case {case}");
    }
}

/// Events scheduled at the same instant keep FIFO order.
#[test]
fn simulator_fifo_at_equal_times() {
    for case in 0..CASES {
        let mut rng = SimRng::seed(0x20 + case);
        let n = rng.uniform_range(1, 49) as usize;
        let mut sim = Simulator::new();
        for i in 0..n {
            sim.schedule_in(SimDuration::from_millis(5), i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| sim.step()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..n).collect::<Vec<_>>(), "case {case}");
    }
}

/// A memoization table never exceeds its capacity and always returns
/// exactly what was last inserted for a key.
#[test]
fn memo_table_capacity_and_fidelity() {
    for case in 0..CASES {
        let mut rng = SimRng::seed(0x30 + case);
        let cap = rng.uniform_range(1, 19) as usize;
        let n_ops = rng.uniform_range(1, 299);
        let mut table = MemoTable::new(cap);
        let mut last = std::collections::HashMap::new();
        for _ in 0..n_ops {
            let k = rng.uniform_u64(40) as i64;
            let v = rng.uniform_u64(1000) as i64;
            table.insert(Value::Int(k), Value::Int(v), vec![]);
            last.insert(k, v);
            assert!(table.len() <= cap, "case {case}: capacity exceeded");
        }
        // Whatever is still resident must be the latest value.
        for (k, v) in &last {
            if let Some(e) = table.peek(&Value::Int(*k)) {
                assert_eq!(&e.output, &Value::Int(*v), "case {case}: stale entry");
            }
        }
    }
}

/// Data Buffer: an in-order write→read pair always forwards the written
/// value, never global state.
#[test]
fn data_buffer_forwards_in_order_raw() {
    for case in 0..CASES {
        let mut rng = SimRng::seed(0x40 + case);
        let writer = rng.uniform_u64(5);
        let gap = rng.uniform_range(1, 4);
        let val = rng.uniform_range(0, 1 << 40) as i64 - (1 << 39);
        let reader = writer + gap;
        let order: Vec<SlotId> = (0..10).map(SlotId).collect();
        let mut db = DataBuffer::new();
        let victims = db.write(SlotId(writer), "k", Value::Int(val), &order);
        assert!(victims.is_empty(), "case {case}");
        match db.read(SlotId(reader), "k", &order) {
            ReadResult::Forwarded(v) => assert_eq!(v, Value::Int(val), "case {case}"),
            other => panic!("case {case}: expected forward, got {other:?}"),
        }
    }
}

/// Data Buffer: an out-of-order read→write pair always squashes the
/// premature reader (and commit never flushes squashed data).
#[test]
fn data_buffer_squashes_out_of_order_raw() {
    for case in 0..CASES {
        let mut rng = SimRng::seed(0x50 + case);
        let writer = rng.uniform_u64(5);
        let gap = rng.uniform_range(1, 4);
        let reader = writer + gap;
        let order: Vec<SlotId> = (0..10).map(SlotId).collect();
        let mut db = DataBuffer::new();
        db.read(SlotId(reader), "k", &order);
        let victims = db.write(SlotId(writer), "k", Value::Int(1), &order);
        assert_eq!(victims, vec![SlotId(reader)], "case {case}");
        db.squash(SlotId(reader));
        assert!(db.commit(SlotId(reader)).is_empty(), "case {case}");
    }
}

/// Commit flushes exactly the keys the slot wrote, each with its latest
/// value.
#[test]
fn data_buffer_commit_flushes_last_writes() {
    for case in 0..CASES {
        let mut rng = SimRng::seed(0x60 + case);
        let n_writes = rng.uniform_range(1, 39);
        let order = vec![SlotId(0)];
        let mut db = DataBuffer::new();
        let mut last = std::collections::BTreeMap::new();
        for _ in 0..n_writes {
            let key = format!("k{}", rng.uniform_u64(6));
            let v = rng.uniform_range(0, 1 << 40) as i64 - (1 << 39);
            db.write(SlotId(0), &key, Value::Int(v), &order);
            last.insert(key, v);
        }
        let flushed: std::collections::BTreeMap<String, i64> = db
            .commit(SlotId(0))
            .into_iter()
            .map(|(k, v)| (k, v.as_int().unwrap()))
            .collect();
        assert_eq!(flushed, last, "case {case}");
    }
}

/// Path history is deterministic and order-sensitive.
#[test]
fn path_history_properties() {
    for case in 0..CASES {
        let mut rng = SimRng::seed(0x70 + case);
        let path: Vec<u32> = vec_u64(&mut rng, 0, 99, 1, 19)
            .into_iter()
            .map(|x| x as u32)
            .collect();
        let fold = |xs: &[u32]| xs.iter().fold(PathHistory::start(), |h, f| h.extend(*f));
        assert_eq!(fold(&path), fold(&path), "case {case}");
        if path.len() >= 2 && path[0] != path[1] {
            let mut swapped = path.clone();
            swapped.swap(0, 1);
            assert_ne!(fold(&path), fold(&swapped), "case {case}");
        }
    }
}

/// Latency percentiles are monotone in p and bounded by min/max.
#[test]
fn percentiles_monotone() {
    for case in 0..CASES {
        let mut rng = SimRng::seed(0x80 + case);
        let samples = vec_f64(&mut rng, 0.0, 10_000.0, 2, 199);
        let mut r = LatencyRecorder::new();
        for s in &samples {
            r.record_ms(*s);
        }
        let p50 = r.percentile_ms(50.0);
        let p90 = r.percentile_ms(90.0);
        let p99 = r.percentile_ms(99.0);
        assert!(p50 <= p90 && p90 <= p99, "case {case}: not monotone");
        let max = samples.iter().cloned().fold(f64::MIN, f64::max);
        let min = samples.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            p99 <= max + 1e-9 && p50 >= min - 1e-9,
            "case {case}: out of bounds"
        );
    }
}

/// Welford merge equals sequential accumulation.
#[test]
fn online_stats_merge_associative() {
    for case in 0..CASES {
        let mut rng = SimRng::seed(0x90 + case);
        let a = vec_f64(&mut rng, -1e6, 1e6, 1, 49);
        let b = vec_f64(&mut rng, -1e6, 1e6, 1, 49);
        let mut all = OnlineStats::new();
        for x in a.iter().chain(&b) {
            all.record(*x);
        }
        let mut sa = OnlineStats::new();
        let mut sb = OnlineStats::new();
        for x in &a {
            sa.record(*x);
        }
        for x in &b {
            sb.record(*x);
        }
        sa.merge(&sb);
        assert!((sa.mean() - all.mean()).abs() < 1e-6, "case {case}: mean");
        assert!(
            (sa.variance() - all.variance()).abs() / all.variance().max(1.0) < 1e-6,
            "case {case}: variance"
        );
    }
}

// ---------------------------------------------------------------------
// Fault-injection determinism
// ---------------------------------------------------------------------

use std::collections::BTreeMap;
use std::sync::Arc;

use specfaas::platform::{BaselineEngine, FaultStats, RunMetrics};
use specfaas::prelude::{FaultPlan, RetryPolicy, SpecConfig, SpecEngine};
use specfaas::storage::KvStore;

fn kv_map(kv: &KvStore) -> BTreeMap<String, Value> {
    kv.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()
}

/// Everything about a faulted run that must replay identically.
fn fingerprint(
    m: &RunMetrics,
    kv: &KvStore,
) -> (u64, u64, FaultStats, u64, BTreeMap<String, Value>) {
    (
        m.completed,
        m.failed,
        m.faults,
        m.latency.mean_ms().to_bits(),
        kv_map(kv),
    )
}

/// Draws a random-but-survivable fault plan from the case RNG.
fn random_plan(rng: &mut SimRng) -> FaultPlan {
    let p = |rng: &mut SimRng| [0.0, 0.01, 0.02, 0.05, 0.1][rng.uniform_u64(5) as usize];
    FaultPlan::none()
        .with_container_crash(p(rng))
        .with_kv_get(p(rng))
        .with_kv_set(p(rng))
        .with_slot_drop(p(rng))
        .with_hang(p(rng) / 10.0)
}

/// Same engine seed + same fault plan ⇒ the same faults are injected at
/// the same sites, every retry lands the same way, and the final global
/// store is identical — for randomly drawn plans, seeds and apps, in
/// both engines.
#[test]
fn fault_injection_replays_identically_per_seed() {
    let suites = specfaas::apps::all_suites();
    let bundles: Vec<_> = suites.iter().flat_map(|s| s.apps.iter()).collect();
    for case in 0..12u64 {
        let mut rng = SimRng::seed(0xB0 + case);
        let plan = random_plan(&mut rng);
        let seed = rng.uniform_u64(1 << 32);
        let policy = RetryPolicy::default()
            .with_max_attempts(8)
            .with_timeout(SimDuration::from_secs(2));
        let bundle = bundles[case as usize % bundles.len()];

        let run_spec = || {
            let mut e = SpecEngine::new(Arc::clone(&bundle.app), SpecConfig::full(), seed);
            e.enable_faults(plan.clone(), policy.clone());
            e.prewarm();
            let mut srng = SimRng::seed(seed ^ 1);
            (bundle.seed)(&mut e.kv, &mut srng);
            let gen = bundle.make_input.clone();
            let m = e.run_closed(15, move |r| gen(r));
            fingerprint(&m, &e.kv)
        };
        let run_base = || {
            let mut e = BaselineEngine::new(Arc::clone(&bundle.app), seed);
            e.enable_faults(plan.clone(), policy.clone());
            e.prewarm();
            let mut srng = SimRng::seed(seed ^ 1);
            (bundle.seed)(&mut e.kv, &mut srng);
            let gen = bundle.make_input.clone();
            let m = e.run_closed(15, move |r| gen(r));
            fingerprint(&m, &e.kv)
        };
        assert_eq!(
            run_spec(),
            run_spec(),
            "case {case} ({}): spec run not reproducible",
            bundle.name()
        );
        assert_eq!(
            run_base(),
            run_base(),
            "case {case} ({}): baseline run not reproducible",
            bundle.name()
        );
    }
}

/// Enabling an all-zero fault plan must not perturb anything: the fault
/// RNG stream is separate from workload randomness, and no site ever
/// fires — across random engine seeds and apps, in both engines.
#[test]
fn empty_fault_plan_never_perturbs_execution() {
    let suites = specfaas::apps::all_suites();
    let bundles: Vec<_> = suites.iter().flat_map(|s| s.apps.iter()).collect();
    for case in 0..8u64 {
        let mut rng = SimRng::seed(0xC0 + case);
        let seed = rng.uniform_u64(1 << 32);
        let bundle = bundles[case as usize % bundles.len()];
        let run = |faults: bool| {
            let mut e = SpecEngine::new(Arc::clone(&bundle.app), SpecConfig::full(), seed);
            if faults {
                e.enable_faults(FaultPlan::none(), RetryPolicy::default());
            }
            e.prewarm();
            let gen = bundle.make_input.clone();
            let m = e.run_closed(10, move |r| gen(r));
            fingerprint(&m, &e.kv)
        };
        assert_eq!(
            run(false),
            run(true),
            "case {case} ({}): FaultPlan::none() changed execution",
            bundle.name()
        );
    }
}

/// Exponential backoff is non-decreasing in the retry index and capped.
#[test]
fn retry_backoff_monotone_and_capped() {
    let policy = RetryPolicy::default();
    let mut prev = SimDuration::ZERO;
    for retry in 1..=24 {
        let b = policy.backoff(retry);
        assert!(b >= prev, "backoff decreased at retry {retry}");
        assert!(b <= SimDuration::from_secs(1), "backoff exceeded its cap");
        prev = b;
    }
}

/// CDF fraction_at is monotone and hits 0/1 at the extremes.
#[test]
fn cdf_is_monotone() {
    for case in 0..CASES {
        let mut rng = SimRng::seed(0xA0 + case);
        let samples = vec_f64(&mut rng, 0.0, 1.0, 1, 199);
        let cdf = Cdf::from_samples(samples.clone());
        let mut prev = 0.0;
        for i in 0..=20 {
            let x = i as f64 / 20.0;
            let f = cdf.fraction_at(x);
            assert!(f >= prev, "case {case}: cdf decreased");
            prev = f;
        }
        assert_eq!(cdf.fraction_at(1.0), 1.0, "case {case}");
    }
}
