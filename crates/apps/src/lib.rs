#![warn(missing_docs)]

//! # specfaas-apps
//!
//! The three application suites the SpecFaaS paper evaluates (§VII,
//! Table II), plus the dataset and trace generators that stand in for the
//! proprietary data sources:
//!
//! * [`faaschain`] — six real-world-shaped FaaS applications with
//!   *explicit* workflows (chain lengths 2–10): Login, SmartHome,
//!   Banking, FlightBooking, HotelBooking, OnlinePurchase.
//! * [`trainticket`] — five applications with *implicit* workflows,
//!   shaped after the serverless TrainTicket port (functions call other
//!   functions as subroutines; gather functions aggregate leaf services).
//! * [`alibaba`] — five implicit-workflow applications synthesized from
//!   the published statistics of Alibaba's production microservice traces
//!   (17.6 functions/app, 3.4 callees per calling function, DAG depth 5),
//!   plus the node-utilization trace generator behind Fig. 4.
//! * [`dag`] — three DAG-heavy, data-parallel applications with wide
//!   fork/join sections (MapReduce word count, ML inference pipeline,
//!   FINRA-style trade validation) that stress the Data Buffer and
//!   squash cascades across join boundaries.
//! * [`topology`] — a seeded random DAG-topology generator (bounded
//!   width and depth) used to fuzz the cross-engine equivalence tests
//!   beyond the hand-built suites.
//! * [`azure_blobs`] — a synthetic blob-access trace matched to the
//!   Azure Functions statistics of Observation 4.
//! * [`datasets`] — skewed input generators (user pools, ticket routes,
//!   product catalogs) that drive realistic memoization hit rates.
//! * [`characterize`] — the suite characterization of Table I.
//!
//! Every application is a real [`specfaas_workflow::AppSpec`]: functions
//! genuinely compute outputs from inputs, read and write the simulated
//! key-value store, and (for implicit suites) call each other — so
//! speculation, validation and squashing exercise true data flow.

pub mod alibaba;
pub mod azure_blobs;
pub mod characterize;
pub mod dag;
pub mod datasets;
pub mod faaschain;
pub mod suite;
pub mod topology;
pub mod trainticket;

pub use characterize::{characterize_suite, SuiteCharacterization};
pub use suite::{
    all_app_specs, all_suites, find_app, suite_named, AppBundle, Suite, SuiteDef, SUITE_DEFS,
};
