//! Seeded random DAG-topology generator.
//!
//! [`random_bundle`] builds a complete, runnable [`AppBundle`] from a
//! seed: a workflow drawn from the full explicit DSL (sequences,
//! data-dependent branches, bounded-width `parallel` fan-outs with join
//! tasks) over freshly synthesized functions that genuinely compute —
//! hash-mixing their inputs, reading seeded storage, writing
//! function-private keys, and reading values produced earlier on the
//! same path (including across join boundaries, which exercises the
//! Data Buffer's forwarding and violation logic).
//!
//! The generator only emits programs whose committed semantics are
//! engine-independent, so every generated app is a valid subject for
//! the cross-engine equivalence harness:
//!
//! * parallel siblings write disjoint, function-private keys and never
//!   read keys written by a sibling;
//! * a function only reads `out:*` keys written *unconditionally* by
//!   functions that precede it in program order on every path — forks
//!   execute all branches, so branch-level writes become readable after
//!   the join, while writes inside `when` arms stay arm-local;
//! * every `parallel` is preceded by a plain task (the compiler's
//!   single-simple-tail rule) and followed by a join task, so no fork
//!   is left dangling inside a larger composition.
//!
//! Topology bounds: depth ≤ [`MAX_DEPTH`] nested compositions, fan-outs
//! of 2..=[`MAX_WIDTH`] branches, at most [`max_functions_bound`]
//! functions (a [`MAX_FUNCTIONS`] budget plus the segment in flight
//! when the budget trips).
//! Generation consumes randomness only at *build* time from its own
//! seeded [`specfaas_sim::SimRng`]; the produced programs are deterministic in their
//! inputs and storage, and the same seed always yields the same app.

use specfaas_storage::Value;
use specfaas_workflow::expr::*;
use specfaas_workflow::{AppSpec, FunctionRegistry, FunctionSpec, Program, Workflow};

use crate::suite::AppBundle;

/// Maximum nesting depth of compositions (branch arms, fork branches).
pub const MAX_DEPTH: usize = 3;
/// Maximum fan-out width of a generated `parallel`.
pub const MAX_WIDTH: usize = 6;
/// Function budget per app: once reached, no new segments open (the
/// segment being emitted still completes, so a few extra functions may
/// be registered — see [`max_functions_bound`]).
pub const MAX_FUNCTIONS: usize = 48;

/// Hard upper bound on registered functions: the budget plus the worst
/// in-flight segment (a full-width fork with its anchor and join, or a
/// branch with two single-task arms at every nesting level).
pub const fn max_functions_bound() -> usize {
    MAX_FUNCTIONS + 2 * MAX_WIDTH + 3 * MAX_DEPTH
}
/// Seeded `g:{i}` storage keys every generated app may read.
const SEED_KEYS: u64 = 16;

struct Gen {
    rng: specfaas_sim::SimRng,
    reg: FunctionRegistry,
    next_fn: usize,
}

impl Gen {
    /// True while the function budget allows another synthesized function.
    fn has_budget(&self) -> bool {
        self.next_fn < MAX_FUNCTIONS
    }

    /// Synthesizes and registers one function.
    ///
    /// The function hashes its input, optionally folds in a seeded
    /// `g:{i}` read and a read of one prior unconditional producer, and
    /// (with probability 1/2) writes its private `out:F{n}` key. Every
    /// function returns `{v: int, b: bool}` — `b` is a biased,
    /// input-dependent bit any enclosing `when` can branch on. A
    /// non-empty `join_reads` (used for join functions) folds in a read
    /// of one branch-written key across the join boundary.
    fn make_fn(&mut self, producers: &[String], join_reads: &[String]) -> (String, bool) {
        let n = self.next_fn;
        self.next_fn += 1;
        let name = format!("F{n}");

        let mut b = Program::builder().compute_ms(2 + self.rng.uniform_u64(5));
        // Mix: structural hash of the input document plus a per-function salt.
        let mut v = add(hash_of(input()), lit((n as i64) * 2_654_435_761));
        if self.rng.chance(0.4) {
            let k = self.rng.uniform_u64(SEED_KEYS);
            b = b.get(lit(format!("g:{k}")), "g");
            v = add(v, var("g"));
        }
        if !producers.is_empty() && self.rng.chance(0.4) {
            let p = &producers[self.rng.uniform_u64(producers.len() as u64) as usize];
            b = b.get(lit(format!("out:{p}")), "p");
            v = add(v, field(var("p"), "v"));
        }
        if !join_reads.is_empty() {
            // Read one sibling-branch product back across the join — an
            // in-order RAW dependence the Data Buffer must forward.
            let p = &join_reads[self.rng.uniform_u64(join_reads.len() as u64) as usize];
            b = b.get(lit(format!("out:{p}")), "j");
            v = add(v, field(var("j"), "v"));
        }
        let v = modulo(v, lit(1_000_000i64));
        // Branch bit: biased towards taken, but genuinely data-dependent.
        let bias = 70 + (self.rng.uniform_u64(28) as i64);
        let bit = lt(
            modulo(add(v.clone(), lit(n as i64)), lit(100i64)),
            lit(bias),
        );

        let writes = self.rng.chance(0.5);
        if writes {
            b = b.set(
                lit(format!("out:{name}")),
                make_map([("v", v.clone()), ("from", lit(n as i64))]),
            );
        }
        self.reg.register(FunctionSpec::new(
            &name,
            b.ret(make_map([("v", v), ("b", bit)])),
        ));
        (name, writes)
    }

    /// Emits one plain task, extending `producers` with its write (if any).
    fn task(&mut self, producers: &mut Vec<String>) -> Workflow {
        let (name, writes) = self.make_fn(producers, &[]);
        if writes {
            producers.push(name.clone());
        }
        Workflow::task(name)
    }

    /// A fork/join segment: anchor task, `parallel` fan-out, join task.
    /// Returns the three-element tail of the enclosing sequence.
    fn fork_join(&mut self, depth: usize, producers: &mut Vec<String>) -> Vec<Workflow> {
        let anchor = self.task(producers);
        let width = 2 + self.rng.uniform_u64((MAX_WIDTH - 2) as u64 + 1) as usize;
        let mut branches = Vec::with_capacity(width);
        // Branch-level (unconditional) writes: readable after the join,
        // since a fork executes every branch.
        let mut branch_writes: Vec<String> = Vec::new();
        for _ in 0..width {
            // Siblings see only pre-fork producers — never each other.
            let mut local = producers.clone();
            let before = local.len();
            let branch = if depth < MAX_DEPTH && self.rng.chance(0.3) && self.has_budget() {
                // A deeper composition inside the branch (chain or when).
                self.sequence(depth + 1, &mut local, false)
            } else {
                self.task(&mut local)
            };
            branch_writes.extend(local.drain(before..));
            branches.push(branch);
        }
        // The join function may read any branch's unconditional product.
        let (join, join_writes) = self.make_fn(producers, &branch_writes);
        producers.extend(branch_writes);
        if join_writes {
            producers.push(join.clone());
        }
        vec![anchor, Workflow::parallel(branches), Workflow::task(join)]
    }

    /// A data-dependent branch over two sub-compositions.
    fn when(&mut self, depth: usize, producers: &mut Vec<String>) -> Workflow {
        let (cond, writes) = self.make_fn(producers, &[]);
        if writes {
            producers.push(cond.clone());
        }
        // Writes inside an arm are conditional: visible to later parts of
        // the same arm only, so each arm gets a discarded clone.
        let then = self.sequence(depth + 1, &mut producers.clone(), false);
        let els = if self.rng.chance(0.7) {
            Some(self.sequence(depth + 1, &mut producers.clone(), false))
        } else {
            None
        };
        Workflow::when_field(cond, "b", then, els)
    }

    /// A sequence of 1–4 segments. `allow_fork` admits fork/join
    /// segments (disabled inside fork branches to keep every branch a
    /// single dynamic arrival without relying on nested-join corner
    /// cases at depth).
    fn sequence(
        &mut self,
        depth: usize,
        producers: &mut Vec<String>,
        allow_fork: bool,
    ) -> Workflow {
        let len = 1 + self.rng.uniform_u64(3) as usize;
        let mut parts = Vec::new();
        for i in 0..len {
            if !self.has_budget() {
                break;
            }
            let roll = self.rng.uniform_f64();
            if allow_fork && roll < 0.35 && self.has_budget() {
                parts.extend(self.fork_join(depth, producers));
            } else if depth < MAX_DEPTH && roll < 0.6 && i > 0 {
                parts.push(self.when(depth, producers));
            } else {
                parts.push(self.task(producers));
            }
        }
        if parts.is_empty() {
            parts.push(self.task(producers));
        }
        Workflow::sequence(parts)
    }
}

/// Builds a complete random application from `seed`. The same seed
/// always produces the same application.
pub fn random_bundle(seed: u64) -> AppBundle {
    let mut g = Gen {
        rng: specfaas_sim::SimRng::seed(seed ^ 0xD46_7090),
        reg: FunctionRegistry::new(),
        next_fn: 0,
    };
    let mut producers = Vec::new();
    // Top-level: always at least one fork/join plus random structure.
    let mut parts = Vec::new();
    parts.extend(g.fork_join(1, &mut producers));
    if let Workflow::Sequence(more) = g.sequence(1, &mut producers, true) {
        parts.extend(more);
    }
    let wf = Workflow::sequence(parts);
    let app = AppSpec::new(format!("RandomDag{seed:x}"), "RandomDAG", g.reg, wf);
    AppBundle::new(
        app,
        move |rng| {
            Value::map([
                ("k", Value::Int(rng.uniform_u64(50) as i64)),
                ("u", Value::str(format!("u:{}", rng.zipf(40, 1.2)))),
            ])
        },
        move |kv, rng| {
            for i in 0..SEED_KEYS {
                kv.set(
                    format!("g:{i}"),
                    Value::Int(rng.uniform_u64(100_000) as i64),
                );
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfaas_sim::SimRng;
    use specfaas_workflow::EntryKind;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 42, 0xDA6] {
            let a = random_bundle(seed);
            let b = random_bundle(seed);
            assert_eq!(
                a.app.workflow.function_names(),
                b.app.workflow.function_names(),
                "seed {seed} generated two different workflows"
            );
        }
    }

    #[test]
    fn topologies_compile_and_respect_bounds() {
        for seed in 0..200u64 {
            let bundle = random_bundle(seed);
            let c = &bundle.app.compiled;
            assert!(
                bundle.app.registry.len() <= max_functions_bound(),
                "seed {seed}: {} functions exceeds the bound {}",
                bundle.app.registry.len(),
                max_functions_bound()
            );
            let mut has_fork = false;
            for e in &c.entries {
                if let EntryKind::Fork { branches, join } = &e.kind {
                    has_fork = true;
                    assert!(
                        (2..=MAX_WIDTH).contains(&branches.len()),
                        "seed {seed}: fork width {} out of bounds",
                        branches.len()
                    );
                    let j = join.expect("generated forks always have a join");
                    assert_eq!(
                        c.entries[j].join_arity,
                        branches.len() as u32,
                        "seed {seed}: join arity mismatch"
                    );
                }
            }
            assert!(has_fork, "seed {seed}: no fork generated");
        }
    }

    #[test]
    fn generated_apps_run_on_both_engines() {
        use specfaas_core::{SpecConfig, SpecEngine};
        use specfaas_platform::BaselineEngine;
        for seed in 0..10u64 {
            let bundle = random_bundle(seed);
            let mut base = BaselineEngine::new(bundle.app.clone(), 7);
            base.prewarm();
            let mut rng = SimRng::seed(1);
            (bundle.seed)(&mut base.kv, &mut rng);
            base.run_single((bundle.make_input)(&mut rng));

            let mut spec = SpecEngine::new(bundle.app.clone(), SpecConfig::full(), 7);
            spec.prewarm();
            let mut rng = SimRng::seed(1);
            (bundle.seed)(&mut spec.kv, &mut rng);
            for _ in 0..5 {
                spec.run_single((bundle.make_input)(&mut rng));
            }
            let m = spec.run_closed(0, |_| Value::Null);
            assert_eq!(m.completed, 5, "seed {seed}: spec engine lost requests");
        }
    }
}
