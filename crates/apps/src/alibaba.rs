//! Alibaba: five implicit-workflow applications synthesized from the
//! published statistics of Alibaba's production microservice traces
//! (paper §VII), plus the node-utilization trace generator behind Fig. 4.
//!
//! The real traces provide call graphs and per-function execution times
//! but no function code, so (like the paper, which replays trace timing)
//! we generate deterministic call trees matched to Table I: on average
//! 17.6 functions per application, 3.4 callees per calling function,
//! maximum DAG depth 5, and ≈90 % most-popular-sequence share
//! (Observation 2 / the 90 % branch-predictor hit rate of §VIII-B).

use specfaas_sim::SimRng;
use specfaas_storage::Value;
use specfaas_workflow::expr::*;
use specfaas_workflow::{AppSpec, FunctionRegistry, FunctionSpec, Program, Workflow};

use crate::suite::AppBundle;

/// Probability that a conditional call edge is exercised (matches the
/// 90 % predictability of the traces).
pub const CALL_BIAS: f64 = 0.9;

/// All five Alibaba applications.
pub fn apps() -> Vec<AppBundle> {
    // Shapes chosen so the suite averages ~17.6 functions and max call
    // depth 5: trees of 16, 21, 15, 22 and 15 functions respectively.
    vec![
        synth_app("AliLogin", 0, &[3, 2, 1], 5),
        synth_app("AliBanking", 1, &[4, 2, 1], 6),
        synth_app("AliFlightBook", 2, &[2, 3, 1], 5),
        synth_app("AliHotelBook", 3, &[3, 3, 1], 6),
        synth_app("AliOnlPurch", 4, &[2, 2, 1, 1], 5),
    ]
}

/// Builds one synthetic multi-tier application.
///
/// `fanout[d]` is the number of callees at tree depth `d`; depth
/// `fanout.len()` nodes are leaves. One call edge per mid-tier node is
/// *conditional*: taken only when the request's `variant` field is 0
/// (drawn true with probability [`CALL_BIAS`]), reproducing the trace's
/// dominant-path behaviour.
fn synth_app(name: &str, salt: u64, fanout: &[usize], leaf_ms: u64) -> AppBundle {
    let mut reg = FunctionRegistry::new();
    build_node(&mut reg, name, salt, 0, fanout, leaf_ms, "n");
    let root = format!("{name}_n");
    let app = AppSpec::new(name, "Alibaba", reg, Workflow::task(root));
    AppBundle::new(
        app,
        move |rng: &mut SimRng| {
            Value::map([
                ("key", Value::str(format!("k{}", rng.zipf(60, 1.4)))),
                ("variant", Value::Int(i64::from(!rng.chance(CALL_BIAS)))),
            ])
        },
        move |kv, _rng| {
            for k in 0..60 {
                kv.set(format!("state:k{k}"), Value::Int(k * 17 + 3));
            }
        },
    )
}

/// Recursively registers the function tree; returns the node's name.
fn build_node(
    reg: &mut FunctionRegistry,
    app: &str,
    salt: u64,
    depth: usize,
    fanout: &[usize],
    leaf_ms: u64,
    path: &str,
) -> String {
    let name = format!("{app}_{path}");
    if depth >= fanout.len() {
        // Leaf: compute plus an occasional read of shared state.
        let prog = if path.ends_with('0') {
            Program::builder()
                .compute_jitter_ms(leaf_ms, 0.15)
                .get(concat([lit("state:"), field(input(), "key")]), "s")
                .ret(make_map([(
                    "r",
                    add(var("s"), hash_of(field(input(), "key"))),
                )]))
        } else {
            Program::builder()
                .compute_jitter_ms(leaf_ms + (salt % 3), 0.15)
                .ret(make_map([("r", hash_of(input()))]))
        };
        reg.register(FunctionSpec::new(&name, prog));
        return name;
    }
    let n_children = fanout[depth];
    let mut children = Vec::new();
    for c in 0..n_children {
        let child = build_node(
            reg,
            app,
            salt,
            depth + 1,
            fanout,
            leaf_ms,
            &format!("{path}{c}"),
        );
        children.push(child);
    }
    // Mid-tier node: calls each child in order; the LAST call is
    // conditional on the request variant.
    let mut b = Program::builder().compute_jitter_ms(2 + (salt % 2), 0.1);
    let total = children.len();
    for (i, child) in children.iter().enumerate() {
        let args = make_map([
            ("key", field(input(), "key")),
            ("variant", field(input(), "variant")),
        ]);
        if i + 1 == total && total > 1 {
            b = b.if_(
                eq(field(input(), "variant"), lit(0i64)),
                vec![specfaas_workflow::Stmt::Call {
                    func: child.clone(),
                    args,
                    var: format!("r{i}"),
                }],
                vec![specfaas_workflow::Stmt::Let {
                    var: format!("r{i}"),
                    expr: lit(Value::Null),
                }],
            );
        } else {
            b = b.call(child.clone(), args, format!("r{i}"));
        }
    }
    let prog = b
        .compute_jitter_ms(2, 0.1)
        .ret(make_map([("r", hash_of(make_list([var("r0"), input()])))]));
    reg.register(FunctionSpec::new(&name, prog));
    name
}

// ---------------------------------------------------------------------
// Node-utilization trace (Fig. 4)
// ---------------------------------------------------------------------

/// Per-node CPU-utilization samples synthesized to match the published
/// CDFs of Fig. 4 (most nodes run at 60–80 % CPU most of the time).
#[derive(Debug, Clone)]
pub struct UtilizationTrace {
    /// Per-node utilization sample series, values in `[0, 1]`.
    pub nodes: Vec<Vec<f64>>,
}

impl UtilizationTrace {
    /// Generates a trace of `nodes` nodes × `samples` samples each.
    ///
    /// Node baselines are drawn around 55–75 % with diurnal-style
    /// oscillation and noise, clamped to `[0.05, 0.99]`.
    pub fn generate(nodes: usize, samples: usize, rng: &mut SimRng) -> Self {
        let mut out = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            let base = rng.normal_clamped(0.62, 0.10, 0.25, 0.85);
            let amp = rng.normal_clamped(0.10, 0.04, 0.02, 0.25);
            let phase = rng.uniform_f64() * std::f64::consts::TAU;
            let mut series = Vec::with_capacity(samples);
            for t in 0..samples {
                let diurnal =
                    amp * (t as f64 / samples as f64 * 8.0 * std::f64::consts::TAU + phase).sin();
                let noise = rng.normal_clamped(0.0, 0.05, -0.2, 0.2);
                series.push((base + diurnal + noise).clamp(0.05, 0.99));
            }
            out.push(series);
        }
        UtilizationTrace { nodes: out }
    }

    /// Per-node `p`-th percentile utilization (the P50–P90 series of
    /// Fig. 4), one value per node.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 100]`.
    pub fn node_percentiles(&self, p: f64) -> Vec<f64> {
        assert!((0.0..=100.0).contains(&p));
        self.nodes
            .iter()
            .map(|series| {
                let mut s = series.clone();
                s.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                let idx = ((p / 100.0) * (s.len() - 1) as f64).round() as usize;
                s[idx]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_shape_matches_table1() {
        let apps = apps();
        assert_eq!(apps.len(), 5);
        let fns: usize = apps.iter().map(|a| a.app.registry.len()).sum();
        let avg = fns as f64 / 5.0;
        assert!(
            (14.0..=22.0).contains(&avg),
            "avg functions {avg}, paper reports 17.6"
        );
        for a in &apps {
            assert!(a.app.is_implicit());
        }
    }

    #[test]
    fn apps_run_on_baseline() {
        use specfaas_platform::BaselineEngine;
        for bundle in apps() {
            let mut e = BaselineEngine::new(bundle.app.clone(), 21);
            e.prewarm();
            let mut rng = SimRng::seed(6);
            (bundle.seed)(&mut e.kv, &mut rng);
            let d = e.run_single((bundle.make_input)(&mut rng));
            assert!(
                d.as_millis() > 50,
                "{} should be a deep multi-tier app: {d}",
                bundle.name()
            );
        }
    }

    #[test]
    fn dominant_path_share_matches_observation2() {
        // ~90% of invocations follow the most popular function sequence.
        use specfaas_platform::BaselineEngine;
        let bundle = &apps()[0];
        let mut e = BaselineEngine::new(bundle.app.clone(), 23);
        e.prewarm();
        let mut rng = SimRng::seed(7);
        (bundle.seed)(&mut e.kv, &mut rng);
        let gen = bundle.make_input.clone();
        let m = e.run_closed(300, move |r| gen(r));
        let (_, share) = m.most_popular_sequence().unwrap();
        assert!(
            (0.80..=0.97).contains(&share),
            "dominant sequence share {share}, expected ≈0.9"
        );
    }

    #[test]
    fn utilization_trace_matches_fig4_band() {
        let mut rng = SimRng::seed(8);
        let trace = UtilizationTrace::generate(500, 200, &mut rng);
        let p90 = trace.node_percentiles(90.0);
        let in_band = p90.iter().filter(|u| (0.5..=0.95).contains(*u)).count();
        // Fig. 4: most of the time CPU usage is 60-80%; P90 mostly in a
        // moderate band, leaving headroom for misspeculation.
        assert!(
            in_band as f64 / p90.len() as f64 > 0.8,
            "only {in_band}/{} nodes in band",
            p90.len()
        );
        let median_p50 = {
            let mut p50 = trace.node_percentiles(50.0);
            p50.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            p50[p50.len() / 2]
        };
        assert!(
            (0.45..=0.80).contains(&median_p50),
            "median P50 {median_p50}"
        );
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut rng = SimRng::seed(9);
        let trace = UtilizationTrace::generate(50, 100, &mut rng);
        let p50 = trace.node_percentiles(50.0);
        let p90 = trace.node_percentiles(90.0);
        for (a, b) in p50.iter().zip(&p90) {
            assert!(b >= a);
        }
    }
}
