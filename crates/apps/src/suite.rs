//! Application bundles: an [`AppSpec`] plus its input generator and
//! storage seeder, grouped into the paper's three suites.

use std::sync::Arc;

use specfaas_sim::SimRng;
use specfaas_storage::{KvStore, Value};
use specfaas_workflow::AppSpec;

/// Shared closure drawing one request input document.
pub type InputFn = Arc<dyn Fn(&mut SimRng) -> Value + Send + Sync>;
/// Shared closure seeding global storage before a run.
pub type SeedFn = Arc<dyn Fn(&mut KvStore, &mut SimRng) + Send + Sync>;

/// A runnable application: spec + input generation + storage seeding.
#[derive(Clone)]
pub struct AppBundle {
    /// The application.
    pub app: Arc<AppSpec>,
    /// Draws one request input document.
    pub make_input: InputFn,
    /// Seeds global storage before a run.
    pub seed: SeedFn,
}

impl std::fmt::Debug for AppBundle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppBundle")
            .field("app", &self.app.name)
            .field("suite", &self.app.suite)
            .finish()
    }
}

impl AppBundle {
    /// Creates a bundle.
    pub fn new(
        app: AppSpec,
        make_input: impl Fn(&mut SimRng) -> Value + Send + Sync + 'static,
        seed: impl Fn(&mut KvStore, &mut SimRng) + Send + Sync + 'static,
    ) -> Self {
        AppBundle {
            app: Arc::new(app),
            make_input: Arc::new(make_input),
            seed: Arc::new(seed),
        }
    }

    /// The application name.
    pub fn name(&self) -> &str {
        &self.app.name
    }
}

/// One of the paper's three application suites (Table II).
#[derive(Debug, Clone)]
pub struct Suite {
    /// Suite name (`"FaaSChain"`, `"TrainTicket"`, `"Alibaba"`).
    pub name: &'static str,
    /// The applications.
    pub apps: Vec<AppBundle>,
}

/// Builds all three suites (16 applications total).
pub fn all_suites() -> Vec<Suite> {
    vec![
        Suite {
            name: "FaaSChain",
            apps: crate::faaschain::apps(),
        },
        Suite {
            name: "TrainTicket",
            apps: crate::trainticket::apps(),
        },
        Suite {
            name: "Alibaba",
            apps: crate::alibaba::apps(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_applications_as_in_the_paper() {
        let suites = all_suites();
        assert_eq!(suites.len(), 3);
        let total: usize = suites.iter().map(|s| s.apps.len()).sum();
        assert_eq!(total, 16, "paper evaluates 16 applications");
        assert_eq!(suites[0].apps.len(), 6, "FaaSChain has 6 apps");
        assert_eq!(suites[1].apps.len(), 5, "TrainTicket has 5 apps");
        assert_eq!(suites[2].apps.len(), 5, "Alibaba has 5 apps");
    }

    #[test]
    fn workflow_types_match_table1() {
        let suites = all_suites();
        for app in &suites[0].apps {
            assert!(!app.app.is_implicit(), "{} should be explicit", app.name());
        }
        for suite in &suites[1..] {
            for app in &suite.apps {
                assert!(app.app.is_implicit(), "{} should be implicit", app.name());
            }
        }
    }

    #[test]
    fn every_app_generates_inputs_and_seeds() {
        let mut rng = SimRng::seed(1);
        for suite in all_suites() {
            for app in suite.apps {
                let mut kv = KvStore::new();
                (app.seed)(&mut kv, &mut rng);
                let v = (app.make_input)(&mut rng);
                // Inputs must be reproducible documents, not Null.
                assert!(!v.is_null(), "{} produced a null input", app.name());
            }
        }
    }
}
