//! Application bundles: an [`AppSpec`] plus its input generator and
//! storage seeder, grouped into suites.
//!
//! Suite registration is data-driven: [`SUITE_DEFS`] holds one
//! [`SuiteDef`] row per suite (name, workflow-type expectation, branch
//! provenance, builder), and every consumer — [`all_suites`],
//! [`suite_named`], [`find_app`], the bench binaries — iterates that
//! table. Adding a suite is one new row, not edits across match arms.

use std::sync::Arc;

use specfaas_sim::SimRng;
use specfaas_storage::{KvStore, Value};
use specfaas_workflow::AppSpec;

/// Shared closure drawing one request input document.
pub type InputFn = Arc<dyn Fn(&mut SimRng) -> Value + Send + Sync>;
/// Shared closure seeding global storage before a run.
pub type SeedFn = Arc<dyn Fn(&mut KvStore, &mut SimRng) + Send + Sync>;

/// A runnable application: spec + input generation + storage seeding.
#[derive(Clone)]
pub struct AppBundle {
    /// The application.
    pub app: Arc<AppSpec>,
    /// Draws one request input document.
    pub make_input: InputFn,
    /// Seeds global storage before a run.
    pub seed: SeedFn,
}

impl std::fmt::Debug for AppBundle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppBundle")
            .field("app", &self.app.name)
            .field("suite", &self.app.suite)
            .finish()
    }
}

impl AppBundle {
    /// Creates a bundle.
    pub fn new(
        app: AppSpec,
        make_input: impl Fn(&mut SimRng) -> Value + Send + Sync + 'static,
        seed: impl Fn(&mut KvStore, &mut SimRng) + Send + Sync + 'static,
    ) -> Self {
        AppBundle {
            app: Arc::new(app),
            make_input: Arc::new(make_input),
            seed: Arc::new(seed),
        }
    }

    /// The application name.
    pub fn name(&self) -> &str {
        &self.app.name
    }
}

/// One registry row: everything the harness needs to know about a suite
/// besides its applications.
#[derive(Debug, Clone, Copy)]
pub struct SuiteDef {
    /// Suite name.
    pub name: &'static str,
    /// True if the suite's workflows are explicit (Table-I "Type").
    pub explicit: bool,
    /// True if branch outcomes are synthetically biased (such suites are
    /// omitted from trace-derived observations like Obs. 2).
    pub synthetic_branches: bool,
    /// Builds the suite's applications.
    pub build: fn() -> Vec<AppBundle>,
}

/// The suite registry: the paper's three suites (Table II) plus the
/// DAG-heavy data-parallel suite.
pub const SUITE_DEFS: &[SuiteDef] = &[
    SuiteDef {
        name: "FaaSChain",
        explicit: true,
        synthetic_branches: true,
        build: crate::faaschain::apps,
    },
    SuiteDef {
        name: "TrainTicket",
        explicit: false,
        synthetic_branches: false,
        build: crate::trainticket::apps,
    },
    SuiteDef {
        name: "Alibaba",
        explicit: false,
        synthetic_branches: false,
        build: crate::alibaba::apps,
    },
    SuiteDef {
        name: "DAG",
        explicit: true,
        synthetic_branches: true,
        build: crate::dag::apps,
    },
];

/// A built suite: registry row plus its applications.
#[derive(Debug, Clone)]
pub struct Suite {
    /// Suite name (`"FaaSChain"`, `"TrainTicket"`, `"Alibaba"`, `"DAG"`).
    pub name: &'static str,
    /// True if the suite's workflows are explicit.
    pub explicit: bool,
    /// True if branch outcomes are synthetically biased.
    pub synthetic_branches: bool,
    /// The applications.
    pub apps: Vec<AppBundle>,
}

impl Suite {
    fn from_def(def: &SuiteDef) -> Suite {
        Suite {
            name: def.name,
            explicit: def.explicit,
            synthetic_branches: def.synthetic_branches,
            apps: (def.build)(),
        }
    }
}

/// Builds every registered suite (19 applications total).
pub fn all_suites() -> Vec<Suite> {
    SUITE_DEFS.iter().map(Suite::from_def).collect()
}

/// Builds the suite called `name`.
///
/// # Panics
/// Panics if no suite with that name is registered.
pub fn suite_named(name: &str) -> Suite {
    SUITE_DEFS
        .iter()
        .find(|d| d.name == name)
        .map(Suite::from_def)
        .unwrap_or_else(|| {
            let known: Vec<&str> = SUITE_DEFS.iter().map(|d| d.name).collect();
            panic!("unknown suite `{name}`; known suites: {known:?}")
        })
}

/// Every registered application's spec, in suite registration order —
/// the template set the multi-tenant fleet layer instantiates tenants
/// from. Specs are shared (`Arc`), so a 10⁴-tenant fleet still holds
/// only 19 templates.
pub fn all_app_specs() -> Vec<Arc<AppSpec>> {
    all_suites()
        .into_iter()
        .flat_map(|s| s.apps)
        .map(|b| b.app)
        .collect()
}

/// Finds an application by name (case-insensitive) across every
/// registered suite.
pub fn find_app(name: &str) -> Option<AppBundle> {
    all_suites()
        .into_iter()
        .flat_map(|s| s.apps)
        .find(|b| b.app.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nineteen_applications_registered() {
        let suites = all_suites();
        assert_eq!(suites.len(), 4);
        let total: usize = suites.iter().map(|s| s.apps.len()).sum();
        assert_eq!(total, 19, "16 paper applications + 3 DAG applications");
        let by_name = |n: &str| suites.iter().find(|s| s.name == n).unwrap();
        assert_eq!(by_name("FaaSChain").apps.len(), 6, "FaaSChain has 6 apps");
        assert_eq!(
            by_name("TrainTicket").apps.len(),
            5,
            "TrainTicket has 5 apps"
        );
        assert_eq!(by_name("Alibaba").apps.len(), 5, "Alibaba has 5 apps");
        assert_eq!(by_name("DAG").apps.len(), 3, "DAG has 3 apps");
    }

    #[test]
    fn workflow_types_match_registry() {
        for suite in all_suites() {
            for app in &suite.apps {
                assert_eq!(
                    !app.app.is_implicit(),
                    suite.explicit,
                    "{}: workflow type disagrees with the registry row",
                    app.name()
                );
                assert_eq!(
                    app.app.suite,
                    suite.name,
                    "{} registered under the wrong suite",
                    app.name()
                );
            }
        }
    }

    #[test]
    fn suite_named_finds_every_registered_suite() {
        for def in SUITE_DEFS {
            let s = suite_named(def.name);
            assert_eq!(s.name, def.name);
            assert!(!s.apps.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "unknown suite")]
    fn suite_named_rejects_unknown_names() {
        suite_named("NoSuchSuite");
    }

    #[test]
    fn find_app_spans_all_suites() {
        for name in ["HotelBooking", "WordCount", "FinraValidate"] {
            let b = find_app(name).unwrap_or_else(|| panic!("{name} not found"));
            assert_eq!(b.app.name, name);
        }
        assert!(find_app("NoSuchApp").is_none());
    }

    #[test]
    fn every_app_generates_inputs_and_seeds() {
        let mut rng = SimRng::seed(1);
        for suite in all_suites() {
            for app in suite.apps {
                let mut kv = KvStore::new();
                (app.seed)(&mut kv, &mut rng);
                let v = (app.make_input)(&mut rng);
                // Inputs must be reproducible documents, not Null.
                assert!(!v.is_null(), "{} produced a null input", app.name());
            }
        }
    }
}
