//! DAG: three DAG-heavy, data-parallel applications with wide fork/join
//! sections — the workload shapes of SeBS-style serverless benchmarks
//! and the FINRA case study, which the paper's three suites barely touch.
//!
//! * [`word_count`] — MapReduce-style word count: one splitter fans out
//!   to eight mappers that each buffer a large intermediate record, and
//!   a reducer joins all eight outputs (and reads one intermediate back
//!   through the Data Buffer across the join boundary).
//! * [`ml_pipeline`] — ML inference: preprocess → four parallel model
//!   stages → aggregate, then a data-dependent confidence branch.
//! * [`finra_validate`] — FINRA-style trade validation: a portfolio
//!   fetch fans out to six validation rules (each with its own audit
//!   write), a merge joins the verdicts, and a data-dependent branch
//!   settles or rejects the trade — mispredictions squash across the
//!   join boundary.
//!
//! Branch outcomes are data-dependent but biased like the rest of the
//! explicit suite (see [`crate::faaschain::BRANCH_BIAS`]) so the
//! predictor converges yet still mispredicts on real inputs.

use specfaas_storage::Value;
use specfaas_workflow::expr::*;
use specfaas_workflow::{AppSpec, FunctionRegistry, FunctionSpec, Program, Workflow};

use crate::datasets::UserPool;
use crate::faaschain::BRANCH_BIAS;
use crate::suite::AppBundle;

/// Fan-out width of the word-count map stage.
pub const MAP_WIDTH: usize = 8;
/// Number of parallel model stages in the ML pipeline.
pub const MODEL_STAGES: usize = 4;
/// Number of parallel validation rules in the FINRA app.
pub const RULES: usize = 6;

fn users() -> UserPool {
    UserPool::new(200, 1.2)
}

/// All three DAG applications.
pub fn apps() -> Vec<AppBundle> {
    vec![word_count(), ml_pipeline(), finra_validate()]
}

/// WordCount — MapReduce-style: Split → 8 parallel mappers → Reduce →
/// Publish. Each mapper buffers a large intermediate record under its
/// own key; the reducer reads one of them back, exercising Data-Buffer
/// forwarding across the join.
pub fn word_count() -> AppBundle {
    let mut reg = FunctionRegistry::new();
    reg.register(FunctionSpec::new(
        "Split",
        Program::builder()
            .compute_jitter_ms(6, 0.1)
            .get(concat([lit("doc:"), field(input(), "doc")]), "text")
            .ret(make_map([
                ("doc", field(input(), "doc")),
                ("text", var("text")),
            ])),
    ));
    for i in 0..MAP_WIDTH {
        let shard = i as i64;
        reg.register(FunctionSpec::new(
            format!("Map{i}"),
            Program::builder()
                .compute_jitter_ms(7, 0.1)
                // Shard-local count: data-dependent on the document text.
                .set(
                    concat([lit(format!("wc:part:{i}:")), field(input(), "doc")]),
                    make_map([
                        (
                            "count",
                            modulo(
                                add(hash_of(field(input(), "text")), lit(shard)),
                                lit(1_000i64),
                            ),
                        ),
                        // A bulky intermediate value, as real map outputs are.
                        (
                            "words",
                            concat([
                                hash_of(field(input(), "text")),
                                lit(":"),
                                hash_of(concat([field(input(), "doc"), lit(shard)])),
                            ]),
                        ),
                    ]),
                )
                .ret(make_map([
                    ("doc", field(input(), "doc")),
                    (
                        "count",
                        modulo(
                            add(hash_of(field(input(), "text")), lit(shard)),
                            lit(1_000i64),
                        ),
                    ),
                ])),
        ));
    }
    // Reduce's input is the join list of all MAP_WIDTH mapper outputs.
    let mut total = field(index(input(), lit(0i64)), "count");
    for i in 1..MAP_WIDTH {
        total = add(total, field(index(input(), lit(i as i64)), "count"));
    }
    reg.register(FunctionSpec::new(
        "Reduce",
        Program::builder()
            .compute_jitter_ms(9, 0.1)
            // Read one buffered intermediate back through the Data Buffer:
            // an in-order RAW dependence that crosses the join boundary.
            .get(
                concat([lit("wc:part:3:"), field(index(input(), lit(3i64)), "doc")]),
                "probe",
            )
            .ret(make_map([
                ("doc", field(index(input(), lit(0i64)), "doc")),
                ("total", add(total, field(var("probe"), "count"))),
            ])),
    ));
    reg.register(FunctionSpec::new(
        "Publish",
        Program::builder()
            .compute_jitter_ms(5, 0.1)
            .set(
                concat([lit("wc:result:"), field(input(), "doc")]),
                make_map([("total", field(input(), "total"))]),
            )
            .ret(make_map([
                ("doc", field(input(), "doc")),
                ("total", field(input(), "total")),
            ])),
    ));
    let wf = Workflow::sequence(vec![
        Workflow::task("Split"),
        Workflow::parallel(
            (0..MAP_WIDTH)
                .map(|i| Workflow::task(format!("Map{i}")))
                .collect(),
        ),
        Workflow::task("Reduce"),
        Workflow::task("Publish"),
    ]);
    let app = AppSpec::new("WordCount", "DAG", reg, wf);
    AppBundle::new(
        app,
        move |rng| Value::map([("doc", Value::str(format!("doc:{}", rng.zipf(120, 1.2))))]),
        move |kv, rng| {
            for d in 0..120 {
                kv.set(
                    format!("doc:doc:{d}"),
                    Value::Int(1_000 + rng.zipf(5_000, 1.1) as i64),
                );
            }
        },
    )
}

/// MLPipeline — Ingest → Featurize → 4 parallel model stages →
/// Aggregate → confidence branch (store/publish vs human review).
pub fn ml_pipeline() -> AppBundle {
    let mut reg = FunctionRegistry::new();
    reg.register(FunctionSpec::new(
        "Ingest",
        Program::builder()
            .compute_jitter_ms(5, 0.1)
            .get(lit("model:mean"), "mean")
            .ret(make_map([
                ("sample", field(input(), "sample")),
                ("prior", field(input(), "prior")),
                ("base", var("mean")),
            ])),
    ));
    reg.register(FunctionSpec::new(
        "Featurize",
        Program::builder().compute_jitter_ms(8, 0.1).ret(make_map([
            (
                "f",
                modulo(
                    add(hash_of(field(input(), "sample")), field(input(), "base")),
                    lit(10_000i64),
                ),
            ),
            ("prior", field(input(), "prior")),
        ])),
    ));
    for i in 0..MODEL_STAGES {
        let stage = i as i64;
        reg.register(FunctionSpec::new(
            format!("Model{i}"),
            Program::builder()
                .compute_jitter_ms(9, 0.1)
                .get(lit(format!("model:w{i}")), "w")
                .ret(make_map([
                    (
                        "s",
                        modulo(
                            add(hash_of(field(input(), "f")), mul(var("w"), lit(stage + 1))),
                            lit(100i64),
                        ),
                    ),
                    ("prior", field(input(), "prior")),
                ])),
        ));
    }
    let mut score = field(index(input(), lit(0i64)), "s");
    for i in 1..MODEL_STAGES {
        score = add(score, field(index(input(), lit(i as i64)), "s"));
    }
    reg.register(FunctionSpec::new(
        "Aggregate",
        Program::builder().compute_jitter_ms(6, 0.1).ret(make_map([
            ("score", score),
            ("prior", field(index(input(), lit(0i64)), "prior")),
        ])),
    ));
    reg.register(FunctionSpec::new(
        "Threshold",
        Program::builder().compute_jitter_ms(4, 0.1).ret(make_map([
            // Mostly follows the biased prior, but genuinely data-dependent:
            // an extreme ensemble score overrides it.
            (
                "confident",
                and(
                    field(input(), "prior"),
                    le(field(input(), "score"), lit(392i64)),
                ),
            ),
            ("score", field(input(), "score")),
        ])),
    ));
    reg.register(FunctionSpec::new(
        "StoreVerdict",
        Program::builder()
            .compute_jitter_ms(6, 0.1)
            .set(
                concat([lit("ml:verdict:"), hash_of(field(input(), "score"))]),
                make_map([("score", field(input(), "score"))]),
            )
            .ret(input()),
    ));
    reg.register(FunctionSpec::new(
        "Serve",
        Program::builder()
            .compute_jitter_ms(4, 0.1)
            .ret(make_map([("status", lit("served"))])),
    ));
    reg.register(FunctionSpec::new(
        "HumanReview",
        Program::builder()
            .compute_jitter_ms(5, 0.1)
            .set(
                concat([lit("ml:review:"), hash_of(field(input(), "score"))]),
                make_map([("score", field(input(), "score"))]),
            )
            .ret(make_map([("status", lit("review"))])),
    ));
    let wf = Workflow::sequence(vec![
        Workflow::task("Ingest"),
        Workflow::task("Featurize"),
        Workflow::parallel(
            (0..MODEL_STAGES)
                .map(|i| Workflow::task(format!("Model{i}")))
                .collect(),
        ),
        Workflow::task("Aggregate"),
        Workflow::when_field(
            "Threshold",
            "confident",
            Workflow::sequence(vec![
                Workflow::task("StoreVerdict"),
                Workflow::task("Serve"),
            ]),
            Some(Workflow::task("HumanReview")),
        ),
    ]);
    let app = AppSpec::new("MLPipeline", "DAG", reg, wf);
    AppBundle::new(
        app,
        move |rng| {
            Value::map([
                ("sample", Value::Int(rng.zipf(4_000, 1.1) as i64)),
                ("prior", Value::Bool(rng.chance(BRANCH_BIAS))),
            ])
        },
        move |kv, rng| {
            kv.set("model:mean", Value::Int(64 + rng.zipf(64, 1.3) as i64));
            for i in 0..MODEL_STAGES {
                kv.set(
                    format!("model:w{i}"),
                    Value::Int(3 + rng.zipf(97, 1.2) as i64),
                );
            }
        },
    )
}

/// FinraValidate — FetchPortfolio fans out to six validation rules (each
/// buffering an audit record), MergeVerdicts joins the six verdicts and
/// reads one audit back, then a data-dependent branch settles or rejects
/// the trade. A mispredicted verdict squashes the speculated settlement
/// chain across the join boundary.
pub fn finra_validate() -> AppBundle {
    let mut reg = FunctionRegistry::new();
    reg.register(FunctionSpec::new(
        "FetchPortfolio",
        Program::builder()
            .compute_jitter_ms(7, 0.1)
            .get(concat([lit("portfolio:"), field(input(), "user")]), "pos")
            .ret(make_map([
                ("user", field(input(), "user")),
                ("trade", field(input(), "trade")),
                ("qty", field(input(), "qty")),
                ("sym", field(input(), "sym")),
                ("pos", var("pos")),
            ])),
    ));
    // Six rules: each computes a data-dependent verdict from storage and
    // buffers an audit record under a rule-private key.
    let rule = |name: &str, get_key: Expr, get_var: &str, ok: Expr| {
        FunctionSpec::new(
            name,
            Program::builder()
                .compute_jitter_ms(6, 0.1)
                .get(get_key, get_var)
                .set(
                    concat([
                        lit(format!("audit:{}:", name.to_lowercase())),
                        field(input(), "user"),
                    ]),
                    make_map([("ok", ok.clone()), ("trade", field(input(), "trade"))]),
                )
                .ret(make_map([
                    ("ok", ok),
                    ("user", field(input(), "user")),
                    ("trade", field(input(), "trade")),
                ])),
        )
    };
    reg.register(rule(
        "RuleMargin",
        concat([lit("margin:"), field(input(), "user")]),
        "m",
        le(field(input(), "trade"), var("m")),
    ));
    reg.register(rule(
        "RuleLimit",
        concat([lit("limit:"), field(input(), "sym")]),
        "l",
        le(field(input(), "qty"), var("l")),
    ));
    reg.register(rule(
        "RulePrice",
        concat([lit("price:"), field(input(), "sym")]),
        "p",
        le(mul(field(input(), "qty"), var("p")), lit(1_000_000i64)),
    ));
    reg.register(rule(
        "RuleRisk",
        concat([lit("risk:"), field(input(), "sym")]),
        "r",
        lt(
            modulo(add(hash_of(input()), var("r")), lit(100i64)),
            lit(97i64),
        ),
    ));
    reg.register(rule(
        "RuleCompliance",
        concat([lit("sanctions:"), field(input(), "user")]),
        "s",
        eq(var("s"), lit(0i64)),
    ));
    reg.register(rule(
        "RuleLiquidity",
        concat([lit("liquidity:"), field(input(), "sym")]),
        "q",
        ge(var("q"), field(input(), "qty")),
    ));
    // MergeVerdicts joins all six rule outputs and reads one buffered
    // audit record back across the join.
    let mut valid = field(index(input(), lit(0i64)), "ok");
    for i in 1..RULES {
        valid = and(valid, field(index(input(), lit(i as i64)), "ok"));
    }
    reg.register(FunctionSpec::new(
        "MergeVerdicts",
        Program::builder()
            .compute_jitter_ms(7, 0.1)
            .get(
                concat([
                    lit("audit:rulemargin:"),
                    field(index(input(), lit(0i64)), "user"),
                ]),
                "a0",
            )
            .ret(make_map([
                ("valid", and(valid, field(var("a0"), "ok"))),
                ("user", field(index(input(), lit(0i64)), "user")),
                ("trade", field(index(input(), lit(0i64)), "trade")),
            ])),
    ));
    reg.register(FunctionSpec::new(
        "CheckValid",
        Program::builder().compute_jitter_ms(4, 0.1).ret(make_map([
            ("valid", field(input(), "valid")),
            ("user", field(input(), "user")),
            ("trade", field(input(), "trade")),
        ])),
    ));
    reg.register(FunctionSpec::new(
        "ReserveFunds",
        Program::builder()
            .compute_jitter_ms(6, 0.1)
            .get(concat([lit("cash:"), field(input(), "user")]), "cash")
            .set(
                concat([lit("cash:"), field(input(), "user")]),
                sub(var("cash"), field(input(), "trade")),
            )
            .ret(input()),
    ));
    reg.register(FunctionSpec::new(
        "WriteSettlement",
        Program::builder()
            .compute_jitter_ms(6, 0.1)
            .set(concat([lit("settle:"), field(input(), "user")]), input())
            .ret(make_map([("status", lit("settled"))])),
    ));
    reg.register(FunctionSpec::new(
        "Reject",
        Program::builder()
            .compute_jitter_ms(4, 0.1)
            .set(
                concat([lit("reject:"), field(input(), "user")]),
                make_map([("trade", field(input(), "trade"))]),
            )
            .ret(make_map([("status", lit("rejected"))])),
    ));
    let wf = Workflow::sequence(vec![
        Workflow::task("FetchPortfolio"),
        Workflow::parallel(vec![
            Workflow::task("RuleMargin"),
            Workflow::task("RuleLimit"),
            Workflow::task("RulePrice"),
            Workflow::task("RuleRisk"),
            Workflow::task("RuleCompliance"),
            Workflow::task("RuleLiquidity"),
        ]),
        Workflow::task("MergeVerdicts"),
        Workflow::when_field(
            "CheckValid",
            "valid",
            Workflow::sequence(vec![
                Workflow::task("ReserveFunds"),
                Workflow::task("WriteSettlement"),
            ]),
            Some(Workflow::task("Reject")),
        ),
    ]);
    let app = AppSpec::new("FinraValidate", "DAG", reg, wf);
    let pool = users();
    let seed_pool = pool.clone();
    AppBundle::new(
        app,
        move |rng| {
            let amounts = [150i64, 400, 900, 2_200, 7_000, 180_000];
            Value::map([
                ("user", Value::str(pool.draw(rng))),
                ("trade", Value::Int(amounts[rng.zipf(amounts.len(), 1.7)])),
                ("qty", Value::Int(1 + rng.zipf(6, 1.5) as i64)),
                ("sym", Value::str(format!("sym:{}", rng.zipf(24, 1.3)))),
            ])
        },
        move |kv, rng| {
            seed_pool.seed(kv, rng);
            for i in 0..seed_pool.len() {
                kv.set(
                    format!("portfolio:user:{i}"),
                    Value::Int(10 + (i as i64 % 90)),
                );
                kv.set(format!("margin:user:{i}"), Value::Int(100_000));
                // A small minority of users is sanctioned: a genuinely
                // data-dependent (and occasionally mispredicted) verdict.
                let sanctioned = i % 23 == 21;
                kv.set(
                    format!("sanctions:user:{i}"),
                    Value::Int(if sanctioned { 1 } else { 0 }),
                );
                kv.set(format!("cash:user:{i}"), Value::Int(5_000_000));
            }
            for s in 0..24 {
                kv.set(format!("limit:sym:{s}"), Value::Int(500));
                kv.set(
                    format!("price:sym:{s}"),
                    Value::Int(90 + (s as i64 * 13) % 240),
                );
                kv.set(
                    format!("risk:sym:{s}"),
                    Value::Int(rng.zipf(50, 1.1) as i64),
                );
                kv.set(format!("liquidity:sym:{s}"), Value::Int(1_000));
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfaas_sim::SimRng;

    #[test]
    fn suite_shape_is_dag_heavy() {
        let apps = apps();
        assert_eq!(apps.len(), 3);
        for a in &apps {
            assert!(!a.app.is_implicit(), "{} should be explicit", a.name());
            let wide = a
                .app
                .compiled
                .entries
                .iter()
                .map(|e| e.join_arity)
                .max()
                .unwrap();
            assert!(
                wide >= MODEL_STAGES as u32,
                "{} join arity {wide} is not wide",
                a.name()
            );
        }
        let widest = apps
            .iter()
            .flat_map(|a| a.app.compiled.entries.iter().map(|e| e.join_arity))
            .max()
            .unwrap();
        assert_eq!(widest, MAP_WIDTH as u32, "WordCount has the widest join");
    }

    #[test]
    fn all_apps_run_on_baseline() {
        use specfaas_platform::BaselineEngine;
        for bundle in apps() {
            let mut e = BaselineEngine::new(bundle.app.clone(), 7);
            e.prewarm();
            let mut rng = SimRng::seed(1);
            (bundle.seed)(&mut e.kv, &mut rng);
            for _ in 0..3 {
                let input = (bundle.make_input)(&mut rng);
                let d = e.run_single(input);
                assert!(
                    d.as_millis() > 5,
                    "{} finished suspiciously fast: {d}",
                    bundle.name()
                );
            }
        }
    }

    #[test]
    fn all_apps_run_on_specfaas_without_error_outputs() {
        use specfaas_core::{SpecConfig, SpecEngine};
        for bundle in apps() {
            let mut e = SpecEngine::new(bundle.app.clone(), SpecConfig::full(), 7);
            e.prewarm();
            let mut rng = SimRng::seed(1);
            (bundle.seed)(&mut e.kv, &mut rng);
            for _ in 0..10 {
                let input = (bundle.make_input)(&mut rng);
                e.run_single(input);
            }
            let m = e.run_closed(0, |_| Value::Null);
            assert_eq!(m.completed, 10, "{} lost requests", bundle.name());
            for r in &m.records {
                assert!(!r.sequence.is_empty(), "{} empty sequence", bundle.name());
            }
        }
    }

    #[test]
    fn finra_verdicts_are_biased_but_not_constant() {
        use specfaas_platform::BaselineEngine;
        let bundle = finra_validate();
        let mut e = BaselineEngine::new(bundle.app.clone(), 3);
        e.prewarm();
        let mut rng = SimRng::seed(11);
        (bundle.seed)(&mut e.kv, &mut rng);
        let reject = bundle.app.registry.lookup("Reject").unwrap().0;
        let settle = bundle.app.registry.lookup("WriteSettlement").unwrap().0;
        for _ in 0..120 {
            e.run_single((bundle.make_input)(&mut rng));
        }
        let m = e.run_closed(0, |_| Value::Null);
        let rejected = m
            .records
            .iter()
            .filter(|r| r.sequence.contains(&reject))
            .count();
        let settled = m
            .records
            .iter()
            .filter(|r| r.sequence.contains(&settle))
            .count();
        assert!(rejected > 0, "no trade was ever rejected");
        assert!(settled > rejected, "settlement should dominate");
    }
}
