//! FaaSChain: six real-world-shaped FaaS applications with explicit
//! workflows (paper §VII, Table II), chain lengths 2–10.
//!
//! Control dependences are synthetic, biased to the 90 % predictability
//! the paper observes in Alibaba's traces: branch outcomes derive from an
//! input field drawn true with probability 0.9 (e.g. valid credentials),
//! so a learned predictor converges to a ~90 % hit rate — the same
//! assumption §VII makes for this suite.

use specfaas_storage::Value;
use specfaas_workflow::expr::*;
use specfaas_workflow::{Annotations, AppSpec, FunctionRegistry, FunctionSpec, Program, Workflow};

use crate::datasets::{Catalog, TicketDataset, UserPool};
use crate::suite::AppBundle;

/// Probability that a synthetic branch condition is satisfied (matches
/// the 90 % hit rate observed in Alibaba's traces, §VII).
pub const BRANCH_BIAS: f64 = 0.9;

fn users() -> UserPool {
    UserPool::new(200, 1.2)
}

/// All six FaaSChain applications.
pub fn apps() -> Vec<AppBundle> {
    vec![
        login(),
        smart_home(),
        banking(),
        flight_booking(),
        hotel_booking(),
        online_purchase(),
    ]
}

/// Login — the shortest chain (2 functions, 1 branch): credential check
/// then respond/reject.
pub fn login() -> AppBundle {
    let mut reg = FunctionRegistry::new();
    reg.register(FunctionSpec::new(
        "CheckCreds",
        Program::builder()
            .compute_jitter_ms(6, 0.1)
            .get(concat([lit("cred:"), field(input(), "user")]), "cred")
            .ret(make_map([(
                "ok",
                and(
                    field(input(), "valid"),
                    not(eq(var("cred"), lit(Value::Null))),
                ),
            )])),
    ));
    reg.register(FunctionSpec::new(
        "Respond",
        Program::builder().compute_jitter_ms(7, 0.1).ret(make_map([
            ("session", hash_of(field(input(), "user"))),
            ("status", lit("ok")),
        ])),
    ));
    reg.register(FunctionSpec::new(
        "Reject",
        Program::builder()
            .compute_jitter_ms(5, 0.1)
            .ret(make_map([("status", lit("denied"))])),
    ));
    let wf = Workflow::when_field(
        "CheckCreds",
        "ok",
        Workflow::task("Respond"),
        Some(Workflow::task("Reject")),
    );
    let app = AppSpec::new("Login", "FaaSChain", reg, wf);
    let pool = users();
    let seed_pool = pool.clone();
    AppBundle::new(
        app,
        move |rng| {
            Value::map([
                ("user", Value::str(pool.draw(rng))),
                ("valid", Value::Bool(rng.chance(BRANCH_BIAS))),
            ])
        },
        move |kv, rng| seed_pool.seed(kv, rng),
    )
}

/// SmartHome — the paper's running example (Listing 1 / Fig. 1):
/// 7 functions, 2 branches.
pub fn smart_home() -> AppBundle {
    let mut reg = FunctionRegistry::new();
    reg.register(FunctionSpec::new(
        "Login",
        Program::builder()
            .compute_jitter_ms(5, 0.1)
            .ret(make_map([("ok", field(input(), "valid"))])),
    ));
    reg.register(FunctionSpec::new(
        "ReadTemp",
        Program::builder()
            .compute_jitter_ms(6, 0.1)
            .get(concat([lit("sensor:"), field(input(), "home")]), "raw")
            .ret(make_map([
                ("home", field(input(), "home")),
                ("temp", var("raw")),
            ])),
    ));
    reg.register(FunctionSpec::new(
        "Normalize",
        Program::builder().compute_jitter_ms(8, 0.1).ret(make_map([
            ("home", field(input(), "home")),
            ("celsius", sub(field(input(), "temp"), lit(32i64))),
        ])),
    ));
    reg.register(FunctionSpec::new(
        "CompareTemp",
        Program::builder().compute_jitter_ms(5, 0.1).ret(make_map([(
            "hot",
            gt(field(input(), "celsius"), lit(24i64)),
        )])),
    ));
    reg.register(FunctionSpec::new(
        "TurnAir",
        Program::builder()
            .compute_jitter_ms(7, 0.1)
            .set(concat([lit("ac:"), field(input(), "home")]), lit("on"))
            .ret(make_map([
                ("home", field(input(), "home")),
                ("ac", lit(true)),
            ])),
    ));
    reg.register(FunctionSpec::new(
        "Done",
        Program::builder()
            .compute_jitter_ms(4, 0.1)
            .ret(make_map([("status", lit("done"))])),
    ));
    reg.register(FunctionSpec::new(
        "Fail",
        Program::builder()
            .compute_jitter_ms(4, 0.1)
            .ret(make_map([("status", lit("fail"))])),
    ));
    let wf = Workflow::when_field(
        "Login",
        "ok",
        Workflow::sequence(vec![
            Workflow::task("ReadTemp"),
            Workflow::task("Normalize"),
            Workflow::when_field("CompareTemp", "hot", Workflow::task("TurnAir"), None),
            Workflow::task("Done"),
        ]),
        Some(Workflow::task("Fail")),
    );
    let app = AppSpec::new("SmartHome", "FaaSChain", reg, wf);
    AppBundle::new(
        app,
        move |rng| {
            Value::map([
                ("home", Value::str(format!("home:{}", rng.zipf(80, 1.2)))),
                ("valid", Value::Bool(rng.chance(BRANCH_BIAS))),
            ])
        },
        move |kv, rng| {
            for h in 0..80 {
                // Mostly hot homes so CompareTemp is biased (~90% hot).
                let hot = rng.chance(BRANCH_BIAS);
                let t = if hot { 90 } else { 40 };
                kv.set(format!("sensor:home:{h}"), Value::Int(t));
            }
        },
    )
}

/// Banking — 8 functions, 3 branches: auth → fraud screen → balance
/// check → transfer + ledger + notify.
pub fn banking() -> AppBundle {
    let mut reg = FunctionRegistry::new();
    reg.register(FunctionSpec::new(
        "Auth",
        Program::builder()
            .compute_jitter_ms(5, 0.1)
            .ret(make_map([("ok", field(input(), "valid"))])),
    ));
    reg.register(FunctionSpec::new(
        "FraudScreen",
        Program::builder().compute_jitter_ms(9, 0.1).ret(make_map([(
            "clean",
            le(field(input(), "amount"), lit(5_000i64)),
        )])),
    ));
    reg.register(FunctionSpec::new(
        "CheckBalance",
        Program::builder()
            .compute_jitter_ms(6, 0.1)
            .get(concat([lit("balance:"), field(input(), "user")]), "bal")
            .ret(make_map([(
                "funded",
                ge(var("bal"), field(input(), "amount")),
            )])),
    ));
    reg.register(FunctionSpec::new(
        "Transfer",
        Program::builder()
            .compute_jitter_ms(8, 0.1)
            .get(concat([lit("balance:"), field(input(), "user")]), "bal")
            .set(
                concat([lit("balance:"), field(input(), "user")]),
                sub(var("bal"), field(input(), "amount")),
            )
            .ret(make_map([
                ("user", field(input(), "user")),
                ("amount", field(input(), "amount")),
                ("txid", hash_of(input())),
            ])),
    ));
    reg.register(FunctionSpec::new(
        "UpdateLedger",
        Program::builder()
            .compute_jitter_ms(7, 0.1)
            .set(concat([lit("ledger:"), field(input(), "txid")]), input())
            .ret(input()),
    ));
    reg.register(FunctionSpec::new(
        "Notify",
        Program::builder()
            .compute_jitter_ms(5, 0.1)
            .http(concat([lit("https://notify/"), field(input(), "user")]))
            .ret(make_map([("status", lit("transferred"))])),
    ));
    reg.register(FunctionSpec::new(
        "Decline",
        Program::builder()
            .compute_jitter_ms(4, 0.1)
            .ret(make_map([("status", lit("declined"))])),
    ));
    reg.register(FunctionSpec::new(
        "AuthFail",
        Program::builder()
            .compute_jitter_ms(3, 0.1)
            .ret(make_map([("status", lit("auth-failed"))])),
    ));
    let happy = Workflow::sequence(vec![
        Workflow::task("Transfer"),
        Workflow::task("UpdateLedger"),
        Workflow::task("Notify"),
    ]);
    let wf = Workflow::when_field(
        "Auth",
        "ok",
        Workflow::when_field(
            "FraudScreen",
            "clean",
            Workflow::when_field(
                "CheckBalance",
                "funded",
                happy,
                Some(Workflow::task("Decline")),
            ),
            Some(Workflow::task("Decline")),
        ),
        Some(Workflow::task("AuthFail")),
    );
    let app = AppSpec::new("Banking", "FaaSChain", reg, wf);
    let pool = users();
    let seed_pool = pool.clone();
    AppBundle::new(
        app,
        move |rng| {
            // Amounts from a small pool; mostly small (fraud screen and
            // balance check pass ~90-95% of the time).
            let amounts = [20i64, 50, 120, 400, 900, 20_000];
            let a = amounts[rng.zipf(amounts.len(), 1.8)];
            Value::map([
                ("user", Value::str(pool.draw(rng))),
                ("amount", Value::Int(a)),
                ("valid", Value::Bool(rng.chance(BRANCH_BIAS))),
            ])
        },
        move |kv, rng| {
            seed_pool.seed(kv, rng);
            // Large balances so CheckBalance is strongly biased.
            for i in 0..seed_pool.len() {
                kv.set(format!("balance:user:{i}"), Value::Int(50_000));
            }
        },
    )
}

/// FlightBooking — the longest chain (10 functions, 3 branches).
pub fn flight_booking() -> AppBundle {
    let mut reg = FunctionRegistry::new();
    reg.register(FunctionSpec::new(
        "ValidateRequest",
        Program::builder()
            .compute_jitter_ms(4, 0.1)
            .ret(make_map([("ok", field(input(), "valid"))])),
    ));
    reg.register(FunctionSpec::new(
        "SearchFlights",
        Program::builder()
            .compute_jitter_ms(10, 0.1)
            .get(concat([lit("routeinfo:"), field(input(), "route")]), "info")
            .ret(make_map([
                ("route", field(input(), "route")),
                ("fare", field(input(), "fare")),
                ("train", field(var("info"), "train")),
            ])),
    ));
    reg.register(FunctionSpec::with_annotations(
        "RankOptions",
        Program::builder().compute_jitter_ms(8, 0.1).ret(make_map([
            ("route", field(input(), "route")),
            ("fare", field(input(), "fare")),
            ("choice", hash_of(input())),
        ])),
        Annotations::pure_function(),
    ));
    reg.register(FunctionSpec::new(
        "CheckSeats",
        Program::builder()
            .compute_jitter_ms(5, 0.1)
            .get(concat([lit("seats:"), field(input(), "route")]), "left")
            .ret(make_map([("avail", gt(var("left"), lit(0i64)))])),
    ));
    reg.register(FunctionSpec::new(
        "ReserveSeat",
        Program::builder()
            .compute_jitter_ms(7, 0.1)
            .get(concat([lit("seats:"), field(input(), "route")]), "left")
            .set(
                concat([lit("seats:"), field(input(), "route")]),
                sub(var("left"), lit(1i64)),
            )
            .ret(input()),
    ));
    reg.register(FunctionSpec::new(
        "PriceQuote",
        Program::builder()
            .compute_jitter_ms(6, 0.1)
            .get(concat([lit("price:"), field(input(), "route")]), "base")
            .ret(make_map([
                ("route", field(input(), "route")),
                ("total", add(var("base"), field(input(), "fare"))),
            ])),
    ));
    reg.register(FunctionSpec::new(
        "ChargeCard",
        Program::builder().compute_jitter_ms(9, 0.1).ret(make_map([
            ("paid", le(field(input(), "total"), lit(10_000i64))),
            ("route", field(input(), "route")),
            ("total", field(input(), "total")),
        ])),
    ));
    reg.register(FunctionSpec::new(
        "IssueTicket",
        Program::builder()
            .compute_jitter_ms(7, 0.1)
            .set(concat([lit("ticket:"), hash_of(input())]), input())
            .ret(make_map([("ticket", hash_of(input()))])),
    ));
    reg.register(FunctionSpec::new(
        "ConfirmEmail",
        Program::builder()
            .compute_jitter_ms(5, 0.1)
            .http(lit("https://mail/confirm"))
            .ret(make_map([("status", lit("booked"))])),
    ));
    reg.register(FunctionSpec::new(
        "Apologize",
        Program::builder()
            .compute_jitter_ms(3, 0.1)
            .ret(make_map([("status", lit("unavailable"))])),
    ));
    let happy = Workflow::sequence(vec![
        Workflow::task("ReserveSeat"),
        Workflow::task("PriceQuote"),
        Workflow::when_field(
            "ChargeCard",
            "paid",
            Workflow::sequence(vec![
                Workflow::task("IssueTicket"),
                Workflow::task("ConfirmEmail"),
            ]),
            Some(Workflow::task("Apologize")),
        ),
    ]);
    let wf = Workflow::when_field(
        "ValidateRequest",
        "ok",
        Workflow::sequence(vec![
            Workflow::task("SearchFlights"),
            Workflow::task("RankOptions"),
            Workflow::when_field(
                "CheckSeats",
                "avail",
                happy,
                Some(Workflow::task("Apologize")),
            ),
        ]),
        Some(Workflow::task("Apologize")),
    );
    let app = AppSpec::new("FlightBooking", "FaaSChain", reg, wf);
    let ds = TicketDataset::standard();
    let seed_ds = ds.clone();
    AppBundle::new(
        app,
        move |rng| {
            let mut doc = ds.draw_request(rng);
            doc.set_field("valid", Value::Bool(rng.chance(BRANCH_BIAS)));
            doc
        },
        move |kv, rng| seed_ds.seed(kv, rng),
    )
}

/// HotelBooking — 10 functions, 2 branches, with a producer→consumer
/// storage dependence (reserve writes, invoice reads) that exercises the
/// Data Buffer.
pub fn hotel_booking() -> AppBundle {
    let mut reg = FunctionRegistry::new();
    reg.register(FunctionSpec::new(
        "ParseRequest",
        Program::builder().compute_jitter_ms(4, 0.1).ret(make_map([
            ("hotel", field(input(), "hotel")),
            ("nights", field(input(), "nights")),
            ("user", field(input(), "user")),
        ])),
    ));
    reg.register(FunctionSpec::new(
        "GeoLookup",
        Program::builder()
            .compute_jitter_ms(7, 0.1)
            .get(concat([lit("geo:"), field(input(), "hotel")]), "city")
            .ret(make_map([
                ("hotel", field(input(), "hotel")),
                ("nights", field(input(), "nights")),
                ("user", field(input(), "user")),
                ("city", var("city")),
            ])),
    ));
    reg.register(FunctionSpec::new(
        "CheckAvail",
        Program::builder()
            .compute_jitter_ms(6, 0.1)
            .get(concat([lit("rooms:"), field(input(), "hotel")]), "rooms")
            .ret(make_map([("free", gt(var("rooms"), lit(0i64)))])),
    ));
    reg.register(FunctionSpec::new(
        "HoldRoom",
        Program::builder()
            .compute_jitter_ms(6, 0.1)
            .get(concat([lit("rooms:"), field(input(), "hotel")]), "rooms")
            .set(
                concat([lit("rooms:"), field(input(), "hotel")]),
                sub(var("rooms"), lit(1i64)),
            )
            .set(
                concat([lit("hold:"), field(input(), "user")]),
                make_map([
                    ("hotel", field(input(), "hotel")),
                    ("nights", field(input(), "nights")),
                ]),
            )
            .ret(input()),
    ));
    reg.register(FunctionSpec::new(
        "RateLookup",
        Program::builder()
            .compute_jitter_ms(5, 0.1)
            .get(concat([lit("rate:"), field(input(), "hotel")]), "rate")
            .ret(make_map([
                ("user", field(input(), "user")),
                ("hotel", field(input(), "hotel")),
                ("nights", field(input(), "nights")),
                ("rate", var("rate")),
            ])),
    ));
    reg.register(FunctionSpec::new(
        "Invoice",
        Program::builder()
            .compute_jitter_ms(8, 0.1)
            // Reads the hold written by HoldRoom two functions earlier —
            // a cross-function RAW through global storage.
            .get(concat([lit("hold:"), field(input(), "user")]), "hold")
            .ret(make_map([
                ("user", field(input(), "user")),
                (
                    "total",
                    mul(field(input(), "rate"), field(input(), "nights")),
                ),
                ("hotel", field(var("hold"), "hotel")),
            ])),
    ));
    reg.register(FunctionSpec::new(
        "ChargeCard",
        Program::builder().compute_jitter_ms(9, 0.1).ret(make_map([
            ("paid", le(field(input(), "total"), lit(20_000i64))),
            ("user", field(input(), "user")),
        ])),
    ));
    reg.register(FunctionSpec::new(
        "WriteBooking",
        Program::builder()
            .compute_jitter_ms(6, 0.1)
            .set(concat([lit("booking:"), field(input(), "user")]), input())
            .ret(input()),
    ));
    reg.register(FunctionSpec::new(
        "SendConfirm",
        Program::builder()
            .compute_jitter_ms(4, 0.1)
            .http(lit("https://mail/hotel"))
            .ret(make_map([("status", lit("booked"))])),
    ));
    reg.register(FunctionSpec::new(
        "NoRooms",
        Program::builder()
            .compute_jitter_ms(3, 0.1)
            .ret(make_map([("status", lit("sold-out"))])),
    ));
    let happy = Workflow::sequence(vec![
        Workflow::task("HoldRoom"),
        Workflow::task("RateLookup"),
        Workflow::task("Invoice"),
        Workflow::when_field(
            "ChargeCard",
            "paid",
            Workflow::sequence(vec![
                Workflow::task("WriteBooking"),
                Workflow::task("SendConfirm"),
            ]),
            Some(Workflow::task("NoRooms")),
        ),
    ]);
    let wf = Workflow::sequence(vec![
        Workflow::task("ParseRequest"),
        Workflow::task("GeoLookup"),
        Workflow::when_field("CheckAvail", "free", happy, Some(Workflow::task("NoRooms"))),
    ]);
    let app = AppSpec::new("HotelBooking", "FaaSChain", reg, wf);
    let pool = users();
    let seed_pool = pool.clone();
    AppBundle::new(
        app,
        move |rng| {
            Value::map([
                ("hotel", Value::str(format!("hotel:{}", rng.zipf(60, 1.3)))),
                ("nights", Value::Int(1 + rng.zipf(5, 1.5) as i64)),
                ("user", Value::str(pool.draw(rng))),
            ])
        },
        move |kv, rng| {
            seed_pool.seed(kv, rng);
            for h in 0..60 {
                kv.set(
                    format!("geo:hotel:{h}"),
                    Value::str(format!("city:{}", h % 12)),
                );
                kv.set(format!("rooms:hotel:{h}"), Value::Int(500));
                kv.set(
                    format!("rate:hotel:{h}"),
                    Value::Int(80 + (h as i64 * 11) % 200),
                );
            }
        },
    )
}

/// OnlinePurchase — 10 functions, 3 branches, one `parallel` section
/// (inventory + shipping quotes fan out, §II-A's parallel directive).
pub fn online_purchase() -> AppBundle {
    let mut reg = FunctionRegistry::new();
    reg.register(FunctionSpec::new(
        "Authenticate",
        Program::builder()
            .compute_jitter_ms(5, 0.1)
            .ret(make_map([("ok", field(input(), "valid"))])),
    ));
    reg.register(FunctionSpec::new(
        "LoadCart",
        Program::builder().compute_jitter_ms(6, 0.1).ret(make_map([
            ("user", field(input(), "user")),
            ("item", field(input(), "item")),
            ("qty", field(input(), "qty")),
        ])),
    ));
    reg.register(FunctionSpec::new(
        "CheckStock",
        Program::builder()
            .compute_jitter_ms(5, 0.1)
            .get(concat([lit("stock:"), field(input(), "item")]), "stock")
            .ret(make_map([
                ("user", field(input(), "user")),
                ("item", field(input(), "item")),
                ("qty", field(input(), "qty")),
                ("stocked", ge(var("stock"), field(input(), "qty"))),
            ])),
    ));
    reg.register(FunctionSpec::new(
        "QuoteShipping",
        Program::builder().compute_jitter_ms(8, 0.1).ret(make_map([(
            "ship",
            add(
                lit(5i64),
                modulo(hash_of(field(input(), "user")), lit(20i64)),
            ),
        )])),
    ));
    reg.register(FunctionSpec::new(
        "QuoteTax",
        Program::builder()
            .compute_jitter_ms(7, 0.1)
            .get(concat([lit("price:"), field(input(), "item")]), "price")
            .ret(make_map([(
                "tax",
                div(mul(var("price"), field(input(), "qty")), lit(10i64)),
            )])),
    ));
    reg.register(FunctionSpec::new(
        "MergeQuotes",
        Program::builder()
            .compute_jitter_ms(5, 0.1)
            // Input is the join list [shipping quote, tax quote].
            .ret(make_map([
                ("ship", field(index(input(), lit(0i64)), "ship")),
                ("tax", field(index(input(), lit(1i64)), "tax")),
            ])),
    ));
    reg.register(FunctionSpec::new(
        "PlaceOrder",
        Program::builder()
            .compute_jitter_ms(9, 0.1)
            .set(concat([lit("order:"), hash_of(input())]), input())
            .ret(make_map([
                ("order", hash_of(input())),
                ("total", add(field(input(), "ship"), field(input(), "tax"))),
            ])),
    ));
    reg.register(FunctionSpec::new(
        "ChargeCard",
        Program::builder().compute_jitter_ms(8, 0.1).ret(make_map([
            ("paid", lt(field(input(), "total"), lit(100_000i64))),
            ("order", field(input(), "order")),
        ])),
    ));
    reg.register(FunctionSpec::new(
        "Fulfil",
        Program::builder()
            .compute_jitter_ms(6, 0.1)
            .http(lit("https://warehouse/fulfil"))
            .ret(make_map([("status", lit("ordered"))])),
    ));
    reg.register(FunctionSpec::new(
        "OutOfStock",
        Program::builder()
            .compute_jitter_ms(3, 0.1)
            .ret(make_map([("status", lit("out-of-stock"))])),
    ));
    let happy = Workflow::sequence(vec![
        Workflow::task("LoadCart"),
        Workflow::when_field(
            "CheckStock",
            "stocked",
            Workflow::sequence(vec![
                Workflow::task("QuoteShipping"), // payload source for the fan-out
                Workflow::parallel(vec![
                    Workflow::task("QuoteShipping"),
                    Workflow::task("QuoteTax"),
                ]),
                Workflow::task("MergeQuotes"),
                Workflow::task("PlaceOrder"),
                Workflow::when_field(
                    "ChargeCard",
                    "paid",
                    Workflow::task("Fulfil"),
                    Some(Workflow::task("OutOfStock")),
                ),
            ]),
            Some(Workflow::task("OutOfStock")),
        ),
    ]);
    let wf = Workflow::when_field(
        "Authenticate",
        "ok",
        happy,
        Some(Workflow::task("OutOfStock")),
    );
    let app = AppSpec::new("OnlinePurchase", "FaaSChain", reg, wf);
    let pool = users();
    let catalog = Catalog::standard();
    let seed_pool = pool.clone();
    let seed_cat = catalog.clone();
    AppBundle::new(
        app,
        move |rng| {
            Value::map([
                ("user", Value::str(pool.draw(rng))),
                ("item", Value::str(catalog.draw(rng))),
                ("qty", Value::Int(1 + rng.zipf(3, 1.5) as i64)),
                ("valid", Value::Bool(rng.chance(BRANCH_BIAS))),
            ])
        },
        move |kv, rng| {
            seed_pool.seed(kv, rng);
            seed_cat.seed(kv, rng);
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfaas_sim::SimRng;
    use specfaas_storage::KvStore;

    #[test]
    fn suite_shape_matches_table1() {
        let apps = apps();
        assert_eq!(apps.len(), 6);
        let fns: usize = apps.iter().map(|a| a.app.registry.len()).sum();
        let avg = fns as f64 / 6.0;
        assert!(
            (6.5..=9.0).contains(&avg),
            "avg functions per app {avg}, paper reports 7.8"
        );
        let branches: usize = apps.iter().map(|a| a.app.workflow.branch_count()).sum();
        let avg_b = branches as f64 / 6.0;
        assert!(
            (2.0..=3.0).contains(&avg_b),
            "avg branches {avg_b}, paper reports 2.5"
        );
        let max_depth = apps
            .iter()
            .map(|a| a.app.workflow.max_depth())
            .max()
            .unwrap();
        assert!(
            max_depth >= 8,
            "paper reports max DAG depth 10, got {max_depth}"
        );
    }

    #[test]
    fn chain_lengths_span_2_to_10() {
        let apps = apps();
        let depths: Vec<usize> = apps.iter().map(|a| a.app.workflow.max_depth()).collect();
        assert!(
            depths.iter().any(|d| *d <= 2),
            "has a short chain: {depths:?}"
        );
        assert!(
            depths.iter().any(|d| *d >= 8),
            "has a long chain: {depths:?}"
        );
    }

    #[test]
    fn all_apps_run_on_baseline() {
        use specfaas_platform::BaselineEngine;
        for bundle in apps() {
            let mut e = BaselineEngine::new(bundle.app.clone(), 7);
            e.prewarm();
            let mut rng = SimRng::seed(1);
            (bundle.seed)(&mut e.kv, &mut rng);
            for _ in 0..3 {
                let input = (bundle.make_input)(&mut rng);
                let d = e.run_single(input);
                assert!(
                    d.as_millis() > 5,
                    "{} finished suspiciously fast: {d}",
                    bundle.name()
                );
            }
        }
    }

    #[test]
    fn all_apps_run_on_specfaas_without_error_outputs() {
        use specfaas_core::{SpecConfig, SpecEngine};
        for bundle in apps() {
            let mut e = SpecEngine::new(bundle.app.clone(), SpecConfig::full(), 7);
            e.prewarm();
            let mut rng = SimRng::seed(1);
            (bundle.seed)(&mut e.kv, &mut rng);
            for _ in 0..10 {
                let input = (bundle.make_input)(&mut rng);
                e.run_single(input);
            }
            let m = e.run_closed(0, |_| Value::Null);
            assert_eq!(m.completed, 10, "{} lost requests", bundle.name());
            for r in &m.records {
                assert!(!r.sequence.is_empty(), "{} empty sequence", bundle.name());
            }
        }
    }

    #[test]
    fn branch_bias_gives_high_predictability() {
        // Observation 2: the most popular sequence dominates.
        use specfaas_platform::BaselineEngine;
        let bundle = login();
        let mut e = BaselineEngine::new(bundle.app.clone(), 3);
        e.prewarm();
        let mut rng = SimRng::seed(5);
        (bundle.seed)(&mut e.kv, &mut rng);
        let mut m = Default::default();
        for _ in 0..200 {
            let input = (bundle.make_input)(&mut rng);
            e.run_single(input);
            m = e.run_single((bundle.make_input)(&mut rng));
        }
        let _ = m;
    }

    #[test]
    fn seeding_is_idempotent_enough() {
        let bundle = banking();
        let mut kv = KvStore::new();
        let mut rng = SimRng::seed(1);
        (bundle.seed)(&mut kv, &mut rng);
        assert!(kv.len() > 100);
    }
}
