//! Skewed synthetic datasets that drive the application suites.
//!
//! The paper feeds FaaSChain from public web datasets and TrainTicket from
//! a real airline-ticket dataset (§VII). Neither is shipped here, so these
//! generators produce inputs with the *property that matters* for the
//! evaluation: heavy key skew, which is what gives the memoization tables
//! their high hit rates (a 50-entry table reaches ~96 % on TrainTicket,
//! 65–98 % on the more varied FaaSChain apps, §VIII-B).

use specfaas_sim::SimRng;
use specfaas_storage::{KvStore, Value};

/// A pool of user identities with Zipf-distributed popularity.
#[derive(Debug, Clone)]
pub struct UserPool {
    size: usize,
    skew: f64,
}

impl UserPool {
    /// A pool of `size` users with Zipf exponent `skew`.
    ///
    /// # Panics
    /// Panics if `size == 0`.
    pub fn new(size: usize, skew: f64) -> Self {
        assert!(size > 0);
        UserPool { size, skew }
    }

    /// Draws a user id (e.g. `"user:17"`).
    pub fn draw(&self, rng: &mut SimRng) -> String {
        format!("user:{}", rng.zipf(self.size, self.skew))
    }

    /// Seeds credentials and balances for every user.
    pub fn seed(&self, kv: &mut KvStore, rng: &mut SimRng) {
        for i in 0..self.size {
            kv.set(
                format!("cred:user:{i}"),
                Value::map([("secret", Value::Int(i as i64 * 31 + 7))]),
            );
            kv.set(
                format!("balance:user:{i}"),
                Value::Int(1_000 + rng.uniform_u64(9_000) as i64),
            );
        }
    }

    /// Number of users in the pool.
    pub fn len(&self) -> usize {
        self.size
    }

    /// Always false (pools are non-empty by construction).
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// A synthetic route/ticket dataset shaped like the airline-ticket data
/// the paper uses for TrainTicket: a modest set of routes with strongly
/// skewed popularity.
#[derive(Debug, Clone)]
pub struct TicketDataset {
    routes: usize,
    skew: f64,
    fares: Vec<i64>,
}

impl TicketDataset {
    /// The default dataset: 100 routes, Zipf 1.4, a handful of fare
    /// classes.
    pub fn standard() -> Self {
        TicketDataset {
            routes: 100,
            skew: 1.8,
            fares: vec![45, 80, 120, 200, 350],
        }
    }

    /// Draws a ticket request document: route, date bucket and fare class
    /// from small skewed pools so requests repeat.
    pub fn draw_request(&self, rng: &mut SimRng) -> Value {
        let route = rng.zipf(self.routes, self.skew);
        let date = rng.zipf(7, 2.0); // day-of-week bucket, strongly skewed
        let fare = self.fares[rng.zipf(self.fares.len(), 1.8)];
        Value::map([
            ("route", Value::str(format!("route:{route}"))),
            ("date", Value::Int(date as i64)),
            ("fare", Value::Int(fare)),
        ])
    }

    /// Seeds route metadata, seat inventory, and prices.
    pub fn seed(&self, kv: &mut KvStore, rng: &mut SimRng) {
        for r in 0..self.routes {
            kv.set(
                format!("routeinfo:route:{r}"),
                Value::map([
                    ("distance", Value::Int(100 + (r as i64 * 37) % 900)),
                    ("train", Value::str(format!("T{}", r % 20))),
                ]),
            );
            kv.set(
                format!("seats:route:{r}"),
                Value::Int(200 + rng.uniform_u64(300) as i64),
            );
            kv.set(
                format!("price:route:{r}"),
                Value::Int(40 + (r as i64 * 13) % 300),
            );
        }
    }

    /// Number of routes.
    pub fn routes(&self) -> usize {
        self.routes
    }
}

/// A product catalog for the OnlinePurchase app.
#[derive(Debug, Clone)]
pub struct Catalog {
    products: usize,
    skew: f64,
}

impl Catalog {
    /// The default catalog: 200 products, Zipf 1.2.
    pub fn standard() -> Self {
        Catalog {
            products: 200,
            skew: 1.2,
        }
    }

    /// Draws a product id.
    pub fn draw(&self, rng: &mut SimRng) -> String {
        format!("prod:{}", rng.zipf(self.products, self.skew))
    }

    /// Seeds stock and price records.
    pub fn seed(&self, kv: &mut KvStore, rng: &mut SimRng) {
        for p in 0..self.products {
            kv.set(
                format!("stock:prod:{p}"),
                Value::Int(50 + rng.uniform_u64(200) as i64),
            );
            kv.set(
                format!("price:prod:{p}"),
                Value::Int(5 + (p as i64 * 7) % 500),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_pool_skew_repeats_heads() {
        let pool = UserPool::new(100, 1.3);
        let mut rng = SimRng::seed(1);
        let mut head = 0;
        for _ in 0..1_000 {
            if pool.draw(&mut rng) == "user:0" {
                head += 1;
            }
        }
        assert!(head > 100, "head user should be very popular, got {head}");
    }

    #[test]
    fn user_pool_seeding_creates_records() {
        let pool = UserPool::new(10, 1.0);
        let mut kv = KvStore::new();
        pool.seed(&mut kv, &mut SimRng::seed(2));
        assert_eq!(kv.len(), 20);
        assert!(kv.peek("cred:user:3").is_some());
        assert!(kv.peek("balance:user:9").is_some());
    }

    #[test]
    fn ticket_requests_repeat_under_skew() {
        let ds = TicketDataset::standard();
        let mut rng = SimRng::seed(3);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..2_000 {
            *counts
                .entry(ds.draw_request(&mut rng).to_string())
                .or_insert(0u32) += 1;
        }
        // The 50 most common requests should cover most of the mass
        // (drives the 50-entry memo table hit rate).
        let mut freqs: Vec<u32> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top50: u32 = freqs.iter().take(50).sum();
        assert!(
            top50 as f64 / 2_000.0 > 0.75,
            "top-50 coverage {}",
            top50 as f64 / 2_000.0
        );
    }

    #[test]
    fn ticket_seed_is_complete() {
        let ds = TicketDataset::standard();
        let mut kv = KvStore::new();
        ds.seed(&mut kv, &mut SimRng::seed(4));
        assert_eq!(kv.len(), ds.routes() * 3);
    }

    #[test]
    fn catalog_draw_and_seed() {
        let c = Catalog::standard();
        let mut kv = KvStore::new();
        c.seed(&mut kv, &mut SimRng::seed(5));
        let id = c.draw(&mut SimRng::seed(6));
        assert!(kv.peek(&format!("stock:{id}")).is_some());
    }
}
