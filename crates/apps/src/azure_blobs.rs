//! Synthetic Azure-Functions blob-access trace (Observation 4).
//!
//! The paper analyzes proprietary Microsoft Azure Functions blob traces
//! and reports: 23 % of 40 M accesses are writes; two thirds of blobs are
//! read-only; 99.9 % of writable blobs are written fewer than 10 times;
//! and write→read gaps to the same blob exceed 1 s in 96 % of cases
//! (10 s in 27 %). This generator produces a trace with those aggregate
//! properties so the Observation-4 analysis pipeline
//! ([`specfaas_storage::blob::BlobTraceStats`]) runs on equivalent input.

use specfaas_sim::{SimDuration, SimRng, SimTime};
use specfaas_storage::blob::{AccessKind, BlobAccess};

/// Parameters of the synthetic blob workload.
#[derive(Debug, Clone)]
pub struct BlobTraceConfig {
    /// Number of distinct blobs.
    pub blobs: usize,
    /// Total accesses to generate.
    pub accesses: usize,
    /// Fraction of blobs that are writable (paper: one third).
    pub writable_fraction: f64,
    /// Target write fraction among accesses (paper: 0.23).
    pub write_fraction: f64,
}

impl Default for BlobTraceConfig {
    fn default() -> Self {
        BlobTraceConfig {
            blobs: 2_000,
            accesses: 200_000,
            writable_fraction: 1.0 / 3.0,
            write_fraction: 0.23,
        }
    }
}

/// Generates a synthetic blob trace matching Observation 4's statistics.
pub fn generate(config: &BlobTraceConfig, rng: &mut SimRng) -> Vec<BlobAccess> {
    let writable = ((config.blobs as f64) * config.writable_fraction).round() as usize;
    let mut trace = Vec::with_capacity(config.accesses);
    let mut now = SimTime::ZERO;
    // Writes per writable blob: almost all <10 (cap at 8), a 0.1% tail
    // with more.
    // 99.9 % of writable blobs are written fewer than 10 times; the tiny
    // remainder (here: slot 0) absorbs the bulk of the write volume —
    // that is how a 23 % write fraction coexists with Observation 4's
    // per-blob write counts.
    let mut writes_left: Vec<u32> = (0..writable)
        .map(|i| {
            if i == 0 {
                u32::MAX // the rare heavily-written blob
            } else {
                1 + rng.uniform_u64(7) as u32
            }
        })
        .collect();
    let mut pending_read: Vec<Option<SimTime>> = vec![None; writable];

    for _ in 0..config.accesses {
        // Mean inter-access gap ~50ms: 200k accesses ≈ 2.8 hours.
        now += SimDuration::from_micros((rng.exponential(50_000.0)) as u64 + 1);
        // Serve any matured write→read pair first: a read scheduled for a
        // previously written blob, delayed by the gap distribution.
        if let Some(slot) = pending_read
            .iter()
            .position(|t| t.map(|due| due <= now).unwrap_or(false))
        {
            pending_read[slot] = None;
            trace.push(BlobAccess {
                at: now,
                blob: format!("wblob:{slot}"),
                kind: AccessKind::Read,
            });
            continue;
        }
        let want_write = rng.chance(config.write_fraction);
        if want_write {
            // Pick a writable blob with budget left; the heavy-tail blob
            // (slot 0) absorbs writes once the modest budgets run out.
            let candidate = rng.uniform_u64(writable as u64) as usize;
            let slot = if writes_left[candidate] > 0 {
                candidate
            } else {
                0
            };
            {
                writes_left[slot] = writes_left[slot].saturating_sub(1);
                trace.push(BlobAccess {
                    at: now,
                    blob: format!("wblob:{slot}"),
                    kind: AccessKind::Write,
                });
                // Schedule the subsequent read: 96% beyond 1s, 27% beyond
                // 10s (piecewise exponential-ish gap).
                let gap_ms = match rng.uniform_u64(100) {
                    0..=3 => 100 + rng.uniform_u64(850),      // 4%: <1s
                    4..=72 => 1_050 + rng.uniform_u64(8_900), // 69%: 1-10s
                    _ => 10_500 + rng.uniform_u64(60_000),    // 27%: >10s
                };
                pending_read[slot] = Some(now + SimDuration::from_millis(gap_ms));
                continue;
            }
        }
        // Read of a (mostly read-only) blob, Zipf-popular.
        let blob = rng.zipf(config.blobs, 1.1);
        trace.push(BlobAccess {
            at: now,
            blob: format!("roblob:{blob}"),
            kind: AccessKind::Read,
        });
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfaas_storage::blob::BlobTraceStats;

    #[test]
    fn generated_trace_matches_observation4() {
        let mut rng = SimRng::seed(42);
        let cfg = BlobTraceConfig {
            blobs: 500,
            accesses: 40_000,
            ..BlobTraceConfig::default()
        };
        let trace = generate(&cfg, &mut rng);
        let stats = BlobTraceStats::compute(&trace).unwrap();
        assert!(
            (0.15..=0.30).contains(&stats.write_fraction),
            "write fraction {} (paper: 0.23)",
            stats.write_fraction
        );
        assert!(
            stats.read_only_blob_fraction > 0.5,
            "read-only fraction {} (paper: ~2/3)",
            stats.read_only_blob_fraction
        );
        assert!(
            stats.writable_written_lt10_fraction > 0.95,
            "written<10 fraction {} (paper: 0.999)",
            stats.writable_written_lt10_fraction
        );
        assert!(
            stats.gap_over_1s_fraction > 0.85,
            "gap>1s {} (paper: 0.96)",
            stats.gap_over_1s_fraction
        );
        assert!(
            (0.10..=0.45).contains(&stats.gap_over_10s_fraction),
            "gap>10s {} (paper: 0.27)",
            stats.gap_over_10s_fraction
        );
    }

    #[test]
    fn trace_is_deterministic_per_seed() {
        let cfg = BlobTraceConfig {
            blobs: 50,
            accesses: 1_000,
            ..BlobTraceConfig::default()
        };
        let a = generate(&cfg, &mut SimRng::seed(1));
        let b = generate(&cfg, &mut SimRng::seed(1));
        assert_eq!(a, b);
    }
}
