//! TrainTicket: five implicit-workflow applications shaped after the
//! serverless TrainTicket port (paper §VII, Table II).
//!
//! Each application is a multi-tier call tree (§II-C): a root function
//! calls service functions as subroutines, which may call further leaf
//! services — up to DAG depth 3, averaging ~11 functions per app and
//! ~4.8 callees per calling function (Table I). Several functions
//! communicate through global storage (seat inventory, order records),
//! exercising the Data Buffer, and many leaves are pure (§VIII-B reports
//! >57.6 % pure invocations for this suite).

use specfaas_storage::Value;
use specfaas_workflow::expr::*;
use specfaas_workflow::{Annotations, AppSpec, FunctionRegistry, FunctionSpec, Program, Workflow};

use crate::datasets::TicketDataset;
use crate::suite::AppBundle;

/// All five TrainTicket applications.
pub fn apps() -> Vec<AppBundle> {
    vec![
        ticket_app(),
        trip_info_app(),
        query_travel(),
        get_left_tickets(),
        cancel_app(),
    ]
}

fn dataset_bundle(app: AppSpec) -> AppBundle {
    let ds = TicketDataset::standard();
    let seed_ds = ds.clone();
    AppBundle::new(
        app,
        move |rng| ds.draw_request(rng),
        move |kv, rng| {
            seed_ds.seed(kv, rng);
            // Order/user records used by the booking/cancel flows.
            for u in 0..100 {
                kv.set(
                    format!("account:acct:{u}"),
                    Value::map([("active", Value::Bool(true))]),
                );
                kv.set(
                    format!("order:ord:{u}"),
                    Value::map([
                        ("route", Value::str(format!("route:{}", u % 20))),
                        ("fare", Value::Int(100)),
                    ]),
                );
            }
        },
    )
}

/// Pure leaf: compute-only transformation of its input.
fn pure_leaf(name: &str, ms: u64) -> FunctionSpec {
    FunctionSpec::with_annotations(
        name,
        Program::builder()
            .compute_jitter_ms(ms, 0.1)
            .ret(make_map([("r", hash_of(input()))])),
        Annotations::pure_function(),
    )
}

/// Leaf that reads one storage record derived from an input field.
fn reader_leaf(name: &str, ms: u64, prefix: &str, field_name: &str) -> FunctionSpec {
    FunctionSpec::new(
        name,
        Program::builder()
            .compute_jitter_ms(ms, 0.1)
            .get(concat([lit(prefix), field(input(), field_name)]), "rec")
            .ret(make_map([("rec", var("rec"))])),
    )
}

/// TcktApp — book a ticket: verify account, query seats & price
/// (each via sub-services), reserve (writes inventory), record order.
/// 11 functions, depth 3.
pub fn ticket_app() -> AppBundle {
    let mut reg = FunctionRegistry::new();
    reg.register(reader_leaf("verifyAccount", 4, "account:acct:", "acctKey"));
    reg.register(reader_leaf("seatService", 5, "seats:", "route"));
    reg.register(pure_leaf("seatLayout", 4));
    reg.register(FunctionSpec::new(
        "queryTicket",
        Program::builder()
            .compute_jitter_ms(3, 0.1)
            .call(
                "seatService",
                make_map([("route", field(input(), "route"))]),
                "seats",
            )
            .call(
                "seatLayout",
                make_map([("route", field(input(), "route"))]),
                "layout",
            )
            .ret(make_map([
                ("route", field(input(), "route")),
                ("left", field(var("seats"), "rec")),
            ])),
    ));
    reg.register(reader_leaf("priceService", 4, "price:", "route"));
    reg.register(pure_leaf("discountService", 5));
    reg.register(FunctionSpec::new(
        "computePrice",
        Program::builder()
            .compute_jitter_ms(3, 0.1)
            .call(
                "priceService",
                make_map([("route", field(input(), "route"))]),
                "base",
            )
            .call(
                "discountService",
                make_map([("fare", field(input(), "fare"))]),
                "disc",
            )
            .ret(make_map([(
                "total",
                add(field(var("base"), "rec"), field(input(), "fare")),
            )])),
    ));
    reg.register(FunctionSpec::new(
        "reserveSeat",
        Program::builder()
            .compute_jitter_ms(5, 0.1)
            .get(concat([lit("seats:"), field(input(), "route")]), "left")
            .set(
                concat([lit("seats:"), field(input(), "route")]),
                sub(var("left"), lit(1i64)),
            )
            .ret(make_map([("reserved", lit(true))])),
    ));
    reg.register(FunctionSpec::new(
        "recordOrder",
        Program::builder()
            .compute_jitter_ms(5, 0.1)
            .set(concat([lit("order:"), hash_of(input())]), input())
            .ret(make_map([("order", hash_of(input()))])),
    ));
    reg.register(FunctionSpec::new(
        "notifyUser",
        Program::builder()
            .compute_jitter_ms(3, 0.1)
            .http(lit("https://notify/ticket"))
            .ret(make_map([("sent", lit(true))])),
    ));
    reg.register(FunctionSpec::new(
        "bookTicket",
        Program::builder()
            .compute_jitter_ms(3, 0.1)
            .let_(
                "acct",
                concat([
                    lit("acct:"),
                    modulo(hash_of(field(input(), "route")), lit(100i64)),
                ]),
            )
            .call(
                "verifyAccount",
                make_map([("acctKey", var("acct"))]),
                "acct_ok",
            )
            .call(
                "queryTicket",
                make_map([("route", field(input(), "route"))]),
                "ticket",
            )
            .call(
                "computePrice",
                make_map([
                    ("route", field(input(), "route")),
                    ("fare", field(input(), "fare")),
                ]),
                "price",
            )
            .call(
                "reserveSeat",
                make_map([("route", field(input(), "route"))]),
                "resv",
            )
            .call(
                "recordOrder",
                make_map([
                    ("route", field(input(), "route")),
                    ("total", field(var("price"), "total")),
                ]),
                "order",
            )
            .call("notifyUser", var("order"), "note")
            .ret(make_map([
                ("order", field(var("order"), "order")),
                ("total", field(var("price"), "total")),
            ])),
    ));
    dataset_bundle(AppSpec::new(
        "TcktApp",
        "TrainTicket",
        reg,
        Workflow::task("bookTicket"),
    ))
}

/// TripInApp — trip information gather: the root fans out to five
/// services, two of which call their own leaves. 12 functions, depth 3.
pub fn trip_info_app() -> AppBundle {
    let mut reg = FunctionRegistry::new();
    reg.register(reader_leaf("routeService", 4, "routeinfo:", "route"));
    reg.register(pure_leaf("trainTypeService", 5));
    reg.register(reader_leaf("stationService", 4, "routeinfo:", "route"));
    reg.register(pure_leaf("timetableService", 6));
    reg.register(reader_leaf("seatAvailability", 4, "seats:", "route"));
    reg.register(pure_leaf("weatherService", 5));
    reg.register(pure_leaf("foodMenuService", 4));
    reg.register(FunctionSpec::new(
        "stationDetails",
        Program::builder()
            .compute_jitter_ms(3, 0.1)
            .call("stationService", input(), "st")
            .call("weatherService", input(), "wx")
            .ret(make_map([("st", var("st")), ("wx", var("wx"))])),
    ));
    reg.register(FunctionSpec::new(
        "onboardInfo",
        Program::builder()
            .compute_jitter_ms(3, 0.1)
            .call("foodMenuService", input(), "menu")
            .call("trainTypeService", input(), "tt")
            .ret(make_map([("menu", var("menu")), ("tt", var("tt"))])),
    ));
    reg.register(pure_leaf("rankResults", 7));
    reg.register(FunctionSpec::new(
        "tripInfo",
        Program::builder()
            .compute_jitter_ms(3, 0.1)
            .call(
                "routeService",
                make_map([("route", field(input(), "route"))]),
                "route",
            )
            .call(
                "timetableService",
                make_map([("route", field(input(), "route"))]),
                "times",
            )
            .call(
                "seatAvailability",
                make_map([("route", field(input(), "route"))]),
                "seats",
            )
            .call(
                "stationDetails",
                make_map([("route", field(input(), "route"))]),
                "stations",
            )
            .call(
                "onboardInfo",
                make_map([("route", field(input(), "route"))]),
                "onboard",
            )
            .call(
                "rankResults",
                make_list([var("route"), var("times"), var("seats")]),
                "ranked",
            )
            .ret(make_map([
                ("ranked", field(var("ranked"), "r")),
                ("seats", field(var("seats"), "rec")),
            ])),
    ));
    dataset_bundle(AppSpec::new(
        "TripInApp",
        "TrainTicket",
        reg,
        Workflow::task("tripInfo"),
    ))
}

/// QueryTrvl — travel-plan query: route candidates, prices, transfers.
/// 11 functions, depth 3.
pub fn query_travel() -> AppBundle {
    let mut reg = FunctionRegistry::new();
    reg.register(reader_leaf("directRoutes", 5, "routeinfo:", "route"));
    reg.register(pure_leaf("transferRoutes", 7));
    reg.register(pure_leaf("highSpeedFilter", 4));
    reg.register(FunctionSpec::new(
        "routeCandidates",
        Program::builder()
            .compute_jitter_ms(3, 0.1)
            .call("directRoutes", input(), "direct")
            .call("transferRoutes", input(), "transfer")
            .call("highSpeedFilter", input(), "hs")
            .ret(make_map([("direct", var("direct")), ("hs", var("hs"))])),
    ));
    reg.register(reader_leaf("basePrice", 4, "price:", "route"));
    reg.register(pure_leaf("seasonalAdjust", 4));
    reg.register(FunctionSpec::new(
        "priceAll",
        Program::builder()
            .compute_jitter_ms(3, 0.1)
            .call("basePrice", input(), "base")
            .call("seasonalAdjust", input(), "adj")
            .ret(make_map([(
                "price",
                add(field(var("base"), "rec"), field(var("adj"), "r")),
            )])),
    ));
    reg.register(reader_leaf("seatCheck", 4, "seats:", "route"));
    reg.register(pure_leaf("comfortScore", 5));
    reg.register(pure_leaf("sortPlans", 6));
    reg.register(FunctionSpec::new(
        "queryTravel",
        Program::builder()
            .compute_jitter_ms(3, 0.1)
            .call(
                "routeCandidates",
                make_map([("route", field(input(), "route"))]),
                "cands",
            )
            .call(
                "priceAll",
                make_map([
                    ("route", field(input(), "route")),
                    ("date", field(input(), "date")),
                ]),
                "prices",
            )
            .call(
                "seatCheck",
                make_map([("route", field(input(), "route"))]),
                "seats",
            )
            .call("comfortScore", var("cands"), "comfort")
            .call(
                "sortPlans",
                make_list([var("cands"), var("prices")]),
                "sorted",
            )
            .ret(make_map([
                ("plans", field(var("sorted"), "r")),
                ("price", field(var("prices"), "price")),
            ])),
    ));
    dataset_bundle(AppSpec::new(
        "QueryTrvl",
        "TrainTicket",
        reg,
        Workflow::task("queryTravel"),
    ))
}

/// GetLeftApp — remaining-ticket query: inventory reads per segment plus
/// config lookups. 10 functions, depth 3.
pub fn get_left_tickets() -> AppBundle {
    let mut reg = FunctionRegistry::new();
    reg.register(reader_leaf("segmentInventory", 4, "seats:", "route"));
    reg.register(reader_leaf("routeMeta", 4, "routeinfo:", "route"));
    reg.register(pure_leaf("segmentSplit", 5));
    reg.register(FunctionSpec::new(
        "inventoryScan",
        Program::builder()
            .compute_jitter_ms(3, 0.1)
            .call("segmentSplit", input(), "segs")
            .call("segmentInventory", input(), "inv")
            .call("routeMeta", input(), "meta")
            .ret(make_map([("left", field(var("inv"), "rec"))])),
    ));
    reg.register(pure_leaf("holdEstimator", 5));
    reg.register(pure_leaf("classBreakdown", 4));
    reg.register(FunctionSpec::new(
        "adjustForHolds",
        Program::builder()
            .compute_jitter_ms(3, 0.1)
            .call("holdEstimator", input(), "holds")
            .call("classBreakdown", input(), "classes")
            .ret(make_map([(
                "left",
                sub(
                    field(input(), "left"),
                    modulo(field(var("holds"), "r"), lit(5i64)),
                ),
            )])),
    ));
    reg.register(pure_leaf("formatAnswer", 4));
    reg.register(FunctionSpec::new(
        "cacheAnswer",
        Program::builder()
            .compute_jitter_ms(3, 0.1)
            .set(
                concat([lit("leftcache:"), field(input(), "route")]),
                field(input(), "left"),
            )
            .ret(input()),
    ));
    reg.register(FunctionSpec::new(
        "getLeftTickets",
        Program::builder()
            .compute_jitter_ms(3, 0.1)
            .call(
                "inventoryScan",
                make_map([("route", field(input(), "route"))]),
                "scan",
            )
            .call(
                "adjustForHolds",
                make_map([
                    ("route", field(input(), "route")),
                    ("left", field(var("scan"), "left")),
                ]),
                "adj",
            )
            .call("formatAnswer", var("adj"), "fmt")
            .call(
                "cacheAnswer",
                make_map([
                    ("route", field(input(), "route")),
                    ("left", field(var("adj"), "left")),
                ]),
                "cached",
            )
            .ret(make_map([("left", field(var("adj"), "left"))])),
    ));
    dataset_bundle(AppSpec::new(
        "GetLeftApp",
        "TrainTicket",
        reg,
        Workflow::task("getLeftTickets"),
    ))
}

/// CancelApp — cancel an order: lookup, refund computation (sub-calls),
/// inventory return (writes), notification. 11 functions, depth 3.
pub fn cancel_app() -> AppBundle {
    let mut reg = FunctionRegistry::new();
    reg.register(FunctionSpec::new(
        "orderLookup",
        Program::builder()
            .compute_jitter_ms(4, 0.1)
            .get(concat([lit("order:"), field(input(), "orderKey")]), "order")
            .ret(make_map([("order", var("order"))])),
    ));
    reg.register(pure_leaf("refundPolicy", 5));
    reg.register(pure_leaf("feeCalculator", 4));
    reg.register(FunctionSpec::new(
        "computeRefund",
        Program::builder()
            .compute_jitter_ms(3, 0.1)
            .call("refundPolicy", input(), "policy")
            .call("feeCalculator", input(), "fee")
            .ret(make_map([(
                "refund",
                sub(
                    field(input(), "fare"),
                    modulo(field(var("fee"), "r"), lit(20i64)),
                ),
            )])),
    ));
    reg.register(FunctionSpec::new(
        "returnSeat",
        Program::builder()
            .compute_jitter_ms(5, 0.1)
            .get(concat([lit("seats:"), field(input(), "route")]), "left")
            .set(
                concat([lit("seats:"), field(input(), "route")]),
                add(var("left"), lit(1i64)),
            )
            .ret(make_map([("returned", lit(true))])),
    ));
    reg.register(FunctionSpec::new(
        "writeRefund",
        Program::builder()
            .compute_jitter_ms(4, 0.1)
            .set(
                concat([lit("refund:"), field(input(), "orderKey")]),
                field(input(), "refund"),
            )
            .ret(input()),
    ));
    reg.register(pure_leaf("auditEntry", 4));
    reg.register(FunctionSpec::new(
        "paymentGateway",
        Program::builder()
            .compute_jitter_ms(6, 0.1)
            .http(lit("https://pay/refund"))
            .ret(make_map([("gw", lit("ok"))])),
    ));
    reg.register(FunctionSpec::new(
        "processRefund",
        Program::builder()
            .compute_jitter_ms(3, 0.1)
            .call("writeRefund", input(), "wr")
            .call("paymentGateway", input(), "gw")
            .call("auditEntry", input(), "audit")
            .ret(make_map([("refunded", lit(true))])),
    ));
    reg.register(FunctionSpec::new(
        "notifyCancel",
        Program::builder()
            .compute_jitter_ms(3, 0.1)
            .http(lit("https://notify/cancel"))
            .ret(make_map([("sent", lit(true))])),
    ));
    reg.register(FunctionSpec::new(
        "cancelTicket",
        Program::builder()
            .compute_jitter_ms(3, 0.1)
            .let_(
                "okey",
                concat([
                    lit("ord:"),
                    modulo(hash_of(field(input(), "route")), lit(100i64)),
                ]),
            )
            .call(
                "orderLookup",
                make_map([("orderKey", var("okey"))]),
                "order",
            )
            .call(
                "computeRefund",
                make_map([
                    ("fare", field(input(), "fare")),
                    ("date", field(input(), "date")),
                ]),
                "refund",
            )
            .call(
                "returnSeat",
                make_map([("route", field(input(), "route"))]),
                "seat",
            )
            .call(
                "processRefund",
                make_map([
                    ("orderKey", var("okey")),
                    ("refund", field(var("refund"), "refund")),
                ]),
                "proc",
            )
            .call("notifyCancel", var("proc"), "note")
            .ret(make_map([("refund", field(var("refund"), "refund"))])),
    ));
    dataset_bundle(AppSpec::new(
        "CancelApp",
        "TrainTicket",
        reg,
        Workflow::task("cancelTicket"),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfaas_sim::SimRng;
    use specfaas_workflow::analysis::RegistryProfile;

    #[test]
    fn suite_shape_matches_table1() {
        let apps = apps();
        assert_eq!(apps.len(), 5);
        let fns: usize = apps.iter().map(|a| a.app.registry.len()).sum();
        let avg = fns as f64 / 5.0;
        assert!(
            (10.0..=13.0).contains(&avg),
            "avg functions {avg}, paper reports 11.2"
        );
        for a in &apps {
            assert!(a.app.is_implicit(), "{} must be implicit", a.name());
        }
    }

    #[test]
    fn many_functions_are_pure() {
        // §VIII-B: >57.6% of TrainTicket invocations hit pure functions;
        // statically a large share of our functions are pure too.
        let apps = apps();
        let mut pure = 0usize;
        let mut total = 0usize;
        for a in &apps {
            let p = RegistryProfile::of(&a.app.registry);
            pure += (p.pure_fraction * p.functions as f64).round() as usize;
            total += p.functions;
        }
        let frac = pure as f64 / total as f64;
        assert!(frac > 0.3, "pure fraction {frac}");
    }

    #[test]
    fn apps_run_on_baseline_with_calls() {
        use specfaas_platform::BaselineEngine;
        for bundle in apps() {
            let mut e = BaselineEngine::new(bundle.app.clone(), 11);
            e.prewarm();
            let mut rng = SimRng::seed(2);
            (bundle.seed)(&mut e.kv, &mut rng);
            let input = (bundle.make_input)(&mut rng);
            let d = e.run_single(input);
            assert!(
                d.as_millis() > 20,
                "{} too fast for a multi-tier app: {d}",
                bundle.name()
            );
        }
    }

    #[test]
    fn apps_speed_up_under_specfaas_after_training() {
        use specfaas_core::{SpecConfig, SpecEngine};
        use specfaas_platform::BaselineEngine;
        let bundle = trip_info_app();
        let mut rng = SimRng::seed(3);

        let mut base = BaselineEngine::new(bundle.app.clone(), 5);
        base.prewarm();
        (bundle.seed)(&mut base.kv, &mut rng);
        let fixed_input = Value::map([
            ("route", Value::str("route:0")),
            ("date", Value::Int(1)),
            ("fare", Value::Int(45)),
        ]);
        let bd = base.run_single(fixed_input.clone());

        let mut spec = SpecEngine::new(bundle.app.clone(), SpecConfig::full(), 5);
        spec.prewarm();
        let mut rng2 = SimRng::seed(3);
        (bundle.seed)(&mut spec.kv, &mut rng2);
        for _ in 0..3 {
            spec.run_single(fixed_input.clone());
        }
        let sd = spec.run_single(fixed_input);
        assert!(
            bd / sd > 1.5,
            "implicit app should overlap callees: {bd} vs {sd}"
        );
    }

    #[test]
    fn seat_inventory_round_trip() {
        use specfaas_platform::BaselineEngine;
        let bundle = ticket_app();
        let mut e = BaselineEngine::new(bundle.app.clone(), 13);
        e.prewarm();
        let mut rng = SimRng::seed(4);
        (bundle.seed)(&mut e.kv, &mut rng);
        let before = e.kv.peek("seats:route:0").unwrap().as_int().unwrap();
        e.run_single(Value::map([
            ("route", Value::str("route:0")),
            ("date", Value::Int(1)),
            ("fare", Value::Int(45)),
        ]));
        let after = e.kv.peek("seats:route:0").unwrap().as_int().unwrap();
        assert_eq!(after, before - 1, "reserveSeat must decrement inventory");
    }
}
