//! Suite characterization — reproduces Table I of the paper.
//!
//! For each suite: number of applications and, per application on
//! average, the number of functions, cross-function branches, data
//! dependences, callees per calling function, maximum DAG depth, and the
//! application execution time in a warmed-up environment (measured by
//! actually running each app once, warm, on the baseline engine).

use serde::{Deserialize, Serialize};
use specfaas_platform::BaselineEngine;
use specfaas_sim::SimRng;
use specfaas_workflow::analysis::SideEffects;
use specfaas_workflow::Stmt;

use crate::suite::Suite;

/// Table-I row for one suite.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SuiteCharacterization {
    /// Suite name.
    pub suite: String,
    /// Explicit or implicit workflows.
    pub workflow_type: String,
    /// Number of applications.
    pub applications: usize,
    /// Average functions per application.
    pub avg_functions: f64,
    /// Average cross-function branches per application (explicit suites).
    pub avg_branches: Option<f64>,
    /// Average data dependences per application (payload-carrying
    /// transitions plus cross-function storage dependences).
    pub avg_data_deps: f64,
    /// Average callees per function that makes calls (implicit suites).
    pub avg_callees_per_caller: Option<f64>,
    /// Maximum DAG depth across the suite's applications.
    pub max_dag_depth: usize,
    /// Average warmed-up end-to-end execution time in milliseconds.
    pub avg_exec_time_ms: f64,
}

/// Counts `Call` statements per function, returning (callers, calls).
fn call_stats(app: &specfaas_workflow::AppSpec) -> (usize, usize) {
    let mut callers = 0;
    let mut calls = 0;
    for (_, spec) in app.registry.iter() {
        let mut n = 0;
        spec.program.visit(&mut |s| {
            if matches!(s, Stmt::Call { .. }) {
                n += 1;
            }
        });
        if n > 0 {
            callers += 1;
            calls += n;
        }
    }
    (callers, calls)
}

/// Characterizes one suite (runs every app once, warm, for timing).
pub fn characterize_suite(suite: &Suite, seed: u64) -> SuiteCharacterization {
    let implicit = suite.apps.iter().all(|a| a.app.is_implicit());
    let n = suite.apps.len();
    let mut fns = 0usize;
    let mut branches = 0usize;
    let mut data_deps = 0usize;
    let mut callers = 0usize;
    let mut calls = 0usize;
    let mut max_depth = 0usize;
    let mut exec_ms = 0.0f64;

    for bundle in &suite.apps {
        fns += bundle.app.registry.len();
        branches += bundle.app.workflow.branch_count();
        max_depth = max_depth.max(if implicit {
            // For implicit workflows depth = call-tree depth; derive from
            // static call edges (registry order guarantees leaves first).
            implicit_depth(&bundle.app)
        } else {
            bundle.app.workflow.max_depth()
        });
        let (c, k) = call_stats(&bundle.app);
        callers += c;
        calls += k;
        // Data dependences: payload-carrying workflow transitions plus
        // cross-function storage producer→consumer pairs.
        data_deps += payload_deps(&bundle.app) + storage_deps(&bundle.app);

        // Warm single-request timing on the baseline.
        let mut engine = BaselineEngine::new(bundle.app.clone(), seed);
        engine.prewarm();
        let mut rng = SimRng::seed(seed ^ 0x5eed);
        (bundle.seed)(&mut engine.kv, &mut rng);
        // One throwaway to settle caches, then measure.
        engine.run_single((bundle.make_input)(&mut rng));
        let d = engine.run_single((bundle.make_input)(&mut rng));
        exec_ms += d.as_millis_f64();
    }

    SuiteCharacterization {
        suite: suite.name.to_owned(),
        workflow_type: if implicit { "Implicit" } else { "Explicit" }.to_owned(),
        applications: n,
        avg_functions: fns as f64 / n as f64,
        avg_branches: (!implicit).then(|| branches as f64 / n as f64),
        avg_data_deps: data_deps as f64 / n as f64,
        avg_callees_per_caller: (callers > 0).then(|| calls as f64 / callers as f64),
        max_dag_depth: max_depth,
        avg_exec_time_ms: exec_ms / n as f64,
    }
}

/// Payload-carrying (sequence) transitions in the compiled workflow.
fn payload_deps(app: &specfaas_workflow::AppSpec) -> usize {
    app.compiled
        .entries
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                specfaas_workflow::EntryKind::Simple { next: Some(_) }
            )
        })
        .count()
}

/// Cross-function storage dependences: functions that write keys with a
/// prefix some other function reads.
fn storage_deps(app: &specfaas_workflow::AppSpec) -> usize {
    let effects: Vec<SideEffects> = app
        .registry
        .iter()
        .map(|(_, s)| SideEffects::of(&s.program))
        .collect();
    let writers = effects.iter().filter(|e| e.writes_global).count();
    let readers = effects.iter().filter(|e| e.reads_global).count();
    writers.min(readers)
}

/// Depth of the static call tree of an implicit app.
fn implicit_depth(app: &specfaas_workflow::AppSpec) -> usize {
    fn depth_of(
        app: &specfaas_workflow::AppSpec,
        func: specfaas_workflow::FuncId,
        seen: &mut Vec<specfaas_workflow::FuncId>,
    ) -> usize {
        if seen.contains(&func) {
            return 1;
        }
        seen.push(func);
        let mut callees = Vec::new();
        app.registry.spec(func).program.visit(&mut |s| {
            if let Stmt::Call { func: name, .. } = s {
                if let Some(id) = app.registry.lookup(name) {
                    callees.push(id);
                }
            }
        });
        let d = 1 + callees
            .into_iter()
            .map(|c| depth_of(app, c, seen))
            .max()
            .unwrap_or(0);
        seen.pop();
        d
    }
    let root = app.registry.lookup(match &app.workflow {
        specfaas_workflow::Workflow::Task(n) => n.as_str(),
        _ => return app.workflow.max_depth(),
    });
    match root {
        Some(r) => depth_of(app, r, &mut Vec::new()),
        None => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::all_suites;

    fn by_name<'a>(suites: &'a [crate::Suite], name: &str) -> &'a crate::Suite {
        suites
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("suite {name} not registered"))
    }

    #[test]
    fn characterization_matches_paper_bands() {
        let suites = all_suites();
        let faaschain = characterize_suite(by_name(&suites, "FaaSChain"), 1);
        assert_eq!(faaschain.workflow_type, "Explicit");
        assert_eq!(faaschain.applications, 6);
        assert!((6.5..=9.0).contains(&faaschain.avg_functions));
        assert!(faaschain.avg_branches.unwrap() >= 2.0);
        assert!(faaschain.avg_callees_per_caller.is_none());
        assert!(faaschain.max_dag_depth >= 8);
        // Paper: 160ms average warm execution.
        assert!(
            (80.0..=320.0).contains(&faaschain.avg_exec_time_ms),
            "FaaSChain exec {}ms",
            faaschain.avg_exec_time_ms
        );

        let tt = characterize_suite(by_name(&suites, "TrainTicket"), 1);
        assert_eq!(tt.workflow_type, "Implicit");
        assert!((10.0..=13.0).contains(&tt.avg_functions));
        assert!(tt.avg_callees_per_caller.unwrap() >= 2.0);
        assert_eq!(tt.max_dag_depth, 3);
        // Paper: 268.8ms.
        assert!(
            (130.0..=520.0).contains(&tt.avg_exec_time_ms),
            "TrainTicket exec {}ms",
            tt.avg_exec_time_ms
        );

        let ali = characterize_suite(by_name(&suites, "Alibaba"), 1);
        assert!((14.0..=22.0).contains(&ali.avg_functions));
        assert!(ali.max_dag_depth >= 4, "depth {}", ali.max_dag_depth);
        // Paper: 387.2ms.
        assert!(
            (200.0..=700.0).contains(&ali.avg_exec_time_ms),
            "Alibaba exec {}ms",
            ali.avg_exec_time_ms
        );
    }

    #[test]
    fn dag_suite_characterization_is_wide_and_explicit() {
        let suites = all_suites();
        let dag = characterize_suite(by_name(&suites, "DAG"), 1);
        assert_eq!(dag.workflow_type, "Explicit");
        assert_eq!(dag.applications, 3);
        // 11 + 11 + 12 functions across the three DAG apps.
        assert!(
            (10.0..=13.0).contains(&dag.avg_functions),
            "avg functions {}",
            dag.avg_functions
        );
        assert!(
            dag.avg_branches.is_some(),
            "explicit suite reports branches"
        );
        assert!(dag.avg_callees_per_caller.is_none());
        assert!(
            dag.avg_data_deps >= 4.0,
            "wide fan-outs carry many data deps, got {}",
            dag.avg_data_deps
        );
        assert!(
            dag.avg_exec_time_ms > 20.0,
            "DAG exec {}ms suspiciously fast",
            dag.avg_exec_time_ms
        );
    }
}
