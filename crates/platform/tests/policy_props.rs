//! Randomized property tests for the pluggable policy layer
//! (DESIGN.md, "Pluggable platform policies").
//!
//! Two safety properties the policies must uphold under arbitrary
//! interleavings of acquisitions, releases and prewarm creations:
//!
//! * **TTL keep-alive never revives an evicted container.** An acquire
//!   is served warm if and only if an idle container exists whose TTL
//!   has not elapsed — checked against an independent reference model of
//!   the idle set over thousands of random schedules.
//! * **Prewarm never exceeds pool capacity.** However many creations a
//!   prewarm policy starts, the idle stock never exceeds the keep-alive
//!   policy's bound — per function on the single-node [`ContainerPool`],
//!   and pool-wide on the fleet's [`WarmPool`].

use specfaas_platform::policy::{DefaultKeepAlive, FixedTtlKeepAlive, KeepAlivePolicy};
use specfaas_platform::{ContainerAcquire, ContainerPool, WarmPool};
use specfaas_sim::{SimDuration, SimRng, SimTime};
use specfaas_workflow::FuncId;

/// Keep-alive with a deliberately tiny idle cap so random schedules hit
/// the bound constantly.
#[derive(Debug)]
struct TinyCap {
    ttl: Option<SimDuration>,
    cap: u32,
}

impl KeepAlivePolicy for TinyCap {
    fn name(&self) -> &'static str {
        "tiny-cap"
    }
    fn ttl(&self) -> Option<SimDuration> {
        self.ttl
    }
    fn per_func_idle_cap(&self) -> u32 {
        self.cap
    }
}

/// TTL keep-alive against a reference model: the pool's warm/cold
/// decision must match "some idle container's TTL has not elapsed", and
/// a warm hand-out must consume the newest such container (LIFO) — so an
/// expired (evicted) container can never be revived.
#[test]
fn ttl_keepalive_never_revives_an_evicted_container() {
    let ttl = SimDuration::from_millis(50);
    let policy = FixedTtlKeepAlive { ttl };
    let model = specfaas_platform::OverheadModel::default();
    const FUNCS: u32 = 4;

    for seed in 0..20u64 {
        let mut rng = SimRng::seed(0x77_1000 + seed);
        let mut pool = ContainerPool::new();
        // Reference: per function, the release instants of idle
        // containers (ascending) and how many are busy.
        let mut ref_idle: Vec<Vec<SimTime>> = vec![Vec::new(); FUNCS as usize];
        let mut busy: Vec<u32> = vec![0; FUNCS as usize];
        let mut now = SimTime::ZERO;

        for _ in 0..2_000 {
            now += SimDuration::from_micros(rng.uniform_u64(40_000));
            let f = rng.uniform_u64(FUNCS as u64) as usize;
            let func = FuncId(f as u32);
            if busy[f] > 0 && rng.uniform_u64(2) == 0 {
                pool.release(func, now, true, &policy);
                busy[f] -= 1;
                ref_idle[f].push(now);
                // Release also settles lazy expiry for this function.
                ref_idle[f].retain(|released| *released + ttl > now);
            } else {
                // Reference expiry: drop every container whose TTL
                // elapsed. They are gone for good — the pool must agree.
                ref_idle[f].retain(|released| *released + ttl > now);
                let expect_warm = !ref_idle[f].is_empty();
                if expect_warm {
                    // LIFO: the newest idle container is handed out.
                    ref_idle[f].pop();
                }
                let got = pool.acquire(func, now, &model, &policy);
                busy[f] += 1;
                match (expect_warm, got) {
                    (true, ContainerAcquire::Warm) => {}
                    (false, ContainerAcquire::Cold(_)) => {}
                    (want, got) => panic!(
                        "seed {seed}: at {now:?} func {f} expected warm={want}, got {got:?} \
                         (an expired container must never be revived)"
                    ),
                }
            }
            // The op above touched `func`, so its lazy expiry is now
            // settled: the pool's idle set must equal the reference's.
            assert_eq!(
                pool.idle_count(func) as usize,
                ref_idle[f].len(),
                "seed {seed}: idle set diverged from the reference model at {now:?}"
            );
        }
    }
}

/// Single-node pool: however many prewarm creations are issued, the
/// idle stock per function never exceeds the keep-alive policy's cap —
/// including at promote time, when several warming containers become
/// idle at once.
#[test]
fn prewarm_never_exceeds_per_function_cap() {
    let policy = TinyCap { ttl: None, cap: 3 };
    let model = specfaas_platform::OverheadModel::default();
    const FUNCS: u32 = 3;

    for seed in 0..20u64 {
        let mut rng = SimRng::seed(0x99_2000 + seed);
        let mut pool = ContainerPool::new();
        let mut busy: Vec<u32> = vec![0; FUNCS as usize];
        let mut now = SimTime::ZERO;

        for _ in 0..2_000 {
            now += SimDuration::from_micros(rng.uniform_u64(200_000));
            let f = rng.uniform_u64(FUNCS as u64) as usize;
            let func = FuncId(f as u32);
            match rng.uniform_u64(3) {
                // Aggressive prewarmer: issue creations regardless of
                // demand.
                0 => pool.begin_warming(func, now + model.cold_start()),
                1 if busy[f] > 0 => {
                    pool.release(func, now, true, &policy);
                    busy[f] -= 1;
                }
                _ => {
                    pool.acquire(func, now, &model, &policy);
                    busy[f] += 1;
                }
            }
            for g in 0..FUNCS {
                assert!(
                    pool.idle_count(FuncId(g)) <= policy.cap,
                    "seed {seed}: func {g} idle {} exceeds cap {} at {now:?}",
                    pool.idle_count(FuncId(g)),
                    policy.cap
                );
            }
        }
    }
}

/// Fleet pool: random acquire/release interleavings (prewarmed
/// containers also land via `release`) never grow the shared idle stock
/// past the pool capacity.
#[test]
fn fleet_warm_pool_never_exceeds_capacity() {
    const CAPACITY: u32 = 8;
    const GFUNCS: u64 = 16;
    let policy = DefaultKeepAlive;

    for seed in 0..20u64 {
        let mut rng = SimRng::seed(0xAB_3000 + seed);
        let mut pool = WarmPool::new(CAPACITY);
        let mut now = SimTime::ZERO;
        for _ in 0..3_000 {
            now += SimDuration::from_micros(rng.uniform_u64(100_000));
            let g = rng.uniform_u64(GFUNCS) as u32;
            if rng.uniform_u64(2) == 0 {
                pool.acquire(g, now, &policy);
            } else {
                pool.release(g, now, &policy);
            }
            assert!(
                pool.idle_total() <= CAPACITY,
                "seed {seed}: idle {} exceeds capacity {CAPACITY} at {now:?}",
                pool.idle_total()
            );
        }
    }
}
