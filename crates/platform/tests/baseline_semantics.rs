//! Integration tests of the baseline engine's OpenWhisk semantics:
//! overheads accumulate sequentially, load inflates controller queueing,
//! and the closed-loop driver self-throttles at saturation.

use std::sync::Arc;

use specfaas_platform::BaselineEngine;
use specfaas_sim::{SimDuration, SimRng};
use specfaas_storage::Value;
use specfaas_workflow::expr::*;
use specfaas_workflow::{AppSpec, FunctionRegistry, FunctionSpec, Program, Workflow};

fn chain(n: usize, ms: u64) -> Arc<AppSpec> {
    let mut reg = FunctionRegistry::new();
    let mut names = Vec::new();
    for i in 0..n {
        let name = format!("c{i}");
        reg.register(FunctionSpec::new(
            &name,
            Program::builder().compute_ms(ms).ret(input()),
        ));
        names.push(name);
    }
    Arc::new(AppSpec::new(
        "Chain",
        "Test",
        reg,
        Workflow::sequence(names.iter().map(Workflow::task).collect()),
    ))
}

#[test]
fn response_time_scales_linearly_with_chain_length() {
    let times: Vec<f64> = [2usize, 4, 8]
        .iter()
        .map(|n| {
            let mut e = BaselineEngine::new(chain(*n, 8), 1);
            e.prewarm();
            e.run_single(Value::Null).as_millis_f64()
        })
        .collect();
    // Strictly sequential execution: doubling the chain roughly doubles
    // the response (within overhead rounding).
    let r1 = times[1] / times[0];
    let r2 = times[2] / times[1];
    assert!((1.7..=2.3).contains(&r1), "2->4 scale {r1}");
    assert!((1.7..=2.3).contains(&r2), "4->8 scale {r2}");
}

#[test]
fn observation1_overhead_dominates_warm_execution() {
    // With 8ms functions the baseline spends more time on platform +
    // transfer than on execution, per Observation 1.
    let mut e = BaselineEngine::new(chain(6, 8), 2);
    e.prewarm();
    e.run_single(Value::Null);
    let total_exec = 6.0 * 8.0;
    let response = e.run_single(Value::Null).as_millis_f64();
    let frac = total_exec / response;
    assert!(
        (0.30..=0.45).contains(&frac),
        "execution fraction {frac} outside Observation-1 band"
    );
}

#[test]
fn open_loop_latency_grows_with_load() {
    let measure = |rps: f64| {
        let mut e = BaselineEngine::new(chain(6, 8), 3);
        e.prewarm();
        e.run_open(
            rps,
            SimDuration::from_secs(2),
            SimDuration::from_millis(200),
            |_: &mut SimRng| Value::Null,
        )
        .mean_response_ms()
    };
    let light = measure(20.0);
    let heavy = measure(150.0);
    assert!(
        heavy > light * 1.08,
        "controller queueing should inflate latency: {light} -> {heavy}"
    );
}

#[test]
fn closed_loop_self_throttles_at_saturation() {
    // A client pool far beyond capacity must still produce finite,
    // stable latencies (no unbounded queue).
    let mut e = BaselineEngine::new(chain(6, 8), 4);
    e.prewarm();
    let m = e.run_concurrent(
        200,
        SimDuration::from_secs(3),
        SimDuration::from_millis(500),
        |_: &mut SimRng| Value::Null,
    );
    assert!(m.completed > 200, "served {}", m.completed);
    // Little's law: response ≈ clients / throughput.
    let expected = 200.0 / m.throughput_rps() * 1_000.0;
    let mean = m.mean_response_ms();
    assert!(
        (mean / expected - 1.0).abs() < 0.35,
        "Little's law violated: mean {mean}ms vs expected {expected}ms"
    );
}

#[test]
fn cold_start_only_once_per_container() {
    let app = chain(3, 5);
    let mut e = BaselineEngine::new(Arc::clone(&app), 5);
    // No prewarm: 3 cold starts, then warm reuse.
    e.run_single(Value::Null);
    assert_eq!(e.cluster.cold_starts(), 3);
    e.run_single(Value::Null);
    assert_eq!(
        e.cluster.cold_starts(),
        3,
        "second request reuses containers"
    );
}
