//! The cluster: nodes with execution slots, container pools, and per-node
//! controllers.
//!
//! The paper's testbed is five single-socket AMD EPYC 7402P servers — 24
//! cores, 2-way SMT, so 48 hardware threads per node (§VII). Each node
//! also hosts an independent controller (§V-E: "a machine has many
//! independent controllers spread across different nodes"), modeled as a
//! FIFO service station; controller queueing is what inflates platform and
//! transfer overheads under load.
//!
//! The cluster is also where the platform-policy layer plugs into the
//! single-app engines: it owns one [`PlacementPolicy`] (consulted by
//! [`Cluster::pick_node`]), one [`KeepAlivePolicy`] (threaded into every
//! container acquire/release), and one [`PrewarmPolicy`] (consulted on
//! each acquisition; fed committed function sequences through
//! [`Cluster::observe_sequence`]). The defaults reproduce the
//! pre-policy-layer behaviour bit for bit.

use specfaas_sim::resource::{CorePool, ServiceStation};
use specfaas_sim::{SimDuration, SimTime};
use specfaas_workflow::FuncId;

use crate::container::{ContainerAcquire, ContainerPool, FuncContainerStats};
use crate::exec::InstanceId;
use crate::overheads::OverheadModel;
use crate::policy::{KeepAlivePolicy, PlacementPolicy, PolicyConfig, PrewarmPolicy};

/// Index of a node in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// One server node: execution slots, containers, a controller.
#[derive(Debug)]
pub struct Node {
    /// Execution slots (hardware threads) that handler processes occupy.
    pub cores: CorePool<InstanceId>,
    /// This node's container pool.
    pub containers: ContainerPool,
    /// This node's controller (platform scheduling + conductor work).
    pub controller: ServiceStation,
}

/// The whole cluster.
///
/// # Example
///
/// ```
/// use specfaas_platform::Cluster;
///
/// let c = Cluster::paper_testbed();
/// assert_eq!(c.nodes(), 5);
/// assert_eq!(c.total_slots(), 5 * 48);
/// ```
#[derive(Debug)]
pub struct Cluster {
    nodes: Vec<Node>,
    rr_next: usize,
    placement: Box<dyn PlacementPolicy>,
    keepalive: Box<dyn KeepAlivePolicy>,
    prewarm: Box<dyn PrewarmPolicy>,
    /// Scratch free-slot snapshot handed to the placement policy
    /// (reused so placement never allocates).
    free_scratch: Vec<u64>,
    /// Scratch prewarm-target list (reused per acquisition).
    prewarm_scratch: Vec<u32>,
}

impl Cluster {
    /// A cluster of `nodes` nodes with `slots_per_node` execution slots,
    /// under the default platform policies.
    ///
    /// # Panics
    /// Panics if either argument is zero.
    pub fn new(nodes: usize, slots_per_node: u64) -> Self {
        assert!(nodes > 0 && slots_per_node > 0);
        let cfg = PolicyConfig::default();
        Cluster {
            nodes: (0..nodes)
                .map(|_| Node {
                    cores: CorePool::new(slots_per_node),
                    containers: ContainerPool::new(),
                    controller: ServiceStation::new(),
                })
                .collect(),
            rr_next: 0,
            placement: cfg.build_placement(),
            keepalive: cfg.build_keepalive(),
            prewarm: cfg.build_prewarm(),
            free_scratch: Vec::with_capacity(nodes),
            prewarm_scratch: Vec::new(),
        }
    }

    /// The paper's testbed: 5 nodes × 24 cores × 2-way SMT = 48 slots.
    pub fn paper_testbed() -> Self {
        Cluster::new(5, 48)
    }

    /// Replaces the installed platform policies. Call before the runs it
    /// should govern (existing idle containers keep their timestamps, so
    /// a newly installed TTL applies to them retroactively).
    pub fn set_policies(&mut self, cfg: &PolicyConfig) {
        self.placement = cfg.build_placement();
        self.keepalive = cfg.build_keepalive();
        self.prewarm = cfg.build_prewarm();
    }

    /// `placement/keepalive/prewarm` names of the installed policies.
    pub fn policy_names(&self) -> (&'static str, &'static str, &'static str) {
        (
            self.placement.name(),
            self.keepalive.name(),
            self.prewarm.name(),
        )
    }

    /// The installed keep-alive policy (shared with the container pools).
    pub fn keepalive_policy(&self) -> &dyn KeepAlivePolicy {
        &*self.keepalive
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Total execution slots across the cluster.
    pub fn total_slots(&self) -> u64 {
        self.nodes.iter().map(|n| n.cores.capacity()).sum()
    }

    /// Mutable access to a node.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0]
    }

    /// Shared access to a node.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Pre-warms `count` containers for every function on every node.
    pub fn prewarm_all(&mut self, funcs: impl IntoIterator<Item = FuncId> + Clone, count: u32) {
        for n in &mut self.nodes {
            n.containers = ContainerPool::prewarmed(funcs.clone(), count);
        }
    }

    /// Picks the node to run `func`, as decided by the installed
    /// placement policy over a snapshot of per-node free execution
    /// slots. The default ([`crate::policy::LeastLoaded`]) picks the
    /// node with the most free slots, ties broken by lowest index.
    pub fn pick_node(&mut self, func: FuncId) -> NodeId {
        self.free_scratch.clear();
        self.free_scratch
            .extend(self.nodes.iter().map(|n| n.cores.free()));
        let best = self.placement.place(func.0, &self.free_scratch);
        NodeId(best.min(self.nodes.len() - 1))
    }

    /// Assigns a home controller round-robin (requests spread evenly).
    pub fn pick_controller(&mut self) -> NodeId {
        let id = NodeId(self.rr_next);
        self.rr_next = (self.rr_next + 1) % self.nodes.len();
        id
    }

    /// Submits controller work of length `service` at node `ctrl`,
    /// returning the total delay (queueing + service).
    pub fn controller_delay(
        &mut self,
        ctrl: NodeId,
        now: SimTime,
        service: SimDuration,
    ) -> SimDuration {
        self.nodes[ctrl.0].controller.submit(now, service)
    }

    /// Acquires a container for `func` on `node` at `now`.
    ///
    /// Also gives the prewarm policy its per-invocation hook: functions
    /// it predicts will run next begin warming on the same node (so the
    /// successor's creation overlaps this function's execution), unless
    /// that node already holds an idle or warming container for them.
    pub fn acquire_container(
        &mut self,
        node: NodeId,
        func: FuncId,
        now: SimTime,
        model: &OverheadModel,
    ) -> ContainerAcquire {
        let mut targets = std::mem::take(&mut self.prewarm_scratch);
        targets.clear();
        self.prewarm.on_invoke(func.0, &mut targets);
        let pool = &mut self.nodes[node.0].containers;
        for &t in &targets {
            let f = FuncId(t);
            if pool.idle_count(f) == 0 && pool.warming_count(f) == 0 {
                pool.begin_warming(f, now + model.cold_start());
            }
        }
        self.prewarm_scratch = targets;
        pool.acquire(func, now, model, &*self.keepalive)
    }

    /// Releases a container for `func` on `node` at `now`. `reusable ==
    /// false` (container-kill squash) destroys it; otherwise the
    /// keep-alive policy decides whether it survives in the warm pool.
    pub fn release_container(&mut self, node: NodeId, func: FuncId, now: SimTime, reusable: bool) {
        self.nodes[node.0]
            .containers
            .release(func, now, reusable, &*self.keepalive);
    }

    /// Feeds one committed request's function sequence (in commit order)
    /// to the prewarm policy's successor-learning hook.
    pub fn observe_sequence(&mut self, sequence: &[u32]) {
        for w in sequence.windows(2) {
            self.prewarm.observe(w[0], w[1]);
        }
    }

    /// Average execution-slot utilization across all nodes at `now`.
    pub fn utilization(&mut self, now: SimTime) -> f64 {
        let n = self.nodes.len() as f64;
        self.nodes
            .iter_mut()
            .map(|nd| nd.cores.utilization(now))
            .sum::<f64>()
            / n
    }

    /// Resets every node's utilization window (discard warm-up phase).
    pub fn reset_utilization(&mut self, now: SimTime) {
        for n in &mut self.nodes {
            n.cores.reset_utilization_window(now);
        }
    }

    /// Exact integrated busy core-time across all nodes since
    /// construction, never reset — the reference side of the flight
    /// recorder's core-time conservation invariant.
    pub fn busy_core_time_total(&mut self, now: SimTime) -> SimDuration {
        self.nodes
            .iter_mut()
            .map(|n| n.cores.busy_core_time_total(now))
            .sum()
    }

    /// Instantaneous fraction of execution slots that are busy, across
    /// the cluster (used by SpecFaaS depth throttling, §VI).
    pub fn occupancy(&self) -> f64 {
        let busy: u64 = self.nodes.iter().map(|n| n.cores.busy()).sum();
        busy as f64 / self.total_slots() as f64
    }

    /// Empties every node's warm container pool (simulates idle-time
    /// container reclamation; used by the cold-start experiments).
    pub fn flush_warm_containers(&mut self) {
        for n in &mut self.nodes {
            n.containers = ContainerPool::new();
        }
    }

    /// Cold starts served across the cluster.
    pub fn cold_starts(&self) -> u64 {
        self.nodes.iter().map(|n| n.containers.cold_starts()).sum()
    }

    /// Warm starts served across the cluster.
    pub fn warm_starts(&self) -> u64 {
        self.nodes.iter().map(|n| n.containers.warm_starts()).sum()
    }

    /// Idle containers reclaimed by the keep-alive policy, across the
    /// cluster.
    pub fn evictions(&self) -> u64 {
        self.nodes.iter().map(|n| n.containers.evictions()).sum()
    }

    /// Acquisitions that piggybacked on an in-flight prewarm creation.
    pub fn prewarm_hits(&self) -> u64 {
        self.nodes.iter().map(|n| n.containers.prewarm_hits()).sum()
    }

    /// Idle warm containers across the cluster — the warm-pool gauge.
    pub fn warm_pool_total(&self) -> u64 {
        self.nodes.iter().map(|n| n.containers.idle_total()).sum()
    }

    /// Per-function container-lifecycle counters aggregated across all
    /// nodes, sorted by function id (deterministic output order).
    pub fn func_container_stats(&self) -> Vec<(FuncId, FuncContainerStats)> {
        let mut agg: Vec<(FuncId, FuncContainerStats)> = Vec::new();
        for n in &self.nodes {
            for (f, s) in n.containers.per_func_stats() {
                match agg.iter_mut().find(|(g, _)| *g == f) {
                    Some((_, a)) => {
                        a.cold += s.cold;
                        a.warm += s.warm;
                        a.evicted += s.evicted;
                    }
                    None => agg.push((f, s)),
                }
            }
        }
        agg.sort_by_key(|(f, _)| *f);
        agg
    }

    /// Per-node `(busy execution slots, controller queue depth at
    /// `now`)`, in node-index order. Read-only, so metrics sampling can
    /// call it without perturbing any pool or station state.
    pub fn node_gauges(&self, now: SimTime) -> impl Iterator<Item = (usize, u64, usize)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .map(move |(i, n)| (i, n.cores.busy(), n.controller.queue_depth(now)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{PlacementChoice, PrewarmChoice};

    #[test]
    fn paper_testbed_shape() {
        let c = Cluster::paper_testbed();
        assert_eq!(c.nodes(), 5);
        assert_eq!(c.total_slots(), 240);
    }

    #[test]
    fn pick_node_prefers_free_slots() {
        let mut c = Cluster::new(3, 2);
        let f = FuncId(0);
        assert_eq!(c.pick_node(f), NodeId(0), "all equal: lowest index");
        // Occupy both slots of node 0 and one of node 1.
        assert!(c.node_mut(NodeId(0)).cores.try_acquire(SimTime::ZERO));
        assert!(c.node_mut(NodeId(0)).cores.try_acquire(SimTime::ZERO));
        assert!(c.node_mut(NodeId(1)).cores.try_acquire(SimTime::ZERO));
        assert_eq!(c.pick_node(f), NodeId(2));
    }

    #[test]
    fn placement_policy_governs_pick_node() {
        let mut c = Cluster::new(3, 2);
        c.set_policies(&PolicyConfig {
            placement: PlacementChoice::RoundRobin,
            ..PolicyConfig::default()
        });
        let f = FuncId(0);
        assert_eq!(c.pick_node(f), NodeId(0));
        assert_eq!(c.pick_node(f), NodeId(1));
        assert_eq!(c.pick_node(f), NodeId(2));
        assert_eq!(c.pick_node(f), NodeId(0));
    }

    #[test]
    fn controllers_round_robin() {
        let mut c = Cluster::new(2, 1);
        assert_eq!(c.pick_controller(), NodeId(0));
        assert_eq!(c.pick_controller(), NodeId(1));
        assert_eq!(c.pick_controller(), NodeId(0));
    }

    #[test]
    fn controller_delay_queues() {
        let mut c = Cluster::new(1, 1);
        let s = SimDuration::from_millis(2);
        let d1 = c.controller_delay(NodeId(0), SimTime::ZERO, s);
        let d2 = c.controller_delay(NodeId(0), SimTime::ZERO, s);
        assert_eq!(d1, SimDuration::from_millis(2));
        assert_eq!(d2, SimDuration::from_millis(4));
    }

    #[test]
    fn prewarm_covers_all_nodes() {
        let mut c = Cluster::new(2, 1);
        c.prewarm_all([FuncId(0)], 3);
        for i in 0..2 {
            assert_eq!(c.node(NodeId(i)).containers.idle_count(FuncId(0)), 3);
        }
    }

    #[test]
    fn seq_table_prewarm_warms_the_successor() {
        let mut c = Cluster::new(1, 4);
        c.set_policies(&PolicyConfig {
            prewarm: PrewarmChoice::SeqTable,
            ..PolicyConfig::default()
        });
        let model = OverheadModel::default();
        // Teach the table that function 1 follows function 0.
        c.observe_sequence(&[0, 1]);
        c.observe_sequence(&[0, 1]);
        c.acquire_container(NodeId(0), FuncId(0), SimTime::ZERO, &model);
        assert_eq!(
            c.node(NodeId(0)).containers.warming_count(FuncId(1)),
            1,
            "the predicted successor begins warming"
        );
        // Re-acquiring function 0 does not duplicate the warming entry.
        c.acquire_container(NodeId(0), FuncId(0), SimTime::ZERO, &model);
        assert_eq!(c.node(NodeId(0)).containers.warming_count(FuncId(1)), 1);
    }
}
