//! Measurement collection for experiment runs.
//!
//! Everything the evaluation section reports comes from here: per-request
//! response times (mean / percentiles), the per-component breakdown of
//! Fig. 3, CPU utilization including the share attributable to squashed
//! speculative work (Table IV), throughput, and speculation statistics.

use serde::{Deserialize, Serialize};
use specfaas_sim::stats::{HitRate, LatencyRecorder};
use specfaas_sim::{LogHistogram, SimDuration, SimTime};

/// Terminal outcome of one application request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestOutcome {
    /// The request ran to completion and its effects were committed.
    #[default]
    Completed,
    /// The request was aborted: an injected fault exhausted the retry
    /// budget (or the simulation drained with the request unfinished).
    Failed,
}

/// Counters describing injected faults and what the engine did about
/// them. All zeros when fault injection is disabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Faults injected, across all sites.
    pub injected: u64,
    /// Container crashes injected.
    pub crashes: u64,
    /// Transient KV get/set errors injected.
    pub kv_errors: u64,
    /// Speculative slot launches dropped.
    pub slot_drops: u64,
    /// Invocation hangs injected (recoverable only via watchdog timeout).
    pub hangs: u64,
    /// Watchdog timeouts that fired on a live invocation.
    pub timeouts: u64,
    /// Retry attempts scheduled (function-level and storage-level).
    pub retried: u64,
    /// Speculative slots squashed because an earlier function faulted.
    pub squashed_due_to_fault: u64,
    /// Requests aborted after the retry budget was exhausted.
    pub aborted: u64,
}

impl FaultStats {
    /// Component-wise addition.
    pub fn merge(&mut self, other: &FaultStats) {
        self.injected += other.injected;
        self.crashes += other.crashes;
        self.kv_errors += other.kv_errors;
        self.slot_drops += other.slot_drops;
        self.hangs += other.hangs;
        self.timeouts += other.timeouts;
        self.retried += other.retried;
        self.squashed_due_to_fault += other.squashed_due_to_fault;
        self.aborted += other.aborted;
    }

    /// True if nothing was ever injected or acted upon.
    pub fn is_zero(&self) -> bool {
        *self == FaultStats::default()
    }
}

/// Per-invocation time attribution, mirroring the five categories of the
/// paper's Fig. 3.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Breakdown {
    /// Creating the container and its network stack.
    pub container_creation: SimDuration,
    /// Injecting code and starting the docker proxy.
    pub runtime_setup: SimDuration,
    /// Front-end / controller / worker communication and controller
    /// queueing when the request comes.
    pub platform: SimDuration,
    /// Time between a function completing and its successor starting
    /// (conductor or RPC hop).
    pub transfer: SimDuration,
    /// Actual function execution (compute + storage stalls).
    pub execution: SimDuration,
    /// Time spent waiting in retry backoff after an injected fault.
    /// Always zero when fault injection is disabled.
    pub retry_backoff: SimDuration,
}

impl Breakdown {
    /// Sum of all components.
    pub fn total(&self) -> SimDuration {
        self.container_creation
            + self.runtime_setup
            + self.platform
            + self.transfer
            + self.execution
            + self.retry_backoff
    }

    /// Fraction of the total spent in actual execution (Observation 1).
    pub fn execution_fraction(&self) -> f64 {
        let t = self.total();
        if t.is_zero() {
            return 0.0;
        }
        self.execution / t
    }

    /// Component-wise addition.
    pub fn merge(&mut self, other: &Breakdown) {
        self.container_creation += other.container_creation;
        self.runtime_setup += other.runtime_setup;
        self.platform += other.platform;
        self.transfer += other.transfer;
        self.execution += other.execution;
        self.retry_backoff += other.retry_backoff;
    }

    /// Component-wise mean of many breakdowns (empty input → zeros).
    pub fn mean_of(items: &[Breakdown]) -> Breakdown {
        if items.is_empty() {
            return Breakdown::default();
        }
        let mut sum = Breakdown::default();
        for b in items {
            sum.merge(b);
        }
        let n = items.len() as u64;
        Breakdown {
            container_creation: sum.container_creation / n,
            runtime_setup: sum.runtime_setup / n,
            platform: sum.platform / n,
            transfer: sum.transfer / n,
            execution: sum.execution / n,
            retry_backoff: sum.retry_backoff / n,
        }
    }
}

/// The record of one completed application request.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InvocationRecord {
    /// Arrival time.
    pub arrived: SimTime,
    /// Completion time.
    pub completed: SimTime,
    /// Number of function executions (including squashed ones).
    pub functions_run: u32,
    /// Number of function executions squashed.
    pub functions_squashed: u32,
    /// Sequence of committed function ids, in commit order (used by the
    /// Observation-2 most-popular-sequence measurement).
    pub sequence: Vec<u32>,
    /// How the request ended.
    pub outcome: RequestOutcome,
}

impl InvocationRecord {
    /// End-to-end response time.
    pub fn response_time(&self) -> SimDuration {
        self.completed - self.arrived
    }
}

/// Aggregated metrics of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct RunMetrics {
    /// Exact response-time recorder over completed requests. Stores every
    /// sample; kept for tests and error-bound comparisons against the
    /// streaming histogram below.
    pub latency: LatencyRecorder,
    /// Constant-memory response-time histogram (microseconds). The
    /// reporting path ([`RunMetrics::p99_response_ms`] and friends) reads
    /// percentiles from here, bounded within
    /// [`LogHistogram::RELATIVE_ERROR`] of the exact recorder.
    pub latency_hist: LogHistogram,
    /// Per-request records.
    pub records: Vec<InvocationRecord>,
    /// Per-function-invocation breakdowns (Fig. 3).
    pub breakdowns: Vec<Breakdown>,
    /// Requests completed.
    pub completed: u64,
    /// Requests that terminated with [`RequestOutcome::Failed`].
    pub failed: u64,
    /// Requests submitted.
    pub submitted: u64,
    /// Function executions started.
    pub functions_started: u64,
    /// Function executions squashed.
    pub functions_squashed: u64,
    /// Busy core-time spent on work that was later squashed.
    pub squashed_core_time: SimDuration,
    /// Busy core-time spent on committed work.
    pub useful_core_time: SimDuration,
    /// Branch-predictor accuracy (speculative engines only).
    pub branch_hits: HitRate,
    /// Memoization-table accuracy (speculative engines only).
    pub memo_hits: HitRate,
    /// Mean cluster execution-slot utilization over the measured window.
    pub cpu_utilization: f64,
    /// Length of the measured window.
    pub window: SimDuration,
    /// Injected-fault counters and the engine's responses to them.
    pub faults: FaultStats,
}

impl RunMetrics {
    /// Creates empty metrics.
    pub fn new() -> Self {
        RunMetrics::default()
    }

    /// Records a completed request.
    pub fn record_completion(&mut self, rec: InvocationRecord) {
        debug_assert_eq!(rec.outcome, RequestOutcome::Completed);
        self.latency.record(rec.response_time());
        self.latency_hist.record_duration(rec.response_time());
        self.completed += 1;
        self.records.push(rec);
    }

    /// Records a request that terminated with [`RequestOutcome::Failed`]
    /// (retry budget exhausted, or unrecoverable hang). Failed requests
    /// are kept in `records` for inspection but excluded from the latency
    /// recorder — response time of an abort is not a service time.
    pub fn record_failure(&mut self, rec: InvocationRecord) {
        debug_assert_eq!(rec.outcome, RequestOutcome::Failed);
        self.failed += 1;
        self.faults.aborted += 1;
        self.records.push(rec);
    }

    /// Completed requests per second of goodput (failed requests do not
    /// count) — identical to [`RunMetrics::throughput_rps`] today, but
    /// named for fault-injection reports.
    pub fn goodput_rps(&self) -> f64 {
        self.throughput_rps()
    }

    /// Mean response time in milliseconds.
    pub fn mean_response_ms(&self) -> f64 {
        self.latency.mean_ms()
    }

    /// P99 response time in milliseconds, answered by the streaming
    /// histogram in constant memory (within
    /// [`LogHistogram::RELATIVE_ERROR`] of the exact sort-based answer —
    /// and exact for a single sample, whose min and max coincide).
    pub fn p99_response_ms(&self) -> f64 {
        self.latency_hist.quantile_ms(0.99)
    }

    /// P50 response time in milliseconds (streaming histogram).
    pub fn p50_response_ms(&self) -> f64 {
        self.latency_hist.quantile_ms(0.50)
    }

    /// P99.9 response time in milliseconds (streaming histogram).
    pub fn p999_response_ms(&self) -> f64 {
        self.latency_hist.quantile_ms(0.999)
    }

    /// Completed requests per second over the window.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.window.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.completed as f64 / secs
    }

    /// Fraction of busy core-time wasted on squashed work.
    pub fn squashed_work_fraction(&self) -> f64 {
        let total = self.squashed_core_time + self.useful_core_time;
        if total.is_zero() {
            return 0.0;
        }
        self.squashed_core_time / total
    }

    /// The most frequent committed function sequence and its share of all
    /// completed requests (Observation 2). Returns `None` if no requests
    /// completed.
    pub fn most_popular_sequence(&self) -> Option<(Vec<u32>, f64)> {
        use std::collections::HashMap;
        // Failed requests carry partial sequences; only committed runs
        // describe the application's real control flow.
        let done: Vec<&InvocationRecord> = self
            .records
            .iter()
            .filter(|r| r.outcome == RequestOutcome::Completed)
            .collect();
        if done.is_empty() {
            return None;
        }
        let mut counts: HashMap<&[u32], usize> = HashMap::new();
        for r in &done {
            *counts.entry(r.sequence.as_slice()).or_insert(0) += 1;
        }
        // The winner needs a total order: count first, then a
        // deterministic tie-break (longest, then lexicographically
        // smallest sequence) — `max_by_key` alone would resolve ties by
        // `HashMap` iteration order, which differs across runs.
        let (seq, n) = counts
            .into_iter()
            .max_by(|(sa, na), (sb, nb)| {
                na.cmp(nb)
                    .then(sa.len().cmp(&sb.len()))
                    .then_with(|| sb.cmp(sa))
            })
            .expect("non-empty");
        Some((seq.to_vec(), n as f64 / done.len() as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(arr_ms: u64, dur_ms: u64, seq: Vec<u32>) -> InvocationRecord {
        InvocationRecord {
            arrived: SimTime::from_millis(arr_ms),
            completed: SimTime::from_millis(arr_ms + dur_ms),
            functions_run: seq.len() as u32,
            functions_squashed: 0,
            sequence: seq,
            outcome: RequestOutcome::Completed,
        }
    }

    #[test]
    fn breakdown_total_and_fraction() {
        let b = Breakdown {
            platform: SimDuration::from_millis(6),
            transfer: SimDuration::from_millis(6),
            execution: SimDuration::from_millis(8),
            ..Breakdown::default()
        };
        assert_eq!(b.total(), SimDuration::from_millis(20));
        assert!((b.execution_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn breakdown_mean() {
        let a = Breakdown {
            execution: SimDuration::from_millis(10),
            ..Breakdown::default()
        };
        let b = Breakdown {
            execution: SimDuration::from_millis(20),
            ..Breakdown::default()
        };
        let m = Breakdown::mean_of(&[a, b]);
        assert_eq!(m.execution, SimDuration::from_millis(15));
        assert_eq!(Breakdown::mean_of(&[]), Breakdown::default());
    }

    #[test]
    fn run_metrics_throughput() {
        let mut m = RunMetrics::new();
        m.window = SimDuration::from_secs(10);
        for i in 0..50 {
            m.record_completion(rec(i * 10, 5, vec![0, 1]));
        }
        assert_eq!(m.throughput_rps(), 5.0);
        assert_eq!(m.mean_response_ms(), 5.0);
    }

    #[test]
    fn squashed_fraction() {
        let mut m = RunMetrics::new();
        m.useful_core_time = SimDuration::from_millis(90);
        m.squashed_core_time = SimDuration::from_millis(10);
        assert!((m.squashed_work_fraction() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_metrics_edge_cases() {
        let mut m = RunMetrics::new();
        // No samples: percentiles and throughput must degrade to 0, not
        // panic or divide by zero.
        assert_eq!(m.p99_response_ms(), 0.0);
        assert_eq!(m.mean_response_ms(), 0.0);
        assert_eq!(m.throughput_rps(), 0.0);
        assert_eq!(m.goodput_rps(), 0.0);
        assert_eq!(m.squashed_work_fraction(), 0.0);
        assert!(m.most_popular_sequence().is_none());
        assert!(m.faults.is_zero());
        // A window without completions still yields zero throughput.
        m.window = SimDuration::from_secs(5);
        assert_eq!(m.throughput_rps(), 0.0);
    }

    #[test]
    fn single_record_percentiles_are_that_record() {
        let mut m = RunMetrics::new();
        m.record_completion(rec(0, 7, vec![0]));
        assert_eq!(m.p99_response_ms(), 7.0);
        assert_eq!(m.latency.p50_ms(), 7.0);
        assert_eq!(m.mean_response_ms(), 7.0);
        assert_eq!(m.completed, 1);
    }

    #[test]
    fn histogram_p99_tracks_exact_recorder_within_error_bound() {
        use specfaas_sim::SimRng;
        let mut m = RunMetrics::new();
        let mut rng = SimRng::seed(0x0b5e);
        for i in 0..5_000u64 {
            // Long-tailed synthetic response times, 1ms..~10s.
            let dur_ms = 1 + rng.uniform_u64(10) * rng.uniform_u64(1_000);
            m.record_completion(rec(i, dur_ms, vec![0]));
        }
        for (q, exact) in [
            (0.50, m.latency.percentile_ms(50.0)),
            (0.99, m.latency.percentile_ms(99.0)),
        ] {
            let streamed = m.latency_hist.quantile_ms(q);
            let err = (streamed - exact).abs() / exact.max(1e-9);
            assert!(
                err <= LogHistogram::RELATIVE_ERROR,
                "q={q}: streamed {streamed} vs exact {exact} (err {err})"
            );
        }
        // Constant memory: the histogram never stores per-sample state.
        assert!(m.latency_hist.bucket_storage() <= LogHistogram::MAX_BUCKETS);
    }

    #[test]
    fn disjoint_breakdown_merge_is_componentwise_sum() {
        let mut a = Breakdown {
            container_creation: SimDuration::from_millis(3),
            runtime_setup: SimDuration::from_millis(5),
            ..Breakdown::default()
        };
        let b = Breakdown {
            platform: SimDuration::from_millis(7),
            transfer: SimDuration::from_millis(11),
            execution: SimDuration::from_millis(13),
            retry_backoff: SimDuration::from_millis(17),
            ..Breakdown::default()
        };
        a.merge(&b);
        // Disjoint components: the merge must not mix categories.
        assert_eq!(a.container_creation, SimDuration::from_millis(3));
        assert_eq!(a.runtime_setup, SimDuration::from_millis(5));
        assert_eq!(a.platform, SimDuration::from_millis(7));
        assert_eq!(a.transfer, SimDuration::from_millis(11));
        assert_eq!(a.execution, SimDuration::from_millis(13));
        assert_eq!(a.retry_backoff, SimDuration::from_millis(17));
        assert_eq!(a.total(), SimDuration::from_millis(56));
    }

    #[test]
    fn fault_stats_merge_adds_every_counter() {
        let mut a = FaultStats {
            injected: 1,
            crashes: 2,
            kv_errors: 3,
            slot_drops: 4,
            hangs: 5,
            timeouts: 6,
            retried: 7,
            squashed_due_to_fault: 8,
            aborted: 9,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(
            a,
            FaultStats {
                injected: 2,
                crashes: 4,
                kv_errors: 6,
                slot_drops: 8,
                hangs: 10,
                timeouts: 12,
                retried: 14,
                squashed_due_to_fault: 16,
                aborted: 18,
            }
        );
        assert!(!a.is_zero());
    }

    #[test]
    fn failed_requests_counted_but_not_in_latency_or_sequences() {
        let mut m = RunMetrics::new();
        m.window = SimDuration::from_secs(1);
        m.record_completion(rec(0, 5, vec![0, 1]));
        let mut failed = rec(10, 500, vec![0]);
        failed.outcome = RequestOutcome::Failed;
        m.record_failure(failed);
        assert_eq!(m.completed, 1);
        assert_eq!(m.failed, 1);
        assert_eq!(m.faults.aborted, 1);
        // Latency and throughput describe goodput only.
        assert_eq!(m.mean_response_ms(), 5.0);
        assert_eq!(m.throughput_rps(), 1.0);
        // Partial sequences of failed requests don't pollute Obs. 2.
        let (seq, share) = m.most_popular_sequence().unwrap();
        assert_eq!(seq, vec![0, 1]);
        assert_eq!(share, 1.0);
    }

    /// Equal-count, equal-length sequences must resolve deterministically
    /// (lexicographically smallest), not by `HashMap` iteration order.
    #[test]
    fn most_popular_sequence_tie_breaks_deterministically() {
        // Many tied sequences make an iteration-order-dependent pick very
        // unlikely to land on the right one by chance.
        let seqs: Vec<Vec<u32>> = (0..32u32).map(|i| vec![i, i + 1, i + 2]).collect();
        let mut m = RunMetrics::new();
        for (i, s) in seqs.iter().enumerate() {
            m.record_completion(rec(i as u64, 1, s.clone()));
        }
        for _ in 0..10 {
            let (seq, share) = m.most_popular_sequence().unwrap();
            assert_eq!(seq, vec![0, 1, 2], "smallest sequence wins the tie");
            assert!((share - 1.0 / 32.0).abs() < 1e-12);
        }
        // A longer sequence with the same count still outranks the tie.
        let mut m2 = RunMetrics::new();
        m2.record_completion(rec(0, 1, vec![9]));
        m2.record_completion(rec(1, 1, vec![0, 1]));
        assert_eq!(m2.most_popular_sequence().unwrap().0, vec![0, 1]);
    }

    #[test]
    fn most_popular_sequence() {
        let mut m = RunMetrics::new();
        m.record_completion(rec(0, 1, vec![0, 1, 2]));
        m.record_completion(rec(1, 1, vec![0, 1, 2]));
        m.record_completion(rec(2, 1, vec![0, 3]));
        let (seq, share) = m.most_popular_sequence().unwrap();
        assert_eq!(seq, vec![0, 1, 2]);
        assert!((share - 2.0 / 3.0).abs() < 1e-12);
        assert!(RunMetrics::new().most_popular_sequence().is_none());
    }
}
