//! Measurement collection for experiment runs.
//!
//! Everything the evaluation section reports comes from here: per-request
//! response times (mean / percentiles), the per-component breakdown of
//! Fig. 3, CPU utilization including the share attributable to squashed
//! speculative work (Table IV), throughput, and speculation statistics.

use serde::{Deserialize, Serialize};
use specfaas_sim::stats::{HitRate, LatencyRecorder};
use specfaas_sim::{SimDuration, SimTime};

/// Per-invocation time attribution, mirroring the five categories of the
/// paper's Fig. 3.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Breakdown {
    /// Creating the container and its network stack.
    pub container_creation: SimDuration,
    /// Injecting code and starting the docker proxy.
    pub runtime_setup: SimDuration,
    /// Front-end / controller / worker communication and controller
    /// queueing when the request comes.
    pub platform: SimDuration,
    /// Time between a function completing and its successor starting
    /// (conductor or RPC hop).
    pub transfer: SimDuration,
    /// Actual function execution (compute + storage stalls).
    pub execution: SimDuration,
}

impl Breakdown {
    /// Sum of all components.
    pub fn total(&self) -> SimDuration {
        self.container_creation + self.runtime_setup + self.platform + self.transfer + self.execution
    }

    /// Fraction of the total spent in actual execution (Observation 1).
    pub fn execution_fraction(&self) -> f64 {
        let t = self.total();
        if t.is_zero() {
            return 0.0;
        }
        self.execution / t
    }

    /// Component-wise addition.
    pub fn merge(&mut self, other: &Breakdown) {
        self.container_creation += other.container_creation;
        self.runtime_setup += other.runtime_setup;
        self.platform += other.platform;
        self.transfer += other.transfer;
        self.execution += other.execution;
    }

    /// Component-wise mean of many breakdowns (empty input → zeros).
    pub fn mean_of(items: &[Breakdown]) -> Breakdown {
        if items.is_empty() {
            return Breakdown::default();
        }
        let mut sum = Breakdown::default();
        for b in items {
            sum.merge(b);
        }
        let n = items.len() as u64;
        Breakdown {
            container_creation: sum.container_creation / n,
            runtime_setup: sum.runtime_setup / n,
            platform: sum.platform / n,
            transfer: sum.transfer / n,
            execution: sum.execution / n,
        }
    }
}

/// The record of one completed application request.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InvocationRecord {
    /// Arrival time.
    pub arrived: SimTime,
    /// Completion time.
    pub completed: SimTime,
    /// Number of function executions (including squashed ones).
    pub functions_run: u32,
    /// Number of function executions squashed.
    pub functions_squashed: u32,
    /// Sequence of committed function ids, in commit order (used by the
    /// Observation-2 most-popular-sequence measurement).
    pub sequence: Vec<u32>,
}

impl InvocationRecord {
    /// End-to-end response time.
    pub fn response_time(&self) -> SimDuration {
        self.completed - self.arrived
    }
}

/// Aggregated metrics of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct RunMetrics {
    /// Response-time recorder over completed requests.
    pub latency: LatencyRecorder,
    /// Per-request records.
    pub records: Vec<InvocationRecord>,
    /// Per-function-invocation breakdowns (Fig. 3).
    pub breakdowns: Vec<Breakdown>,
    /// Requests completed.
    pub completed: u64,
    /// Requests submitted.
    pub submitted: u64,
    /// Function executions started.
    pub functions_started: u64,
    /// Function executions squashed.
    pub functions_squashed: u64,
    /// Busy core-time spent on work that was later squashed.
    pub squashed_core_time: SimDuration,
    /// Busy core-time spent on committed work.
    pub useful_core_time: SimDuration,
    /// Branch-predictor accuracy (speculative engines only).
    pub branch_hits: HitRate,
    /// Memoization-table accuracy (speculative engines only).
    pub memo_hits: HitRate,
    /// Mean cluster execution-slot utilization over the measured window.
    pub cpu_utilization: f64,
    /// Length of the measured window.
    pub window: SimDuration,
}

impl RunMetrics {
    /// Creates empty metrics.
    pub fn new() -> Self {
        RunMetrics::default()
    }

    /// Records a completed request.
    pub fn record_completion(&mut self, rec: InvocationRecord) {
        self.latency.record(rec.response_time());
        self.completed += 1;
        self.records.push(rec);
    }

    /// Mean response time in milliseconds.
    pub fn mean_response_ms(&self) -> f64 {
        self.latency.mean_ms()
    }

    /// P99 response time in milliseconds.
    pub fn p99_response_ms(&mut self) -> f64 {
        self.latency.p99_ms()
    }

    /// Completed requests per second over the window.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.window.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.completed as f64 / secs
    }

    /// Fraction of busy core-time wasted on squashed work.
    pub fn squashed_work_fraction(&self) -> f64 {
        let total = self.squashed_core_time + self.useful_core_time;
        if total.is_zero() {
            return 0.0;
        }
        self.squashed_core_time / total
    }

    /// The most frequent committed function sequence and its share of all
    /// completed requests (Observation 2). Returns `None` if no requests
    /// completed.
    pub fn most_popular_sequence(&self) -> Option<(Vec<u32>, f64)> {
        if self.records.is_empty() {
            return None;
        }
        use std::collections::HashMap;
        let mut counts: HashMap<&[u32], usize> = HashMap::new();
        for r in &self.records {
            *counts.entry(r.sequence.as_slice()).or_insert(0) += 1;
        }
        let (seq, n) = counts
            .into_iter()
            .max_by_key(|(seq, n)| (*n, seq.len()))
            .expect("non-empty");
        Some((seq.to_vec(), n as f64 / self.records.len() as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(arr_ms: u64, dur_ms: u64, seq: Vec<u32>) -> InvocationRecord {
        InvocationRecord {
            arrived: SimTime::from_millis(arr_ms),
            completed: SimTime::from_millis(arr_ms + dur_ms),
            functions_run: seq.len() as u32,
            functions_squashed: 0,
            sequence: seq,
        }
    }

    #[test]
    fn breakdown_total_and_fraction() {
        let b = Breakdown {
            platform: SimDuration::from_millis(6),
            transfer: SimDuration::from_millis(6),
            execution: SimDuration::from_millis(8),
            ..Breakdown::default()
        };
        assert_eq!(b.total(), SimDuration::from_millis(20));
        assert!((b.execution_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn breakdown_mean() {
        let a = Breakdown {
            execution: SimDuration::from_millis(10),
            ..Breakdown::default()
        };
        let b = Breakdown {
            execution: SimDuration::from_millis(20),
            ..Breakdown::default()
        };
        let m = Breakdown::mean_of(&[a, b]);
        assert_eq!(m.execution, SimDuration::from_millis(15));
        assert_eq!(Breakdown::mean_of(&[]), Breakdown::default());
    }

    #[test]
    fn run_metrics_throughput() {
        let mut m = RunMetrics::new();
        m.window = SimDuration::from_secs(10);
        for i in 0..50 {
            m.record_completion(rec(i * 10, 5, vec![0, 1]));
        }
        assert_eq!(m.throughput_rps(), 5.0);
        assert_eq!(m.mean_response_ms(), 5.0);
    }

    #[test]
    fn squashed_fraction() {
        let mut m = RunMetrics::new();
        m.useful_core_time = SimDuration::from_millis(90);
        m.squashed_core_time = SimDuration::from_millis(10);
        assert!((m.squashed_work_fraction() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn most_popular_sequence() {
        let mut m = RunMetrics::new();
        m.record_completion(rec(0, 1, vec![0, 1, 2]));
        m.record_completion(rec(1, 1, vec![0, 1, 2]));
        m.record_completion(rec(2, 1, vec![0, 3]));
        let (seq, share) = m.most_popular_sequence().unwrap();
        assert_eq!(seq, vec![0, 1, 2]);
        assert!((share - 2.0 / 3.0).abs() < 1e-12);
        assert!(RunMetrics::new().most_popular_sequence().is_none());
    }
}
