//! The platform overhead model — every response-time component the paper
//! characterizes in Fig. 3 plus the SpecFaaS-specific costs of §VI.
//!
//! # Calibration
//!
//! Constants are calibrated so that, in a warmed-up environment, function
//! execution accounts for 33–42 % of per-function response time
//! (Observation 1), per-application execution times match Table I, and the
//! baseline's effective throughput saturates in the ~100 RPS range
//! (Table III). Cold-start components use the values visible in Fig. 3
//! (container creation ≈ 1500 ms dominating everything else).

use serde::{Deserialize, Serialize};
use specfaas_sim::SimDuration;

/// All timing constants of the simulated platform.
///
/// Defaults reproduce the paper's warmed-up OpenWhisk deployment; tests and
/// ablation benches override individual fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverheadModel {
    // ---- Cold-start components (Fig. 3) -------------------------------
    /// Creating the container, its network stack, and connecting it
    /// (≈1500 ms in Fig. 3, by far the largest component).
    pub container_creation: SimDuration,
    /// Injecting function code and starting the docker proxy.
    pub runtime_setup: SimDuration,

    // ---- Warm per-invocation components (Fig. 3) -----------------------
    /// Fixed communication cost between front-end, controller and worker
    /// when a new request comes (the wire part of Platform Overhead).
    pub platform_fixed: SimDuration,
    /// Controller CPU time consumed per function launch (the queued part
    /// of Platform Overhead — inflates under load).
    pub controller_service: SimDuration,
    /// Fixed worker→controller communication after a function completes
    /// (the wire part of Transfer Function Overhead).
    pub transfer_fixed: SimDuration,
    /// Conductor execution time per workflow transition (the queued part
    /// of Transfer Function Overhead).
    pub conductor_service: SimDuration,
    /// Returning the final response to the client.
    pub response_return: SimDuration,

    // ---- SpecFaaS fast-path costs (§V-A, §VI) ---------------------------
    /// Controller CPU per speculative launch via the Sequence Table
    /// (replaces the conductor round trip).
    pub spec_launch_service: SimDuration,
    /// Controller CPU per function validation + commit.
    pub spec_commit_service: SimDuration,
    /// Extra hop latency for a storage operation routed through the
    /// controller's Data Buffer (§V-C).
    pub data_buffer_hop: SimDuration,

    // ---- Squash mechanisms (§VI, "Minimizing Squash Cost") -------------
    /// Killing the handler process inside the container (~1 ms; container
    /// and initializer survive).
    pub process_kill: SimDuration,
    /// Stopping a whole container (~10 s; container is lost).
    pub container_kill: SimDuration,

    // ---- Misc ----------------------------------------------------------
    /// Latency of an external HTTP request issued by a function.
    pub http_latency: SimDuration,
}

impl Default for OverheadModel {
    fn default() -> Self {
        OverheadModel {
            container_creation: SimDuration::from_millis(1500),
            runtime_setup: SimDuration::from_millis(350),
            platform_fixed: SimDuration::from_micros(3_000),
            controller_service: SimDuration::from_micros(2_500),
            transfer_fixed: SimDuration::from_micros(4_000),
            conductor_service: SimDuration::from_micros(2_500),
            response_return: SimDuration::from_micros(1_000),
            spec_launch_service: SimDuration::from_micros(600),
            spec_commit_service: SimDuration::from_micros(600),
            data_buffer_hop: SimDuration::from_micros(300),
            process_kill: SimDuration::from_micros(1_000),
            container_kill: SimDuration::from_secs(10),
            http_latency: SimDuration::from_micros(1_000),
        }
    }
}

impl OverheadModel {
    /// Total cold-start penalty (container creation + runtime setup).
    pub fn cold_start(&self) -> SimDuration {
        self.container_creation + self.runtime_setup
    }

    /// Mean warm per-function overhead at zero load (fixed parts plus
    /// unqueued service times) — handy for calibration checks.
    pub fn warm_per_function_overhead(&self) -> SimDuration {
        self.platform_fixed + self.controller_service + self.transfer_fixed + self.conductor_service
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_scale() {
        let m = OverheadModel::default();
        // Fig. 3: container creation dominates cold start at ~1500ms.
        assert_eq!(m.container_creation, SimDuration::from_millis(1500));
        assert!(m.cold_start() > SimDuration::from_millis(1500));
        // §VI: process kill ~1ms, container kill ~10s.
        assert_eq!(m.process_kill, SimDuration::from_millis(1));
        assert_eq!(m.container_kill, SimDuration::from_secs(10));
    }

    #[test]
    fn observation1_exec_fraction_in_range() {
        // With ~8ms mean function execution, execution should be 33-42%
        // of warm per-function response (Observation 1).
        let m = OverheadModel::default();
        let exec = SimDuration::from_millis(8);
        let total = exec + m.warm_per_function_overhead();
        let frac = exec / total;
        assert!(
            (0.33..=0.42).contains(&frac),
            "execution fraction {frac} outside Observation-1 band"
        );
    }

    #[test]
    fn spec_fast_path_is_cheaper_than_conductor_path() {
        let m = OverheadModel::default();
        assert!(
            m.spec_launch_service + m.spec_commit_service
                < m.controller_service + m.conductor_service
        );
    }
}
