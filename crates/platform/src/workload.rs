//! Workload generation: Poisson arrivals and load levels.
//!
//! Like prior serverless work cited in §VII, the paper models request
//! inter-arrival times as a Poisson process, at Low / Medium / High load
//! levels of 100 / 250 / 500 application requests per second.

use serde::{Deserialize, Serialize};
use specfaas_sim::{SimDuration, SimRng};

/// Identifier of an application request (one workflow invocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

/// The paper's three load levels (§VII).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Load {
    /// 100 requests per second.
    Low,
    /// 250 requests per second.
    Medium,
    /// 500 requests per second.
    High,
}

impl Load {
    /// Requests per second for this level.
    pub fn rps(self) -> f64 {
        match self {
            Load::Low => 100.0,
            Load::Medium => 250.0,
            Load::High => 500.0,
        }
    }

    /// All three levels, in increasing order.
    pub fn all() -> [Load; 3] {
        [Load::Low, Load::Medium, Load::High]
    }

    /// Display name used in result tables.
    pub fn name(self) -> &'static str {
        match self {
            Load::Low => "Low",
            Load::Medium => "Medium",
            Load::High => "High",
        }
    }
}

/// A Poisson arrival process at a fixed rate.
///
/// # Example
///
/// ```
/// use specfaas_platform::Workload;
/// use specfaas_sim::SimRng;
///
/// let mut w = Workload::poisson(100.0);
/// let mut rng = SimRng::seed(1);
/// let gap = w.next_gap(&mut rng);
/// assert!(gap.as_micros() > 0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    rps: f64,
    /// Hoisted `1 / rps`: the mean inter-arrival gap in seconds. Computed
    /// once at construction so the per-arrival hot path is one uniform
    /// draw, one `ln`, and one multiply — no division, no assertion.
    mean_gap_secs: f64,
}

impl Workload {
    /// A Poisson process with the given mean rate (requests per second).
    ///
    /// # Panics
    /// Panics if `rps` is not finite and positive.
    pub fn poisson(rps: f64) -> Self {
        assert!(rps.is_finite() && rps > 0.0, "rps must be positive");
        Workload {
            rps,
            mean_gap_secs: 1.0 / rps,
        }
    }

    /// A Poisson process at one of the paper's load levels.
    pub fn at(load: Load) -> Self {
        Workload::poisson(load.rps())
    }

    /// The mean rate.
    pub fn rps(&self) -> f64 {
        self.rps
    }

    /// Draws the next inter-arrival gap (exponential with mean `1/rps`),
    /// clamped to at least one microsecond so arrivals always advance
    /// time.
    pub fn next_gap(&mut self, rng: &mut SimRng) -> SimDuration {
        // Same draw and arithmetic as `rng.exponential(1.0 / rps)`, with
        // the division hoisted into `mean_gap_secs` at construction. The
        // product is bit-identical because `1.0 / rps` is a deterministic
        // f64 value whether computed here or stored.
        let u = rng.uniform_f64_open();
        let secs = -self.mean_gap_secs * u.ln();
        SimDuration::from_secs_f64(secs).max(SimDuration::from_micros(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_levels_match_paper() {
        assert_eq!(Load::Low.rps(), 100.0);
        assert_eq!(Load::Medium.rps(), 250.0);
        assert_eq!(Load::High.rps(), 500.0);
        assert_eq!(Load::all().len(), 3);
        assert_eq!(Load::High.name(), "High");
    }

    #[test]
    fn poisson_mean_rate_is_close() {
        let mut w = Workload::at(Load::Medium);
        let mut rng = SimRng::seed(7);
        let n = 20_000;
        let total: SimDuration = (0..n).map(|_| w.next_gap(&mut rng)).sum();
        let measured_rps = n as f64 / total.as_secs_f64();
        assert!(
            (measured_rps - 250.0).abs() < 10.0,
            "measured {measured_rps} rps"
        );
    }

    #[test]
    #[should_panic(expected = "rps must be positive")]
    fn zero_rate_rejected() {
        Workload::poisson(0.0);
    }

    /// The hoisted-constant `next_gap` must reproduce the original
    /// `rng.exponential(1.0 / rps)` sequence bit-for-bit: every committed
    /// artifact depends on arrival streams not shifting by one ulp.
    #[test]
    fn hoisted_gap_matches_old_sequence_bit_for_bit() {
        for seed in [1u64, 0xFAA5, 0xDEAD_BEEF] {
            for rps in [100.0, 250.0, 333.7] {
                let mut w = Workload::poisson(rps);
                let mut new_rng = SimRng::seed(seed);
                let mut old_rng = SimRng::seed(seed);
                for i in 0..10_000 {
                    let new = w.next_gap(&mut new_rng);
                    // The pre-hoist implementation, verbatim.
                    let secs = old_rng.exponential(1.0 / rps);
                    let old = SimDuration::from_secs_f64(secs).max(SimDuration::from_micros(1));
                    assert_eq!(new, old, "seed {seed} rps {rps} draw {i}");
                }
            }
        }
    }
}
