//! The baseline execution engine: conventional OpenWhisk-style workflow
//! execution, against which SpecFaaS is compared.
//!
//! Semantics reproduced from §II-B and §III:
//!
//! * Functions execute strictly sequentially: a function is only scheduled
//!   once its control and data dependences are resolved.
//! * Every function launch pays *Platform Overhead* (front-end/controller/
//!   worker communication plus queued controller service).
//! * Every workflow transition pays *Transfer Function Overhead* (worker→
//!   controller communication plus queued conductor execution for explicit
//!   workflows; an RPC hop for implicit calls).
//! * A caller in an implicit workflow blocks — holding its core — while a
//!   callee runs (Fig. 10(d)).
//! * Cold containers pay container creation + runtime setup; warm
//!   containers fork a handler instantly.

use std::cmp::Reverse;

use specfaas_sim::hash::{FxHashMap, FxHashSet};
use std::sync::Arc;

use specfaas_sim::trace::{Phase, TraceEventKind};
use specfaas_sim::FaultSite;
use specfaas_sim::{SimDuration, SimTime};
use specfaas_storage::Value;
use specfaas_workflow::{AppSpec, Effect, EntryKind, FuncId};

use crate::cluster::NodeId;
use crate::container::ContainerAcquire;
use crate::exec::{FnInstance, InstanceId, InstanceState};
use crate::harness::{self, EngineCore, Harness, Runtime};
use crate::metrics::{InvocationRecord, RequestOutcome};
use crate::workload::RequestId;

/// Events of the baseline engine (exposed only as the [`EngineCore::Ev`]
/// associated type).
#[doc(hidden)]
#[derive(Debug)]
pub enum Ev {
    /// A new application request arrives (the generator re-arms itself).
    Arrival,
    /// Platform overhead paid; acquire container + core for the instance.
    Launch(InstanceId),
    /// Cold start finished; acquire a core.
    ContainerReady(InstanceId),
    /// The instance's pending effect completed; step the interpreter.
    Resume(InstanceId, Option<Value>),
    /// Transfer overhead paid; launch workflow entry `entry` of `req` with
    /// the given payload. `from` is the entry that produced the payload:
    /// parallel joins use it to merge branch outputs in declaration order
    /// (compile order), not arrival order, so the merged document is
    /// independent of branch timing — exactly like the speculative
    /// engine's in-order pipeline commit.
    Transfer {
        req: RequestId,
        from: usize,
        entry: usize,
        payload: Value,
    },
    /// Backoff after a transient KV fault elapsed; retry the operation.
    KvRetry(InstanceId, KvOp, u32),
    /// Backoff after an instance fault elapsed; relaunch the function.
    Retry {
        /// The request being retried.
        req: RequestId,
        ctx: InstCtx,
        func: FuncId,
        input: Value,
        attempt: u32,
    },
    /// Invocation watchdog fired for the instance.
    Timeout(InstanceId),
    /// Final response delivered to the client.
    Complete(RequestId),
}

/// A storage operation being retried across transient KV faults.
#[doc(hidden)]
#[derive(Debug, Clone)]
pub enum KvOp {
    Get { key: String },
    Set { key: String, value: Value },
}

/// Why an instance exists: a workflow-entry cursor or an implicit callee.
#[doc(hidden)]
#[derive(Debug, Clone)]
pub enum InstCtx {
    /// Executes workflow entry `entry` of request `req`.
    Entry { req: RequestId, entry: usize },
    /// Executes a subroutine call on behalf of `caller`.
    Callee { req: RequestId, caller: InstanceId },
}

#[derive(Debug)]
struct JoinState {
    need: u32,
    /// `(source entry, payload)` pairs; sorted by source entry at merge
    /// time so the joined list follows branch declaration order.
    outputs: Vec<(usize, Value)>,
}

#[derive(Debug)]
struct ReqState {
    arrived: SimTime,
    ctrl: NodeId,
    /// Number of workflow cursors in flight (forks add, joins subtract).
    cursors: u32,
    joins: FxHashMap<usize, JoinState>,
    functions_run: u32,
    sequence: Vec<u32>,
    /// Output of the last cursor to finish (the response payload).
    last_output: Value,
    /// Counted toward metrics (arrived inside the measurement window)?
    measured: bool,
}

/// The baseline (conventional OpenWhisk) engine for one application: a
/// [`Harness`] wrapped around a [`BaselineCore`].
///
/// # Example
///
/// ```no_run
/// use specfaas_platform::BaselineEngine;
/// # fn app() -> specfaas_workflow::AppSpec { unimplemented!() }
/// let mut engine = BaselineEngine::new(std::sync::Arc::new(app()), 42);
/// engine.prewarm();
/// let metrics = engine.run_closed(100, |_rng| specfaas_storage::Value::Null);
/// println!("mean response: {:.1} ms", metrics.mean_response_ms());
/// ```
pub struct BaselineEngine {
    harness: Harness<BaselineCore>,
}

impl BaselineEngine {
    /// Creates an engine for `app` on the paper's 5-node testbed.
    pub fn new(app: Arc<AppSpec>, seed: u64) -> Self {
        BaselineEngine {
            harness: Harness::new(BaselineCore::new(app, seed)),
        }
    }
}

impl std::ops::Deref for BaselineEngine {
    type Target = Harness<BaselineCore>;
    fn deref(&self) -> &Harness<BaselineCore> {
        &self.harness
    }
}

impl std::ops::DerefMut for BaselineEngine {
    fn deref_mut(&mut self) -> &mut Harness<BaselineCore> {
        &mut self.harness
    }
}

/// The baseline engine core: strictly sequential function scheduling on
/// top of the shared [`Runtime`]. Load drivers and instrument attachment
/// live in the [`Harness`]; only baseline-specific policy state lives
/// here.
pub struct BaselineCore {
    app: Arc<AppSpec>,
    /// Engine-agnostic runtime state (clock, RNG, cluster, KV, faults,
    /// tracer, registry, metrics, generation state).
    rt: Runtime<Ev>,
    /// Retry attempt the instance is executing (absent = first attempt).
    attempt_of: FxHashMap<InstanceId, u32>,
    /// Instances that have acquired a container (released on teardown).
    has_container: FxHashSet<InstanceId>,
    instances: FxHashMap<InstanceId, FnInstance>,
    ctxs: FxHashMap<InstanceId, InstCtx>,
    requests: FxHashMap<RequestId, ReqState>,
}

impl std::ops::Deref for BaselineCore {
    type Target = Runtime<Ev>;
    fn deref(&self) -> &Runtime<Ev> {
        &self.rt
    }
}

impl std::ops::DerefMut for BaselineCore {
    fn deref_mut(&mut self) -> &mut Runtime<Ev> {
        &mut self.rt
    }
}

impl EngineCore for BaselineCore {
    type Ev = Ev;

    // Leftover events after the last closed-loop request are kept, as the
    // historical baseline driver did (bit-identical refactor rule).
    const DRAIN_ON_CLOSED: bool = false;

    fn rt(&self) -> &Runtime<Ev> {
        &self.rt
    }

    fn rt_mut(&mut self) -> &mut Runtime<Ev> {
        &mut self.rt
    }

    fn app(&self) -> &AppSpec {
        &self.app
    }

    fn arrival() -> Ev {
        Ev::Arrival
    }

    fn admit(&mut self, input: Value) -> RequestId {
        self.submit_request(input)
    }

    fn dispatch(&mut self, ev: Ev) {
        self.handle(ev);
    }

    fn request_live(&self, req: RequestId) -> bool {
        self.requests.contains_key(&req)
    }

    fn live_requests(&self) -> Vec<RequestId> {
        let mut stuck: Vec<RequestId> = self.requests.keys().copied().collect();
        stuck.sort(); // HashMap order is not deterministic
        stuck
    }

    fn abort(&mut self, req: RequestId) {
        self.abort_request(req);
    }

    fn live_instances(&self) -> usize {
        self.instances.len()
    }

    fn stuck_requests(&self) -> Vec<String> {
        let mut ids: Vec<RequestId> = self.requests.keys().copied().collect();
        ids.sort(); // HashMap order is not deterministic
        ids.into_iter()
            .map(|rid| {
                let req = &self.requests[&rid];
                let mut insts: Vec<InstanceId> = self
                    .ctxs
                    .iter()
                    .filter(|(_, c)| {
                        matches!(
                            c,
                            InstCtx::Entry { req: r, .. } | InstCtx::Callee { req: r, .. }
                                if *r == rid
                        )
                    })
                    .map(|(id, _)| *id)
                    .collect();
                insts.sort();
                let insts: Vec<String> = insts
                    .into_iter()
                    .map(|id| match self.instances.get(&id) {
                        Some(i) => format!("{}:{:?}:{:?}", id.0, i.func, i.state),
                        None => format!("{}:<pending>", id.0),
                    })
                    .collect();
                format!(
                    "req {}: cursors={} run={} joins={} insts=[{}]",
                    rid.0,
                    req.cursors,
                    req.functions_run,
                    req.joins.len(),
                    insts.join(", "),
                )
            })
            .collect()
    }
}

impl BaselineCore {
    /// Creates the baseline core for `app`, seeded with `seed`.
    pub fn new(app: Arc<AppSpec>, seed: u64) -> Self {
        BaselineCore {
            app,
            rt: Runtime::new(seed),
            attempt_of: FxHashMap::default(),
            has_container: FxHashSet::default(),
            instances: FxHashMap::default(),
            ctxs: FxHashMap::default(),
            requests: FxHashMap::default(),
        }
    }

    /// Samples every gauge at the current simulated time (post-event
    /// state). A disabled registry makes this a single branch.
    fn sample_gauges(&mut self) {
        if !self.rt.registry.enabled() {
            return;
        }
        let now = self.rt.sim.now();
        self.rt.sample_cluster_gauges(now);
        self.rt.sample_kv_gauge(now);
    }

    /// Adds `amount` to the shared squashed-CPU ledger (baseline charges
    /// never cascade).
    fn charge_squashed(&mut self, req: u64, func: FuncId, site: &'static str, amount: SimDuration) {
        self.rt.charge_squashed(req, func, site, 0, amount);
        if amount > SimDuration::ZERO {
            self.rt.topk_by_function(
                "specfaas_wasted_core_us_by_function",
                &self.app,
                func,
                amount.as_micros(),
            );
        }
    }

    /// Request the instance works for, for trace labelling (`u64::MAX`
    /// when the context is already gone).
    fn req_of(&self, id: InstanceId) -> u64 {
        match self.ctxs.get(&id) {
            Some(InstCtx::Entry { req, .. }) | Some(InstCtx::Callee { req, .. }) => req.0,
            None => u64::MAX,
        }
    }

    /// Submits one request at the current simulated time.
    fn submit_request(&mut self, input: Value) -> RequestId {
        let id = self.rt.alloc_req();
        let ctrl = self.rt.cluster.pick_controller();
        let now = self.rt.sim.now();
        self.requests.insert(
            id,
            ReqState {
                arrived: now,
                ctrl,
                cursors: 1,
                joins: FxHashMap::default(),
                functions_run: 0,
                sequence: Vec::new(),
                last_output: Value::Null,
                measured: now >= self.rt.measure_from,
            },
        );
        self.rt.metrics.submitted += 1;
        self.rt.registry.inc("specfaas_requests_submitted_total");
        if self.rt.tracer.enabled() {
            self.rt
                .tracer
                .emit(now, TraceEventKind::RequestArrival { req: id.0 });
        }
        let start = self.app.compiled.start;
        // The workflow start is never a join target, so `from` is moot.
        self.launch_entry(id, start, usize::MAX, input);
        id
    }

    /// Starts the platform-overhead phase for a workflow entry. `from` is
    /// the entry whose output `payload` is (joins merge by it).
    fn launch_entry(&mut self, req: RequestId, entry: usize, from: usize, payload: Value) {
        // Parallel join entries only run once all branches arrive.
        let arity = self.app.compiled.entries[entry].join_arity;
        if arity > 1 {
            let state = self.requests.get_mut(&req).expect("live request");
            let join = state.joins.entry(entry).or_insert(JoinState {
                need: arity,
                outputs: Vec::new(),
            });
            join.outputs.push((from, payload));
            if (join.outputs.len() as u32) < join.need {
                // This cursor merges into the join.
                state.cursors -= 1;
                return;
            }
            let mut outputs = state.joins.remove(&entry).expect("join present").outputs;
            // Declaration order, not arrival order: branch entries are
            // compiled in declaration order, so sorting by source entry
            // makes the merge independent of branch completion timing.
            outputs.sort_by_key(|(from, _)| *from);
            let merged = Value::List(outputs.into_iter().map(|(_, v)| v).collect());
            // Earlier arrivals already merged their cursors; the final
            // arrival continues as the single join cursor.
            self.spawn_function(req, InstCtx::Entry { req, entry }, merged);
            return;
        }
        self.spawn_function(req, InstCtx::Entry { req, entry }, payload);
    }

    /// Creates the instance and charges platform overhead.
    fn spawn_function(&mut self, req: RequestId, ctx: InstCtx, input: Value) {
        let func = match &ctx {
            InstCtx::Entry { entry, .. } => self.app.compiled.entries[*entry].func,
            InstCtx::Callee { .. } => unreachable!("callee spawns go through spawn_callee"),
        };
        self.spawn_named(req, ctx, func, input);
    }

    fn spawn_named(
        &mut self,
        req: RequestId,
        ctx: InstCtx,
        func: FuncId,
        input: Value,
    ) -> InstanceId {
        let now = self.rt.sim.now();
        let ctrl = self.requests[&req].ctrl;
        let delay = self.rt.model.platform_fixed
            + self
                .rt
                .cluster
                .controller_delay(ctrl, now, self.rt.model.controller_service);
        let id = self.alloc_inst();
        let node = self.rt.cluster.pick_node(func);
        let program = self.app.registry.spec(func).program.clone();
        let child_rng = self.rt.rng.split();
        let mut inst = FnInstance::new(id, func, node, &program, input, child_rng, now);
        inst.breakdown.platform = delay;
        self.instances.insert(id, inst);
        self.ctxs.insert(id, ctx);
        self.rt.metrics.functions_started += 1;
        self.rt.registry.inc("specfaas_functions_started_total");
        self.rt
            .topk_by_function("specfaas_requests_by_function", &self.app, func, 1);
        if let Some(r) = self.requests.get_mut(&req) {
            r.functions_run += 1;
        }
        if self.rt.tracer.enabled() {
            self.rt.tracer.emit(
                now,
                TraceEventKind::SlotLaunch {
                    req: req.0,
                    slot: id.0,
                    func: func.0,
                    speculative: false,
                },
            );
            self.rt.tracer.emit(
                now,
                TraceEventKind::Span {
                    req: req.0,
                    func: func.0,
                    node: node.0 as u32,
                    phase: Phase::Platform,
                    end: now + delay,
                },
            );
        }
        self.rt.sim.schedule_in(delay, Ev::Launch(id));
        // Invocation watchdog: the only recovery path for a hung handler.
        if let Some(t) = self.rt.retry.invocation_timeout {
            self.rt.sim.schedule_in(t, Ev::Timeout(id));
        }
        id
    }

    /// Handles container acquisition after platform overhead.
    fn on_launch(&mut self, id: InstanceId) {
        // The instance may have been torn down by a fault while the
        // launch overhead was in flight.
        let Some(inst) = self.instances.get_mut(&id) else {
            return;
        };
        let node = inst.node;
        let func = inst.func;
        self.has_container.insert(id);
        let now = self.rt.sim.now();
        match self
            .rt
            .cluster
            .acquire_container(node, func, now, &self.rt.model)
        {
            ContainerAcquire::Warm => {
                self.rt.registry.inc("specfaas_warm_starts_total");
                if self.rt.tracer.enabled() {
                    let now = self.rt.sim.now();
                    let req = self.req_of(id);
                    self.rt.tracer.emit(
                        now,
                        TraceEventKind::ContainerAcquire {
                            req,
                            func: func.0,
                            node: node.0 as u32,
                            cold: false,
                        },
                    );
                }
                self.try_start(id)
            }
            ContainerAcquire::Cold(d) => {
                self.rt.registry.inc("specfaas_cold_starts_total");
                let inst = self.instances.get_mut(&id).expect("live instance");
                inst.breakdown.container_creation = self.rt.model.container_creation;
                inst.breakdown.runtime_setup = self.rt.model.runtime_setup;
                inst.state = InstanceState::ColdStarting;
                if self.rt.tracer.enabled() {
                    let now = self.rt.sim.now();
                    let req = self.req_of(id);
                    self.rt.tracer.emit(
                        now,
                        TraceEventKind::ContainerAcquire {
                            req,
                            func: func.0,
                            node: node.0 as u32,
                            cold: true,
                        },
                    );
                    let cc = if self.rt.model.container_creation < d {
                        self.rt.model.container_creation
                    } else {
                        d
                    };
                    self.rt.tracer.emit(
                        now,
                        TraceEventKind::Span {
                            req,
                            func: func.0,
                            node: node.0 as u32,
                            phase: Phase::ContainerCreation,
                            end: now + cc,
                        },
                    );
                    if cc < d {
                        self.rt.tracer.emit(
                            now + cc,
                            TraceEventKind::Span {
                                req,
                                func: func.0,
                                node: node.0 as u32,
                                phase: Phase::RuntimeSetup,
                                end: now + d,
                            },
                        );
                    }
                }
                self.rt.sim.schedule_in(d, Ev::ContainerReady(id));
            }
        }
    }

    /// Acquires a core or queues for one.
    fn try_start(&mut self, id: InstanceId) {
        let now = self.rt.sim.now();
        let Some(inst) = self.instances.get_mut(&id) else {
            return;
        };
        let node = inst.node;
        if self.rt.cluster.node_mut(node).cores.try_acquire(now) {
            inst.state = InstanceState::Running;
            inst.started_at = Some(now);
            self.rt.sim.schedule_now(Ev::Resume(id, None));
        } else {
            inst.state = InstanceState::WaitingCore;
            self.rt.cluster.node_mut(node).cores.enqueue(id);
        }
    }

    /// Releases the caller's execution slot while it blocks.
    fn block_instance(&mut self, id: InstanceId) {
        let now = self.rt.sim.now();
        let Some(inst) = self.instances.get_mut(&id) else {
            return;
        };
        if inst.state != InstanceState::Running {
            return;
        }
        if let Some(start) = inst.started_at.take() {
            inst.accumulated_core += now - start;
            if self.rt.tracer.enabled() {
                let (func, node) = (inst.func.0, inst.node.0 as u32);
                self.rt.tracer.emit(
                    start,
                    TraceEventKind::Span {
                        req: match self.ctxs.get(&id) {
                            Some(InstCtx::Entry { req, .. })
                            | Some(InstCtx::Callee { req, .. }) => req.0,
                            None => u64::MAX,
                        },
                        func,
                        node,
                        phase: Phase::Execution,
                        end: now,
                    },
                );
            }
        }
        inst.state = InstanceState::Blocked;
        let node = inst.node;
        if let Some(next) = self.rt.cluster.node_mut(node).cores.release(now) {
            self.grant_core(next, now);
        }
    }

    /// Hands a freed slot to a queued instance and starts/resumes it.
    fn grant_core(&mut self, next: InstanceId, now: SimTime) {
        if let Some(w) = self.instances.get_mut(&next) {
            w.state = InstanceState::Running;
            w.started_at = Some(now);
            let resume = w.pending_resume.take().unwrap_or(None);
            self.rt.sim.schedule_now(Ev::Resume(next, resume));
        }
    }

    /// Steps the interpreter and schedules the effect's completion.
    fn on_resume(&mut self, id: InstanceId, resume: Option<Value>) {
        // A blocked instance must re-acquire an execution slot first.
        let now = self.rt.sim.now();
        if self
            .instances
            .get(&id)
            .map(|i| i.state == InstanceState::Blocked)
            .unwrap_or(false)
        {
            let inst = self.instances.get_mut(&id).expect("live");
            let node = inst.node;
            if self.rt.cluster.node_mut(node).cores.try_acquire(now) {
                let inst = self.instances.get_mut(&id).expect("live");
                inst.state = InstanceState::Running;
                inst.started_at = Some(now);
                // fall through and step with the resume value
            } else {
                let inst = self.instances.get_mut(&id).expect("live");
                inst.pending_resume = Some(resume);
                inst.state = InstanceState::WaitingCore;
                self.rt.cluster.node_mut(node).cores.enqueue(id);
                return;
            }
        }
        // Fault injection at the step boundary: the handler's container
        // crashes, or the handler wedges (hang) and stops making progress.
        // Only before the handler externalizes a write: the baseline
        // applies writes eagerly, so a retry of a partially externalized
        // handler would double-apply non-idempotent effects. We model
        // crashes as fail-stop before the point of no return (real
        // platforms demand idempotent handlers for at-least-once retry).
        if self.rt.faults.enabled()
            && self
                .instances
                .get(&id)
                .map(|i| !i.externalized)
                .unwrap_or(false)
        {
            if self.rt.faults.roll(FaultSite::ContainerCrash, now) {
                self.rt.metrics.faults.injected += 1;
                self.rt.metrics.faults.crashes += 1;
                self.rt.registry.inc_labeled(
                    "specfaas_faults_injected_total",
                    "site",
                    "container_crash",
                );
                if self.rt.tracer.enabled() {
                    let req = self.req_of(id);
                    self.rt.tracer.emit(
                        now,
                        TraceEventKind::FaultInjected {
                            req,
                            site: "container_crash",
                        },
                    );
                }
                self.fault_instance(id);
                return;
            }
            if self.rt.faults.roll(FaultSite::Hang, now) {
                self.rt.metrics.faults.injected += 1;
                self.rt.metrics.faults.hangs += 1;
                self.rt
                    .registry
                    .inc_labeled("specfaas_faults_injected_total", "site", "hang");
                if self.rt.tracer.enabled() {
                    let req = self.req_of(id);
                    self.rt
                        .tracer
                        .emit(now, TraceEventKind::FaultInjected { req, site: "hang" });
                }
                // The wedged handler keeps its core and container but
                // schedules nothing further; only the invocation
                // watchdog (if configured) can recover it.
                return;
            }
        }
        let mut inst = match self.instances.remove(&id) {
            Some(i) => i,
            None => return, // squashed / stale event
        };
        let effect = match inst.step(resume) {
            Ok(e) => e,
            Err(err) => {
                // A failed invocation: treat as completing with an error
                // document so the workflow can proceed deterministically.
                let out = Value::map([("error", Value::str(err.to_string()))]);
                self.instances.insert(id, inst);
                self.finish_instance(id, out);
                return;
            }
        };
        match effect {
            Effect::Compute(d) => {
                inst.breakdown.execution += d;
                self.instances.insert(id, inst);
                self.rt.sim.schedule_in(d, Ev::Resume(id, None));
            }
            Effect::Get { key } => {
                self.instances.insert(id, inst);
                self.kv_access(id, KvOp::Get { key }, 1);
            }
            Effect::Set { key, value } => {
                self.instances.insert(id, inst);
                self.kv_access(id, KvOp::Set { key, value }, 1);
            }
            Effect::Http { .. } => {
                let lat = self.rt.model.http_latency;
                inst.breakdown.execution += lat;
                self.instances.insert(id, inst);
                self.rt.sim.schedule_in(lat, Ev::Resume(id, None));
            }
            Effect::FileWrite { name, data } => {
                inst.files.insert(name, data);
                self.instances.insert(id, inst);
                self.rt.sim.schedule_now(Ev::Resume(id, None));
            }
            Effect::FileRead { name } => {
                let v = inst.files.get(&name).cloned().unwrap_or(Value::Null);
                self.instances.insert(id, inst);
                self.rt.sim.schedule_now(Ev::Resume(id, Some(v)));
            }
            Effect::Call { func, args } => {
                // Implicit workflow: spawn the callee; the caller blocks
                // holding its core (Fig. 10(d)).
                let req = match self.ctxs[&id].clone() {
                    InstCtx::Entry { req, .. } | InstCtx::Callee { req, .. } => req,
                };
                self.instances.insert(id, inst);
                // The caller's handler blocks on the RPC; the OS yields
                // its hardware thread (the container slot stays held).
                self.block_instance(id);
                match self.app.registry.lookup(&func) {
                    Some(callee) => {
                        self.spawn_named(req, InstCtx::Callee { req, caller: id }, callee, args);
                    }
                    None => {
                        // Unknown callee: resolve to Null after an RPC hop.
                        self.rt.sim.schedule_in(
                            self.rt.model.transfer_fixed,
                            Ev::Resume(id, Some(Value::Null)),
                        );
                    }
                }
            }
            Effect::Done(out) => {
                inst.state = InstanceState::Done;
                inst.output = Some(out.clone());
                self.instances.insert(id, inst);
                self.finish_instance(id, out);
            }
        }
    }

    /// Releases resources and routes the output onward.
    fn finish_instance(&mut self, id: InstanceId, output: Value) {
        let now = self.rt.sim.now();
        let inst = self.instances.remove(&id).expect("live instance");
        let ctx = self.ctxs.remove(&id).expect("instance context");
        self.attempt_of.remove(&id);
        self.has_container.remove(&id);
        // Account useful core time and release the slot.
        if let Some(start) = inst.started_at {
            self.rt.metrics.useful_core_time += inst.accumulated_core + (now - start);
            if self.rt.tracer.enabled() {
                let req = match &ctx {
                    InstCtx::Entry { req, .. } | InstCtx::Callee { req, .. } => req.0,
                };
                self.rt.tracer.emit(
                    start,
                    TraceEventKind::Span {
                        req,
                        func: inst.func.0,
                        node: inst.node.0 as u32,
                        phase: Phase::Execution,
                        end: now,
                    },
                );
            }
            if let Some(next) = self.rt.cluster.node_mut(inst.node).cores.release(now) {
                self.grant_core(next, now);
            }
        }
        self.rt
            .cluster
            .release_container(inst.node, inst.func, now, true);
        self.rt.metrics.breakdowns.push(inst.breakdown);

        match ctx {
            InstCtx::Entry { req, entry } => {
                let Some(state) = self.requests.get_mut(&req) else {
                    return;
                };
                state.sequence.push(inst.func.0);
                state.last_output = output.clone();
                let ctrl = state.ctrl;
                // Conductor / transfer overhead for the next transition.
                let transfer = self.rt.model.transfer_fixed
                    + self
                        .rt
                        .cluster
                        .controller_delay(ctrl, now, self.rt.model.conductor_service);
                match self.app.compiled.entries[entry].kind.clone() {
                    EntryKind::Simple { next } => match next {
                        Some(n) => {
                            self.charge_transfer(id, transfer);
                            self.rt.sim.schedule_in(
                                transfer,
                                Ev::Transfer {
                                    req,
                                    from: entry,
                                    entry: n,
                                    payload: output,
                                },
                            );
                        }
                        None => self.cursor_done(req),
                    },
                    EntryKind::Branch {
                        field,
                        taken,
                        not_taken,
                    } => {
                        let cond = match &field {
                            Some(f) => output.get_field(f).cloned().unwrap_or(Value::Null),
                            None => output.clone(),
                        };
                        let target = if cond.truthy() { taken } else { not_taken };
                        match target {
                            Some(n) => {
                                // Branch functions route: the selected
                                // target receives the branch's *input*
                                // payload (§VIII-B: successors of a branch
                                // take the same input as the branch).
                                let payload = inst.interp.input().clone();
                                self.charge_transfer(id, transfer);
                                self.rt.sim.schedule_in(
                                    transfer,
                                    Ev::Transfer {
                                        req,
                                        from: entry,
                                        entry: n,
                                        payload,
                                    },
                                );
                            }
                            None => self.cursor_done(req),
                        }
                    }
                    EntryKind::Fork { branches, join: _ } => {
                        let state = self.requests.get_mut(&req).expect("live request");
                        state.cursors += branches.len() as u32 - 1;
                        self.charge_transfer(id, transfer);
                        for b in branches {
                            self.rt.sim.schedule_in(
                                transfer,
                                Ev::Transfer {
                                    req,
                                    from: entry,
                                    entry: b,
                                    payload: output.clone(),
                                },
                            );
                        }
                    }
                }
            }
            InstCtx::Callee { req, caller } => {
                if let Some(state) = self.requests.get_mut(&req) {
                    state.sequence.push(inst.func.0);
                }
                // RPC return hop, then resume the blocked caller.
                self.rt.sim.schedule_in(
                    self.rt.model.transfer_fixed,
                    Ev::Resume(caller, Some(output)),
                );
            }
        }
    }

    fn charge_transfer(&mut self, _id: InstanceId, transfer: SimDuration) {
        // Transfer time is attributed at the request level via breakdowns
        // of subsequent launches; record it on the last pushed breakdown.
        if let Some(b) = self.rt.metrics.breakdowns.last_mut() {
            b.transfer += transfer;
        }
    }

    // ------------------------------------------------------------------
    // Fault handling: transient KV retries, instance retries, aborts
    // ------------------------------------------------------------------

    /// Performs a storage operation, rolling for a transient KV fault
    /// first. A faulted operation retries after exponential backoff;
    /// exhausting the retry budget escalates to an instance fault.
    fn kv_access(&mut self, id: InstanceId, op: KvOp, attempt: u32) {
        if !self.instances.contains_key(&id) {
            return; // instance torn down while a retry was pending
        }
        let now = self.rt.sim.now();
        let site = match &op {
            KvOp::Get { .. } => FaultSite::KvGet,
            KvOp::Set { .. } => FaultSite::KvSet,
        };
        if self.rt.faults.enabled() && self.rt.faults.roll(site, now) {
            self.rt.metrics.faults.injected += 1;
            self.rt.metrics.faults.kv_errors += 1;
            let fault_site = match &op {
                KvOp::Get { .. } => "kv_get",
                KvOp::Set { .. } => "kv_set",
            };
            self.rt
                .registry
                .inc_labeled("specfaas_faults_injected_total", "site", fault_site);
            if self.rt.tracer.enabled() {
                let req = self.req_of(id);
                self.rt.tracer.emit(
                    now,
                    TraceEventKind::FaultInjected {
                        req,
                        site: fault_site,
                    },
                );
            }
            if attempt >= self.rt.retry.max_attempts {
                self.fault_instance(id);
                return;
            }
            let backoff = self.rt.retry.backoff(attempt);
            if let Some(inst) = self.instances.get_mut(&id) {
                inst.breakdown.retry_backoff += backoff;
            }
            if self.rt.tracer.enabled() {
                let req = self.req_of(id);
                let func = self
                    .instances
                    .get(&id)
                    .map(|i| i.func.0)
                    .unwrap_or(u32::MAX);
                self.rt.tracer.emit(
                    now,
                    TraceEventKind::RetryBackoff {
                        req,
                        func,
                        attempt: attempt + 1,
                        backoff,
                    },
                );
            }
            self.rt.metrics.faults.retried += 1;
            self.rt
                .sim
                .schedule_in(backoff, Ev::KvRetry(id, op, attempt + 1));
            return;
        }
        match op {
            KvOp::Get { key } => {
                let lat = self.rt.kv.latency().read;
                let val = self.rt.kv.get(&key).cloned().unwrap_or(Value::Null);
                if let Some(inst) = self.instances.get_mut(&id) {
                    inst.breakdown.execution += lat;
                }
                self.rt.registry.inc("specfaas_kv_reads_total");
                if self.rt.registry.enabled() {
                    self.rt.kv_pending.push(Reverse(now + lat));
                }
                self.rt.sim.schedule_in(lat, Ev::Resume(id, Some(val)));
            }
            KvOp::Set { key, value } => {
                let lat = self.rt.kv.latency().write;
                self.rt.kv.set(key, value);
                if let Some(inst) = self.instances.get_mut(&id) {
                    inst.breakdown.execution += lat;
                    inst.externalized = true;
                }
                self.rt.registry.inc("specfaas_kv_writes_total");
                if self.rt.registry.enabled() {
                    self.rt.kv_pending.push(Reverse(now + lat));
                }
                // Retrying a caller replays its whole call subtree, so a
                // callee's write externalizes every transitive caller too.
                let mut cur = id;
                while let Some(InstCtx::Callee { caller, .. }) = self.ctxs.get(&cur) {
                    let caller = *caller;
                    if let Some(ci) = self.instances.get_mut(&caller) {
                        ci.externalized = true;
                    }
                    cur = caller;
                }
                self.rt.sim.schedule_in(lat, Ev::Resume(id, None));
            }
        }
    }

    /// Force-removes an instance that died (crash, hang timeout,
    /// exhausted KV retries, or request abort), releasing whatever core
    /// slot, queue position and container it holds. Its container is not
    /// reusable: the handler did not exit cleanly.
    fn teardown_instance(&mut self, id: InstanceId) -> Option<FnInstance> {
        let now = self.rt.sim.now();
        let inst = self.instances.remove(&id)?;
        let charge_req = self.req_of(id);
        match inst.state {
            InstanceState::Running => {
                let wasted = inst.accumulated_core
                    + inst
                        .started_at
                        .map(|s| now - s)
                        .unwrap_or(SimDuration::ZERO);
                self.charge_squashed(charge_req, inst.func, "teardown", wasted);
                if self.rt.tracer.enabled() {
                    if let Some(s) = inst.started_at {
                        let req = self.req_of(id);
                        self.rt.tracer.emit(
                            s,
                            TraceEventKind::Span {
                                req,
                                func: inst.func.0,
                                node: inst.node.0 as u32,
                                phase: Phase::Execution,
                                end: now,
                            },
                        );
                    }
                }
                if inst.started_at.is_some() {
                    if let Some(next) = self.rt.cluster.node_mut(inst.node).cores.release(now) {
                        self.grant_core(next, now);
                    }
                }
            }
            InstanceState::Blocked => {
                self.charge_squashed(charge_req, inst.func, "teardown", inst.accumulated_core);
            }
            InstanceState::WaitingCore => {
                // Past blocked stints count as wasted work even though no
                // core is held at teardown time.
                self.charge_squashed(charge_req, inst.func, "teardown", inst.accumulated_core);
                self.rt
                    .cluster
                    .node_mut(inst.node)
                    .cores
                    .remove_waiter(|w| *w == id);
            }
            _ => {}
        }
        if self.has_container.remove(&id) {
            self.rt
                .cluster
                .release_container(inst.node, inst.func, now, false);
        }
        Some(inst)
    }

    /// An instance suffered an unrecoverable-in-place fault: tear it
    /// down, then relaunch the same function after backoff — or abort
    /// the whole request once the retry budget is exhausted.
    fn fault_instance(&mut self, id: InstanceId) {
        let Some(inst) = self.teardown_instance(id) else {
            return;
        };
        let Some(ctx) = self.ctxs.remove(&id) else {
            return;
        };
        let attempt = self.attempt_of.remove(&id).unwrap_or(1);
        let req = match &ctx {
            InstCtx::Entry { req, .. } | InstCtx::Callee { req, .. } => *req,
        };
        if !self.requests.contains_key(&req) {
            return; // request already aborted
        }
        if attempt >= self.rt.retry.max_attempts {
            self.abort_request(req);
            return;
        }
        self.rt.metrics.faults.retried += 1;
        let input = inst.interp.input().clone();
        if self.rt.tracer.enabled() {
            let now = self.rt.sim.now();
            self.rt.tracer.emit(
                now,
                TraceEventKind::RetryBackoff {
                    req: req.0,
                    func: inst.func.0,
                    attempt: attempt + 1,
                    backoff: self.rt.retry.backoff(attempt),
                },
            );
        }
        self.rt.sim.schedule_in(
            self.rt.retry.backoff(attempt),
            Ev::Retry {
                req,
                ctx,
                func: inst.func,
                input,
                attempt: attempt + 1,
            },
        );
    }

    /// Invocation watchdog: a handler still live past the timeout is
    /// treated as hung and goes through the instance fault path. A
    /// blocked caller (legitimately waiting on a live callee) gets its
    /// watchdog re-armed instead of killed.
    fn on_timeout(&mut self, id: InstanceId) {
        let Some(inst) = self.instances.get(&id) else {
            return;
        };
        if !self.ctxs.contains_key(&id) {
            return;
        }
        match inst.state {
            InstanceState::Done => {}
            InstanceState::Blocked => {
                if let Some(t) = self.rt.retry.invocation_timeout {
                    self.rt.sim.schedule_in(t, Ev::Timeout(id));
                }
            }
            _ => {
                self.rt.metrics.faults.timeouts += 1;
                self.rt
                    .registry
                    .inc_labeled("specfaas_faults_injected_total", "site", "timeout");
                if self.rt.tracer.enabled() {
                    let now = self.rt.sim.now();
                    let req = self.req_of(id);
                    self.rt.tracer.emit(
                        now,
                        TraceEventKind::FaultInjected {
                            req,
                            site: "timeout",
                        },
                    );
                }
                self.fault_instance(id);
            }
        }
    }

    /// Terminally fails a request after its retry budget is exhausted
    /// (or it wedged with no recovery path): tears down every instance
    /// still working for it and records a [`RequestOutcome::Failed`].
    fn abort_request(&mut self, req: RequestId) {
        let now = self.rt.sim.now();
        let Some(state) = self.requests.remove(&req) else {
            return;
        };
        let mut victims: Vec<InstanceId> = self
            .ctxs
            .iter()
            .filter(|(_, c)| {
                matches!(c, InstCtx::Entry { req: r, .. } | InstCtx::Callee { req: r, .. } if *r == req)
            })
            .map(|(id, _)| *id)
            .collect();
        victims.sort(); // HashMap order is not deterministic
        for id in victims {
            // Teardown first so trace spans can still resolve the request.
            self.teardown_instance(id);
            self.ctxs.remove(&id);
            self.attempt_of.remove(&id);
        }
        if self.rt.tracer.enabled() {
            self.rt.tracer.emit(
                now,
                TraceEventKind::Terminal {
                    req: req.0,
                    completed: false,
                },
            );
        }
        self.rt.registry.inc("specfaas_requests_failed_total");
        if state.measured {
            self.rt.metrics.record_failure(InvocationRecord {
                arrived: state.arrived,
                completed: now,
                functions_run: state.functions_run,
                functions_squashed: 0,
                sequence: state.sequence,
                outcome: RequestOutcome::Failed,
            });
        } else {
            self.rt.metrics.faults.aborted += 1;
        }
        // Closed loop: the client observes the failure and issues its
        // next request.
        harness::closed_loop_resubmit(self);
    }

    /// One workflow cursor reached the end of the workflow.
    fn cursor_done(&mut self, req: RequestId) {
        let Some(state) = self.requests.get_mut(&req) else {
            return;
        };
        state.cursors -= 1;
        if state.cursors == 0 {
            self.rt
                .sim
                .schedule_in(self.rt.model.response_return, Ev::Complete(req));
        }
    }

    fn on_complete(&mut self, req: RequestId) {
        let now = self.rt.sim.now();
        let Some(state) = self.requests.remove(&req) else {
            return;
        };
        if self.rt.tracer.enabled() {
            self.rt.tracer.emit(
                now,
                TraceEventKind::Terminal {
                    req: req.0,
                    completed: true,
                },
            );
        }
        self.rt.registry.inc("specfaas_requests_completed_total");
        if state.measured {
            self.rt.record_completion(InvocationRecord {
                arrived: state.arrived,
                completed: now,
                functions_run: state.functions_run,
                functions_squashed: 0,
                sequence: state.sequence,
                outcome: RequestOutcome::Completed,
            });
        }
        // Closed loop: this client immediately issues its next request.
        harness::closed_loop_resubmit(self);
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::Arrival => harness::handle_arrival(self),
            Ev::Launch(id) => self.on_launch(id),
            Ev::ContainerReady(id) => self.try_start(id),
            Ev::Resume(id, v) => self.on_resume(id, v),
            Ev::Transfer {
                req,
                from,
                entry,
                payload,
            } => {
                if self.requests.contains_key(&req) {
                    self.launch_entry(req, entry, from, payload);
                }
            }
            Ev::KvRetry(id, op, attempt) => self.kv_access(id, op, attempt),
            Ev::Retry {
                req,
                ctx,
                func,
                input,
                attempt,
            } => {
                if self.requests.contains_key(&req) {
                    let id = self.spawn_named(req, ctx, func, input);
                    self.attempt_of.insert(id, attempt);
                    if self.rt.tracer.enabled() {
                        let now = self.rt.sim.now();
                        self.rt.tracer.emit(
                            now,
                            TraceEventKind::Replay {
                                req: req.0,
                                slot: id.0,
                            },
                        );
                    }
                }
            }
            Ev::Timeout(id) => self.on_timeout(id),
            Ev::Complete(req) => self.on_complete(req),
        }
        // Gauges observe post-event state; a disabled registry makes this
        // a single branch.
        self.sample_gauges();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfaas_sim::{FaultPlan, RetryPolicy};
    use specfaas_workflow::expr::*;
    use specfaas_workflow::{FunctionRegistry, FunctionSpec, Program, Workflow};

    /// A three-function chain: a -> b -> c, each 5ms of compute; b doubles
    /// the running total read from its input.
    fn chain_app() -> AppSpec {
        let mut reg = FunctionRegistry::new();
        reg.register(FunctionSpec::new(
            "a",
            Program::builder()
                .compute_ms(5)
                .ret(make_map([("v", lit(1i64))])),
        ));
        reg.register(FunctionSpec::new(
            "b",
            Program::builder()
                .compute_ms(5)
                .ret(make_map([("v", mul(field(input(), "v"), lit(2i64)))])),
        ));
        reg.register(FunctionSpec::new(
            "c",
            Program::builder()
                .compute_ms(5)
                .ret(make_map([("v", add(field(input(), "v"), lit(10i64)))])),
        ));
        AppSpec::new(
            "Chain",
            "Test",
            reg,
            Workflow::sequence(vec![
                Workflow::task("a"),
                Workflow::task("b"),
                Workflow::task("c"),
            ]),
        )
    }

    fn branch_app() -> AppSpec {
        let mut reg = FunctionRegistry::new();
        reg.register(FunctionSpec::new(
            "cond",
            Program::builder()
                .compute_ms(2)
                .ret(make_map([("ok", gt(field(input(), "x"), lit(10i64)))])),
        ));
        reg.register(FunctionSpec::new(
            "yes",
            Program::builder().compute_ms(2).ret(lit("yes")),
        ));
        reg.register(FunctionSpec::new(
            "no",
            Program::builder().compute_ms(2).ret(lit("no")),
        ));
        AppSpec::new(
            "Branchy",
            "Test",
            reg,
            Workflow::when_field(
                "cond",
                "ok",
                Workflow::task("yes"),
                Some(Workflow::task("no")),
            ),
        )
    }

    fn implicit_app() -> AppSpec {
        let mut reg = FunctionRegistry::new();
        reg.register(FunctionSpec::new(
            "leaf",
            Program::builder()
                .compute_ms(4)
                .ret(add(field(input(), "n"), lit(100i64))),
        ));
        reg.register(FunctionSpec::new(
            "root",
            Program::builder()
                .compute_ms(3)
                .call("leaf", make_map([("n", lit(1i64))]), "r1")
                .call("leaf", make_map([("n", lit(2i64))]), "r2")
                .compute_ms(3)
                .ret(make_list([var("r1"), var("r2")])),
        ));
        AppSpec::new("Implicit", "Test", reg, Workflow::task("root"))
    }

    #[test]
    fn warm_chain_completes_with_expected_shape() {
        let mut e = BaselineEngine::new(Arc::new(chain_app()), 1);
        e.prewarm();
        let d = e.run_single(Value::Null);
        // 3 functions × (platform ~5.5ms + exec 5ms) + 2 transfers ~6.5ms
        // + response return 1ms ≈ 45ms; allow slack.
        assert!(d > SimDuration::from_millis(30), "too fast: {d}");
        assert!(d < SimDuration::from_millis(70), "too slow: {d}");
        assert_eq!(e.metrics.records.len(), 1);
        let rec = &e.metrics.records[0];
        assert_eq!(rec.sequence, vec![0, 1, 2]);
        assert_eq!(rec.functions_run, 3);
    }

    #[test]
    fn cold_chain_is_dominated_by_container_creation() {
        let mut e = BaselineEngine::new(Arc::new(chain_app()), 1);
        // no prewarm
        let d = e.run_single(Value::Null);
        assert!(
            d > SimDuration::from_millis(3 * 1850),
            "3 cold starts expected: {d}"
        );
        assert_eq!(e.cluster.cold_starts(), 3);
    }

    #[test]
    fn second_invocation_reuses_warm_containers() {
        let mut e = BaselineEngine::new(Arc::new(chain_app()), 1);
        let cold = e.run_single(Value::Null);
        let warm = e.run_single(Value::Null);
        assert!(warm < cold / 10);
        assert_eq!(e.cluster.cold_starts(), 3, "no new cold starts");
    }

    #[test]
    fn branch_takes_data_dependent_path() {
        let app = Arc::new(branch_app());
        let mut e = BaselineEngine::new(Arc::clone(&app), 1);
        e.prewarm();
        e.run_single(Value::map([("x", Value::Int(50))]));
        e.run_single(Value::map([("x", Value::Int(5))]));
        let yes = app.registry.lookup("yes").unwrap().0;
        let no = app.registry.lookup("no").unwrap().0;
        assert_eq!(e.metrics.records[0].sequence[1], yes);
        assert_eq!(e.metrics.records[1].sequence[1], no);
    }

    #[test]
    fn implicit_calls_block_caller_and_return_values() {
        let mut e = BaselineEngine::new(Arc::new(implicit_app()), 1);
        e.prewarm();
        let d = e.run_single(Value::Null);
        // Root compute 6ms + two callees 4ms each + overheads, strictly
        // sequential.
        assert!(d > SimDuration::from_millis(14), "too fast: {d}");
        let rec = &e.metrics.records[0];
        // Callees complete before the root.
        assert_eq!(rec.functions_run, 3);
        assert_eq!(rec.sequence.len(), 3);
        assert_eq!(*rec.sequence.last().unwrap(), 1, "root commits last");
    }

    #[test]
    fn parallel_fork_join_merges_outputs() {
        let mut reg = FunctionRegistry::new();
        reg.register(FunctionSpec::new(
            "pre",
            Program::builder().compute_ms(1).ret(lit(7i64)),
        ));
        reg.register(FunctionSpec::new(
            "b1",
            Program::builder()
                .compute_ms(1)
                .ret(add(input(), lit(1i64))),
        ));
        reg.register(FunctionSpec::new(
            "b2",
            Program::builder()
                .compute_ms(1)
                .ret(add(input(), lit(2i64))),
        ));
        reg.register(FunctionSpec::new(
            "join",
            Program::builder().compute_ms(1).ret(len(input())),
        ));
        let app = AppSpec::new(
            "Par",
            "Test",
            reg,
            Workflow::sequence(vec![
                Workflow::task("pre"),
                Workflow::parallel(vec![Workflow::task("b1"), Workflow::task("b2")]),
                Workflow::task("join"),
            ]),
        );
        let mut e = BaselineEngine::new(Arc::new(app), 3);
        e.prewarm();
        e.run_single(Value::Null);
        let rec = &e.metrics.records[0];
        assert_eq!(rec.functions_run, 4);
        // join sees a 2-element list; last committed function is join (id 3).
        assert_eq!(*rec.sequence.last().unwrap(), 3);
    }

    #[test]
    fn open_loop_run_completes_requests() {
        let mut e = BaselineEngine::new(Arc::new(chain_app()), 5);
        e.prewarm();
        let m = e.run_open(
            50.0,
            SimDuration::from_secs(2),
            SimDuration::from_millis(200),
            |_| Value::Null,
        );
        assert!(m.completed > 50, "completed {}", m.completed);
        assert!(m.throughput_rps() > 30.0);
        assert!(m.mean_response_ms() > 10.0);
    }

    #[test]
    fn storage_effects_update_global_state() {
        let mut reg = FunctionRegistry::new();
        reg.register(FunctionSpec::new(
            "writer",
            Program::builder()
                .set(lit("shared"), lit(41i64))
                .ret(lit(true)),
        ));
        reg.register(FunctionSpec::new(
            "reader",
            Program::builder()
                .get(lit("shared"), "v")
                .ret(add(var("v"), lit(1i64))),
        ));
        let app = AppSpec::new(
            "RW",
            "Test",
            reg,
            Workflow::sequence(vec![Workflow::task("writer"), Workflow::task("reader")]),
        );
        let mut e = BaselineEngine::new(Arc::new(app), 1);
        e.prewarm();
        e.run_single(Value::Null);
        assert_eq!(e.kv.peek("shared"), Some(&Value::Int(41)));
        assert_eq!(e.requests.len(), 0, "request state cleaned up");
    }

    #[test]
    fn exec_fraction_matches_observation1() {
        let mut e = BaselineEngine::new(Arc::new(chain_app()), 1);
        e.prewarm();
        e.run_single(Value::Null);
        let mean = crate::metrics::Breakdown::mean_of(&e.metrics.breakdowns);
        let frac = mean.execution_fraction();
        assert!(
            (0.25..=0.55).contains(&frac),
            "execution fraction {frac} out of plausible warm band"
        );
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    #[test]
    fn empty_fault_plan_is_bit_identical_to_disabled() {
        let run = |enable: bool| {
            let mut e = BaselineEngine::new(Arc::new(chain_app()), 3);
            if enable {
                e.enable_faults(FaultPlan::none(), RetryPolicy::default());
            }
            e.prewarm();
            let m = e.run_concurrent(
                4,
                SimDuration::from_secs(1),
                SimDuration::from_millis(100),
                |_| Value::Null,
            );
            (
                m.completed,
                m.latency.mean_ms().to_bits(),
                m.useful_core_time,
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn crash_faults_retry_and_recover() {
        let mut e = BaselineEngine::new(Arc::new(chain_app()), 1);
        e.enable_faults(
            FaultPlan::none().with_container_crash(0.15),
            RetryPolicy::default().with_max_attempts(10),
        );
        e.prewarm();
        let m = e.run_closed(20, |_| Value::Null);
        assert_eq!(m.completed, 20, "all requests survive with retries");
        assert_eq!(m.failed, 0);
        assert!(m.faults.crashes > 0, "crash faults should have fired");
        assert_eq!(m.faults.crashes, m.faults.retried);
        for r in &m.records {
            assert_eq!(r.sequence, vec![0, 1, 2]);
        }
    }

    #[test]
    fn exhausted_retries_abort_with_failed_outcome() {
        let mut e = BaselineEngine::new(Arc::new(chain_app()), 1);
        e.enable_faults(
            FaultPlan::none().with_container_crash(1.0),
            RetryPolicy::default().with_max_attempts(2),
        );
        e.prewarm();
        let m = e.run_closed(3, |_| Value::Null);
        assert_eq!(m.completed, 0);
        assert_eq!(m.failed, 3);
        assert!(m
            .records
            .iter()
            .all(|r| r.outcome == RequestOutcome::Failed));
        assert_eq!(e.requests.len(), 0, "aborted request state cleaned up");
    }

    #[test]
    fn kv_faults_retry_without_corrupting_state() {
        let mut reg = FunctionRegistry::new();
        reg.register(FunctionSpec::new(
            "writer",
            Program::builder()
                .set(lit("shared"), lit(41i64))
                .ret(lit(true)),
        ));
        let app = AppSpec::new("W", "Test", reg, Workflow::task("writer"));
        let mut e = BaselineEngine::new(Arc::new(app), 1);
        e.enable_faults(
            FaultPlan::none().with_kv_set(0.5),
            RetryPolicy::default().with_max_attempts(10),
        );
        e.prewarm();
        let m = e.run_closed(10, |_| Value::Null);
        assert_eq!(m.completed, 10);
        assert!(m.faults.kv_errors > 0);
        assert_eq!(e.kv.peek("shared"), Some(&Value::Int(41)));
    }

    #[test]
    fn watchdog_rescues_hung_invocations() {
        let mut e = BaselineEngine::new(Arc::new(chain_app()), 1);
        e.enable_faults(
            FaultPlan::none()
                .with_hang(1.0)
                .with_window(SimTime::ZERO, Some(SimTime::from_millis(30))),
            RetryPolicy::default()
                .with_timeout(SimDuration::from_millis(100))
                .with_max_attempts(5),
        );
        e.prewarm();
        e.run_single(Value::Null);
        let m = e.run_closed(0, |_| Value::Null);
        assert_eq!(m.completed, 1, "watchdog should rescue the hung request");
        assert!(m.faults.timeouts >= 1);
        assert!(m.faults.retried >= 1);
    }

    #[test]
    fn stuck_report_names_hung_requests() {
        let mut e = BaselineEngine::new(Arc::new(chain_app()), 1);
        e.enable_faults(FaultPlan::none().with_hang(1.0), RetryPolicy::default());
        e.prewarm();
        assert!(e.stuck_report().is_empty(), "no requests in flight yet");
        // Submit directly (bypassing the drivers' abort-on-drain) and
        // step the simulation dry: the injected hang wedges the request
        // with no event left to wake it.
        let req = e.core.admit(Value::Null);
        while let Some((_, ev)) = e.sim.step() {
            e.core.dispatch(ev);
        }
        let report = e.stuck_report();
        assert_eq!(report.len(), 1, "one wedged request: {report:?}");
        assert!(
            report[0].starts_with(&format!("req {}:", req.0)),
            "report names the request: {}",
            report[0]
        );
        assert!(
            report[0].contains("insts=["),
            "report lists instance states: {}",
            report[0]
        );
        // Aborting the wedged request (what the drivers' drain does)
        // records the failure and empties the report again.
        e.core.abort(req);
        assert!(e.stuck_report().is_empty());
        let m = e.run_closed(0, |_| Value::Null);
        assert_eq!(m.failed, 1);
    }

    #[test]
    fn hang_without_timeout_aborts_on_drain() {
        let mut e = BaselineEngine::new(Arc::new(chain_app()), 1);
        e.enable_faults(FaultPlan::none().with_hang(1.0), RetryPolicy::default());
        e.prewarm();
        e.run_single(Value::Null);
        let m = e.run_closed(0, |_| Value::Null);
        assert_eq!(m.failed, 1);
        assert!(m.faults.hangs >= 1);
    }

    #[test]
    fn fault_counters_are_deterministic_per_seed() {
        let run = || {
            let mut e = BaselineEngine::new(Arc::new(chain_app()), 9);
            e.enable_faults(
                FaultPlan::none().with_container_crash(0.2).with_kv_get(0.1),
                RetryPolicy::default().with_max_attempts(8),
            );
            e.prewarm();
            let m = e.run_concurrent(
                3,
                SimDuration::from_secs(1),
                SimDuration::from_millis(100),
                |_| Value::Null,
            );
            (m.completed, m.failed, m.faults)
        };
        assert_eq!(run(), run());
    }
}
