//! The speculation-health scoreboard: one row per (app, run).
//!
//! A [`ScoreboardRow`] condenses everything the paper's evaluation cares
//! about into a glanceable health summary — speculation accuracy, memo
//! hit rate, squash depth, wasted-vs-useful core time, warm-pool
//! effectiveness, and streaming tail latencies — assembled from a run's
//! [`RunMetrics`] and the [`MetricsRegistry`] instruments armed through
//! the harness ([`crate::Harness::scoreboard`] is the convenience
//! constructor). Rows render as a fixed-width text table
//! ([`render_table`]) and as hand-formatted JSONL ([`ScoreboardRow::jsonl`]
//! — the workspace `serde` is a no-op stub, so no derive-based
//! serialization exists), both byte-deterministic.

use specfaas_sim::timeseries::MetricsRegistry;
use specfaas_sim::LogHistogram;

use crate::metrics::RunMetrics;

/// One scoreboard row: the speculation health of a single run.
#[derive(Debug, Clone)]
pub struct ScoreboardRow {
    /// Application name.
    pub app: String,
    /// Engine that produced the run (`"spec"` / `"baseline"`).
    pub engine: &'static str,
    /// Requests completed.
    pub completed: u64,
    /// Requests failed.
    pub failed: u64,
    /// Branch-predictor accuracy in `[0, 1]` (speculation accuracy).
    pub branch_accuracy: f64,
    /// Branch predictions made.
    pub branch_total: u64,
    /// Memoization-table hit rate in `[0, 1]`.
    pub memo_hit_rate: f64,
    /// Streaming p50 response latency, milliseconds.
    pub p50_ms: f64,
    /// Streaming p99 response latency, milliseconds.
    pub p99_ms: f64,
    /// Streaming p99.9 response latency, milliseconds.
    pub p999_ms: f64,
    /// Per-request squash-depth histogram (functions squashed per
    /// completed request).
    pub squash_depth: LogHistogram,
    /// Core-time spent on committed work, milliseconds.
    pub useful_core_ms: f64,
    /// Core-time wasted on squashed work, milliseconds.
    pub squashed_core_ms: f64,
    /// Container acquisitions served from the warm pool.
    pub warm_starts: u64,
    /// Container acquisitions that paid a cold start.
    pub cold_starts: u64,
    /// Top wasted-core-time functions as `(app/function, microseconds)`,
    /// heaviest first (from the registry's Space-Saving sketch; empty
    /// when the registry was not armed or nothing was squashed).
    pub wasted_topk: Vec<(String, u64)>,
    /// Idle containers reclaimed by the keep-alive policy (TTL expiry,
    /// cap pressure, or no-keep-alive teardown), cluster-wide. Filled by
    /// [`crate::Harness::scoreboard`]; zero when built directly.
    pub evictions: u64,
    /// Per-function container lifecycle as `(function, cold, warm,
    /// evicted)`, in function-id order. Tracked by the container pools —
    /// not the registry — so the counters exist even in uninstrumented
    /// runs. Filled by [`crate::Harness::scoreboard`]; empty when built
    /// directly.
    pub func_containers: Vec<(String, u64, u64, u64)>,
}

impl ScoreboardRow {
    /// Assembles a row from a run's metrics and the registry that was
    /// armed during it. The squash-depth histogram comes from the
    /// registry's `specfaas_request_squashed_functions` instrument when
    /// present, else is rebuilt from the per-request records.
    pub fn build(
        app: &str,
        engine: &'static str,
        metrics: &RunMetrics,
        registry: &MetricsRegistry,
    ) -> ScoreboardRow {
        let squash_depth = registry
            .histogram("specfaas_request_squashed_functions", "", "")
            .cloned()
            .unwrap_or_else(|| {
                let mut h = LogHistogram::new();
                for r in &metrics.records {
                    h.record(r.functions_squashed as u64);
                }
                h
            });
        let wasted_topk = registry
            .topk("specfaas_wasted_core_us_by_function")
            .map(|s| {
                s.top()
                    .into_iter()
                    .map(|(k, e)| (k, e.count))
                    .collect::<Vec<_>>()
            })
            .unwrap_or_default();
        ScoreboardRow {
            app: app.to_string(),
            engine,
            completed: metrics.completed,
            failed: metrics.failed,
            branch_accuracy: metrics.branch_hits.rate(),
            branch_total: metrics.branch_hits.total(),
            memo_hit_rate: metrics.memo_hits.rate(),
            p50_ms: metrics.p50_response_ms(),
            p99_ms: metrics.p99_response_ms(),
            p999_ms: metrics.p999_response_ms(),
            squash_depth,
            useful_core_ms: metrics.useful_core_time.as_millis_f64(),
            squashed_core_ms: metrics.squashed_core_time.as_millis_f64(),
            warm_starts: registry.counter("specfaas_warm_starts_total", "", ""),
            cold_starts: registry.counter("specfaas_cold_starts_total", "", ""),
            wasted_topk,
            evictions: 0,
            func_containers: Vec::new(),
        }
    }

    /// Fraction of busy core-time wasted on squashed work.
    pub fn wasted_fraction(&self) -> f64 {
        let total = self.useful_core_ms + self.squashed_core_ms;
        if total == 0.0 {
            0.0
        } else {
            self.squashed_core_ms / total
        }
    }

    /// Fraction of container acquisitions served warm (warm-pool
    /// effectiveness), or 0 with no acquisitions observed.
    pub fn warm_rate(&self) -> f64 {
        let total = self.warm_starts + self.cold_starts;
        if total == 0 {
            0.0
        } else {
            self.warm_starts as f64 / total as f64
        }
    }

    /// Fraction of container acquisitions that paid a cold start —
    /// computed from the per-function pool counters when present (they
    /// survive even uninstrumented runs), else from the registry-fed
    /// totals. 0 with no acquisitions observed.
    pub fn cold_rate(&self) -> f64 {
        let (cold, warm) = if self.func_containers.is_empty() {
            (self.cold_starts, self.warm_starts)
        } else {
            self.func_containers
                .iter()
                .fold((0, 0), |(c, w), (_, fc, fw, _)| (c + fc, w + fw))
        };
        let total = cold + warm;
        if total == 0 {
            0.0
        } else {
            cold as f64 / total as f64
        }
    }

    /// Compact squash-depth rendering: `depth:count` pairs over the
    /// non-empty buckets, e.g. `0:912 1:71 2:17`. Depths 0–63 sit in the
    /// histogram's exact linear region, so counts are exact; deeper
    /// (bucketed) depths render as `lo-hi:count` ranges.
    pub fn squash_depth_summary(&self) -> String {
        let mut out = String::new();
        for (lo, hi, count) in self.squash_depth.nonzero_buckets() {
            if !out.is_empty() {
                out.push(' ');
            }
            if hi - lo == 1 {
                out.push_str(&format!("{lo}:{count}"));
            } else {
                out.push_str(&format!("{lo}-{}:{count}", hi - 1));
            }
        }
        if out.is_empty() {
            out.push('-');
        }
        out
    }

    /// Renders the row as one JSON object (hand-formatted; deterministic
    /// key order, integers and fixed-precision floats only).
    pub fn jsonl(&self) -> String {
        let mut topk = String::from("[");
        for (i, (key, us)) in self.wasted_topk.iter().enumerate() {
            if i > 0 {
                topk.push_str(", ");
            }
            topk.push_str(&format!("{{\"key\": \"{key}\", \"wasted_us\": {us}}}"));
        }
        topk.push(']');
        let mut containers = String::from("[");
        for (i, (func, cold, warm, evicted)) in self.func_containers.iter().enumerate() {
            if i > 0 {
                containers.push_str(", ");
            }
            containers.push_str(&format!(
                "{{\"fn\": \"{func}\", \"cold\": {cold}, \"warm\": {warm}, \"evicted\": {evicted}}}"
            ));
        }
        containers.push(']');
        format!(
            "{{\"app\": \"{}\", \"engine\": \"{}\", \"completed\": {}, \"failed\": {}, \
             \"branch_accuracy\": {:.4}, \"branch_total\": {}, \"memo_hit_rate\": {:.4}, \
             \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"p999_ms\": {:.3}, \
             \"squash_depth\": \"{}\", \"useful_core_ms\": {:.3}, \"squashed_core_ms\": {:.3}, \
             \"wasted_fraction\": {:.4}, \"warm_starts\": {}, \"cold_starts\": {}, \
             \"warm_rate\": {:.4}, \"evictions\": {}, \"wasted_topk\": {}, \
             \"containers\": {}}}",
            self.app,
            self.engine,
            self.completed,
            self.failed,
            self.branch_accuracy,
            self.branch_total,
            self.memo_hit_rate,
            self.p50_ms,
            self.p99_ms,
            self.p999_ms,
            self.squash_depth_summary(),
            self.useful_core_ms,
            self.squashed_core_ms,
            self.wasted_fraction(),
            self.warm_starts,
            self.cold_starts,
            self.warm_rate(),
            self.evictions,
            topk,
            containers,
        )
    }
}

/// Renders scoreboard rows as a fixed-width text table, one line per row,
/// in input order.
pub fn render_table(rows: &[ScoreboardRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:>6} {:>5} {:>7} {:>7} {:>9} {:>9} {:>9} {:>8} {:>6}  {}\n",
        "app",
        "done",
        "fail",
        "brAcc",
        "memoHit",
        "p50ms",
        "p99ms",
        "p999ms",
        "wasted%",
        "warm%",
        "squash depth",
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<22} {:>6} {:>5} {:>6.1}% {:>6.1}% {:>9.2} {:>9.2} {:>9.2} {:>7.1}% {:>5.0}%  {}\n",
            r.app,
            r.completed,
            r.failed,
            r.branch_accuracy * 100.0,
            r.memo_hit_rate * 100.0,
            r.p50_ms,
            r.p99_ms,
            r.p999_ms,
            r.wasted_fraction() * 100.0,
            r.warm_rate() * 100.0,
            r.squash_depth_summary(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{InvocationRecord, RequestOutcome};
    use specfaas_sim::{SimDuration, SimTime};

    fn metrics_with(n: u64, squashed: u32) -> RunMetrics {
        let mut m = RunMetrics::new();
        for i in 0..n {
            m.record_completion(InvocationRecord {
                arrived: SimTime::from_millis(i),
                completed: SimTime::from_millis(i + 10),
                functions_run: 3,
                functions_squashed: squashed,
                sequence: vec![0, 1, 2],
                outcome: RequestOutcome::Completed,
            });
        }
        m.useful_core_time = SimDuration::from_millis(900);
        m.squashed_core_time = SimDuration::from_millis(100);
        m
    }

    #[test]
    fn row_builds_from_metrics_without_registry() {
        let m = metrics_with(5, 2);
        let reg = MetricsRegistry::disabled();
        let row = ScoreboardRow::build("hotel_booking", "spec", &m, &reg);
        assert_eq!(row.completed, 5);
        assert_eq!(row.p50_ms, 10.0);
        // Squash depth rebuilt from records: all 5 requests at depth 2.
        assert_eq!(row.squash_depth_summary(), "2:5");
        assert!((row.wasted_fraction() - 0.1).abs() < 1e-12);
        assert!(row.wasted_topk.is_empty());
        assert_eq!(row.warm_rate(), 0.0);
    }

    #[test]
    fn row_prefers_registry_instruments() {
        let m = metrics_with(2, 0);
        let mut reg = MetricsRegistry::recording();
        reg.observe("specfaas_request_squashed_functions", 7);
        reg.topk_add("specfaas_wasted_core_us_by_function", "app/fn_a", 500);
        reg.topk_add("specfaas_wasted_core_us_by_function", "app/fn_b", 900);
        reg.inc_by("specfaas_warm_starts_total", 9);
        reg.inc_by("specfaas_cold_starts_total", 1);
        let row = ScoreboardRow::build("hotel_booking", "spec", &m, &reg);
        assert_eq!(row.squash_depth_summary(), "7:1");
        assert_eq!(row.wasted_topk[0], ("app/fn_b".to_string(), 900));
        assert!((row.warm_rate() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn jsonl_and_table_render_deterministically() {
        let m = metrics_with(3, 1);
        let reg = MetricsRegistry::disabled();
        let row = ScoreboardRow::build("train_ticket", "baseline", &m, &reg);
        let json = row.jsonl();
        assert!(json.starts_with("{\"app\": \"train_ticket\""));
        assert!(json.contains("\"p99_ms\": 10.000"));
        assert!(json.contains("\"wasted_topk\": []"));
        assert!(json.contains("\"evictions\": 0"));
        assert!(json.contains("\"containers\": []"));
        let table = render_table(std::slice::from_ref(&row));
        assert_eq!(table.lines().count(), 2);
        assert!(table.contains("train_ticket"));
        assert_eq!(table, render_table(std::slice::from_ref(&row)));
    }

    #[test]
    fn container_counters_render_and_rate() {
        let m = metrics_with(1, 0);
        let reg = MetricsRegistry::disabled();
        let mut row = ScoreboardRow::build("hotel_booking", "spec", &m, &reg);
        row.evictions = 4;
        row.func_containers = vec![
            ("search".to_string(), 1, 9, 0),
            ("book".to_string(), 3, 7, 4),
        ];
        assert!((row.cold_rate() - 0.2).abs() < 1e-12);
        let json = row.jsonl();
        assert!(json.contains("\"evictions\": 4"));
        assert!(json.contains("{\"fn\": \"search\", \"cold\": 1, \"warm\": 9, \"evicted\": 0}"));
    }
}
