//! The pluggable platform-policy layer: placement, keep-alive, prewarm.
//!
//! SpecFaaS (the paper) evaluates speculation under one fixed platform
//! policy: least-loaded placement, containers kept warm forever, no
//! predictive prewarming. This module turns those three hard-coded
//! decisions into traits — mirroring the `scheduler`/`coldstart` split of
//! dslab-faas — so ablations become a policy sweep instead of code edits:
//!
//! * [`PlacementPolicy`] — which node serves an invocation;
//! * [`KeepAlivePolicy`] — which idle containers survive, and for how
//!   long;
//! * [`PrewarmPolicy`] — which functions get containers created ahead of
//!   demand.
//!
//! The same three traits drive **both** execution paths: the
//! full-fidelity single-app engines (through [`crate::cluster::Cluster`]
//! and [`crate::container::ContainerPool`]) and the multi-tenant
//! flow-level fleet (through [`crate::fleet::WarmPool`] and the scale
//! engine). The default impls ([`LeastLoaded`], [`DefaultKeepAlive`],
//! [`NoPrewarm`]) reproduce the pre-policy-layer behaviour **bit for
//! bit** — the committed bench artifacts are the regression oracle.
//!
//! ## Determinism contract
//!
//! Policies must be pure functions of their own state and the inputs they
//! are handed: no wall-clock, no ambient randomness, no host-dependent
//! iteration order. Every provided impl is deterministic by construction
//! (plain counters, dense maps keyed by function id, explicit
//! tie-breaks), which is what keeps same-seed runs byte-identical under
//! any policy, at any `--jobs`.

use specfaas_sim::hash::FxHashMap;
use specfaas_sim::SimDuration;

/// Idle containers kept per (node, function) by [`DefaultKeepAlive`].
///
/// The pre-policy pool had **no** bound at all, so `idle_total` grew
/// monotonically on long runs (every burst's cold-started containers
/// stayed resident forever). 256 is far above any per-function
/// concurrency the committed benches reach — a node has 48 execution
/// slots — so the default stays bit-identical to the unbounded artifacts
/// while actually bounding memory.
pub const DEFAULT_PER_FUNC_IDLE_CAP: u32 = 256;

// ---------------------------------------------------------------------------
// Placement
// ---------------------------------------------------------------------------

/// Decides which node serves an invocation.
///
/// `free_slots[i]` is node *i*'s free execution-slot count at decision
/// time; `func` is the raw function id (single-app engines pass
/// `FuncId.0`). Implementations must be deterministic; `&mut self` allows
/// stateful policies (round-robin cursors).
pub trait PlacementPolicy: std::fmt::Debug + Send {
    /// Short policy name for labels and artifacts.
    fn name(&self) -> &'static str;
    /// Picks the index of the node to run `func`.
    fn place(&mut self, func: u32, free_slots: &[u64]) -> usize;
}

/// The paper's placement: most free execution slots, ties broken by the
/// lowest node index. This is the default, bit-identical to the
/// pre-policy `Cluster::pick_node`.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastLoaded;

impl PlacementPolicy for LeastLoaded {
    fn name(&self) -> &'static str {
        "least-loaded"
    }
    fn place(&mut self, _func: u32, free_slots: &[u64]) -> usize {
        free_slots
            .iter()
            .enumerate()
            .max_by_key(|(i, free)| (**free, usize::MAX - i))
            .map(|(i, _)| i)
            .expect("cluster has nodes")
    }
}

/// Round-robin placement: invocations spread evenly regardless of load.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobinPlacement {
    next: usize,
}

impl PlacementPolicy for RoundRobinPlacement {
    fn name(&self) -> &'static str {
        "round-robin"
    }
    fn place(&mut self, _func: u32, free_slots: &[u64]) -> usize {
        let n = free_slots.len().max(1);
        let i = self.next % n;
        self.next = (self.next + 1) % n;
        i
    }
}

/// Function-affinity placement: `func mod nodes`, so every invocation of
/// a function lands on the same node and its warm containers concentrate
/// there — the placement that maximizes warm reuse under keep-alive
/// pressure, at the cost of load imbalance.
#[derive(Debug, Clone, Copy, Default)]
pub struct AffinityPlacement;

impl PlacementPolicy for AffinityPlacement {
    fn name(&self) -> &'static str {
        "affinity"
    }
    fn place(&mut self, func: u32, free_slots: &[u64]) -> usize {
        func as usize % free_slots.len().max(1)
    }
}

// ---------------------------------------------------------------------------
// Keep-alive
// ---------------------------------------------------------------------------

/// Decides which idle (warm) containers survive, and for how long.
///
/// The trait is declarative — the pools own the mechanism (timestamped
/// idle lists, LRU order) and consult the policy for the parameters —
/// which keeps the hot paths allocation-free and the behaviour trivially
/// deterministic.
pub trait KeepAlivePolicy: std::fmt::Debug + Send {
    /// Short policy name for labels and artifacts.
    fn name(&self) -> &'static str;
    /// Whether released containers are kept warm at all. `false` models
    /// a platform that tears every container down immediately after use
    /// (the cold-start worst case).
    fn keep_idle(&self) -> bool {
        true
    }
    /// How long an idle container survives before reclamation, measured
    /// from its release instant. `None` = until capacity pressure evicts
    /// it. Expiry is applied lazily (at the next acquisition / release
    /// touching the pool), which cannot revive an expired container: the
    /// staleness check runs *before* any warm handout.
    fn ttl(&self) -> Option<SimDuration> {
        None
    }
    /// Idle containers kept per (node, function) in the single-app
    /// container pools; releases beyond the cap destroy the oldest idle
    /// container.
    fn per_func_idle_cap(&self) -> u32 {
        DEFAULT_PER_FUNC_IDLE_CAP
    }
    /// Fleet-wide idle-capacity override for the shared [`crate::fleet::WarmPool`];
    /// `None` keeps the engine's auto-sizing.
    fn pool_capacity(&self) -> Option<u32> {
        None
    }
}

/// Today's behaviour: containers stay warm until capacity pressure —
/// per-function cap [`DEFAULT_PER_FUNC_IDLE_CAP`] on the single-app
/// path, the auto-sized LRU bound on the fleet path. The default.
#[derive(Debug, Clone, Copy, Default)]
pub struct DefaultKeepAlive;

impl KeepAlivePolicy for DefaultKeepAlive {
    fn name(&self) -> &'static str {
        "default"
    }
}

/// Fixed-TTL keep-alive: every idle container is reclaimed `ttl` after
/// its release, the fixed keep-alive window of production FaaS platforms
/// (the *serverless-in-the-wild* unloading model).
#[derive(Debug, Clone, Copy)]
pub struct FixedTtlKeepAlive {
    /// Idle lifetime before reclamation.
    pub ttl: SimDuration,
}

impl KeepAlivePolicy for FixedTtlKeepAlive {
    fn name(&self) -> &'static str {
        "ttl"
    }
    fn ttl(&self) -> Option<SimDuration> {
        Some(self.ttl)
    }
}

/// No keep-alive at all: every release destroys the container, so every
/// acquisition after the initial prewarm stock drains pays a full cold
/// start — the worst case speculation must survive.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoKeepAlive;

impl KeepAlivePolicy for NoKeepAlive {
    fn name(&self) -> &'static str {
        "none"
    }
    fn keep_idle(&self) -> bool {
        false
    }
}

// ---------------------------------------------------------------------------
// Prewarm
// ---------------------------------------------------------------------------

/// Decides which functions get containers created *ahead* of demand.
///
/// The pools call [`PrewarmPolicy::on_invoke`] when a function begins an
/// acquisition; the policy appends function ids that should start warming
/// now. Learning policies are fed observed execution-order edges through
/// [`PrewarmPolicy::observe`] (the engines report each committed
/// request's function sequence).
pub trait PrewarmPolicy: std::fmt::Debug + Send {
    /// Short policy name for labels and artifacts.
    fn name(&self) -> &'static str;
    /// Observes that `to` ran directly after `from` in a committed
    /// request (sequence-table learning input).
    fn observe(&mut self, from: u32, to: u32);
    /// `func` just began an acquisition; append functions to warm ahead
    /// of demand into `out` (which arrives empty).
    fn on_invoke(&mut self, func: u32, out: &mut Vec<u32>);
}

/// No predictive prewarming (the paper's platform; the default).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoPrewarm;

impl PrewarmPolicy for NoPrewarm {
    fn name(&self) -> &'static str {
        "off"
    }
    fn observe(&mut self, _from: u32, _to: u32) {}
    fn on_invoke(&mut self, _func: u32, _out: &mut Vec<u32>) {}
}

/// Sequence-table-driven prewarm: the same successor statistics that
/// drive SpecFaaS's speculative *execution* here drive container
/// *creation* only. When `func` starts, its majority successor (once seen
/// at least [`SeqTablePrewarm::MIN_OBSERVATIONS`] times) begins warming,
/// so the successor's cold start overlaps the current function's
/// execution instead of serializing after it.
#[derive(Debug, Clone, Default)]
pub struct SeqTablePrewarm {
    /// func → successor candidates as `(successor, observations)`, in
    /// first-seen order (deterministic: ties break toward the earlier
    /// edge).
    succ: FxHashMap<u32, Vec<(u32, u32)>>,
}

impl SeqTablePrewarm {
    /// Observations of an edge required before it triggers prewarming
    /// (mirrors the spec engine's confidence gating: one-off paths should
    /// not burn warm cores).
    pub const MIN_OBSERVATIONS: u32 = 2;

    /// An empty (untrained) sequence table.
    pub fn new() -> Self {
        SeqTablePrewarm::default()
    }

    /// The current majority successor of `func`, if confident.
    pub fn predict(&self, func: u32) -> Option<u32> {
        let cands = self.succ.get(&func)?;
        let &(best, count) = cands.iter().max_by_key(|&&(_, c)| c)?;
        (count >= Self::MIN_OBSERVATIONS).then_some(best)
    }
}

impl PrewarmPolicy for SeqTablePrewarm {
    fn name(&self) -> &'static str {
        "seq-table"
    }
    fn observe(&mut self, from: u32, to: u32) {
        let cands = self.succ.entry(from).or_default();
        match cands.iter_mut().find(|(t, _)| *t == to) {
            Some((_, c)) => *c += 1,
            None => cands.push((to, 1)),
        }
    }
    fn on_invoke(&mut self, func: u32, out: &mut Vec<u32>) {
        if let Some(next) = self.predict(func) {
            if next != func {
                out.push(next);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Selection plumbing
// ---------------------------------------------------------------------------

/// Placement-policy selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementChoice {
    /// Most free slots, lowest index on ties (default).
    LeastLoaded,
    /// Round-robin over nodes.
    RoundRobin,
    /// `func mod nodes` affinity.
    Affinity,
}

/// Keep-alive policy selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeepAliveChoice {
    /// Capacity-pressure-only eviction (default).
    Default,
    /// Fixed idle TTL.
    FixedTtl(SimDuration),
    /// Destroy on release.
    Disabled,
}

/// Prewarm-policy selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrewarmChoice {
    /// No predictive prewarming (default).
    Disabled,
    /// Sequence-table majority-successor prewarming.
    SeqTable,
}

/// One platform-policy selection, plumbed through engines like faults
/// and tracing: build it once, hand it to
/// `Harness::set_policies` / `ScaleConfig::policy`, and every
/// decision point consults the chosen impls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyConfig {
    /// Which node serves an invocation.
    pub placement: PlacementChoice,
    /// Which idle containers survive.
    pub keepalive: KeepAliveChoice,
    /// Which functions warm ahead of demand.
    pub prewarm: PrewarmChoice,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig {
            placement: PlacementChoice::LeastLoaded,
            keepalive: KeepAliveChoice::Default,
            prewarm: PrewarmChoice::Disabled,
        }
    }
}

impl PolicyConfig {
    /// The pre-policy-layer platform (all defaults).
    pub fn platform_default() -> Self {
        PolicyConfig::default()
    }

    /// Fixed-TTL keep-alive, everything else default.
    pub fn fixed_ttl(ttl: SimDuration) -> Self {
        PolicyConfig {
            keepalive: KeepAliveChoice::FixedTtl(ttl),
            ..PolicyConfig::default()
        }
    }

    /// No keep-alive (worst case), everything else default.
    pub fn no_keepalive() -> Self {
        PolicyConfig {
            keepalive: KeepAliveChoice::Disabled,
            ..PolicyConfig::default()
        }
    }

    /// Fixed-TTL keep-alive with sequence-table prewarming filling the
    /// cold-start holes the TTL opens.
    pub fn ttl_with_prewarm(ttl: SimDuration) -> Self {
        PolicyConfig {
            keepalive: KeepAliveChoice::FixedTtl(ttl),
            prewarm: PrewarmChoice::SeqTable,
            ..PolicyConfig::default()
        }
    }

    /// Instantiates the placement policy.
    pub fn build_placement(&self) -> Box<dyn PlacementPolicy> {
        match self.placement {
            PlacementChoice::LeastLoaded => Box::new(LeastLoaded),
            PlacementChoice::RoundRobin => Box::new(RoundRobinPlacement::default()),
            PlacementChoice::Affinity => Box::new(AffinityPlacement),
        }
    }

    /// Instantiates the keep-alive policy.
    pub fn build_keepalive(&self) -> Box<dyn KeepAlivePolicy> {
        match self.keepalive {
            KeepAliveChoice::Default => Box::new(DefaultKeepAlive),
            KeepAliveChoice::FixedTtl(ttl) => Box::new(FixedTtlKeepAlive { ttl }),
            KeepAliveChoice::Disabled => Box::new(NoKeepAlive),
        }
    }

    /// Instantiates the prewarm policy.
    pub fn build_prewarm(&self) -> Box<dyn PrewarmPolicy> {
        match self.prewarm {
            PrewarmChoice::Disabled => Box::new(NoPrewarm),
            PrewarmChoice::SeqTable => Box::new(SeqTablePrewarm::new()),
        }
    }

    /// Compact label for tables and artifacts, e.g.
    /// `keepalive=ttl:100ms+prewarm=seq-table`, or `default`.
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        match self.placement {
            PlacementChoice::LeastLoaded => {}
            PlacementChoice::RoundRobin => parts.push("place=round-robin".to_string()),
            PlacementChoice::Affinity => parts.push("place=affinity".to_string()),
        }
        match self.keepalive {
            KeepAliveChoice::Default => {}
            KeepAliveChoice::FixedTtl(ttl) => {
                parts.push(format!("keepalive=ttl:{}ms", ttl.as_micros() / 1_000));
            }
            KeepAliveChoice::Disabled => parts.push("keepalive=none".to_string()),
        }
        match self.prewarm {
            PrewarmChoice::Disabled => {}
            PrewarmChoice::SeqTable => parts.push("prewarm=seq-table".to_string()),
        }
        if parts.is_empty() {
            "default".to_string()
        } else {
            parts.join("+")
        }
    }

    /// Parses a policy spec of `+`-separated terms:
    /// `default`, `place=least-loaded|round-robin|affinity`,
    /// `keepalive=default|none|ttl:<N>ms`, `prewarm=off|seq-table`.
    pub fn parse(spec: &str) -> Result<PolicyConfig, String> {
        let mut cfg = PolicyConfig::default();
        for term in spec.split('+').map(str::trim).filter(|t| !t.is_empty()) {
            if term == "default" {
                continue;
            }
            let (key, value) = term
                .split_once('=')
                .ok_or_else(|| format!("policy term `{term}` is not `key=value`"))?;
            match (key, value) {
                ("place", "least-loaded") => cfg.placement = PlacementChoice::LeastLoaded,
                ("place", "round-robin") => cfg.placement = PlacementChoice::RoundRobin,
                ("place", "affinity") => cfg.placement = PlacementChoice::Affinity,
                ("keepalive", "default") => cfg.keepalive = KeepAliveChoice::Default,
                ("keepalive", "none") => cfg.keepalive = KeepAliveChoice::Disabled,
                ("keepalive", v) if v.starts_with("ttl:") => {
                    let ms = v["ttl:".len()..]
                        .trim_end_matches("ms")
                        .parse::<u64>()
                        .map_err(|_| format!("bad ttl in `{term}`"))?;
                    cfg.keepalive = KeepAliveChoice::FixedTtl(SimDuration::from_millis(ms));
                }
                ("prewarm", "off") => cfg.prewarm = PrewarmChoice::Disabled,
                ("prewarm", "seq-table") => cfg.prewarm = PrewarmChoice::SeqTable,
                _ => return Err(format!("unknown policy term `{term}`")),
            }
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn least_loaded_matches_legacy_tie_break() {
        let mut p = LeastLoaded;
        assert_eq!(p.place(0, &[2, 2, 2]), 0, "all equal: lowest index");
        assert_eq!(p.place(0, &[0, 1, 2]), 2);
        assert_eq!(p.place(0, &[3, 3, 1]), 0);
    }

    #[test]
    fn round_robin_cycles() {
        let mut p = RoundRobinPlacement::default();
        let free = [1u64, 1, 1];
        assert_eq!(p.place(9, &free), 0);
        assert_eq!(p.place(9, &free), 1);
        assert_eq!(p.place(9, &free), 2);
        assert_eq!(p.place(9, &free), 0);
    }

    #[test]
    fn affinity_pins_functions() {
        let mut p = AffinityPlacement;
        let free = [1u64, 1, 1];
        assert_eq!(p.place(4, &free), 1);
        assert_eq!(p.place(4, &free), 1, "same func, same node");
        assert_eq!(p.place(5, &free), 2);
    }

    #[test]
    fn seq_table_predicts_majority_successor() {
        let mut p = SeqTablePrewarm::new();
        assert_eq!(p.predict(1), None, "untrained: no prediction");
        p.observe(1, 2);
        assert_eq!(p.predict(1), None, "one observation is not confident");
        p.observe(1, 2);
        p.observe(1, 3);
        assert_eq!(p.predict(1), Some(2), "majority successor wins");
        let mut out = Vec::new();
        p.on_invoke(1, &mut out);
        assert_eq!(out, vec![2]);
        out.clear();
        p.on_invoke(7, &mut out);
        assert!(out.is_empty(), "unknown function: nothing to prewarm");
    }

    #[test]
    fn config_labels_and_parse_round_trip() {
        let cases = [
            PolicyConfig::default(),
            PolicyConfig::fixed_ttl(SimDuration::from_millis(100)),
            PolicyConfig::no_keepalive(),
            PolicyConfig::ttl_with_prewarm(SimDuration::from_millis(50)),
            PolicyConfig {
                placement: PlacementChoice::Affinity,
                ..PolicyConfig::default()
            },
        ];
        for cfg in cases {
            let label = cfg.label();
            let parsed = PolicyConfig::parse(&label).unwrap_or_else(|e| panic!("{label}: {e}"));
            assert_eq!(parsed, cfg, "label `{label}` must round-trip");
        }
        assert_eq!(PolicyConfig::default().label(), "default");
        assert!(PolicyConfig::parse("keepalive=sideways").is_err());
        assert!(PolicyConfig::parse("bogus").is_err());
    }

    #[test]
    fn default_config_builds_default_policies() {
        let cfg = PolicyConfig::default();
        assert_eq!(cfg.build_placement().name(), "least-loaded");
        assert_eq!(cfg.build_keepalive().name(), "default");
        assert_eq!(cfg.build_prewarm().name(), "off");
        let ka = cfg.build_keepalive();
        assert!(ka.keep_idle());
        assert_eq!(ka.ttl(), None);
        assert_eq!(ka.per_func_idle_cap(), DEFAULT_PER_FUNC_IDLE_CAP);
        assert_eq!(ka.pool_capacity(), None);
    }
}
