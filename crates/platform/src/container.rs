//! Container lifecycle: cold starts, warm pools, and the
//! initializer/handler process model.
//!
//! Each (node, function) pair owns a pool of containers. A container is
//! *cold* until it has been created (container creation + runtime setup,
//! the two large bars of Fig. 3); afterwards its initializer process stays
//! resident and the container is *warm*: subsequent invocations fork a
//! fresh handler process at negligible cost (§VI).
//!
//! Squash mechanisms interact with the pool differently:
//! * **process kill** — the handler dies (~1 ms) but the container stays
//!   warm and immediately reusable;
//! * **container kill** — the container is destroyed; the next invocation
//!   pays a full cold start;
//! * **lazy squash** — the handler keeps running to natural completion,
//!   holding its container (and core) hostage until then.

use specfaas_sim::hash::FxHashMap;

use specfaas_sim::SimDuration;
use specfaas_workflow::FuncId;

use crate::overheads::OverheadModel;

/// Result of asking the pool for a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainerAcquire {
    /// A warm container was available; the handler can fork immediately.
    Warm,
    /// No warm container: a new one must be created first, taking the
    /// returned duration (container creation + runtime setup).
    Cold(SimDuration),
}

/// The container pool of one node.
///
/// Tracks, per function: how many warm containers sit idle and how many
/// are currently executing a handler. Capacity is unbounded — containers
/// consume memory, not execution slots, and the paper's cluster never
/// exhausts memory — but creation is never free.
#[derive(Debug, Clone, Default)]
pub struct ContainerPool {
    idle: FxHashMap<FuncId, u32>,
    busy: FxHashMap<FuncId, u32>,
    cold_starts: u64,
    warm_starts: u64,
}

impl ContainerPool {
    /// Creates an empty (fully cold) pool.
    pub fn new() -> Self {
        ContainerPool::default()
    }

    /// Creates a pool pre-warmed with `count` containers for each listed
    /// function — the paper's default warmed-up environment (§IV assumes
    /// start-up overheads have been removed by prior techniques).
    pub fn prewarmed(funcs: impl IntoIterator<Item = FuncId>, count: u32) -> Self {
        let mut pool = ContainerPool::new();
        for f in funcs {
            pool.idle.insert(f, count);
        }
        pool
    }

    /// Acquires a container for `func`, preferring warm ones.
    pub fn acquire(&mut self, func: FuncId, model: &OverheadModel) -> ContainerAcquire {
        let idle = self.idle.entry(func).or_insert(0);
        if *idle > 0 {
            *idle -= 1;
            *self.busy.entry(func).or_insert(0) += 1;
            self.warm_starts += 1;
            ContainerAcquire::Warm
        } else {
            *self.busy.entry(func).or_insert(0) += 1;
            self.cold_starts += 1;
            ContainerAcquire::Cold(model.cold_start())
        }
    }

    /// Releases a container after its handler finished or was squashed.
    ///
    /// `reusable == true` (normal completion or process-kill squash)
    /// returns it to the warm pool; `false` (container-kill squash)
    /// destroys it.
    ///
    /// # Panics
    /// Panics if no container for `func` is busy.
    pub fn release(&mut self, func: FuncId, reusable: bool) {
        let busy = self
            .busy
            .get_mut(&func)
            .filter(|n| **n > 0)
            .expect("release of a container that was never acquired");
        *busy -= 1;
        if reusable {
            *self.idle.entry(func).or_insert(0) += 1;
        }
    }

    /// Warm idle containers currently available for `func`.
    pub fn idle_count(&self, func: FuncId) -> u32 {
        self.idle.get(&func).copied().unwrap_or(0)
    }

    /// Containers currently running handlers for `func`.
    pub fn busy_count(&self, func: FuncId) -> u32 {
        self.busy.get(&func).copied().unwrap_or(0)
    }

    /// Warm idle containers across every function — the node's warm-pool
    /// size gauge. Summing `u32` counts is order-independent, so the
    /// result is deterministic despite the `HashMap` backing store.
    pub fn idle_total(&self) -> u64 {
        self.idle.values().map(|n| u64::from(*n)).sum()
    }

    /// Total cold starts served.
    pub fn cold_starts(&self) -> u64 {
        self.cold_starts
    }

    /// Total warm starts served.
    pub fn warm_starts(&self) -> u64 {
        self.warm_starts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> OverheadModel {
        OverheadModel::default()
    }

    #[test]
    fn cold_then_warm() {
        let mut p = ContainerPool::new();
        let f = FuncId(0);
        match p.acquire(f, &model()) {
            ContainerAcquire::Cold(d) => assert_eq!(d, model().cold_start()),
            other => panic!("expected cold, got {other:?}"),
        }
        p.release(f, true);
        assert_eq!(p.acquire(f, &model()), ContainerAcquire::Warm);
        assert_eq!(p.cold_starts(), 1);
        assert_eq!(p.warm_starts(), 1);
    }

    #[test]
    fn prewarmed_pool_skips_cold_start() {
        let f = FuncId(3);
        let mut p = ContainerPool::prewarmed([f], 2);
        assert_eq!(p.acquire(f, &model()), ContainerAcquire::Warm);
        assert_eq!(p.acquire(f, &model()), ContainerAcquire::Warm);
        assert!(matches!(p.acquire(f, &model()), ContainerAcquire::Cold(_)));
    }

    #[test]
    fn container_kill_destroys() {
        let f = FuncId(0);
        let mut p = ContainerPool::prewarmed([f], 1);
        p.acquire(f, &model());
        p.release(f, false); // container-kill squash
        assert!(matches!(p.acquire(f, &model()), ContainerAcquire::Cold(_)));
    }

    #[test]
    fn per_function_isolation() {
        let mut p = ContainerPool::prewarmed([FuncId(0)], 1);
        assert!(matches!(
            p.acquire(FuncId(1), &model()),
            ContainerAcquire::Cold(_)
        ));
        assert_eq!(p.idle_count(FuncId(0)), 1);
        assert_eq!(p.busy_count(FuncId(1)), 1);
    }

    #[test]
    #[should_panic(expected = "never acquired")]
    fn release_without_acquire_panics() {
        let mut p = ContainerPool::new();
        p.release(FuncId(0), true);
    }
}
