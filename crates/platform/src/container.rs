//! Container lifecycle: cold starts, warm pools, and the
//! initializer/handler process model.
//!
//! Each (node, function) pair owns a pool of containers. A container is
//! *cold* until it has been created (container creation + runtime setup,
//! the two large bars of Fig. 3); afterwards its initializer process stays
//! resident and the container is *warm*: subsequent invocations fork a
//! fresh handler process at negligible cost (§VI).
//!
//! Squash mechanisms interact with the pool differently:
//! * **process kill** — the handler dies (~1 ms) but the container stays
//!   warm and immediately reusable;
//! * **container kill** — the container is destroyed; the next invocation
//!   pays a full cold start;
//! * **lazy squash** — the handler keeps running to natural completion,
//!   holding its container (and core) hostage until then.
//!
//! Which idle containers *survive* is not the pool's decision: it asks
//! the installed [`KeepAlivePolicy`] (idle TTL, per-function cap, or no
//! keep-alive at all) and applies the answer lazily at acquire/release
//! time. Idle containers are held newest-last with their release
//! instants, so TTL expiry pops the front and warm reuse pops the back —
//! an expired container can never be handed out, because staleness is
//! checked before any warm handout. The pool also tracks *warming*
//! containers (creations begun ahead of demand by a
//! [`crate::policy::PrewarmPolicy`]): an acquisition that finds one
//! in-flight pays only the remaining creation time instead of a full
//! cold start.

use std::collections::VecDeque;

use specfaas_sim::hash::FxHashMap;

use specfaas_sim::{SimDuration, SimTime};
use specfaas_workflow::FuncId;

use crate::overheads::OverheadModel;
use crate::policy::KeepAlivePolicy;

/// Result of asking the pool for a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainerAcquire {
    /// A warm container was available; the handler can fork immediately.
    Warm,
    /// No warm container: a new one must be created first, taking the
    /// returned duration (container creation + runtime setup — or the
    /// shorter remainder when a prewarm creation is already in flight).
    Cold(SimDuration),
}

/// Per-function container-lifecycle counters: how often this function
/// paid a cold start, was served warm, and had idle containers reclaimed
/// by the keep-alive policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FuncContainerStats {
    /// Acquisitions that paid a (full or partial) cold start.
    pub cold: u64,
    /// Acquisitions served from the warm pool.
    pub warm: u64,
    /// Idle containers reclaimed by keep-alive (TTL expiry, cap
    /// pressure, or no-keep-alive teardown). Engine-driven destruction
    /// (container-kill squashes) is not counted here.
    pub evicted: u64,
}

/// The container pool of one node.
///
/// Tracks, per function: the release instants of idle warm containers
/// (ascending; front oldest), the ready instants of containers being
/// created ahead of demand, and how many are currently executing a
/// handler. Containers consume memory, not execution slots — but how
/// many idle ones survive is the [`KeepAlivePolicy`]'s call, and
/// creation is never free.
#[derive(Debug, Clone, Default)]
pub struct ContainerPool {
    idle: FxHashMap<FuncId, VecDeque<SimTime>>,
    warming: FxHashMap<FuncId, VecDeque<SimTime>>,
    busy: FxHashMap<FuncId, u32>,
    stats: FxHashMap<FuncId, FuncContainerStats>,
    cold_starts: u64,
    warm_starts: u64,
    evictions: u64,
    prewarm_hits: u64,
}

impl ContainerPool {
    /// Creates an empty (fully cold) pool.
    pub fn new() -> Self {
        ContainerPool::default()
    }

    /// Creates a pool pre-warmed with `count` containers for each listed
    /// function — the paper's default warmed-up environment (§IV assumes
    /// start-up overheads have been removed by prior techniques). The
    /// stock is stamped idle-since-time-zero, so a TTL keep-alive decays
    /// it like any other idle container.
    pub fn prewarmed(funcs: impl IntoIterator<Item = FuncId>, count: u32) -> Self {
        let mut pool = ContainerPool::new();
        for f in funcs {
            pool.idle
                .insert(f, (0..count).map(|_| SimTime::ZERO).collect());
        }
        pool
    }

    /// Moves warming containers whose creation finished by `now` into
    /// the idle set (idle since their ready instant). The per-function
    /// idle cap is enforced afterwards so prewarm promotions can never
    /// grow the pool past what the keep-alive policy allows (warming is
    /// only ever populated by a prewarm policy, so this is unreachable
    /// under the defaults).
    fn promote_ready(&mut self, func: FuncId, now: SimTime, policy: &dyn KeepAlivePolicy) {
        let Some(w) = self.warming.get_mut(&func) else {
            return;
        };
        while w.front().is_some_and(|ready| *ready <= now) {
            let ready = w.pop_front().expect("checked front");
            let q = self.idle.entry(func).or_default();
            // Promotions can interleave with ordinary releases, so keep
            // the queue sorted by idle-since instant.
            let at = q.partition_point(|t| *t <= ready);
            q.insert(at, ready);
        }
        let cap = policy.per_func_idle_cap() as usize;
        let q = self.idle.entry(func).or_default();
        while q.len() > cap {
            q.pop_front();
            self.evictions += 1;
            self.stats.entry(func).or_default().evicted += 1;
        }
    }

    /// Reclaims idle containers of `func` whose TTL elapsed by `now`.
    fn expire(&mut self, func: FuncId, now: SimTime, policy: &dyn KeepAlivePolicy) {
        let Some(ttl) = policy.ttl() else {
            return;
        };
        let Some(q) = self.idle.get_mut(&func) else {
            return;
        };
        while q.front().is_some_and(|released| *released + ttl <= now) {
            q.pop_front();
            self.evictions += 1;
            self.stats.entry(func).or_default().evicted += 1;
        }
    }

    /// Acquires a container for `func` at `now`, preferring warm ones,
    /// then in-flight prewarm creations, then a fresh cold start. The
    /// keep-alive policy is consulted first so expired idle containers
    /// are reclaimed, never handed out.
    pub fn acquire(
        &mut self,
        func: FuncId,
        now: SimTime,
        model: &OverheadModel,
        policy: &dyn KeepAlivePolicy,
    ) -> ContainerAcquire {
        self.promote_ready(func, now, policy);
        self.expire(func, now, policy);
        *self.busy.entry(func).or_insert(0) += 1;
        if self
            .idle
            .get_mut(&func)
            .is_some_and(|q| q.pop_back().is_some())
        {
            self.warm_starts += 1;
            self.stats.entry(func).or_default().warm += 1;
            return ContainerAcquire::Warm;
        }
        self.cold_starts += 1;
        self.stats.entry(func).or_default().cold += 1;
        if let Some(ready) = self.warming.get_mut(&func).and_then(|w| w.pop_front()) {
            // A prewarm creation is already in flight: piggyback on it
            // and pay only the remaining creation time.
            self.prewarm_hits += 1;
            return ContainerAcquire::Cold(ready.saturating_since(now));
        }
        ContainerAcquire::Cold(model.cold_start())
    }

    /// Releases a container after its handler finished or was squashed.
    ///
    /// `reusable == true` (normal completion or process-kill squash)
    /// offers it back to the warm pool — the keep-alive policy decides
    /// whether it survives; `false` (container-kill squash) destroys it.
    ///
    /// # Panics
    /// Panics if no container for `func` is busy.
    pub fn release(
        &mut self,
        func: FuncId,
        now: SimTime,
        reusable: bool,
        policy: &dyn KeepAlivePolicy,
    ) {
        let busy = self
            .busy
            .get_mut(&func)
            .filter(|n| **n > 0)
            .expect("release of a container that was never acquired");
        *busy -= 1;
        if !reusable {
            return;
        }
        if !policy.keep_idle() {
            self.evictions += 1;
            self.stats.entry(func).or_default().evicted += 1;
            return;
        }
        self.idle.entry(func).or_default().push_back(now);
        self.expire(func, now, policy);
        let cap = policy.per_func_idle_cap() as usize;
        let q = self.idle.entry(func).or_default();
        while q.len() > cap {
            q.pop_front();
            self.evictions += 1;
            self.stats.entry(func).or_default().evicted += 1;
        }
    }

    /// Starts creating a container for `func` ahead of demand; it
    /// becomes idle (or serves a piggybacking acquisition) at `ready`.
    pub fn begin_warming(&mut self, func: FuncId, ready: SimTime) {
        let w = self.warming.entry(func).or_default();
        let at = w.partition_point(|t| *t <= ready);
        w.insert(at, ready);
    }

    /// Warm idle containers currently available for `func`. Counts the
    /// raw idle set — TTL expiry is lazy, so recently-expired containers
    /// may still be counted until the next acquire/release touches them.
    pub fn idle_count(&self, func: FuncId) -> u32 {
        self.idle.get(&func).map_or(0, |q| q.len() as u32)
    }

    /// Containers currently being created ahead of demand for `func`.
    pub fn warming_count(&self, func: FuncId) -> u32 {
        self.warming.get(&func).map_or(0, |q| q.len() as u32)
    }

    /// Containers currently running handlers for `func`.
    pub fn busy_count(&self, func: FuncId) -> u32 {
        self.busy.get(&func).copied().unwrap_or(0)
    }

    /// Warm idle containers across every function — the node's warm-pool
    /// size gauge. Summing counts is order-independent, so the result is
    /// deterministic despite the `HashMap` backing store.
    pub fn idle_total(&self) -> u64 {
        self.idle.values().map(|q| q.len() as u64).sum()
    }

    /// Total cold starts served (including prewarm piggybacks).
    pub fn cold_starts(&self) -> u64 {
        self.cold_starts
    }

    /// Total warm starts served.
    pub fn warm_starts(&self) -> u64 {
        self.warm_starts
    }

    /// Idle containers reclaimed by the keep-alive policy.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Acquisitions that piggybacked on an in-flight prewarm creation.
    pub fn prewarm_hits(&self) -> u64 {
        self.prewarm_hits
    }

    /// Lifecycle counters for one function.
    pub fn func_stats(&self, func: FuncId) -> FuncContainerStats {
        self.stats.get(&func).copied().unwrap_or_default()
    }

    /// Per-function lifecycle counters, in arbitrary (hash-map) order —
    /// callers aggregate and sort.
    pub fn per_func_stats(&self) -> impl Iterator<Item = (FuncId, FuncContainerStats)> + '_ {
        self.stats.iter().map(|(f, s)| (*f, *s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{DefaultKeepAlive, FixedTtlKeepAlive, NoKeepAlive};

    fn model() -> OverheadModel {
        OverheadModel::default()
    }

    const KA: DefaultKeepAlive = DefaultKeepAlive;

    #[test]
    fn cold_then_warm() {
        let mut p = ContainerPool::new();
        let f = FuncId(0);
        match p.acquire(f, SimTime::ZERO, &model(), &KA) {
            ContainerAcquire::Cold(d) => assert_eq!(d, model().cold_start()),
            other => panic!("expected cold, got {other:?}"),
        }
        p.release(f, SimTime::from_millis(5), true, &KA);
        assert_eq!(
            p.acquire(f, SimTime::from_millis(6), &model(), &KA),
            ContainerAcquire::Warm
        );
        assert_eq!(p.cold_starts(), 1);
        assert_eq!(p.warm_starts(), 1);
        assert_eq!(
            p.func_stats(f),
            FuncContainerStats {
                cold: 1,
                warm: 1,
                evicted: 0
            }
        );
    }

    #[test]
    fn prewarmed_pool_skips_cold_start() {
        let f = FuncId(3);
        let mut p = ContainerPool::prewarmed([f], 2);
        let t = SimTime::ZERO;
        assert_eq!(p.acquire(f, t, &model(), &KA), ContainerAcquire::Warm);
        assert_eq!(p.acquire(f, t, &model(), &KA), ContainerAcquire::Warm);
        assert!(matches!(
            p.acquire(f, t, &model(), &KA),
            ContainerAcquire::Cold(_)
        ));
    }

    #[test]
    fn container_kill_destroys() {
        let f = FuncId(0);
        let mut p = ContainerPool::prewarmed([f], 1);
        p.acquire(f, SimTime::ZERO, &model(), &KA);
        p.release(f, SimTime::from_millis(1), false, &KA); // container-kill squash
        assert!(matches!(
            p.acquire(f, SimTime::from_millis(2), &model(), &KA),
            ContainerAcquire::Cold(_)
        ));
        assert_eq!(
            p.evictions(),
            0,
            "squash destruction is not a policy eviction"
        );
    }

    #[test]
    fn per_function_isolation() {
        let mut p = ContainerPool::prewarmed([FuncId(0)], 1);
        assert!(matches!(
            p.acquire(FuncId(1), SimTime::ZERO, &model(), &KA),
            ContainerAcquire::Cold(_)
        ));
        assert_eq!(p.idle_count(FuncId(0)), 1);
        assert_eq!(p.busy_count(FuncId(1)), 1);
    }

    #[test]
    #[should_panic(expected = "never acquired")]
    fn release_without_acquire_panics() {
        let mut p = ContainerPool::new();
        p.release(FuncId(0), SimTime::ZERO, true, &KA);
    }

    #[test]
    fn default_policy_bounds_idle_growth() {
        // Satellite regression test: the pre-policy pool had no eviction
        // at all, so idle_total grew monotonically. The default policy
        // caps idle containers per function.
        let f = FuncId(0);
        let mut p = ContainerPool::new();
        let churn = crate::policy::DEFAULT_PER_FUNC_IDLE_CAP + 100;
        for i in 0..churn {
            // Burst of cold starts...
            p.acquire(f, SimTime::from_millis(u64::from(i)), &model(), &KA);
        }
        for i in 0..churn {
            // ...all released back: only the cap survives.
            p.release(f, SimTime::from_millis(u64::from(churn + i)), true, &KA);
        }
        assert_eq!(
            p.idle_total(),
            u64::from(crate::policy::DEFAULT_PER_FUNC_IDLE_CAP)
        );
        assert_eq!(p.evictions(), 100);
        assert_eq!(p.func_stats(f).evicted, 100);
    }

    #[test]
    fn ttl_expires_idle_containers() {
        let ka = FixedTtlKeepAlive {
            ttl: SimDuration::from_millis(10),
        };
        let f = FuncId(0);
        let mut p = ContainerPool::prewarmed([f], 2);
        // Within TTL: warm.
        assert_eq!(
            p.acquire(f, SimTime::from_millis(9), &model(), &ka),
            ContainerAcquire::Warm
        );
        // Past TTL: the remaining prewarmed container expired.
        assert!(matches!(
            p.acquire(f, SimTime::from_millis(10), &model(), &ka),
            ContainerAcquire::Cold(_)
        ));
        assert_eq!(p.evictions(), 1);
    }

    #[test]
    fn no_keepalive_destroys_on_release() {
        let ka = NoKeepAlive;
        let f = FuncId(0);
        let mut p = ContainerPool::new();
        p.acquire(f, SimTime::ZERO, &model(), &ka);
        p.release(f, SimTime::from_millis(1), true, &ka);
        assert_eq!(p.idle_total(), 0);
        assert_eq!(p.evictions(), 1);
        assert!(matches!(
            p.acquire(f, SimTime::from_millis(2), &model(), &ka),
            ContainerAcquire::Cold(_)
        ));
    }

    #[test]
    fn warming_serves_partial_cold_start() {
        let f = FuncId(0);
        let mut p = ContainerPool::new();
        let full = model().cold_start();
        p.begin_warming(f, SimTime::ZERO + full);
        // Acquire midway through the prewarm creation: pay the rest.
        let mid = SimTime::ZERO + SimDuration::from_micros(full.as_micros() / 2);
        match p.acquire(f, mid, &model(), &KA) {
            ContainerAcquire::Cold(d) => {
                assert!(d < full, "piggyback must be cheaper than a full cold start");
                assert_eq!(d, (SimTime::ZERO + full).saturating_since(mid));
            }
            other => panic!("expected partial cold, got {other:?}"),
        }
        assert_eq!(p.prewarm_hits(), 1);
    }

    #[test]
    fn warming_promotes_to_idle_when_ready() {
        let f = FuncId(0);
        let mut p = ContainerPool::new();
        p.begin_warming(f, SimTime::from_millis(5));
        assert_eq!(p.warming_count(f), 1);
        // After the creation finished, the container serves warm.
        assert_eq!(
            p.acquire(f, SimTime::from_millis(6), &model(), &KA),
            ContainerAcquire::Warm
        );
        assert_eq!(p.warming_count(f), 0);
        assert_eq!(p.warm_starts(), 1);
    }
}
