#![warn(missing_docs)]

//! # specfaas-platform
//!
//! An OpenWhisk-shaped serverless platform substrate running on the
//! discrete-event simulator, plus the conventional (baseline) workflow
//! execution engine that SpecFaaS is compared against.
//!
//! The paper's testbed is Apache OpenWhisk on five 24-core (2-way SMT)
//! AMD EPYC 7402P servers (§VII). This crate reproduces that environment
//! as explicit, calibrated models:
//!
//! * [`overheads`] — every response-time component of the paper's Fig. 3:
//!   container creation, runtime setup, platform overhead, transfer
//!   function overhead, plus storage and squash costs (§VI).
//! * [`cluster`] — nodes × execution slots with FIFO queueing, and the
//!   per-node controller service stations whose queueing delay is what
//!   makes overheads grow with load.
//! * [`container`] — container lifecycle: cold start, warm pools, and the
//!   initializer/handler process model that makes SpecFaaS squashes cheap
//!   (§VI, "Minimizing Squash Cost").
//! * [`exec`] — function instances: a running interpreter bound to a node,
//!   core slot, container and private temp-file namespace.
//! * [`harness`] — the shared engine-runtime layer: a [`Runtime`] of
//!   engine-agnostic state embedded in each engine core, the
//!   [`EngineCore`] trait, and the generic [`Harness`] driver that owns
//!   the load drivers and all instrument attachment.
//! * [`policy`] — the pluggable platform-policy layer: placement,
//!   keep-alive and prewarm as traits, with the paper's fixed platform as
//!   the bit-identical defaults, threaded through both the single-app
//!   cluster path and the multi-tenant fleet.
//! * [`baseline`] — the conventional OpenWhisk execution engine: strictly
//!   sequential function scheduling through controller + conductor,
//!   expressed as an [`EngineCore`].
//! * [`workload`] — Poisson arrival generation (§VII) and request-level
//!   bookkeeping.
//! * [`metrics`] — response times, per-component breakdowns, throughput
//!   and utilization measurements.

pub mod baseline;
pub mod cluster;
pub mod container;
pub mod exec;
pub mod fleet;
pub mod harness;
pub mod metrics;
pub mod overheads;
pub mod policy;
pub mod scoreboard;
pub mod workload;

pub use baseline::{BaselineCore, BaselineEngine};
pub use cluster::{Cluster, NodeId};
pub use container::{ContainerAcquire, ContainerPool, FuncContainerStats};
pub use exec::{FnInstance, InstanceId, InstanceState};
pub use fleet::{Fleet, ScaleConfig, ScaleEngine, ScaleStats, TemplateProfile, WarmPool};
pub use harness::{EngineCore, Harness, Runtime};
pub use metrics::{Breakdown, FaultStats, InvocationRecord, RequestOutcome, RunMetrics};
pub use overheads::OverheadModel;
pub use policy::{
    KeepAliveChoice, KeepAlivePolicy, PlacementChoice, PlacementPolicy, PolicyConfig,
    PrewarmChoice, PrewarmPolicy,
};
pub use scoreboard::ScoreboardRow;
pub use workload::{Load, RequestId, Workload};
