//! Multi-tenant fleet layer and the flow-level scale engine.
//!
//! The full-fidelity engines ([`crate::baseline`] and the spec engine)
//! interpret every function body, which tops out around a few thousand
//! requests per second of wall clock — fine for the paper's figures,
//! hopeless for the ROADMAP's "millions of requests across thousands of
//! tenants". This module provides the scale path:
//!
//! * [`TemplateProfile`] — a static flow-level profile of an [`AppSpec`]:
//!   the expected stage sequence with mean compute per stage, parallel
//!   fan-out widths, and which stages end in data-dependent branches.
//!   Derived once per template from [`specfaas_workflow::Program::static_compute_estimate`].
//! * [`Fleet`] — N tenant apps instantiated from a template set, with
//!   **interned global function ids**: tenant × template-function pairs
//!   map to dense `u32`s by prefix-sum, so the shared warm pool and all
//!   per-function state index arrays instead of hashing tuples.
//! * [`WarmPool`] — one shared, capacity-bounded warm-container pool with
//!   deterministic per-function LRU keep-alive eviction. Under Zipf
//!   popularity the hot tenants pin their containers warm while the long
//!   tail churns cold — the phenomenon scale runs exist to measure.
//! * [`ScaleEngine`] — a discrete-event, flow-level request model (a
//!   handful of events per request against the calendar-bucket queue)
//!   that replays a [`TraceGen`] arrival stream in either baseline
//!   (sequential stages) or speculative (overlapped launch, mispredict
//!   squash/re-execution, memoization skips) mode.
//!
//! ## Fidelity contract
//!
//! This is a *flow-level* model: stages carry their template's mean
//! compute (±15 % jitter) rather than interpreted bodies, branch
//! mispredictions and memo hits are drawn from configured probabilities
//! rather than replayed data, and a mispredicted branch squashes its
//! immediate successor (deeper cascades are second-order at fleet
//! scale). Overhead constants, cold-start costs, and pool dynamics are
//! shared with the full-fidelity engines via [`OverheadModel`], so the
//! speculation win it reports tracks the shape — not the third decimal —
//! of the paper's results.
//!
//! ## Hot-path design
//!
//! Per-request state lives in a pooled slab: completed requests return
//! their slot (and their per-stage `Vec`'s capacity) to a free list, so
//! steady state performs no allocation per request. Arrivals are pulled
//! from the trace generator in large batches, and all metrics are
//! streaming ([`LogHistogram`] / [`SpaceSaving`]) — memory stays flat in
//! the request count.
//!
//! Everything is deterministic for a given [`ScaleConfig`]: same seed,
//! same stats, bit for bit.

use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;

use specfaas_sim::tracegen::{Arrival, TraceConfig, TraceGen};
use specfaas_sim::{FxHashMap, LogHistogram, SimDuration, SimRng, SimTime, Simulator, SpaceSaving};
use specfaas_workflow::{AppSpec, EntryKind};

use crate::overheads::OverheadModel;
use crate::policy::{KeepAlivePolicy, PolicyConfig, PrewarmPolicy};

/// Floor on a stage's mean compute so zero-compute glue functions still
/// cost something (they do in reality: interpreter spin-up, marshalling).
const MIN_STAGE_EXEC: SimDuration = SimDuration::from_micros(500);

/// How many arrivals to pull from the trace generator per refill.
const ARRIVAL_BATCH: usize = 4096;

/// How often (in arrivals) to sample the approximate memory footprint.
const MEM_SAMPLE_EVERY: u64 = 8192;

/// Concurrent cold container creations allowed per function. Requests
/// beyond the cap queue for the containers already being created (or for
/// a busy one to recycle) instead of each spawning their own — without
/// it, a burst on a hot function cold-starts one container *per queued
/// request*, overshooting the needed duplicate count by orders of
/// magnitude and evicting the entire warm tail when those releases hit a
/// bounded pool.
const MAX_CONCURRENT_COLD_STARTS: u32 = 4;

/// One stage of a flow-level application profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageProfile {
    /// Mean compute time of the stage (max over parallel members).
    pub exec: SimDuration,
    /// Parallel fan-out: number of cores (and containers) the stage
    /// occupies concurrently. 1 for ordinary stages.
    pub width: u32,
    /// True if the stage ends in a data-dependent branch — the spec
    /// engine's misprediction point.
    pub branch: bool,
}

/// A static flow-level profile of one application template.
#[derive(Debug, Clone)]
pub struct TemplateProfile {
    /// Template (application) name.
    pub name: String,
    /// Expected stage sequence.
    pub stages: Vec<StageProfile>,
    /// Total core demand of one request: `Σ exec·width`.
    pub core_demand: SimDuration,
}

impl TemplateProfile {
    /// Derives a profile from an application spec by walking its
    /// compiled sequence table along the expected path: `Simple` edges
    /// are followed, `Branch` entries prefer their forward target (loop
    /// back-edges are walked once), and `Fork` fan-outs collapse into a
    /// single stage whose width is the branch count and whose compute is
    /// the widest branch chain.
    pub fn from_app(app: &AppSpec) -> TemplateProfile {
        let entries = &app.compiled.entries;
        let mut visited = vec![false; entries.len()];
        let mut stages = Vec::new();
        let mut cursor = Some(app.compiled.start);
        while let Some(i) = cursor {
            if visited[i] {
                break;
            }
            visited[i] = true;
            let e = &entries[i];
            let exec = func_exec(app, e.func);
            match &e.kind {
                EntryKind::Simple { next } => {
                    stages.push(StageProfile {
                        exec,
                        width: 1,
                        branch: false,
                    });
                    cursor = *next;
                }
                EntryKind::Branch {
                    taken, not_taken, ..
                } => {
                    stages.push(StageProfile {
                        exec,
                        width: 1,
                        branch: true,
                    });
                    cursor = [*taken, *not_taken]
                        .into_iter()
                        .flatten()
                        .find(|&t| !visited[t]);
                }
                EntryKind::Fork { branches, join } => {
                    stages.push(StageProfile {
                        exec,
                        width: 1,
                        branch: false,
                    });
                    let mut widest = SimDuration::ZERO;
                    for &head in branches {
                        let mut chain = SimDuration::ZERO;
                        let mut c = Some(head);
                        while let Some(j) = c {
                            if Some(j) == *join || visited[j] {
                                break;
                            }
                            visited[j] = true;
                            chain += func_exec(app, entries[j].func);
                            c = match &entries[j].kind {
                                EntryKind::Simple { next } => *next,
                                EntryKind::Branch {
                                    taken, not_taken, ..
                                } => taken.or(*not_taken),
                                EntryKind::Fork { join: j2, .. } => *j2,
                            };
                        }
                        widest = widest.max(chain);
                    }
                    stages.push(StageProfile {
                        exec: widest.max(MIN_STAGE_EXEC),
                        width: branches.len().max(1) as u32,
                        branch: false,
                    });
                    cursor = *join;
                }
            }
        }
        let core_demand = stages.iter().map(|s| s.exec.mul_f64(s.width as f64)).sum();
        TemplateProfile {
            name: app.name.clone(),
            stages,
            core_demand,
        }
    }

    /// A synthetic profile for tests and calibration: `execs_ms[i]` is
    /// stage *i*'s mean compute, `branch_at` marks branch stages.
    pub fn synthetic(name: &str, execs_ms: &[u64], branch_at: &[usize]) -> TemplateProfile {
        let stages: Vec<StageProfile> = execs_ms
            .iter()
            .enumerate()
            .map(|(i, &ms)| StageProfile {
                exec: SimDuration::from_millis(ms).max(MIN_STAGE_EXEC),
                width: 1,
                branch: branch_at.contains(&i),
            })
            .collect();
        let core_demand = stages.iter().map(|s| s.exec.mul_f64(s.width as f64)).sum();
        TemplateProfile {
            name: name.to_owned(),
            stages,
            core_demand,
        }
    }
}

fn func_exec(app: &AppSpec, f: specfaas_workflow::FuncId) -> SimDuration {
    app.registry
        .spec(f)
        .program
        .static_compute_estimate()
        .max(MIN_STAGE_EXEC)
}

/// N tenant applications instantiated from a template set, with interned
/// global function ids.
///
/// Tenant *t* runs template `t mod templates.len()`. The global id of
/// tenant *t*'s stage *s* is `gfunc_base[t] + s` — a dense `u32` keying
/// the shared [`WarmPool`] without hashing `(tenant, stage)` tuples.
#[derive(Debug, Clone)]
pub struct Fleet {
    templates: Vec<Arc<TemplateProfile>>,
    /// Tenant → template index.
    tenant_template: Vec<u32>,
    /// Tenant → first global function id (prefix sums of stage counts).
    gfunc_base: Vec<u32>,
    total_gfuncs: u32,
}

impl Fleet {
    /// Instantiates `tenants` apps round-robin over `templates`.
    ///
    /// # Panics
    /// Panics if `templates` is empty or `tenants == 0`.
    pub fn new(templates: Vec<Arc<TemplateProfile>>, tenants: u32) -> Fleet {
        assert!(!templates.is_empty(), "fleet needs at least one template");
        assert!(tenants > 0, "fleet needs at least one tenant");
        let mut tenant_template = Vec::with_capacity(tenants as usize);
        let mut gfunc_base = Vec::with_capacity(tenants as usize);
        let mut next_gfunc: u32 = 0;
        for t in 0..tenants {
            let tpl = t as usize % templates.len();
            tenant_template.push(tpl as u32);
            gfunc_base.push(next_gfunc);
            next_gfunc += templates[tpl].stages.len() as u32;
        }
        Fleet {
            templates,
            tenant_template,
            gfunc_base,
            total_gfuncs: next_gfunc,
        }
    }

    /// Number of tenants.
    pub fn tenants(&self) -> u32 {
        self.tenant_template.len() as u32
    }

    /// Number of distinct global function ids across the fleet.
    pub fn total_gfuncs(&self) -> u32 {
        self.total_gfuncs
    }

    /// The template index tenant `t` runs.
    pub fn template_index(&self, t: u32) -> u32 {
        self.tenant_template[t as usize]
    }

    /// The profile tenant `t` runs.
    pub fn template_of(&self, t: u32) -> &Arc<TemplateProfile> {
        &self.templates[self.tenant_template[t as usize] as usize]
    }

    /// The interned global function id of tenant `t`'s stage `s`.
    pub fn gfunc(&self, t: u32, s: u16) -> u32 {
        self.gfunc_base[t as usize] + s as u32
    }

    /// Mean per-request core demand across tenants.
    pub fn mean_core_demand(&self) -> SimDuration {
        let total: SimDuration = self
            .tenant_template
            .iter()
            .map(|&tpl| self.templates[tpl as usize].core_demand)
            .sum();
        SimDuration::from_micros(total.as_micros() / self.tenants() as u64)
    }

    /// Widest stage fan-out in any template (lower bound on core count).
    pub fn max_stage_width(&self) -> u32 {
        self.templates
            .iter()
            .flat_map(|t| t.stages.iter().map(|s| s.width))
            .max()
            .unwrap_or(1)
    }

    /// Approximate heap footprint of the tenant directory in bytes.
    pub fn mem_bytes(&self) -> u64 {
        let dir = self.tenant_template.capacity() * 4 + self.gfunc_base.capacity() * 4;
        let tpl: usize = self
            .templates
            .iter()
            .map(|t| t.stages.capacity() * std::mem::size_of::<StageProfile>() + t.name.len())
            .sum();
        (dir + tpl) as u64
    }
}

/// One shared, capacity-bounded warm-container pool with deterministic
/// LRU keep-alive eviction.
///
/// `capacity` bounds **idle** warm containers fleet-wide (the keep-alive
/// memory budget); containers busy executing are not counted. Releasing
/// into a full pool evicts the least-recently-used function's container
/// first. All bookkeeping is ordered (`BTreeSet` keyed by a monotone
/// use-sequence), so eviction order is deterministic.
///
/// The pool consults the same [`KeepAlivePolicy`] trait as the
/// single-app container pools: no-keep-alive destroys containers at
/// release, and a fixed TTL reclaims a function's idle stock once its
/// most recent release is `ttl` old (whole-entry expiry — at flow level,
/// a function's duplicates recycle together, so per-container tracking
/// would only duplicate the recency key). Expiry runs before any warm
/// handout, so an expired container is never revived.
#[derive(Debug, Clone)]
pub struct WarmPool {
    capacity: u32,
    total_idle: u32,
    /// gfunc → (idle count, current recency key, last release instant).
    idle: FxHashMap<u32, (u32, u64, SimTime)>,
    /// (recency key, gfunc) in eviction order (oldest first).
    lru: BTreeSet<(u64, u32)>,
    seq: u64,
    /// Acquisitions that found no warm container.
    pub cold_starts: u64,
    /// Acquisitions served warm.
    pub warm_starts: u64,
    /// Idle containers evicted to stay under capacity or reclaimed by
    /// the keep-alive policy.
    pub evictions: u64,
}

impl WarmPool {
    /// An empty pool bounded to `capacity` idle containers.
    pub fn new(capacity: u32) -> WarmPool {
        WarmPool {
            capacity: capacity.max(1),
            total_idle: 0,
            idle: FxHashMap::default(),
            lru: BTreeSet::new(),
            seq: 0,
            cold_starts: 0,
            warm_starts: 0,
            evictions: 0,
        }
    }

    /// Drops `gfunc`'s whole idle entry, counting every container as
    /// evicted.
    fn expire_entry(&mut self, gfunc: u32) {
        if let Some((count, key, _)) = self.idle.remove(&gfunc) {
            self.lru.remove(&(key, gfunc));
            self.total_idle -= count;
            self.evictions += u64::from(count);
        }
    }

    /// Takes a warm container for `gfunc` if one is idle and not expired
    /// at `now`. Returns true on a warm hit; false means the caller pays
    /// a cold start.
    pub fn acquire(&mut self, gfunc: u32, now: SimTime, policy: &dyn KeepAlivePolicy) -> bool {
        if let Some(ttl) = policy.ttl() {
            if self
                .idle
                .get(&gfunc)
                .is_some_and(|&(_, _, released)| released + ttl <= now)
            {
                self.expire_entry(gfunc);
            }
        }
        if let Some(entry) = self.idle.get_mut(&gfunc) {
            entry.0 -= 1;
            self.total_idle -= 1;
            if entry.0 == 0 {
                let key = entry.1;
                self.idle.remove(&gfunc);
                self.lru.remove(&(key, gfunc));
            }
            self.warm_starts += 1;
            true
        } else {
            self.cold_starts += 1;
            false
        }
    }

    /// Returns a container for `gfunc` to the idle pool at `now` — if
    /// the keep-alive policy keeps it — refreshing its recency, sweeping
    /// TTL-expired entries from the cold end of the LRU order, and
    /// evicting the least-recently-used function's container if the pool
    /// is at capacity.
    pub fn release(&mut self, gfunc: u32, now: SimTime, policy: &dyn KeepAlivePolicy) {
        if !policy.keep_idle() {
            self.evictions += 1;
            return;
        }
        self.seq += 1;
        let key = self.seq;
        match self.idle.get_mut(&gfunc) {
            Some(entry) => {
                self.lru.remove(&(entry.1, gfunc));
                entry.0 += 1;
                entry.1 = key;
                entry.2 = now;
            }
            None => {
                self.idle.insert(gfunc, (1, key, now));
            }
        }
        self.lru.insert((key, gfunc));
        self.total_idle += 1;
        if let Some(ttl) = policy.ttl() {
            // The LRU order is also release-time order (both follow the
            // monotone seq), so expired entries cluster at the front.
            while let Some(&(_, victim)) = self.lru.iter().next() {
                let &(_, _, released) = self.idle.get(&victim).expect("lru entry tracked");
                if released + ttl <= now {
                    self.expire_entry(victim);
                } else {
                    break;
                }
            }
        }
        while self.total_idle > self.capacity {
            let &(vkey, victim) = self.lru.iter().next().expect("idle pool non-empty");
            let entry = self.idle.get_mut(&victim).expect("lru entry tracked");
            entry.0 -= 1;
            self.total_idle -= 1;
            self.evictions += 1;
            if entry.0 == 0 {
                self.idle.remove(&victim);
                self.lru.remove(&(vkey, victim));
            }
        }
    }

    /// Idle containers currently pooled.
    pub fn idle_total(&self) -> u32 {
        self.total_idle
    }

    /// Idle containers currently pooled for `gfunc` (raw count; TTL
    /// expiry is lazy).
    pub fn idle_count(&self, gfunc: u32) -> u32 {
        self.idle.get(&gfunc).map_or(0, |e| e.0)
    }

    /// The configured idle-capacity bound.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Approximate heap footprint in bytes.
    pub fn mem_bytes(&self) -> u64 {
        // FxHashMap entry ≈ key + value + control; BTreeSet node ≈ 2 words
        // amortized payload + tree overhead.
        (self.idle.len() * 24 + self.lru.len() * 32) as u64
    }
}

/// Configuration of one scale run.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// The arrival trace (tenants, request count, rate curve, seed).
    pub trace: TraceConfig,
    /// True for the speculative engine; false for the sequential
    /// baseline.
    pub speculative: bool,
    /// Fleet-wide execution cores. 0 = auto-size from the fleet's mean
    /// core demand at peak rate (~50 % target utilization).
    pub cores: u32,
    /// Warm-pool idle capacity. 0 = auto: 9/8 of the fleet's distinct
    /// function count (clamped to `[256, 262144]`), i.e. enough keep-alive
    /// budget for one container per function plus hot-function
    /// duplicates. Smaller values turn on LRU churn: the Zipf tail then
    /// runs cold while hot tenants pin their containers (see
    /// `tail_tenants_run_colder_than_hot_tenants`). Capacities well below
    /// the working set collapse into a cold-thrash equilibrium — realistic
    /// (keep-alive budgets do behave that way) but not the regime the
    /// committed artifact reports.
    pub warm_capacity: u32,
    /// Requests to exclude from the latency distribution while the pool
    /// warms up. 0 = auto (5 % of the trace). Completions and pool
    /// counters still include the warmup; only latency recording is
    /// gated, so reported means are steady-state rather than dominated by
    /// the initial cold-start herd.
    pub warmup_requests: u64,
    /// Seed one warm container per fleet function before the trace
    /// starts (subject to the pool's capacity bound), exactly like the
    /// paper benches' `prewarm_all`. Without it a cold fleet must
    /// bootstrap through a thundering herd whose queueing can lock the
    /// pool into an eviction-thrash equilibrium for the whole run.
    pub prewarm: bool,
    /// Probability a branch stage mispredicts, squashing its successor.
    pub mispredict: f64,
    /// Probability a stage is served from the memo table (spec only).
    pub memo_hit: f64,
    /// Platform policies (keep-alive and prewarm; placement has no
    /// meaning against the fleet's single shared pool and is ignored).
    /// The default reproduces the pre-policy-layer behaviour bit for
    /// bit.
    pub policy: PolicyConfig,
}

impl ScaleConfig {
    /// A config with the default flow-model probabilities (10 %
    /// misprediction, 25 % memo hits), auto-sized resources, and the
    /// default platform policies.
    pub fn new(trace: TraceConfig, speculative: bool) -> ScaleConfig {
        ScaleConfig {
            trace,
            speculative,
            cores: 0,
            warm_capacity: 0,
            warmup_requests: 0,
            prewarm: true,
            mispredict: 0.10,
            memo_hit: 0.25,
            policy: PolicyConfig::default(),
        }
    }
}

/// Streaming results of one scale run. All distribution state is
/// constant-memory ([`LogHistogram`] / [`SpaceSaving`]).
#[derive(Debug, Clone)]
pub struct ScaleStats {
    /// Requests completed (equals the trace's request count).
    pub completed: u64,
    /// Simulated time span of the run.
    pub sim_span: SimDuration,
    /// End-to-end request latency distribution (steady-state: warmup
    /// requests are excluded).
    pub latency: LogHistogram,
    /// Cold container acquisitions.
    pub cold_starts: u64,
    /// Warm container acquisitions.
    pub warm_starts: u64,
    /// Idle containers evicted by the keep-alive bound.
    pub evictions: u64,
    /// Core-microseconds spent on work that was later squashed.
    pub wasted_core_us: u64,
    /// Total core-microseconds of execution (valid + wasted).
    pub busy_core_us: u64,
    /// Peak concurrently-live requests.
    pub peak_live: u32,
    /// Peak approximate memory footprint of the engine (bytes), sampled
    /// every 8192 arrivals.
    pub peak_mem_bytes: u64,
    /// Top tenants by completed requests.
    pub top_tenants: SpaceSaving<u32>,
    /// Cores the run was sized to.
    pub cores: u32,
    /// Warm-pool capacity the run was sized to.
    pub warm_capacity: u32,
    /// Container creations started ahead of demand by the prewarm
    /// policy (0 under the default no-prewarm policy).
    pub prewarm_issued: u64,
}

impl ScaleStats {
    /// Mean end-to-end latency in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.latency.mean() / 1_000.0
    }

    /// Fraction of container acquisitions that were cold.
    pub fn cold_rate(&self) -> f64 {
        let total = self.cold_starts + self.warm_starts;
        if total == 0 {
            0.0
        } else {
            self.cold_starts as f64 / total as f64
        }
    }

    /// Fraction of core time spent on squashed (wasted) work.
    pub fn wasted_frac(&self) -> f64 {
        if self.busy_core_us == 0 {
            0.0
        } else {
            self.wasted_core_us as f64 / self.busy_core_us as f64
        }
    }
}

/// Per-stage runtime state of a live request (slab-pooled).
#[derive(Debug, Clone, Copy, Default)]
struct StageRt {
    exec: SimDuration,
    /// This branch stage will mispredict (drawn at arrival).
    mispredict: bool,
    /// The first run of this stage is invalid (predecessor mispredicted).
    squash: bool,
    /// Memo hit: skip execution entirely (ignored while `squash`).
    memo: bool,
    /// A container is currently held.
    held_container: bool,
    /// Squashed first run finished; valid re-run pending predecessor.
    awaiting_rerun: bool,
    /// The stage's valid execution has completed.
    valid_done: bool,
    /// Cores currently held (0 when not running).
    running_width: u32,
}

/// A live request's state (slab-pooled; `stages` keeps its capacity
/// across reuse, so steady state allocates nothing per request).
#[derive(Debug, Default)]
struct Req {
    tenant: u32,
    template: u32,
    arrive: SimTime,
    committed: u16,
    /// False for warmup requests, whose latency is not recorded.
    measured: bool,
    stages: Vec<StageRt>,
}

#[derive(Debug)]
enum Ev {
    /// Consume the next trace arrival.
    Arrive,
    /// Try to begin (or re-run) a stage.
    Start { req: u32, stage: u16 },
    /// A stage's execution finished.
    Done { req: u32, stage: u16 },
    /// A cold container for `gfunc` finished creating.
    ColdReady { gfunc: u32 },
    /// The request's response returned to the client.
    Complete { req: u32 },
}

/// The flow-level multi-tenant scale engine. Construct with
/// [`ScaleEngine::new`], drive to completion with [`ScaleEngine::run`].
pub struct ScaleEngine {
    cfg: ScaleConfig,
    fleet: Fleet,
    model: OverheadModel,
    sim: Simulator<Ev>,
    rng: SimRng,
    gen: TraceGen,
    batch: Vec<Arrival>,
    batch_pos: usize,
    pool: WarmPool,
    /// Per-function FIFO of stages waiting for a container (cold-start
    /// coalescing: the queue drains via [`ScaleEngine::handoff`]).
    cold_waiters: FxHashMap<u32, VecDeque<(u32, u16)>>,
    /// Cold creations currently in flight per function (bounded by
    /// [`MAX_CONCURRENT_COLD_STARTS`]).
    creating: FxHashMap<u32, u32>,
    /// Keep-alive policy threaded into every pool acquire/release.
    keepalive: Box<dyn KeepAlivePolicy>,
    /// Prewarm policy consulted at each container acquisition.
    prewarm: Box<dyn PrewarmPolicy>,
    /// Scratch prewarm-target list (reused per acquisition).
    prewarm_scratch: Vec<u32>,
    /// Container creations started ahead of demand.
    prewarm_issued: u64,
    warmup_requests: u64,
    cores: u32,
    free_cores: u32,
    waiters: VecDeque<(u32, u16)>,
    slab: Vec<Req>,
    free: Vec<u32>,
    live: u32,
    // Streaming metrics.
    latency: LogHistogram,
    top_tenants: SpaceSaving<u32>,
    completed: u64,
    wasted_core_us: u64,
    busy_core_us: u64,
    peak_live: u32,
    peak_mem_bytes: u64,
    arrivals_seen: u64,
}

impl ScaleEngine {
    /// Builds an engine over `templates` for the given config,
    /// auto-sizing cores and warm capacity where the config says 0.
    pub fn new(cfg: ScaleConfig, templates: Vec<Arc<TemplateProfile>>) -> ScaleEngine {
        let fleet = Fleet::new(templates, cfg.trace.tenants);
        let model = OverheadModel::default();
        let peak_rps = cfg.trace.mean_rps * (1.0 + cfg.trace.diurnal_amplitude);
        let cores = if cfg.cores > 0 {
            cfg.cores
        } else {
            // Peak core demand over a ~50 % utilization target, so queues
            // stay bounded through diurnal peaks even with squash re-runs.
            let demand = peak_rps * fleet.mean_core_demand().as_secs_f64();
            ((demand / 0.5).ceil() as u32).max(64)
        }
        .max(fleet.max_stage_width());
        let keepalive = cfg.policy.build_keepalive();
        let prewarm = cfg.policy.build_prewarm();
        let warm_capacity = if cfg.warm_capacity > 0 {
            cfg.warm_capacity
        } else if let Some(c) = keepalive.pool_capacity() {
            c.max(1)
        } else {
            // One keep-alive slot per function, doubled plus headroom for
            // the concurrency duplicates hot functions accumulate
            // (calibrated at the 1000-tenant tier: below ~2.2x gfuncs the
            // pool evicts tail functions every diurnal peak and means
            // inflate 10x; above it results are capacity-insensitive).
            let g = fleet.total_gfuncs() as u64;
            (g * 2 + 4096).clamp(256, 262_144) as u32
        };
        let warmup_requests = if cfg.warmup_requests > 0 {
            cfg.warmup_requests
        } else {
            cfg.trace.requests / 20
        };
        let gen = TraceGen::new(cfg.trace.clone());
        let rng = SimRng::seed(cfg.trace.seed ^ 0x5CA1_E0E0_F1EE_7001);
        let mut pool = WarmPool::new(warm_capacity);
        if cfg.prewarm {
            // Seeded through the policy: no-keep-alive fleets start cold
            // (their seed containers are torn down on the spot), and a
            // TTL decays the seed stock like any other idle container.
            for g in 0..fleet.total_gfuncs() {
                pool.release(g, SimTime::ZERO, &*keepalive);
            }
        }
        ScaleEngine {
            cfg,
            fleet,
            model,
            sim: Simulator::new(),
            rng,
            gen,
            batch: Vec::with_capacity(ARRIVAL_BATCH),
            batch_pos: 0,
            pool,
            cold_waiters: FxHashMap::default(),
            creating: FxHashMap::default(),
            keepalive,
            prewarm,
            prewarm_scratch: Vec::new(),
            prewarm_issued: 0,
            warmup_requests,
            cores,
            free_cores: cores,
            waiters: VecDeque::new(),
            slab: Vec::new(),
            free: Vec::new(),
            live: 0,
            latency: LogHistogram::new(),
            top_tenants: SpaceSaving::new(32),
            completed: 0,
            wasted_core_us: 0,
            busy_core_us: 0,
            peak_live: 0,
            peak_mem_bytes: 0,
            arrivals_seen: 0,
        }
    }

    /// Runs the trace to completion and returns the streaming stats.
    pub fn run(mut self) -> ScaleStats {
        if self.refill_if_needed() {
            let t = self.batch[self.batch_pos].time;
            self.sim.schedule_at(t, Ev::Arrive);
        }
        while let Some((now, ev)) = self.sim.step() {
            match ev {
                Ev::Arrive => self.on_arrive(now),
                Ev::Start { req, stage } => self.on_start(now, req, stage),
                Ev::Done { req, stage } => self.on_done(now, req, stage),
                Ev::ColdReady { gfunc } => self.on_cold_ready(now, gfunc),
                Ev::Complete { req } => self.on_complete(now, req),
            }
        }
        self.sample_mem();
        assert_eq!(
            self.completed, self.cfg.trace.requests,
            "scale run must drain every request"
        );
        ScaleStats {
            completed: self.completed,
            sim_span: self.sim.now().saturating_since(SimTime::ZERO),
            latency: self.latency,
            cold_starts: self.pool.cold_starts,
            warm_starts: self.pool.warm_starts,
            evictions: self.pool.evictions,
            wasted_core_us: self.wasted_core_us,
            busy_core_us: self.busy_core_us,
            peak_live: self.peak_live,
            peak_mem_bytes: self.peak_mem_bytes,
            top_tenants: self.top_tenants,
            cores: self.cores,
            warm_capacity: self.pool.capacity(),
            prewarm_issued: self.prewarm_issued,
        }
    }

    /// Ensures the batch cursor points at an unconsumed arrival. Returns
    /// false when the trace is exhausted.
    fn refill_if_needed(&mut self) -> bool {
        if self.batch_pos < self.batch.len() {
            return true;
        }
        self.batch.clear();
        self.batch_pos = 0;
        self.gen.fill(&mut self.batch, ARRIVAL_BATCH) > 0
    }

    fn on_arrive(&mut self, now: SimTime) {
        let a = self.batch[self.batch_pos];
        self.batch_pos += 1;
        debug_assert_eq!(a.time, now);

        // Slab-pooled request state.
        let idx = match self.free.pop() {
            Some(i) => i,
            None => {
                self.slab.push(Req::default());
                (self.slab.len() - 1) as u32
            }
        };
        let template = self.fleet.template_index(a.tenant);
        let n_stages = self.fleet.template_of(a.tenant).stages.len();
        let speculative = self.cfg.speculative;
        {
            let req = &mut self.slab[idx as usize];
            req.tenant = a.tenant;
            req.template = template;
            req.arrive = now;
            req.committed = 0;
            req.measured = a.seq >= self.warmup_requests;
            req.stages.clear();
        }
        // Per-request draws happen here, in a fixed order (jitter,
        // mispredict, memo per stage), so the RNG stream is identical for
        // the baseline and speculative engines over the same trace.
        for s in 0..n_stages {
            let u_jit = self.rng.uniform_f64();
            let u_mis = self.rng.uniform_f64();
            let u_memo = self.rng.uniform_f64();
            let sp = self.fleet.templates[template as usize].stages[s];
            let mut rt = StageRt {
                exec: sp.exec.mul_f64(0.85 + 0.3 * u_jit),
                memo: speculative && u_memo < self.cfg.memo_hit,
                ..StageRt::default()
            };
            if speculative && sp.branch && u_mis < self.cfg.mispredict {
                rt.mispredict = true;
            }
            self.slab[idx as usize].stages.push(rt);
        }
        if speculative {
            for s in 1..n_stages {
                if self.slab[idx as usize].stages[s - 1].mispredict {
                    self.slab[idx as usize].stages[s].squash = true;
                }
            }
        }

        // Launch.
        if speculative {
            // The Sequence Table launches every stage up front, one
            // spec-launch service time apart.
            let base = now + self.model.platform_fixed;
            for s in 0..n_stages {
                let at = base + self.model.spec_launch_service.mul_f64((s + 1) as f64);
                self.sim.schedule_at(
                    at,
                    Ev::Start {
                        req: idx,
                        stage: s as u16,
                    },
                );
            }
        } else {
            let at = now + self.model.platform_fixed + self.model.controller_service;
            self.sim.schedule_at(at, Ev::Start { req: idx, stage: 0 });
        }

        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        self.arrivals_seen += 1;
        if self.arrivals_seen.is_multiple_of(MEM_SAMPLE_EVERY) {
            self.sample_mem();
        }

        // Schedule the next arrival (batched refills off the hot path).
        if self.refill_if_needed() {
            let t = self.batch[self.batch_pos].time;
            self.sim.schedule_at(t, Ev::Arrive);
        }
    }

    fn on_start(&mut self, now: SimTime, req: u32, stage: u16) {
        let tenant = self.slab[req as usize].tenant;
        let rt = self.slab[req as usize].stages[stage as usize];
        // Memo hit: skip execution — one Data-Buffer hop, no container,
        // no cores. Not honored while the stage is squash-tainted.
        if rt.memo && !rt.squash {
            self.sim
                .schedule_at(now + self.model.data_buffer_hop, Ev::Done { req, stage });
            return;
        }
        // Container acquisition (once per acquisition cycle). A miss
        // queues the stage per-function; it resumes via handoff when a
        // cold creation finishes or a busy container recycles.
        if !rt.held_container {
            let g = self.fleet.gfunc(tenant, stage);
            self.maybe_prewarm(now, g);
            if self.pool.acquire(g, now, &*self.keepalive) {
                self.slab[req as usize].stages[stage as usize].held_container = true;
            } else {
                self.cold_waiters
                    .entry(g)
                    .or_default()
                    .push_back((req, stage));
                let creating = self.creating.entry(g).or_insert(0);
                if *creating < MAX_CONCURRENT_COLD_STARTS {
                    *creating += 1;
                    self.sim
                        .schedule_at(now + self.model.cold_start(), Ev::ColdReady { gfunc: g });
                }
                return;
            }
        }
        // Core admission: FIFO, no overtaking.
        let width = self.stage_width(req, stage);
        if self.free_cores >= width && self.waiters.is_empty() {
            self.begin_exec(now, req, stage, width);
        } else {
            self.waiters.push_back((req, stage));
        }
    }

    /// A cold creation for `gfunc` finished: hand the fresh container to
    /// the next queued waiter, or pool it if the queue already drained
    /// via recycling.
    fn on_cold_ready(&mut self, now: SimTime, gfunc: u32) {
        let c = self.creating.get_mut(&gfunc).expect("creation tracked");
        *c -= 1;
        if *c == 0 {
            self.creating.remove(&gfunc);
        }
        if !self.handoff(gfunc) {
            self.pool.release(gfunc, now, &*self.keepalive);
        }
    }

    /// Gives the prewarm policy its per-acquisition hook: predicted
    /// successors of `gfunc` with no idle container and no creation in
    /// flight begin warming through the ordinary cold-start machinery
    /// (so a prewarmed container hands off to queued waiters exactly
    /// like a demand-started one, and pooling it on completion respects
    /// the capacity bound by construction).
    fn maybe_prewarm(&mut self, now: SimTime, gfunc: u32) {
        let mut targets = std::mem::take(&mut self.prewarm_scratch);
        targets.clear();
        self.prewarm.on_invoke(gfunc, &mut targets);
        for &p in &targets {
            if self.pool.idle_count(p) == 0 && !self.creating.contains_key(&p) {
                *self.creating.entry(p).or_insert(0) += 1;
                self.prewarm_issued += 1;
                self.sim
                    .schedule_at(now + self.model.cold_start(), Ev::ColdReady { gfunc: p });
            }
        }
        self.prewarm_scratch = targets;
    }

    /// Pops the next per-function cold waiter, if any, gives it the
    /// container, and reschedules its start. Returns false when nobody is
    /// waiting for `gfunc`.
    fn handoff(&mut self, gfunc: u32) -> bool {
        let Some(q) = self.cold_waiters.get_mut(&gfunc) else {
            return false;
        };
        let Some((req, stage)) = q.pop_front() else {
            self.cold_waiters.remove(&gfunc);
            return false;
        };
        if q.is_empty() {
            self.cold_waiters.remove(&gfunc);
        }
        self.slab[req as usize].stages[stage as usize].held_container = true;
        self.sim.schedule_now(Ev::Start { req, stage });
        true
    }

    fn stage_width(&self, req: u32, stage: u16) -> u32 {
        let tpl = self.slab[req as usize].template as usize;
        self.fleet.templates[tpl].stages[stage as usize].width
    }

    fn begin_exec(&mut self, now: SimTime, req: u32, stage: u16, width: u32) {
        self.free_cores -= width;
        let rt = &mut self.slab[req as usize].stages[stage as usize];
        rt.running_width = width;
        let exec = rt.exec;
        self.sim.schedule_at(now + exec, Ev::Done { req, stage });
    }

    fn on_done(&mut self, now: SimTime, req: u32, stage: u16) {
        let rt = self.slab[req as usize].stages[stage as usize];
        let width = rt.running_width;
        if width > 0 {
            self.free_cores += width;
            let core_us = rt.exec.as_micros() * width as u64;
            self.busy_core_us += core_us;
            if rt.squash {
                self.wasted_core_us += core_us;
            }
            let r = &mut self.slab[req as usize].stages[stage as usize];
            r.running_width = 0;
        }
        if rt.held_container {
            let g = self.fleet.gfunc(self.slab[req as usize].tenant, stage);
            // Recycle directly to a queued waiter when one exists; the
            // container only returns to the idle pool otherwise.
            if !self.handoff(g) {
                self.pool.release(g, now, &*self.keepalive);
            }
            let r = &mut self.slab[req as usize].stages[stage as usize];
            r.held_container = false;
        }

        if rt.squash {
            // First (invalid) run finished. The valid re-run may only
            // start once the mispredicted predecessor has resolved.
            let r = &mut self.slab[req as usize].stages[stage as usize];
            r.squash = false;
            let pred_done =
                stage == 0 || self.slab[req as usize].stages[stage as usize - 1].valid_done;
            if pred_done {
                self.sim.schedule_now(Ev::Start { req, stage });
            } else {
                self.slab[req as usize].stages[stage as usize].awaiting_rerun = true;
            }
            self.drain_waiters(now);
            return;
        }

        // Valid completion.
        self.slab[req as usize].stages[stage as usize].valid_done = true;
        let n = self.slab[req as usize].stages.len() as u16;
        if stage + 1 < n {
            // Feed the observed chain edge to the prewarm policy (a
            // no-op under the default no-prewarm policy).
            let tenant = self.slab[req as usize].tenant;
            let from = self.fleet.gfunc(tenant, stage);
            let to = self.fleet.gfunc(tenant, stage + 1);
            self.prewarm.observe(from, to);
        }
        if self.cfg.speculative {
            // Wake a squashed successor waiting on this resolution.
            if stage + 1 < n && self.slab[req as usize].stages[stage as usize + 1].awaiting_rerun {
                self.slab[req as usize].stages[stage as usize + 1].awaiting_rerun = false;
                self.sim.schedule_now(Ev::Start {
                    req,
                    stage: stage + 1,
                });
            }
        } else if stage + 1 < n {
            // Sequential chain: conductor hop to the next function.
            let hop = self.model.transfer_fixed
                + self.model.conductor_service
                + self.model.controller_service;
            self.sim.schedule_at(
                now + hop,
                Ev::Start {
                    req,
                    stage: stage + 1,
                },
            );
        }

        // In-order commit cursor.
        {
            let r = &mut self.slab[req as usize];
            while (r.committed as usize) < r.stages.len()
                && r.stages[r.committed as usize].valid_done
            {
                r.committed += 1;
            }
            if r.committed == n {
                let tail = if self.cfg.speculative {
                    self.model.response_return + self.model.spec_commit_service.mul_f64(n as f64)
                } else {
                    self.model.response_return
                };
                self.sim.schedule_at(now + tail, Ev::Complete { req });
            }
        }
        self.drain_waiters(now);
    }

    fn drain_waiters(&mut self, now: SimTime) {
        while let Some(&(req, stage)) = self.waiters.front() {
            let width = self.stage_width(req, stage);
            if self.free_cores < width {
                break;
            }
            self.waiters.pop_front();
            self.begin_exec(now, req, stage, width);
        }
    }

    fn on_complete(&mut self, now: SimTime, req: u32) {
        let (tenant, arrive, measured) = {
            let r = &self.slab[req as usize];
            (r.tenant, r.arrive, r.measured)
        };
        if measured {
            self.latency
                .record(now.saturating_since(arrive).as_micros());
        }
        self.top_tenants.add(tenant);
        self.completed += 1;
        self.live -= 1;
        // Return the slot (and its stage Vec's capacity) to the pool.
        self.free.push(req);
    }

    /// Samples the approximate live memory footprint: tenant directory,
    /// warm-pool bookkeeping, request slab, waiter queue, arrival batch,
    /// and streaming metric storage. This is a model-level accounting
    /// (deterministic across hosts), not host RSS.
    fn sample_mem(&mut self) {
        let slab_bytes: usize = self.slab.capacity() * std::mem::size_of::<Req>()
            + self
                .slab
                .iter()
                .map(|r| r.stages.capacity() * std::mem::size_of::<StageRt>())
                .sum::<usize>();
        let mem = self.fleet.mem_bytes()
            + self.pool.mem_bytes()
            + slab_bytes as u64
            + (self.waiters.capacity() * 8) as u64
            + self
                .cold_waiters
                .values()
                .map(|q| 48 + q.capacity() as u64 * 8)
                .sum::<u64>()
            + (self.creating.len() as u64 * 16)
            + (self.batch.capacity() * 20) as u64
            + (self.latency.bucket_storage() * 8) as u64
            + (self.gen.zipf().mem_bytes());
        self.peak_mem_bytes = self.peak_mem_bytes.max(mem);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_templates() -> Vec<Arc<TemplateProfile>> {
        vec![
            Arc::new(TemplateProfile::synthetic("chain4", &[5, 8, 6, 4], &[1])),
            Arc::new(TemplateProfile::synthetic(
                "chain6",
                &[3, 5, 5, 7, 4, 2],
                &[2, 4],
            )),
        ]
    }

    fn toy_trace(tenants: u32, requests: u64, seed: u64) -> TraceConfig {
        let mut t = TraceConfig::new(tenants, requests, seed);
        t.mean_rps = 400.0;
        t.diurnal_period = SimDuration::from_secs(20);
        t
    }

    #[test]
    fn fleet_interns_dense_gfunc_ids() {
        let fleet = Fleet::new(toy_templates(), 5);
        // Tenants alternate 4-stage / 6-stage templates.
        assert_eq!(fleet.gfunc(0, 0), 0);
        assert_eq!(fleet.gfunc(1, 0), 4);
        assert_eq!(fleet.gfunc(2, 0), 10);
        assert_eq!(fleet.gfunc(2, 3), 13);
        assert_eq!(fleet.total_gfuncs(), 4 + 6 + 4 + 6 + 4);
        // Ids are dense and non-overlapping.
        let mut seen = std::collections::BTreeSet::new();
        for t in 0..5u32 {
            for s in 0..fleet.template_of(t).stages.len() as u16 {
                assert!(seen.insert(fleet.gfunc(t, s)));
            }
        }
        assert_eq!(seen.len() as u32, fleet.total_gfuncs());
    }

    #[test]
    fn warm_pool_caps_idle_and_evicts_lru() {
        let ka = crate::policy::DefaultKeepAlive;
        let t = SimTime::ZERO;
        let mut p = WarmPool::new(2);
        p.release(10, t, &ka);
        p.release(11, t, &ka);
        p.release(12, t, &ka); // evicts gfunc 10 (oldest)
        assert_eq!(p.idle_total(), 2);
        assert_eq!(p.evictions, 1);
        assert!(!p.acquire(10, t, &ka), "evicted function must be cold");
        assert!(p.acquire(11, t, &ka));
        assert!(p.acquire(12, t, &ka));
        assert_eq!(p.warm_starts, 2);
        assert_eq!(p.cold_starts, 1);
        assert_eq!(p.idle_total(), 0);
    }

    #[test]
    fn warm_pool_refreshes_recency_on_release() {
        let ka = crate::policy::DefaultKeepAlive;
        let t = SimTime::ZERO;
        let mut p = WarmPool::new(2);
        p.release(1, t, &ka);
        p.release(2, t, &ka);
        assert!(p.acquire(1, t, &ka));
        p.release(1, t, &ka); // 1 is now fresher than 2
        p.release(3, t, &ka); // evicts 2
        assert!(!p.acquire(2, t, &ka));
        assert!(p.acquire(1, t, &ka));
        assert!(p.acquire(3, t, &ka));
    }

    #[test]
    fn warm_pool_ttl_expires_whole_entries() {
        let ka = crate::policy::FixedTtlKeepAlive {
            ttl: SimDuration::from_millis(10),
        };
        let mut p = WarmPool::new(8);
        p.release(5, SimTime::ZERO, &ka);
        // Within the TTL the container is still warm.
        assert!(p.acquire(5, SimTime::ZERO + SimDuration::from_millis(5), &ka));
        p.release(5, SimTime::ZERO + SimDuration::from_millis(5), &ka);
        // Past the TTL the entry is expired and counted as evicted.
        assert!(!p.acquire(5, SimTime::ZERO + SimDuration::from_millis(20), &ka));
        assert_eq!(p.evictions, 1);
    }

    #[test]
    fn warm_pool_no_keepalive_never_pools() {
        let ka = crate::policy::NoKeepAlive;
        let mut p = WarmPool::new(8);
        p.release(3, SimTime::ZERO, &ka);
        assert_eq!(p.idle_total(), 0);
        assert_eq!(p.evictions, 1);
        assert!(!p.acquire(3, SimTime::ZERO, &ka));
    }

    #[test]
    fn scale_seq_table_prewarm_issues_creations() {
        let mut cfg = ScaleConfig::new(toy_trace(10, 4_000, 7), false);
        cfg.prewarm = false; // start cold so the policy has work to do
        cfg.policy.prewarm = crate::policy::PrewarmChoice::SeqTable;
        let stats = ScaleEngine::new(cfg, toy_templates()).run();
        assert_eq!(stats.completed, 4_000);
        assert!(
            stats.prewarm_issued > 0,
            "chained stages must trigger seq-table prewarms"
        );
    }

    #[test]
    fn scale_default_policy_matches_legacy_behaviour() {
        // The pluggable default policy must leave the flow-level engine's
        // results exactly where the hard-coded LRU pool had them.
        let mk = |policy: PolicyConfig| {
            let mut cfg = ScaleConfig::new(toy_trace(16, 3_000, 23), true);
            cfg.policy = policy;
            ScaleEngine::new(cfg, toy_templates()).run()
        };
        let a = mk(PolicyConfig::default());
        let b = mk(PolicyConfig::platform_default());
        assert_eq!(a.latency.sum(), b.latency.sum());
        assert_eq!(a.cold_starts, b.cold_starts);
        assert_eq!(a.evictions, b.evictions);
        assert_eq!(a.prewarm_issued, 0);
    }

    #[test]
    fn scale_run_drains_every_request() {
        let cfg = ScaleConfig::new(toy_trace(10, 2_000, 7), false);
        let stats = ScaleEngine::new(cfg, toy_templates()).run();
        assert_eq!(stats.completed, 2_000);
        // 5 % warmup excluded from the latency distribution.
        assert_eq!(stats.latency.count(), 2_000 - 100);
        assert!(stats.peak_live > 0);
        assert!(stats.peak_mem_bytes > 0);
    }

    #[test]
    fn speculation_beats_baseline_at_flow_level() {
        let trace = toy_trace(20, 4_000, 11);
        let base = ScaleEngine::new(ScaleConfig::new(trace.clone(), false), toy_templates()).run();
        let spec = ScaleEngine::new(ScaleConfig::new(trace, true), toy_templates()).run();
        assert_eq!(base.completed, spec.completed);
        let win = base.mean_ms() / spec.mean_ms();
        assert!(win > 1.2, "speculation win {win:.2}x should exceed 1.2x");
        assert!(spec.wasted_core_us > 0, "mispredictions must waste cores");
        assert!(spec.wasted_frac() < 0.5, "waste should stay bounded");
    }

    #[test]
    fn scale_runs_are_deterministic() {
        for speculative in [false, true] {
            let mk = || {
                ScaleEngine::new(
                    ScaleConfig::new(toy_trace(16, 3_000, 23), speculative),
                    toy_templates(),
                )
                .run()
            };
            let (a, b) = (mk(), mk());
            assert_eq!(a.completed, b.completed);
            assert_eq!(a.latency.sum(), b.latency.sum());
            assert_eq!(a.latency.quantile(0.99), b.latency.quantile(0.99));
            assert_eq!(a.cold_starts, b.cold_starts);
            assert_eq!(a.wasted_core_us, b.wasted_core_us);
            assert_eq!(a.peak_mem_bytes, b.peak_mem_bytes);
        }
    }

    #[test]
    fn tail_tenants_run_colder_than_hot_tenants() {
        // Tight warm capacity: the Zipf tail must churn cold.
        let mut cfg = ScaleConfig::new(toy_trace(200, 20_000, 31), false);
        cfg.warm_capacity = 64;
        let stats = ScaleEngine::new(cfg, toy_templates()).run();
        assert!(stats.cold_starts > 0);
        assert!(stats.warm_starts > 0);
        assert!(stats.evictions > 0, "tight pool must evict");
        // Hot tenants dominate completions.
        let top = stats.top_tenants.top();
        assert!(!top.is_empty());
    }

    #[test]
    fn slab_is_reused_not_grown() {
        // Long enough that the cold-start warmup herd (which legitimately
        // inflates live concurrency for the first simulated seconds) is a
        // small fraction of the run.
        let cfg = ScaleConfig::new(toy_trace(8, 20_000, 3), false);
        let stats = ScaleEngine::new(cfg, toy_templates()).run();
        // Peak live concurrency bounds the slab; 20k requests must not
        // mean 20k slots.
        assert!(
            (stats.peak_live as u64) < stats.completed / 2,
            "peak_live {} vs completed {}",
            stats.peak_live,
            stats.completed
        );
    }
}
