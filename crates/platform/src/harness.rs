//! The shared engine-runtime layer: one harness, two engine cores.
//!
//! SpecFaaS's contribution is a *speculative policy* layered on an
//! otherwise ordinary FaaS control plane. This module owns the ordinary
//! part once, so the speculative engine ([`SpecEngine`]) and the
//! conventional engine ([`BaselineEngine`]) are reduced to policy cores:
//!
//! * [`Runtime`] — the state both engines share: simulated clock + event
//!   queue, workload RNG, cluster (warm-container pools, cores,
//!   controllers), KV store, fault injector + retry policy, flight
//!   recorder, time-series registry, run metrics and open/closed-loop
//!   generation state. It is embedded *inside* each core so engine code
//!   accesses it as plain fields — no virtual dispatch on hot paths.
//! * [`EngineCore`] — the per-request admit/dispatch/drain semantics a
//!   concrete engine must provide: admit one request, dispatch one event,
//!   report/abort live requests.
//! * [`Harness`] — the generic driver over any core: the four load
//!   drivers (`run_single`, `run_closed`, `run_open`, `run_concurrent`)
//!   and the *only* place fault injection, tracer and metrics-registry
//!   attachment exist.
//!
//! The refactor that introduced this layer is **bit-identical** by
//! construction: every RNG draw, event schedule and gauge sample happens
//! in the same order as when both engines carried private copies of this
//! code, and the golden-file, seed-determinism and ledger-reconciliation
//! e2e suites pin that equivalence byte-for-byte.
//!
//! [`SpecEngine`]: https://docs.rs/specfaas-core
//! [`BaselineEngine`]: crate::BaselineEngine

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use specfaas_sim::timeseries::{GaugeHandle, MetricsRegistry, SnapshotLog};
use specfaas_sim::trace::{TraceEventKind, Tracer};
use specfaas_sim::{FaultInjector, FaultPlan, RetryPolicy};
use specfaas_sim::{SimDuration, SimRng, SimTime, Simulator};
use specfaas_storage::{KvStore, Value};
use specfaas_workflow::{AppSpec, FuncId};

use crate::cluster::Cluster;
use crate::exec::InstanceId;
use crate::metrics::{InvocationRecord, RunMetrics};
use crate::overheads::OverheadModel;
use crate::policy::PolicyConfig;
use crate::scoreboard::ScoreboardRow;
use crate::workload::{RequestId, Workload};

/// Boxed request-input generator driven by the engine RNG.
pub type InputGen = Box<dyn FnMut(&mut SimRng) -> Value>;

/// Engine-agnostic runtime state, embedded inside each [`EngineCore`].
///
/// Everything here used to exist twice — once per engine — and every
/// cross-cutting feature (faults, tracing, time-series metrics) had to be
/// wired into both copies. Cores now hold exactly one `Runtime` and reach
/// it as `self.rt.…`; the [`Harness`] reaches it through
/// [`EngineCore::rt`]/[`EngineCore::rt_mut`].
pub struct Runtime<Ev> {
    /// The discrete-event simulator: clock + event queue.
    pub sim: Simulator<Ev>,
    /// Workload randomness (request inputs, arrival gaps, interpreter
    /// streams). Fault randomness lives in [`Runtime::faults`].
    pub rng: SimRng,
    /// The cluster: nodes × cores, warm-container pools, controllers.
    pub cluster: Cluster,
    /// Global storage (public so experiments can seed it).
    pub kv: KvStore,
    /// Timing constants.
    pub model: OverheadModel,
    /// Deterministic fault injector (disabled unless
    /// [`Harness::enable_faults`]).
    pub faults: FaultInjector,
    /// Retry/backoff/timeout policy applied when faults strike.
    pub retry: RetryPolicy,
    /// Seed the engine was built with (fault stream derivation).
    pub seed: u64,
    /// Flight recorder (disabled by default; see [`Harness::set_tracer`]).
    pub tracer: Tracer,
    /// Cluster busy-core-time integral at tracer install / last end-of-run
    /// check, so the conservation invariant compares per-window deltas.
    pub busy_snapshot: SimDuration,
    /// (useful, squashed) core time already attributed when the tracer was
    /// installed — excluded from the first conservation check.
    pub attributed_base: (SimDuration, SimDuration),
    /// Time-series metrics registry (disabled by default; see
    /// [`Harness::set_registry`]).
    pub registry: MetricsRegistry,
    /// Completion instants of in-flight KV operations (registry-gated;
    /// min-heap popped lazily at sample time).
    pub kv_pending: BinaryHeap<Reverse<SimTime>>,
    /// Windowed JSONL snapshot emitter (disabled by default; see
    /// [`Harness::set_snapshots`]). Like the registry, purely
    /// observational: arming it leaves run output bit-identical.
    pub snapshots: Option<SnapshotLog>,
    /// Lazily built node-index label strings ("0", "1", ...), so the
    /// per-event cluster gauge sampling never allocates.
    node_labels: Vec<String>,
    /// Cached warm-pool gauge instrument ([`MetricsRegistry::sample_interned`]).
    warm_pool_h: Option<GaugeHandle>,
    /// Cached outstanding-KV-ops gauge instrument.
    kv_gauge_h: Option<GaugeHandle>,
    /// Cached per-node `(busy_cores, controller_queue_depth)` instruments.
    node_gauge_h: Vec<(Option<GaugeHandle>, Option<GaugeHandle>)>,
    /// Lazily built `"<app>/<function>"` top-K keys indexed by function
    /// id, so per-function-start sketch updates never re-format.
    topk_keys: Vec<String>,
    /// Run metrics accumulated since the last driver took them.
    pub metrics: RunMetrics,
    /// Open-loop arrival process (armed by [`Harness::run_open`]).
    pub workload: Option<Workload>,
    /// No generation (open-loop arrivals or closed-loop resubmits) after
    /// this instant.
    pub gen_deadline: SimTime,
    /// Request-input generator for generated (non-`run_single`) load.
    pub input_gen: Option<InputGen>,
    /// Requests arriving from this instant on count toward metrics.
    pub measure_from: SimTime,
    /// Closed-loop mode: each completion immediately submits the next
    /// request (bounded concurrency, like a fixed client pool).
    pub closed_loop: bool,
    /// Next function-instance id to allocate.
    pub next_inst: u64,
    /// Next request id to allocate.
    pub next_req: u64,
}

impl<Ev> Runtime<Ev> {
    /// Fresh runtime on the paper's 5-node testbed, seeded with `seed`;
    /// faults, tracer and registry all start disabled.
    pub fn new(seed: u64) -> Self {
        Runtime {
            sim: Simulator::new(),
            rng: SimRng::seed(seed),
            cluster: Cluster::paper_testbed(),
            kv: KvStore::new(),
            model: OverheadModel::default(),
            faults: FaultInjector::disabled(),
            retry: RetryPolicy::default(),
            seed,
            tracer: Tracer::disabled(),
            busy_snapshot: SimDuration::ZERO,
            attributed_base: (SimDuration::ZERO, SimDuration::ZERO),
            registry: MetricsRegistry::disabled(),
            kv_pending: BinaryHeap::new(),
            snapshots: None,
            node_labels: Vec::new(),
            warm_pool_h: None,
            kv_gauge_h: None,
            node_gauge_h: Vec::new(),
            topk_keys: Vec::new(),
            metrics: RunMetrics::new(),
            workload: None,
            gen_deadline: SimTime::ZERO,
            input_gen: None,
            measure_from: SimTime::ZERO,
            closed_loop: false,
            next_inst: 0,
            next_req: 0,
        }
    }

    /// Allocates the next function-instance id.
    pub fn alloc_inst(&mut self) -> InstanceId {
        let id = InstanceId(self.next_inst);
        self.next_inst += 1;
        id
    }

    /// Allocates the next request id.
    pub fn alloc_req(&mut self) -> RequestId {
        let id = RequestId(self.next_req);
        self.next_req += 1;
        id
    }

    /// Adds `amount` to the squashed-CPU ledger, mirroring the charge in
    /// the trace (as a [`TraceEventKind::SquashCharge`]) and the metrics
    /// registry so both reconcile exactly with [`RunMetrics`].
    pub fn charge_squashed(
        &mut self,
        req: u64,
        func: FuncId,
        site: &'static str,
        cascade: u32,
        amount: SimDuration,
    ) {
        if amount == SimDuration::ZERO {
            return;
        }
        self.metrics.squashed_core_time += amount;
        if self.tracer.enabled() {
            let now = self.sim.now();
            self.tracer.emit(
                now,
                TraceEventKind::SquashCharge {
                    req,
                    func: func.0,
                    site,
                    cascade,
                    amount,
                },
            );
        }
        self.registry
            .inc_by("specfaas_squashed_core_us_total", amount.as_micros());
    }

    /// Records a completed request into [`RunMetrics`] *and* the
    /// streaming registry instruments: end-to-end latency into the
    /// `specfaas_response_latency_us` histogram and the request's squash
    /// depth into `specfaas_request_squashed_functions`. Both engines'
    /// completion paths route through here, so the scoreboard sees the
    /// same distributions whichever core ran — and the prewarm policy
    /// learns the same committed function sequences whichever engine
    /// executed them.
    pub fn record_completion(&mut self, rec: InvocationRecord) {
        self.cluster.observe_sequence(&rec.sequence);
        if self.registry.enabled() {
            self.registry.observe(
                "specfaas_response_latency_us",
                rec.response_time().as_micros(),
            );
            self.registry.observe(
                "specfaas_request_squashed_functions",
                rec.functions_squashed as u64,
            );
        }
        self.metrics.record_completion(rec);
    }

    /// Adds `weight` for function `func` of `app` to the registry
    /// heavy-hitter sketch `name`, keyed `"<app>/<function>"`. No-op —
    /// and allocation-free — when the registry is disabled or the
    /// function id is the `u32::MAX` sentinel some abort paths carry.
    pub fn topk_by_function(
        &mut self,
        name: &'static str,
        app: &AppSpec,
        func: FuncId,
        weight: u64,
    ) {
        if !self.registry.enabled() || func.0 == u32::MAX {
            return;
        }
        let idx = func.0 as usize;
        if self.topk_keys.len() <= idx {
            self.topk_keys.resize(idx + 1, String::new());
        }
        if self.topk_keys[idx].is_empty() {
            self.topk_keys[idx] = format!("{}/{}", app.name, app.registry.name(func));
        }
        self.registry.topk_add(name, &self.topk_keys[idx], weight);
    }

    /// Emits pending windowed snapshots if sim-time crossed a boundary.
    /// One `Option` check when snapshots are disabled — cheap enough for
    /// the harness dispatch loops to call per event.
    pub fn tick_snapshots(&mut self) {
        if let Some(log) = self.snapshots.as_mut() {
            log.tick(self.sim.now(), &self.registry);
        }
    }

    /// Samples the cluster-level gauges (warm pool, per-node busy cores
    /// and controller queue depth). Cores call this from their
    /// `sample_gauges` before any engine-specific gauges.
    pub fn sample_cluster_gauges(&mut self, now: SimTime) {
        self.registry.sample_interned(
            &mut self.warm_pool_h,
            now,
            "specfaas_warm_pool_size",
            "",
            "",
            self.cluster.warm_pool_total(),
        );
        let nodes = self.cluster.nodes();
        if self.node_labels.len() < nodes {
            self.node_labels = (0..nodes).map(|i| i.to_string()).collect();
            self.node_gauge_h.resize(nodes, (None, None));
        }
        let (cluster, registry) = (&self.cluster, &mut self.registry);
        for (i, busy, depth) in cluster.node_gauges(now) {
            let label = self.node_labels[i].as_str();
            let (busy_h, depth_h) = &mut self.node_gauge_h[i];
            registry.sample_interned(busy_h, now, "specfaas_busy_cores", "node", label, busy);
            registry.sample_interned(
                depth_h,
                now,
                "specfaas_controller_queue_depth",
                "node",
                label,
                depth as u64,
            );
        }
    }

    /// Expires completed KV operations and samples the outstanding-ops
    /// gauge. Cores call this from their `sample_gauges` after any
    /// engine-specific gauges.
    pub fn sample_kv_gauge(&mut self, now: SimTime) {
        while self.kv_pending.peek().is_some_and(|Reverse(t)| *t <= now) {
            self.kv_pending.pop();
        }
        self.registry.sample_interned(
            &mut self.kv_gauge_h,
            now,
            "specfaas_outstanding_kv_ops",
            "",
            "",
            self.kv_pending.len() as u64,
        );
    }
}

/// The per-request admit/dispatch/drain semantics of one execution
/// engine, driven generically by a [`Harness`].
///
/// A core owns its policy state (pipelines, predictors, instance tables)
/// plus an embedded [`Runtime`]; the harness owns load generation and
/// instrument attachment. The split is the same one open-source platforms
/// draw between gateway/driver and executor.
pub trait EngineCore {
    /// Event type of the engine's discrete-event loop.
    type Ev;

    /// Whether `run_closed` drains stale events after the last request
    /// (the speculative engine must, so leftover watchdog timeouts cannot
    /// silently advance a later run's clock; the baseline historically
    /// does not, and the bit-identical rule freezes both behaviors).
    const DRAIN_ON_CLOSED: bool;

    /// Shared runtime state (immutable).
    fn rt(&self) -> &Runtime<Self::Ev>;

    /// Shared runtime state (mutable).
    fn rt_mut(&mut self) -> &mut Runtime<Self::Ev>;

    /// The application under test.
    fn app(&self) -> &AppSpec;

    /// The engine's open-loop arrival event (scheduled by the harness to
    /// start generation, re-armed by [`handle_arrival`]).
    fn arrival() -> Self::Ev;

    /// Admits one request at the current simulated time and returns its
    /// id. All request-id allocation goes through [`Runtime::alloc_req`],
    /// so ids are dense and engine-independent.
    fn admit(&mut self, input: Value) -> RequestId;

    /// Dispatches one event of the engine's event loop (including gauge
    /// sampling of the post-event state).
    fn dispatch(&mut self, ev: Self::Ev);

    /// Whether the request is still in flight.
    fn request_live(&self, req: RequestId) -> bool;

    /// All in-flight requests, sorted by id (HashMap iteration order is
    /// not deterministic; the harness aborts these in sorted order when a
    /// drain wedges).
    fn live_requests(&self) -> Vec<RequestId>;

    /// Terminally fails a wedged request, releasing its resources.
    fn abort(&mut self, req: RequestId);

    /// Number of live function instances (end-of-run leak invariant).
    fn live_instances(&self) -> usize;

    /// Diagnostic lines describing each live (possibly stuck) request —
    /// see [`Harness::stuck_report`].
    fn stuck_requests(&self) -> Vec<String>;

    /// Hook run after the harness installs a tracer (the speculative core
    /// re-bases its kill-busy ledger here).
    fn on_tracer_installed(&mut self) {}

    /// Busy-core time charged to squashes since the last end-of-run check
    /// that the core tracks *outside* `metrics.squashed_core_time` (the
    /// speculative engine's in-kill container-busy component). Consumed —
    /// and re-based — by the end-of-run conservation check.
    fn take_unattributed_squash_busy(&mut self) -> SimDuration {
        SimDuration::ZERO
    }

    /// Engine-specific final fields of a run's metrics (branch/memo hit
    /// rates for the speculative engine).
    fn finalize_metrics(&self, _m: &mut RunMetrics) {}
}

/// Re-arms the open-loop arrival process: draw an input, admit it, then
/// schedule the next arrival if it lands before the generation deadline.
///
/// Cores call this from their `Arrival` event arm. It is a free function
/// (not a `Harness` method) because it runs *inside* `dispatch`, where
/// only the core is borrowed. Draw order — input, admit-internal draws,
/// then gap — is load-bearing for seed determinism.
pub fn handle_arrival<E: EngineCore>(core: &mut E) {
    let (mut w, input) = {
        let rt = core.rt_mut();
        let (Some(w), Some(mut g)) = (rt.workload, rt.input_gen.take()) else {
            return;
        };
        let input = g(&mut rt.rng);
        rt.input_gen = Some(g);
        (w, input)
    };
    core.admit(input);
    let rt = core.rt_mut();
    let gap = w.next_gap(&mut rt.rng);
    rt.workload = Some(w);
    if rt.sim.now() + gap <= rt.gen_deadline {
        rt.sim.schedule_in(gap, E::arrival());
    }
}

/// Closed-loop client behavior: when a request terminates (completes or
/// aborts) before the generation deadline, the freed client immediately
/// submits its next request. Cores call this from their completion and
/// abort paths; outside closed-loop mode it is a no-op.
pub fn closed_loop_resubmit<E: EngineCore>(core: &mut E) {
    let input = {
        let rt = core.rt_mut();
        if !rt.closed_loop || rt.sim.now() > rt.gen_deadline {
            return;
        }
        let Some(mut g) = rt.input_gen.take() else {
            return;
        };
        let v = g(&mut rt.rng);
        rt.input_gen = Some(g);
        v
    };
    core.admit(input);
}

/// Generic engine driver: owns the four load drivers and all instrument
/// (fault/tracer/registry) attachment, for any [`EngineCore`].
///
/// Dereferences to the core (and transitively to its [`Runtime`]), so
/// `engine.kv`, `engine.cluster`, `engine.metrics` … remain plain field
/// accesses for experiments.
pub struct Harness<E: EngineCore> {
    /// The engine core being driven.
    pub core: E,
}

impl<E: EngineCore> std::ops::Deref for Harness<E> {
    type Target = E;
    fn deref(&self) -> &E {
        &self.core
    }
}

impl<E: EngineCore> std::ops::DerefMut for Harness<E> {
    fn deref_mut(&mut self) -> &mut E {
        &mut self.core
    }
}

impl<E: EngineCore> Harness<E> {
    /// Wraps a core in the generic driver.
    pub fn new(core: E) -> Self {
        Harness { core }
    }

    /// The application under test.
    pub fn app(&self) -> &AppSpec {
        self.core.app()
    }

    /// Pre-warms containers for every function of the app on every node
    /// (the default warmed-up environment, §IV).
    pub fn prewarm(&mut self) {
        let funcs: Vec<FuncId> = self.core.app().registry.iter().map(|(id, _)| id).collect();
        // §IV: the paper assumes function start-up overheads have been
        // removed by prior cold-start work, so the warm pool must cover
        // the offered concurrency even under speculative fan-out.
        self.core.rt_mut().cluster.prewarm_all(funcs, 64);
    }

    /// Empties every warm container pool (cold-start experiments). The
    /// persistent controller-side tables are unaffected, as in a
    /// deployment where containers are reclaimed during idle periods but
    /// the controller state survives.
    pub fn flush_warm_containers(&mut self) {
        self.core.rt_mut().cluster.flush_warm_containers();
    }

    /// Installs the platform policies (placement, keep-alive, prewarm) —
    /// the same attachment idiom as faults/tracer/registry. Call before
    /// the runs the policies should govern. The default
    /// [`PolicyConfig`] leaves every run bit-identical to an engine this
    /// was never called on.
    pub fn set_policies(&mut self, cfg: &PolicyConfig) {
        self.core.rt_mut().cluster.set_policies(cfg);
    }

    /// Arms deterministic fault injection with the given plan and
    /// retry/backoff policy. The injector draws from a dedicated RNG
    /// stream derived from the engine seed, so enabling faults never
    /// perturbs workload randomness — and [`FaultPlan::none`] leaves the
    /// simulation bit-identical to a fault-free engine.
    pub fn enable_faults(&mut self, plan: FaultPlan, retry: RetryPolicy) {
        let rt = self.core.rt_mut();
        rt.faults = FaultInjector::new(plan, rt.seed);
        rt.retry = retry;
    }

    /// The fault injector (per-site injection counts for reporting).
    pub fn fault_injector(&self) -> &FaultInjector {
        &self.core.rt().faults
    }

    /// Installs a flight recorder. Call before the runs it should cover:
    /// the conservation check windows start here.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        let rt = self.core.rt_mut();
        let now = rt.sim.now();
        rt.busy_snapshot = rt.cluster.busy_core_time_total(now);
        rt.attributed_base = (rt.metrics.useful_core_time, rt.metrics.squashed_core_time);
        rt.tracer = tracer;
        self.core.on_tracer_installed();
    }

    /// The installed flight recorder.
    pub fn tracer(&self) -> &Tracer {
        &self.core.rt().tracer
    }

    /// Takes the flight recorder out of the engine (for export), leaving
    /// a disabled one behind.
    pub fn take_tracer(&mut self) -> Tracer {
        std::mem::take(&mut self.core.rt_mut().tracer)
    }

    /// Installs a time-series metrics registry. Sampling is purely
    /// observational: it never draws from the RNG or schedules events, so
    /// an enabled registry leaves [`RunMetrics`] bit-identical to a
    /// disabled one.
    pub fn set_registry(&mut self, registry: MetricsRegistry) {
        self.core.rt_mut().registry = registry;
    }

    /// The installed metrics registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.core.rt().registry
    }

    /// Takes the registry out of the engine (for export), leaving a
    /// disabled one behind.
    pub fn take_registry(&mut self) -> MetricsRegistry {
        std::mem::take(&mut self.core.rt_mut().registry)
    }

    /// Installs a windowed JSONL snapshot log, ticked from the dispatch
    /// loops. Pair with [`Harness::set_registry`] — snapshots render the
    /// registry's cumulative state, so an empty registry yields empty
    /// snapshots. Purely observational, like the other instruments.
    pub fn set_snapshots(&mut self, mut log: SnapshotLog) {
        let rt = self.core.rt_mut();
        log.start_at(rt.sim.now());
        rt.snapshots = Some(log);
    }

    /// Takes the snapshot log out of the engine (for export), stamping
    /// one final snapshot at the current sim-time first. `None` if
    /// snapshots were never armed.
    pub fn take_snapshots(&mut self) -> Option<SnapshotLog> {
        let rt = self.core.rt_mut();
        let mut log = rt.snapshots.take()?;
        log.finish(rt.sim.now(), &rt.registry);
        Some(log)
    }

    /// Assembles the speculation-health scoreboard row for the run that
    /// produced `metrics`, reading the heavy-hitter and distribution
    /// instruments from the installed registry plus the cluster's
    /// per-function container-lifecycle counters (cold/warm/evicted —
    /// tracked in the pools, not the registry, so arming them cannot
    /// perturb the Prometheus export). Call after a load driver returns
    /// and before [`Harness::take_registry`].
    pub fn scoreboard(&self, engine: &'static str, metrics: &RunMetrics) -> ScoreboardRow {
        let app = self.core.app();
        let rt = self.core.rt();
        let mut row = ScoreboardRow::build(&app.name, engine, metrics, &rt.registry);
        row.evictions = rt.cluster.evictions();
        row.func_containers = rt
            .cluster
            .func_container_stats()
            .into_iter()
            .map(|(f, s)| (app.registry.name(f).to_string(), s.cold, s.warm, s.evicted))
            .collect();
        row
    }

    /// Runs the end-of-run invariants over the window since the tracer
    /// was installed (or the previous check).
    fn trace_end_of_run(&mut self) {
        if !self.core.rt().tracer.checking() {
            return;
        }
        let live = self.core.live_instances();
        let extra = self.core.take_unattributed_squash_busy();
        let rt = self.core.rt_mut();
        let now = rt.sim.now();
        let busy = rt.cluster.busy_core_time_total(now);
        let (base_u, base_s) = rt.attributed_base;
        rt.tracer.check_end_of_run(
            live,
            rt.metrics.useful_core_time - base_u,
            rt.metrics.squashed_core_time - base_s + extra,
            busy - rt.busy_snapshot,
        );
        rt.busy_snapshot = busy;
        // The driver resets the metrics (mem::take) right after this.
        rt.attributed_base = (SimDuration::ZERO, SimDuration::ZERO);
    }

    /// Diagnostic dump of live (possibly stuck) requests. Empty when no
    /// requests are in flight.
    #[doc(hidden)]
    pub fn stuck_report(&self) -> Vec<String> {
        self.core.stuck_requests()
    }

    /// Runs a single request to completion (or terminal failure) with no
    /// background load and returns its response time. Used for the QoS
    /// reference point (Table III defines violation as >2× the
    /// single-request response) and for the Fig. 3 breakdown.
    pub fn run_single(&mut self, input: Value) -> SimDuration {
        let start = self.core.rt().sim.now();
        let req = self.core.admit(input);
        while self.core.request_live(req) {
            let Some((_, ev)) = self.core.rt_mut().sim.step() else {
                // Drained with the request still live — an unrecoverable
                // wedge (e.g. an injected hang with no invocation
                // timeout). Terminal failure, not a panic.
                self.core.abort(req);
                break;
            };
            self.core.dispatch(ev);
            self.core.rt_mut().tick_snapshots();
        }
        self.core.rt().sim.now() - start
    }

    /// Steps the simulation until the event queue is empty AND no
    /// requests remain live. A request can outlive the queue when an
    /// injected hang wedges a handler with no invocation timeout armed:
    /// such requests are aborted (recorded as failed) and, in closed
    /// loops, the freed clients resubmit — so the loop repeats until
    /// everything settles.
    fn drain_all(&mut self) {
        loop {
            while let Some((_, ev)) = self.core.rt_mut().sim.step() {
                self.core.dispatch(ev);
                self.core.rt_mut().tick_snapshots();
            }
            let stuck = self.core.live_requests();
            if stuck.is_empty() {
                break;
            }
            for r in stuck {
                self.core.abort(r);
            }
        }
    }

    /// Runs `n` requests submitted back-to-back (closed loop, one at a
    /// time) — used to warm controller-side state (sequence tables,
    /// memoization, predictors) and for characterization runs.
    pub fn run_closed(
        &mut self,
        n: u64,
        mut input: impl FnMut(&mut SimRng) -> Value,
    ) -> RunMetrics {
        for _ in 0..n {
            let v = input(&mut self.core.rt_mut().rng);
            self.run_single(v);
        }
        if E::DRAIN_ON_CLOSED {
            // Drain stray events (e.g. watchdog timeouts armed by an
            // aborted request) so they cannot fire into a later run.
            self.drain_all();
        }
        self.trace_end_of_run();
        let rt = self.core.rt_mut();
        let mut m = std::mem::take(&mut rt.metrics);
        m.window = rt.sim.now() - SimTime::ZERO;
        m.cpu_utilization = rt.cluster.utilization(rt.sim.now());
        self.core.finalize_metrics(&mut m);
        m
    }

    /// Runs an open-loop Poisson workload at `rps` for `duration`
    /// (measuring after `warmup`), then drains in-flight requests.
    pub fn run_open(
        &mut self,
        rps: f64,
        duration: SimDuration,
        warmup: SimDuration,
        input: impl FnMut(&mut SimRng) -> Value + 'static,
    ) -> RunMetrics {
        {
            let rt = self.core.rt_mut();
            let start = rt.sim.now();
            rt.workload = Some(Workload::poisson(rps));
            rt.input_gen = Some(Box::new(input));
            rt.gen_deadline = start + duration;
            rt.measure_from = start + warmup;
            rt.cluster.reset_utilization(start + warmup);
            rt.sim.schedule_now(E::arrival());
        }
        // Drive generation + all in-flight work to completion.
        self.drain_all();
        self.trace_end_of_run();
        let rt = self.core.rt_mut();
        let end = rt.sim.now();
        let mut m = std::mem::take(&mut rt.metrics);
        m.window = rt.gen_deadline.saturating_since(rt.measure_from);
        m.cpu_utilization = rt.cluster.utilization(end.min(rt.gen_deadline));
        self.core.finalize_metrics(&mut m);
        m
    }

    /// Runs a closed-loop workload: `clients` concurrent clients, each
    /// issuing its next request as soon as the previous one completes,
    /// for `duration` (measuring after `warmup`). This is how saturating
    /// load levels are driven without unbounded queue growth — offered
    /// load self-throttles to the service rate, as a real load generator
    /// with a fixed connection pool does.
    pub fn run_concurrent(
        &mut self,
        clients: u32,
        duration: SimDuration,
        warmup: SimDuration,
        input: impl FnMut(&mut SimRng) -> Value + 'static,
    ) -> RunMetrics {
        {
            let rt = self.core.rt_mut();
            let start = rt.sim.now();
            rt.closed_loop = true;
            rt.input_gen = Some(Box::new(input));
            rt.gen_deadline = start + duration;
            rt.measure_from = start + warmup;
            rt.cluster.reset_utilization(start + warmup);
        }
        for _ in 0..clients.max(1) {
            let v = {
                let rt = self.core.rt_mut();
                let Some(mut g) = rt.input_gen.take() else {
                    continue;
                };
                let v = g(&mut rt.rng);
                rt.input_gen = Some(g);
                v
            };
            self.core.admit(v);
        }
        self.drain_all();
        self.trace_end_of_run();
        self.core.rt_mut().closed_loop = false;
        let rt = self.core.rt_mut();
        let end = rt.sim.now();
        let mut m = std::mem::take(&mut rt.metrics);
        m.window = rt.gen_deadline.saturating_since(rt.measure_from);
        m.cpu_utilization = rt.cluster.utilization(end.min(rt.gen_deadline));
        self.core.finalize_metrics(&mut m);
        m
    }
}
