//! Function instances: a running handler process.
//!
//! An instance binds together an interpreter execution, the node / core
//! slot / container it occupies, its private temp-file namespace (the
//! copy-on-write scheme of §VI), and timing bookkeeping for the Fig. 3
//! breakdown.

use std::collections::HashMap;
use std::fmt;

use specfaas_sim::{SimRng, SimTime};
use specfaas_storage::Value;
use specfaas_workflow::{Effect, FuncId, Interp, ProgError};

use crate::cluster::NodeId;
use crate::metrics::Breakdown;

/// Identifier of a function instance (one handler process execution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstanceId(pub u64);

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inst#{}", self.0)
    }
}

/// Lifecycle state of an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstanceState {
    /// Waiting for its container to be created (cold start).
    ColdStarting,
    /// Waiting in a node's core queue.
    WaitingCore,
    /// Executing (or in a short storage wait) while holding a core.
    Running,
    /// Blocked (waiting on a callee, a stalled read, or a deferred side
    /// effect) with its execution slot *released* — the OS deschedules a
    /// blocked handler process; the container stays allocated.
    Blocked,
    /// Finished; output available.
    Done,
    /// Killed by a squash.
    Squashed,
}

/// One executing handler process.
#[derive(Debug)]
pub struct FnInstance {
    /// This instance's id.
    pub id: InstanceId,
    /// The function being executed.
    pub func: FuncId,
    /// Node hosting the handler.
    pub node: NodeId,
    /// Interpreter state.
    pub interp: Interp,
    /// Per-instance RNG (timing jitter).
    pub rng: SimRng,
    /// Lifecycle state.
    pub state: InstanceState,
    /// Private temp-file namespace (discarded at handler exit, §VI).
    pub files: HashMap<String, Value>,
    /// When the launch was initiated (for breakdown accounting).
    pub launched_at: SimTime,
    /// When the handler actually started executing on a core.
    pub started_at: Option<SimTime>,
    /// Per-component time attribution for Fig. 3.
    pub breakdown: Breakdown,
    /// Core time accumulated across earlier running stints (before
    /// blocking released the slot).
    pub accumulated_core: specfaas_sim::SimDuration,
    /// Resume value stashed while the instance waits to re-acquire a
    /// core after being unblocked.
    pub pending_resume: Option<Option<Value>>,
    /// Output document, once done.
    pub output: Option<Value>,
    /// True once the handler has applied a write to shared storage.
    /// Engines that apply writes eagerly (the baseline) use this as the
    /// fault-injection point of no return: retrying a partially
    /// externalized handler would double-apply non-idempotent effects.
    pub externalized: bool,
}

impl FnInstance {
    /// Creates an instance about to launch `func` with `input`.
    pub fn new(
        id: InstanceId,
        func: FuncId,
        node: NodeId,
        program: &specfaas_workflow::Program,
        input: Value,
        rng: SimRng,
        launched_at: SimTime,
    ) -> Self {
        FnInstance {
            id,
            func,
            node,
            interp: Interp::new(program, input),
            rng,
            state: InstanceState::ColdStarting,
            files: HashMap::new(),
            launched_at,
            started_at: None,
            breakdown: Breakdown::default(),
            accumulated_core: specfaas_sim::SimDuration::ZERO,
            pending_resume: None,
            output: None,
            externalized: false,
        }
    }

    /// Steps the interpreter with an optional resume value.
    ///
    /// # Errors
    /// Propagates program errors (treated by engines as failed
    /// invocations).
    pub fn step(&mut self, resume: Option<Value>) -> Result<Effect, ProgError> {
        self.interp.step(resume, &mut self.rng)
    }

    /// True if the instance still occupies a core slot.
    pub fn holds_core(&self) -> bool {
        matches!(self.state, InstanceState::Running)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfaas_workflow::expr::lit;
    use specfaas_workflow::Program;

    #[test]
    fn instance_runs_program_to_done() {
        let p = Program::builder().compute_ms(2).ret(lit("out"));
        let mut inst = FnInstance::new(
            InstanceId(1),
            FuncId(0),
            NodeId(0),
            &p,
            Value::Null,
            SimRng::seed(1),
            SimTime::ZERO,
        );
        assert!(matches!(inst.step(None).unwrap(), Effect::Compute(_)));
        assert!(matches!(inst.step(None).unwrap(), Effect::Done(_)));
    }

    #[test]
    fn files_namespace_starts_empty() {
        let p = Program::builder().ret(lit(1i64));
        let inst = FnInstance::new(
            InstanceId(1),
            FuncId(0),
            NodeId(0),
            &p,
            Value::Null,
            SimRng::seed(1),
            SimTime::ZERO,
        );
        assert!(inst.files.is_empty());
        assert_eq!(inst.state, InstanceState::ColdStarting);
        assert!(!inst.holds_core());
    }
}
