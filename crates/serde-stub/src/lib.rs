//! Offline stand-in for serde's derive macros.
//!
//! The build environment has no access to crates.io, so the workspace
//! cannot depend on the real `serde`. The codebase only ever uses
//! `#[derive(Serialize, Deserialize)]` as documentation of intent — no
//! code path serializes anything — so this crate provides the two derive
//! macros as no-ops. It is aliased to the name `serde` in the workspace
//! manifest, which keeps every `use serde::{Deserialize, Serialize}`
//! line compiling unchanged. If real serialization is ever needed,
//! swap the alias back to the published crate (or a vendored copy).

use proc_macro::TokenStream;

/// No-op replacement for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
