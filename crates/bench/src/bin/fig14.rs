//! Fig. 14 — sensitivity of FaaSChain speedups to the branch-prediction
//! hit rate, using the forced-accuracy oracle at 100 / 90 / 70 / 50 %.

use specfaas_bench::report::{speedup, Table};
use specfaas_bench::runner::{
    measure_baseline_concurrent, measure_spec_concurrent, ExperimentParams,
};
use specfaas_core::SpecConfig;
use specfaas_platform::Load;

fn main() {
    println!("== Fig. 14: speedup vs branch-prediction hit rate (FaaSChain) ==\n");
    let rates = [1.0, 0.9, 0.7, 0.5];
    let suite = &specfaas_apps::all_suites()[0];
    let mut t = Table::new(["App", "100%", "90%", "70%", "50%"]);
    let mut sums = [0.0f64; 4];
    for bundle in &suite.apps {
        let mut row = vec![bundle.name().to_string()];
        for (ri, rate) in rates.iter().enumerate() {
            let mut cfg = SpecConfig::full();
            cfg.forced_branch_accuracy = Some(*rate);
            let mut acc = 0.0;
            for load in Load::all() {
                let p = ExperimentParams::default().at_rps(load.rps());
                let base = measure_baseline_concurrent(bundle, p);
                let spec = measure_spec_concurrent(bundle, cfg.clone(), p);
                acc += base.mean_response_ms() / spec.mean_response_ms();
            }
            let s = acc / 3.0;
            sums[ri] += s;
            row.push(speedup(s));
        }
        t.row(row);
    }
    let n = suite.apps.len() as f64;
    t.row([
        "AVERAGE".to_string(),
        speedup(sums[0] / n),
        speedup(sums[1] / n),
        speedup(sums[2] / n),
        speedup(sums[3] / n),
    ]);
    println!("{}", t.render());
    println!("Paper reference: dropping from a perfect predictor to 90% costs");
    println!("only ~5.7% speedup; below that, speedups fall off substantially.");
}
