//! Fig. 14 — sensitivity of FaaSChain speedups to the branch-prediction
//! hit rate, using the forced-accuracy oracle at 100 / 90 / 70 / 50 %.
//!
//! `--jobs N` runs the {app × rate × load} grid on N worker threads;
//! output is byte-identical to serial.

use specfaas_bench::executor::{self, ExperimentCell};
use specfaas_bench::report::{speedup, Table};
use specfaas_bench::runner::{
    measure_baseline_concurrent, measure_spec_concurrent, ExperimentParams,
};
use specfaas_core::SpecConfig;
use specfaas_platform::Load;

fn main() {
    let jobs = executor::jobs_from_args();
    println!("== Fig. 14: speedup vs branch-prediction hit rate (FaaSChain) ==\n");
    let rates = [1.0, 0.9, 0.7, 0.5];
    let suite = specfaas_apps::suite_named("FaaSChain");
    let suite = &suite;

    let mut cells: Vec<ExperimentCell<f64>> = Vec::new();
    for bundle in &suite.apps {
        for rate in rates {
            for load in Load::all() {
                cells.push(ExperimentCell::new(
                    format!("fig14/{}/{rate}/{:?}", bundle.name(), load),
                    move || {
                        let mut cfg = SpecConfig::full();
                        cfg.forced_branch_accuracy = Some(rate);
                        let p = ExperimentParams::default().at_rps(load.rps());
                        let base = measure_baseline_concurrent(bundle, p);
                        let spec = measure_spec_concurrent(bundle, cfg, p);
                        base.mean_response_ms() / spec.mean_response_ms()
                    },
                ));
            }
        }
    }
    let results = executor::run_cells(jobs, cells);

    let mut t = Table::new(["App", "100%", "90%", "70%", "50%"]);
    let mut sums = [0.0f64; 4];
    let mut it = results.into_iter();
    for bundle in &suite.apps {
        let mut row = vec![bundle.name().to_string()];
        for sum in sums.iter_mut() {
            let mut acc = 0.0;
            for _ in Load::all() {
                acc += it.next().expect("one result per cell");
            }
            let s = acc / 3.0;
            *sum += s;
            row.push(speedup(s));
        }
        t.row(row);
    }
    let n = suite.apps.len() as f64;
    t.row([
        "AVERAGE".to_string(),
        speedup(sums[0] / n),
        speedup(sums[1] / n),
        speedup(sums[2] / n),
        speedup(sums[3] / n),
    ]);
    println!("{}", t.render());
    println!("Paper reference: dropping from a perfect predictor to 90% costs");
    println!("only ~5.7% speedup; below that, speedups fall off substantially.");
}
