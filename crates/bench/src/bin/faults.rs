//! Fault-injection ablation: how the baseline and SpecFaaS engines hold
//! up when containers crash, storage errors transiently, and handlers
//! hang (DESIGN.md, "Failure model").
//!
//! Two sweeps:
//!
//! * **Fault-rate sweep** — identical fault plans against both engines
//!   at increasing per-site probabilities: goodput, failure counts and
//!   mean completed-request response. SpecFaaS additionally reports the
//!   dependent speculative work squashed because a committed-path
//!   execution faulted.
//! * **Retry-budget sweep** — at a fixed fault rate, how the abort rate
//!   falls as the retry budget grows.

use specfaas_bench::report::{f1, pct, Table};
use specfaas_bench::runner::{faulted_closed, prepared_baseline, prepared_spec};
use specfaas_core::SpecConfig;
use specfaas_sim::{FaultPlan, RetryPolicy, SimDuration};

const SEED: u64 = 0xFA17;
const REQUESTS: u64 = 200;

fn plan_at(p: f64) -> FaultPlan {
    FaultPlan::none()
        .with_container_crash(p)
        .with_kv_get(p / 2.0)
        .with_kv_set(p / 2.0)
        .with_hang(p / 10.0)
}

fn policy() -> RetryPolicy {
    RetryPolicy::default()
        .with_max_attempts(5)
        .with_timeout(SimDuration::from_secs(2))
}

fn fault_rate_sweep() {
    println!("== Fault-rate sweep (HotelBooking, retry budget 5) ==\n");
    let bundle = specfaas_apps::faaschain::hotel_booking();
    let mut t = Table::new([
        "Rate",
        "Engine",
        "Done",
        "Failed",
        "Injected",
        "Retried",
        "FaultSquash",
        "MeanResp(ms)",
    ]);
    for p in [0.0f64, 0.005, 0.01, 0.02, 0.05] {
        let gen = bundle.make_input.clone();
        let mb = faulted_closed(
            &mut prepared_baseline(&bundle, SEED),
            plan_at(p),
            policy(),
            REQUESTS,
            move |r| gen(r),
        );
        t.row([
            pct(p),
            "Baseline".to_string(),
            mb.completed.to_string(),
            mb.failed.to_string(),
            mb.faults.injected.to_string(),
            mb.faults.retried.to_string(),
            "-".to_string(),
            f1(mb.latency.mean_ms()),
        ]);

        let gen = bundle.make_input.clone();
        let ms = faulted_closed(
            &mut prepared_spec(&bundle, SpecConfig::full(), SEED, 300),
            plan_at(p),
            policy(),
            REQUESTS,
            move |r| gen(r),
        );
        t.row([
            pct(p),
            "SpecFaaS".to_string(),
            ms.completed.to_string(),
            ms.failed.to_string(),
            ms.faults.injected.to_string(),
            ms.faults.retried.to_string(),
            ms.faults.squashed_due_to_fault.to_string(),
            f1(ms.latency.mean_ms()),
        ]);
    }
    println!("{}", t.render());
    println!("Identical seeds and plans: rerunning this binary reproduces every cell.\n");
}

fn retry_budget_sweep() {
    println!("== Retry-budget sweep (TcktApp, 2% crash / 1% KV fault rate) ==\n");
    let bundle = specfaas_apps::trainticket::ticket_app();
    let mut t = Table::new(["MaxAttempts", "Done", "Failed", "Retried", "Aborted%"]);
    for attempts in [1u32, 2, 3, 5, 8] {
        let gen = bundle.make_input.clone();
        let m = faulted_closed(
            &mut prepared_spec(&bundle, SpecConfig::full(), SEED, 300),
            plan_at(0.02),
            RetryPolicy::default()
                .with_max_attempts(attempts)
                .with_timeout(SimDuration::from_secs(2)),
            REQUESTS,
            move |r| gen(r),
        );
        let total = (m.completed + m.failed).max(1);
        t.row([
            attempts.to_string(),
            m.completed.to_string(),
            m.failed.to_string(),
            m.faults.retried.to_string(),
            pct(m.failed as f64 / total as f64),
        ]);
    }
    println!("{}", t.render());
    println!("A budget of 1 means no retries: every injected fault aborts its request.\n");
}

fn main() {
    fault_rate_sweep();
    retry_budget_sweep();
}
