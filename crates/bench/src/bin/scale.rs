//! Trace-driven multi-tenant scale runs.
//!
//! Sweeps tenant counts (default {10², 10³, 10⁴}) over a deterministic
//! synthetic Azure-style trace (diurnal rate curve, Zipf tenant
//! popularity — see `specfaas_sim::tracegen`) and drives 10⁶ requests per
//! tier through the flow-level fleet engine
//! (`specfaas_platform::fleet::ScaleEngine`) in both baseline and
//! speculative mode. Tenants are instantiated from the 19 registered
//! application templates over one shared, capacity-bounded warm pool.
//!
//! Reports, per tier × engine: sim-requests per wall-clock second, mean /
//! P50 / P99 latency, cold-start rate, wasted-core fraction, and the
//! approximate peak model memory (deterministic accounting of the tenant
//! directory, warm pool, request slab and streaming metrics — not host
//! RSS). `speculation_win` is baseline mean latency / spec mean latency.
//!
//! Simulation results are byte-deterministic per seed: cells run under
//! the parallel executor and are reported in submission order, so output
//! is identical at any `--jobs` (wall-clock figures are, of course,
//! timing and vary run to run).
//!
//! Flags:
//!
//! * `--quick` — smoke mode: one 50-tenant tier, 10⁴ requests.
//! * `--tiers A,B,C` — override the tenant tiers.
//! * `--requests N` — override requests per tier.
//! * `--seed S` — trace seed (default 0xFA5C).
//! * `--out PATH` — write the JSON artifact (default `BENCH_scale.json`
//!   in full mode; quick mode writes only when `--out` is given).
//! * `--guard PATH` — compare this run against the committed artifact and
//!   exit non-zero on any violated clause (see
//!   [`specfaas_bench::scale_guard`]). CI runs
//!   `scale --tiers 1000 --out scale.json --guard BENCH_scale.json`.

use std::sync::Arc;
use std::time::Instant;

use specfaas_apps::all_app_specs;
use specfaas_bench::executor::{self, ExperimentCell};
use specfaas_bench::report::{f1, f2, pct, Table};
use specfaas_bench::scale_guard;
use specfaas_platform::fleet::{ScaleConfig, ScaleEngine, ScaleStats, TemplateProfile};
use specfaas_sim::tracegen::TraceConfig;

/// Default trace seed for scale runs.
const SEED: u64 = 0xFA5C;

/// One (tier, engine) measurement.
struct CellResult {
    tenants: u32,
    requests: u64,
    speculative: bool,
    stats: ScaleStats,
    wall_secs: f64,
}

impl CellResult {
    fn req_per_sec(&self) -> f64 {
        self.stats.completed as f64 / self.wall_secs.max(1e-9)
    }
}

fn run_cell(
    tenants: u32,
    requests: u64,
    seed: u64,
    speculative: bool,
    cores: u32,
    warm_capacity: u32,
) -> CellResult {
    let templates: Vec<Arc<TemplateProfile>> = all_app_specs()
        .iter()
        .map(|a| Arc::new(TemplateProfile::from_app(a)))
        .collect();
    let trace = TraceConfig::new(tenants, requests, seed);
    let mut cfg = ScaleConfig::new(trace, speculative);
    cfg.cores = cores;
    cfg.warm_capacity = warm_capacity;
    let engine = ScaleEngine::new(cfg, templates);
    let t0 = Instant::now();
    let stats = engine.run();
    CellResult {
        tenants,
        requests,
        speculative,
        stats,
        wall_secs: t0.elapsed().as_secs_f64(),
    }
}

/// Minimal JSON string escape (labels here are plain ASCII anyway).
fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn engine_json(prefix: &str, r: &CellResult) -> String {
    let s = &r.stats;
    format!(
        "\"{prefix}_req_per_sec\": {:.1}, \"{prefix}_wall_secs\": {:.3}, \
         \"{prefix}_sim_secs\": {:.3}, \"{prefix}_mean_ms\": {:.3}, \
         \"{prefix}_p50_ms\": {:.3}, \"{prefix}_p99_ms\": {:.3}, \
         \"{prefix}_cold_rate\": {:.6}, \"{prefix}_wasted_frac\": {:.6}, \
         \"{prefix}_peak_live\": {}, \"{prefix}_peak_mem_bytes\": {}, \
         \"{prefix}_cores\": {}, \"{prefix}_warm_capacity\": {}",
        r.req_per_sec(),
        r.wall_secs,
        s.sim_span.as_secs_f64(),
        s.mean_ms(),
        s.latency.quantile_ms(0.50),
        s.latency.quantile_ms(0.99),
        s.cold_rate(),
        s.wasted_frac(),
        s.peak_live,
        s.peak_mem_bytes,
        s.cores,
        s.warm_capacity,
    )
}

fn usage() -> ! {
    eprintln!(
        "usage: scale [--quick] [--tiers A,B,C] [--requests N] [--seed S] \
         [--jobs N] [--out PATH] [--guard PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let jobs = executor::jobs_from_args();
    let quick = executor::has_flag("--quick");
    let out = executor::arg_value("out");
    let guard = executor::arg_value("guard");
    let seed = executor::arg_value("seed")
        .map(|s| s.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(SEED);
    let tiers: Vec<u32> = match executor::arg_value("tiers") {
        Some(list) => list
            .split(',')
            .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
            .collect(),
        None if quick => vec![50],
        None => vec![100, 1_000, 10_000],
    };
    let requests: u64 = executor::arg_value("requests")
        .map(|s| s.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(if quick { 10_000 } else { 1_000_000 });
    // Calibration overrides (0 = auto-size from the fleet profile).
    let cores: u32 = executor::arg_value("cores")
        .map(|s| s.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(0);
    let warm_capacity: u32 = executor::arg_value("warm-capacity")
        .map(|s| s.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(0);

    println!("== scale: trace-driven multi-tenant runs ==");
    println!(
        "tiers {tiers:?} x {requests} requests, seed {seed:#x}, jobs {jobs} \
         (simulation results are byte-identical at any --jobs)"
    );

    // One cell per (tier, engine); the executor reports in submission
    // order, so the table and artifact are deterministic at any --jobs.
    let cells: Vec<ExperimentCell<CellResult>> = tiers
        .iter()
        .flat_map(|&tenants| {
            [false, true].into_iter().map(move |speculative| {
                let label = format!(
                    "scale/{tenants}t/{}",
                    if speculative { "spec" } else { "base" }
                );
                ExperimentCell::new(label, move || {
                    run_cell(tenants, requests, seed, speculative, cores, warm_capacity)
                })
            })
        })
        .collect();
    let results = executor::run_cells(jobs, cells);

    let mut table = Table::new([
        "tenants",
        "engine",
        "req/s wall",
        "mean ms",
        "p50 ms",
        "p99 ms",
        "cold %",
        "wasted %",
        "peak mem MB",
        "win",
    ]);
    let mut tier_json = Vec::new();
    for pair in results.chunks(2) {
        let (base, spec) = (&pair[0], &pair[1]);
        assert_eq!(base.tenants, spec.tenants);
        assert!(!base.speculative && spec.speculative);
        let win = base.stats.mean_ms() / spec.stats.mean_ms();
        for r in [base, spec] {
            table.row([
                r.tenants.to_string(),
                if r.speculative { "spec" } else { "baseline" }.to_string(),
                format!("{:.0}", r.req_per_sec()),
                f2(r.stats.mean_ms()),
                f2(r.stats.latency.quantile_ms(0.50)),
                f2(r.stats.latency.quantile_ms(0.99)),
                pct(r.stats.cold_rate()),
                pct(r.stats.wasted_frac()),
                f1(r.stats.peak_mem_bytes as f64 / 1e6),
                if r.speculative {
                    format!("{win:.2}x")
                } else {
                    "-".to_string()
                },
            ]);
        }
        tier_json.push(format!(
            "    {{ \"tenants\": {}, \"requests\": {},\n      {},\n      {},\n      \
             \"speculation_win\": {:.4} }}",
            base.tenants,
            base.requests,
            engine_json("baseline", base),
            engine_json("spec", spec),
            win,
        ));
    }
    println!("\n{}", table.render());

    let artifact = format!(
        "{{\n  \"schema\": \"{}\",\n  \"seed\": {},\n  \"requests_per_tier\": {},\n  \
         \"host_parallelism\": {},\n  \"jobs\": {},\n  \"tiers\": [\n{}\n  ]\n}}\n",
        esc("specfaas-scale-v1"),
        seed,
        requests,
        executor::host_parallelism(),
        jobs,
        tier_json.join(",\n"),
    );

    match (&out, quick) {
        (Some(path), _) => {
            std::fs::write(path, &artifact).expect("write scale json");
            println!("wrote {path}");
        }
        (None, false) => {
            std::fs::write("BENCH_scale.json", &artifact).expect("write scale json");
            println!("wrote BENCH_scale.json");
        }
        (None, true) => {}
    }

    if let Some(path) = guard {
        let committed_json = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read committed artifact {path}: {e}"));
        let committed =
            scale_guard::parse_artifact(&committed_json).expect("parse committed artifact");
        let current = scale_guard::parse_artifact(&artifact).expect("parse current artifact");
        let violations = scale_guard::check(&current, &committed);
        if violations.is_empty() {
            println!("\nguard vs {path}: PASS");
        } else {
            eprintln!("\nguard vs {path}: FAIL");
            for v in &violations {
                eprintln!("  - {v}");
            }
            std::process::exit(1);
        }
    }
}
