//! Table IV — normalized CPU utilization of LazySquash vs SpecFaaS
//! (process-kill) across speculation hit rates, with the SpecFaaS
//! speedup.
//!
//! CPU utilization is compared as *busy core-time per completed request*
//! (useful + squashed work), normalized to the baseline — the same
//! quantity the paper's normalized-utilization columns capture: how many
//! extra cycles speculation costs per unit of served work.
//!
//! `--jobs N` runs the {rate × app × load} grid on N worker threads;
//! output is byte-identical to serial.

use specfaas_bench::executor::{self, ExperimentCell};
use specfaas_bench::report::{f2, speedup, Table};
use specfaas_bench::runner::{
    measure_baseline_concurrent, measure_spec_concurrent, ExperimentParams,
};
use specfaas_core::{SpecConfig, SquashMechanism};
use specfaas_platform::{Load, RunMetrics};

fn core_ms_per_request(m: &RunMetrics) -> f64 {
    if m.completed == 0 {
        return f64::INFINITY;
    }
    (m.useful_core_time + m.squashed_core_time).as_millis_f64() / m.completed as f64
}

/// Per-cell contribution: (lazy/base CPU ratio, kill/base CPU ratio,
/// SpecFaaS speedup).
fn measure_cell(bundle: &specfaas_apps::AppBundle, rate: f64, load: Load) -> (f64, f64, f64) {
    let p = ExperimentParams::default().at_rps(load.rps());
    let base = measure_baseline_concurrent(bundle, p);
    let base_cost = core_ms_per_request(&base);

    let mut lazy_cfg = SpecConfig::full();
    lazy_cfg.forced_branch_accuracy = Some(rate);
    lazy_cfg.squash = SquashMechanism::Lazy;
    lazy_cfg.stall_optimization = false;
    let lazy = measure_spec_concurrent(bundle, lazy_cfg, p);

    let mut kill_cfg = SpecConfig::full();
    kill_cfg.forced_branch_accuracy = Some(rate);
    let kill = measure_spec_concurrent(bundle, kill_cfg, p);

    (
        core_ms_per_request(&lazy) / base_cost,
        core_ms_per_request(&kill) / base_cost,
        base.mean_response_ms() / kill.mean_response_ms(),
    )
}

fn main() {
    let jobs = executor::jobs_from_args();
    println!("== Table IV: normalized CPU cost per request vs speculation hit rate ==\n");
    let rates = [1.0, 0.9, 0.7, 0.5];
    let suite = specfaas_apps::suite_named("FaaSChain");
    let suite = &suite;

    let mut cells: Vec<ExperimentCell<(f64, f64, f64)>> = Vec::new();
    for rate in rates {
        for bundle in &suite.apps {
            for load in Load::all() {
                cells.push(ExperimentCell::new(
                    format!("table4/{rate}/{}/{:?}", bundle.name(), load),
                    move || measure_cell(bundle, rate, load),
                ));
            }
        }
    }
    let results = executor::run_cells(jobs, cells);

    let mut t = Table::new(["HitRate", "Baseline", "LazySquash", "SpecFaaS", "Speedup"]);
    let mut it = results.into_iter();
    for rate in rates {
        let mut lazy_ratio = 0.0;
        let mut kill_ratio = 0.0;
        let mut sp = 0.0;
        let mut n = 0.0;
        for _ in &suite.apps {
            for _ in Load::all() {
                let (l, k, s) = it.next().expect("one result per cell");
                lazy_ratio += l;
                kill_ratio += k;
                sp += s;
                n += 1.0;
            }
        }
        t.row([
            format!("{:.0}%", rate * 100.0),
            "1.00".to_string(),
            f2(lazy_ratio / n),
            f2(kill_ratio / n),
            speedup(sp / n),
        ]);
    }
    println!("{}", t.render());
    println!("Paper reference (90% row): LazySquash 1.24x, SpecFaaS 1.08x the");
    println!("baseline CPU utilization, at a ~4.6x speedup; immediate process");
    println!("kills save substantial cycles at low hit rates.");
}
