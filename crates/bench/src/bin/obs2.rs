//! Observation 2 — the sequence of functions executed by an application
//! is highly deterministic: the most popular sequence accounts for ~90 %
//! of invocations (Alibaba) and ~98 % (TrainTicket).

use specfaas_bench::report::{pct, Table};
use specfaas_bench::runner::prepared_baseline;
use specfaas_sim::SimRng;

fn main() {
    println!("== Observation 2: most-popular function sequence share ==\n");
    let mut t = Table::new(["Suite", "App", "DominantSeqShare"]);
    for suite in specfaas_apps::all_suites() {
        if suite.synthetic_branches {
            // The paper omits suites with synthetically biased branch
            // outcomes here (FaaSChain and DAG).
            continue;
        }
        let mut shares = Vec::new();
        for bundle in &suite.apps {
            let mut e = prepared_baseline(bundle, 17);
            let gen = bundle.make_input.clone();
            let m = e.run_closed(400, move |r: &mut SimRng| gen(r));
            let (_, share) = m.most_popular_sequence().expect("runs completed");
            t.row([
                suite.name.to_string(),
                bundle.name().to_string(),
                pct(share),
            ]);
            shares.push(share);
        }
        let avg = shares.iter().sum::<f64>() / shares.len() as f64;
        t.row([suite.name.to_string(), "AVERAGE".into(), pct(avg)]);
    }
    println!("{}", t.render());
    println!("Paper reference: 90% (Alibaba), 98% (TrainTicket).");
}
