//! Table III — effective throughput: the maximum request rate served
//! without QoS violation (mean response ≤ 2× the unloaded response).
//!
//! `--jobs N` runs the {app × system} bisections on N worker threads;
//! output is byte-identical to serial. The baseline and SpecFaaS
//! bisections for one app are independent, so they are separate cells.

use specfaas_bench::executor::{self, ExperimentCell};
use specfaas_bench::report::{f1, speedup, Table};
use specfaas_bench::runner::{
    baseline_single_ms, effective_throughput, measure_baseline_open, measure_spec_open,
    spec_single_ms, ExperimentParams,
};
use specfaas_core::SpecConfig;
use specfaas_sim::SimDuration;

/// A run that starves (few completions inside the window) is a QoS
/// violation by definition.
fn guarded(m: specfaas_platform::RunMetrics, rps: f64) -> f64 {
    let min_done = (0.5 * rps * m.window.as_secs_f64()) as u64;
    if m.completed < min_done.max(10) {
        f64::INFINITY
    } else {
        m.mean_response_ms()
    }
}

fn main() {
    let jobs = executor::jobs_from_args();
    println!("== Table III: effective throughput (requests/second) ==\n");
    let suites = specfaas_apps::all_suites();
    let p = ExperimentParams {
        duration: SimDuration::from_secs(3),
        warmup: SimDuration::from_millis(300),
        ..ExperimentParams::default()
    };

    // Two cells per app: the baseline bisection and the SpecFaaS
    // bisection, each returning its effective throughput.
    let mut cells: Vec<ExperimentCell<f64>> = Vec::new();
    for suite in &suites {
        for bundle in &suite.apps {
            cells.push(ExperimentCell::new(
                format!("table3/{}/baseline", bundle.name()),
                move || {
                    let bs = baseline_single_ms(bundle, p.seed, 5);
                    effective_throughput(
                        |rps| guarded(measure_baseline_open(bundle, p.at_rps(rps)), rps),
                        bs,
                        20.0,
                        120.0,
                    )
                },
            ));
            cells.push(ExperimentCell::new(
                format!("table3/{}/spec", bundle.name()),
                move || {
                    let ss = spec_single_ms(bundle, SpecConfig::full(), p.seed, 5);
                    effective_throughput(
                        |rps| {
                            guarded(
                                measure_spec_open(bundle, SpecConfig::full(), p.at_rps(rps)),
                                rps,
                            )
                        },
                        ss,
                        50.0,
                        400.0,
                    )
                },
            ));
        }
    }
    let results = executor::run_cells(jobs, cells);

    let mut t = Table::new(["Suite", "Baseline", "SpecFaaS", "Improvement"]);
    let mut base_avgs = Vec::new();
    let mut spec_avgs = Vec::new();
    let mut it = results.into_iter();
    for suite in &suites {
        let mut base_sum = 0.0;
        let mut spec_sum = 0.0;
        for _ in &suite.apps {
            base_sum += it.next().expect("baseline cell");
            spec_sum += it.next().expect("spec cell");
        }
        let n = suite.apps.len() as f64;
        let (b, s) = (base_sum / n, spec_sum / n);
        base_avgs.push(b);
        spec_avgs.push(s);
        t.row([suite.name.to_string(), f1(b), f1(s), speedup(s / b)]);
    }
    let b = base_avgs.iter().sum::<f64>() / base_avgs.len() as f64;
    let s = spec_avgs.iter().sum::<f64>() / spec_avgs.len() as f64;
    t.row(["Average".into(), f1(b), f1(s), speedup(s / b)]);
    println!("{}", t.render());
    println!("Paper reference: 118.3->485.0 (FaaSChain), 90.3->346.0 (TrainTicket),");
    println!("81.6->304.2 (Alibaba); average improvement 3.9x.");
}
