//! Table III — effective throughput: the maximum request rate served
//! without QoS violation (mean response ≤ 2× the unloaded response).

use specfaas_bench::report::{f1, speedup, Table};
use specfaas_bench::runner::{
    baseline_single_ms, effective_throughput, measure_baseline_open, measure_spec_open,
    spec_single_ms, ExperimentParams,
};
use specfaas_core::SpecConfig;
use specfaas_sim::SimDuration;

fn main() {
    println!("== Table III: effective throughput (requests/second) ==\n");
    let mut t = Table::new(["Suite", "Baseline", "SpecFaaS", "Improvement"]);
    let mut base_avgs = Vec::new();
    let mut spec_avgs = Vec::new();
    for suite in specfaas_apps::all_suites() {
        let mut base_sum = 0.0;
        let mut spec_sum = 0.0;
        for bundle in &suite.apps {
            let p = ExperimentParams {
                duration: SimDuration::from_secs(3),
                warmup: SimDuration::from_millis(300),
                ..ExperimentParams::default()
            };
            // A run that starves (few completions inside the window) is
            // a QoS violation by definition.
            let guarded = |m: specfaas_platform::RunMetrics, rps: f64| {
                let min_done = (0.5 * rps * m.window.as_secs_f64()) as u64;
                if m.completed < min_done.max(10) {
                    f64::INFINITY
                } else {
                    m.mean_response_ms()
                }
            };
            let bs = baseline_single_ms(bundle, p.seed, 5);
            let base_thr = effective_throughput(
                |rps| guarded(measure_baseline_open(bundle, p.at_rps(rps)), rps),
                bs,
                20.0,
                120.0,
            );
            let ss = spec_single_ms(bundle, SpecConfig::full(), p.seed, 5);
            let spec_thr = effective_throughput(
                |rps| {
                    guarded(
                        measure_spec_open(bundle, SpecConfig::full(), p.at_rps(rps)),
                        rps,
                    )
                },
                ss,
                50.0,
                400.0,
            );
            base_sum += base_thr;
            spec_sum += spec_thr;
        }
        let n = suite.apps.len() as f64;
        let (b, s) = (base_sum / n, spec_sum / n);
        base_avgs.push(b);
        spec_avgs.push(s);
        t.row([suite.name.to_string(), f1(b), f1(s), speedup(s / b)]);
    }
    let b = base_avgs.iter().sum::<f64>() / base_avgs.len() as f64;
    let s = spec_avgs.iter().sum::<f64>() / spec_avgs.len() as f64;
    t.row(["Average".into(), f1(b), f1(s), speedup(s / b)]);
    println!("{}", t.render());
    println!("Paper reference: 118.3->485.0 (FaaSChain), 90.3->346.0 (TrainTicket),");
    println!("81.6->304.2 (Alibaba); average improvement 3.9x.");
}
