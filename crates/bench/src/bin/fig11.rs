//! Fig. 11 — end-to-end speedup of SpecFaaS over the baseline for every
//! application at Low / Medium / High load (100 / 250 / 500 RPS), plus
//! suite averages, plus the cold-start variant of §VIII-A.
//!
//! Load is driven closed-loop: a client pool sized so the baseline is
//! offered the paper's request rate. At levels beyond a system's capacity
//! the pool self-throttles (as a real fixed-pool load generator does), so
//! latencies stay finite while still reflecting saturation.
//!
//! Flags: `--jobs N` runs the {app × load} grid on N worker threads
//! (output is byte-identical to serial); `--quick` shrinks the
//! measurement window for smoke tests.

use specfaas_bench::executor::{self, ExperimentCell};
use specfaas_bench::report::{speedup, Table};
use specfaas_bench::runner::{
    baseline_single_ms, measure_baseline_concurrent_sized, measure_spec_concurrent_sized,
    ExperimentParams,
};
use specfaas_core::{SpecConfig, SpecEngine};
use specfaas_platform::{BaselineEngine, Load};
use specfaas_sim::{SimDuration, SimRng};

fn params(quick: bool, rps: f64) -> ExperimentParams {
    let mut p = ExperimentParams::default().at_rps(rps);
    if quick {
        p.duration = SimDuration::from_millis(800);
        p.warmup = SimDuration::from_millis(100);
        p.train_requests = 60;
    }
    p
}

fn main() {
    let jobs = executor::jobs_from_args();
    let quick = executor::has_flag("--quick");
    let suites = specfaas_apps::all_suites();

    println!("== Fig. 11: SpecFaaS speedup over baseline (warm) ==\n");

    // The client-pool sizing run depends only on `(bundle, seed)`, so it
    // is hoisted into a first parallel stage: one sizing cell per app
    // instead of two per {app × load} cell (a 6× cut in redundant engine
    // builds). The sizing values are bit-identical to the ones the cells
    // used to compute inline, so the rendered output is unchanged.
    let seed = ExperimentParams::default().seed;
    let sizing: Vec<ExperimentCell<f64>> = suites
        .iter()
        .flat_map(|suite| {
            suite.apps.iter().map(move |bundle| {
                ExperimentCell::new(format!("fig11-size/{}/{}", suite.name, bundle.name()), {
                    move || baseline_single_ms(bundle, seed, 3)
                })
            })
        })
        .collect();
    let singles = executor::run_cells(jobs, sizing);

    // One cell per {app × load}: measures baseline + SpecFaaS and returns
    // the speedup. Cells are submitted suite-major, app-minor, load-last —
    // the same order the serial loops used — and results come back in that
    // order, so rendering below is byte-identical for any --jobs.
    let mut cells: Vec<ExperimentCell<f64>> = Vec::new();
    let mut singles_it = singles.into_iter();
    for suite in &suites {
        for bundle in &suite.apps {
            let single = singles_it.next().expect("one sizing value per app");
            for load in Load::all() {
                cells.push(ExperimentCell::new(
                    format!("fig11/{}/{}/{:?}", suite.name, bundle.name(), load),
                    move || {
                        let p = params(quick, load.rps());
                        let base = measure_baseline_concurrent_sized(bundle, p, single);
                        let spec =
                            measure_spec_concurrent_sized(bundle, SpecConfig::full(), p, single);
                        base.mean_response_ms() / spec.mean_response_ms()
                    },
                ));
            }
        }
    }
    let results = executor::run_cells(jobs, cells);

    let mut t = Table::new(["Suite", "App", "Low", "Medium", "High", "Avg"]);
    let mut grand = Vec::new();
    let mut it = results.into_iter();
    for suite in &suites {
        let mut suite_speedups = vec![Vec::new(), Vec::new(), Vec::new()];
        for bundle in &suite.apps {
            let mut row = vec![suite.name.to_string(), bundle.name().to_string()];
            let mut app_speedups = Vec::new();
            for speedups in suite_speedups.iter_mut() {
                let s = it.next().expect("one result per cell");
                speedups.push(s);
                app_speedups.push(s);
                row.push(speedup(s));
            }
            let avg = app_speedups.iter().sum::<f64>() / 3.0;
            grand.push(avg);
            row.push(speedup(avg));
            t.row(row);
        }
        let mut avg_row = vec![suite.name.to_string(), "AVERAGE".to_string()];
        let mut all = Vec::new();
        for s in &suite_speedups {
            let a = s.iter().sum::<f64>() / s.len() as f64;
            all.push(a);
            avg_row.push(speedup(a));
        }
        avg_row.push(speedup(all.iter().sum::<f64>() / 3.0));
        t.row(avg_row);
    }
    println!("{}", t.render());
    let overall = grand.iter().sum::<f64>() / grand.len() as f64;
    println!("Overall average speedup: {}", speedup(overall));
    println!("Paper reference: 4.6x average (FaaSChain 5.2/5.0/4.9, TrainTicket");
    println!("4.2/4.4/4.3, Alibaba 4.4/4.5/4.6 at Low/Medium/High).\n");

    println!("== Fig. 11 cold-start variant (§VIII-A): containers reclaimed ==\n");
    cold_variant(jobs, quick);
}

/// §VIII-A repeats the experiment without warming up the environment:
/// here every warm container pool is flushed (idle reclamation) before a
/// single measured request, so every function launch pays a cold start —
/// which SpecFaaS overlaps across speculative launches.
fn cold_variant(jobs: usize, quick: bool) {
    let suites = specfaas_apps::all_suites();
    let train = if quick { 40 } else { 100 };

    let mut cells: Vec<ExperimentCell<f64>> = Vec::new();
    for suite in &suites {
        for bundle in &suite.apps {
            cells.push(ExperimentCell::new(
                format!("fig11-cold/{}/{}", suite.name, bundle.name()),
                move || {
                    let seed = 0xC01D;
                    // Baseline: fresh engine, no prewarm, first request is cold.
                    let bd = {
                        let mut b = BaselineEngine::new(bundle.app.clone(), seed);
                        let mut rng = SimRng::seed(seed);
                        (bundle.seed)(&mut b.kv, &mut rng);
                        b.run_single((bundle.make_input)(&mut rng))
                    };
                    // SpecFaaS: tables trained from earlier invocations, then all
                    // containers reclaimed; the measured request cold-starts
                    // every function but overlaps the starts speculatively.
                    let sd = {
                        let mut e = SpecEngine::new(bundle.app.clone(), SpecConfig::full(), seed);
                        e.prewarm();
                        let mut rng = SimRng::seed(seed);
                        (bundle.seed)(&mut e.kv, &mut rng);
                        let gen = bundle.make_input.clone();
                        e.run_closed(train, move |r| gen(r));
                        e.flush_warm_containers();
                        let mut rng2 = SimRng::seed(seed ^ 1);
                        e.run_single((bundle.make_input)(&mut rng2))
                    };
                    bd.as_millis_f64() / sd.as_millis_f64().max(0.001)
                },
            ));
        }
    }
    let results = executor::run_cells(jobs, cells);

    let mut t = Table::new(["Suite", "AvgSpeedup(cold)"]);
    let mut it = results.into_iter();
    for suite in &suites {
        let speedups: Vec<f64> = suite.apps.iter().map(|_| it.next().unwrap()).collect();
        let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
        t.row([suite.name.to_string(), speedup(avg)]);
    }
    println!("{}", t.render());
    println!("Paper reference: 5.2x / 4.5x / 4.7x (FaaSChain / TrainTicket / Alibaba).");
}
