//! Table I — characterization of the three application suites.
//!
//! Prints, per suite: workflow type, application count and per-application
//! averages (functions, branches, data dependences, callees per calling
//! function, max DAG depth, warmed-up execution time).
//!
//! `--jobs N` characterizes the suites on N worker threads.

use specfaas_apps::{all_suites, characterize_suite};
use specfaas_bench::executor::{self, ExperimentCell};
use specfaas_bench::report::{f1, Table};

fn main() {
    let jobs = executor::jobs_from_args();
    println!("== Table I: FaaS application suites considered ==\n");
    let suites = all_suites();
    let cells: Vec<ExperimentCell<_>> = suites
        .iter()
        .map(|suite| {
            ExperimentCell::new(format!("table1/{}", suite.name), move || {
                characterize_suite(suite, 1)
            })
        })
        .collect();
    let results = executor::run_cells(jobs, cells);

    let mut t = Table::new([
        "Suite",
        "Type",
        "#Apps",
        "Avg#Fns",
        "Avg#Branches",
        "Avg#DataDeps",
        "Avg#Callees/Fn",
        "MaxDAGDepth",
        "AvgExec(ms)",
    ]);
    for c in results {
        t.row([
            c.suite.clone(),
            c.workflow_type.clone(),
            c.applications.to_string(),
            f1(c.avg_functions),
            c.avg_branches.map(f1).unwrap_or_else(|| "N/A".into()),
            f1(c.avg_data_deps),
            c.avg_callees_per_caller
                .map(f1)
                .unwrap_or_else(|| "N/A".into()),
            c.max_dag_depth.to_string(),
            f1(c.avg_exec_time_ms),
        ]);
    }
    println!("{}", t.render());
    println!("Paper reference: FaaSChain 7.8 fns / 2.5 branches / depth 10 / 160 ms;");
    println!("TrainTicket 11.2 fns / 4.8 callees / depth 3 / 268.8 ms;");
    println!("Alibaba 17.6 fns / 3.4 callees / depth 5 / 387.2 ms.");
}
