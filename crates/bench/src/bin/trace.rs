//! Flight-recorder capture: run one application with the tracer armed
//! and optionally export a Chrome-trace / Perfetto JSON timeline
//! (DESIGN.md, "Observability").
//!
//! ```text
//! cargo run --release --bin trace -- [--app NAME] [--engine spec|baseline]
//!     [--requests N] [--seed N] [--faults RATE] [--trace PATH]
//! ```
//!
//! With `--trace PATH` the per-invocation lifecycle timeline (container
//! acquisition, cold-start phases, speculative launches, memo hits,
//! squashes, replays, commits) is written as Chrome-trace JSON, loadable
//! in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev). The
//! invariant checker always runs; any violation fails the process.
//! Identical seeds produce byte-identical trace files.

use specfaas_bench::runner::{prepared_baseline, prepared_spec, traced_closed};
use specfaas_core::SpecConfig;
use specfaas_sim::trace::validate_json;
use specfaas_sim::{FaultPlan, RetryPolicy, SimDuration};

struct Args {
    app: String,
    engine: String,
    requests: u64,
    seed: u64,
    faults: f64,
    trace_path: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: trace [--app NAME] [--engine spec|baseline] [--requests N] \
         [--seed N] [--faults RATE] [--trace PATH]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        app: "HotelBooking".to_string(),
        engine: "spec".to_string(),
        requests: 200,
        seed: 0x7ace,
        faults: 0.0,
        trace_path: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |flag: &str| it.next().unwrap_or_else(|| usage_missing(flag));
        match flag.as_str() {
            "--app" => args.app = val("--app"),
            "--engine" => args.engine = val("--engine"),
            "--requests" => args.requests = parse(&val("--requests")),
            "--seed" => args.seed = parse(&val("--seed")),
            "--faults" => args.faults = parse(&val("--faults")),
            "--trace" => args.trace_path = Some(val("--trace")),
            _ => usage(),
        }
    }
    args
}

fn usage_missing(flag: &str) -> ! {
    eprintln!("missing value for {flag}");
    usage();
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("bad numeric argument: {s}");
        usage();
    })
}

fn find_app(name: &str) -> specfaas_apps::AppBundle {
    if let Some(bundle) = specfaas_apps::find_app(name) {
        return bundle;
    }
    eprintln!("unknown app `{name}`; available:");
    for suite in specfaas_apps::all_suites() {
        for bundle in &suite.apps {
            eprintln!("  {} ({})", bundle.app.name, suite.name);
        }
    }
    std::process::exit(2);
}

fn main() {
    let args = parse_args();
    let bundle = find_app(&args.app);
    let plan = FaultPlan::none()
        .with_container_crash(args.faults)
        .with_kv_get(args.faults / 2.0)
        .with_kv_set(args.faults / 2.0);
    let policy = RetryPolicy::default()
        .with_max_attempts(8)
        .with_timeout(SimDuration::from_secs(2));

    // One generic traced body; the match arms only pick the engine.
    let gen = bundle.make_input.clone();
    let (tracer, metrics) = match args.engine.as_str() {
        "spec" => traced_closed(
            &mut prepared_spec(&bundle, SpecConfig::full(), args.seed, 300),
            plan,
            policy,
            args.requests,
            move |r| gen(r),
        ),
        "baseline" => traced_closed(
            &mut prepared_baseline(&bundle, args.seed),
            plan,
            policy,
            args.requests,
            move |r| gen(r),
        ),
        _ => usage(),
    };

    println!(
        "{} / {}: {} requests done, {} failed, {} trace events",
        bundle.app.name,
        args.engine,
        metrics.completed,
        metrics.failed,
        tracer.events().len()
    );

    if !tracer.violations().is_empty() {
        eprintln!("invariant violations:");
        for v in tracer.violations() {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }
    println!("invariants: ok");

    if let Some(path) = args.trace_path {
        let json = tracer.export_chrome_json();
        validate_json(&json).expect("exporter produced invalid JSON");
        std::fs::write(&path, &json).expect("failed to write trace file");
        println!("wrote {} bytes of Chrome-trace JSON to {path}", json.len());
    }
}
