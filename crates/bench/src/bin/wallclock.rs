//! Wall-clock benchmark harness — measures the *simulator's* speed, not
//! the simulated systems. Three sections:
//!
//! 1. **Event queue**: schedule/step and schedule/cancel churn throughput
//!    at 1k and 100k pending events. The slot/generation tombstone design
//!    keeps cancel O(1) (amortized O(log n) with reaping), so throughput
//!    must not collapse as the backlog grows 100x.
//! 2. **fig11 row**: wall time to produce one warm speedup row (one app at
//!    Low/Medium/High load) — the unit of work the experiment grid fans
//!    out.
//! 3. **jobs sweep**: wall time for a fixed 8-cell grid under the parallel
//!    executor at `--jobs` 1/2/4.
//!
//! Every number is a median of K repeats. Results are printed as a table
//! and written machine-readably to `BENCH_wallclock.json` (override with
//! `--out PATH`; `--quick` skips the file unless `--out` is given).

use std::time::Instant;

use specfaas_bench::executor::{self, ExperimentCell};
use specfaas_bench::report::{f1, Table};
use specfaas_bench::runner::{
    measure_baseline_concurrent, measure_spec_concurrent, ExperimentParams,
};
use specfaas_core::SpecConfig;
use specfaas_sim::{SimDuration, SimRng, Simulator};

/// Median of the samples (in place).
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Times `body` K times and returns the median wall time in seconds.
fn timed<K: FnMut()>(repeats: usize, mut body: K) -> f64 {
    let mut samples: Vec<f64> = (0..repeats.max(1))
        .map(|_| {
            let t0 = Instant::now();
            body();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    median(&mut samples)
}

struct QueueBench {
    name: &'static str,
    pending: usize,
    ops: usize,
    median_ns_per_op: f64,
}

impl QueueBench {
    fn ops_per_sec(&self) -> f64 {
        1e9 / self.median_ns_per_op
    }
}

/// Prefills a simulator with `pending` events spread over the next second.
fn prefill(pending: usize, rng: &mut SimRng) -> Simulator<u64> {
    let mut sim = Simulator::new();
    for i in 0..pending {
        sim.schedule_in(
            SimDuration::from_micros(rng.uniform_range(1, 1_000_000)),
            i as u64,
        );
    }
    sim
}

/// schedule+step churn: queue size stays at `pending`, every op is one
/// heap push and one pop at that size.
fn bench_schedule_step(pending: usize, ops: usize, repeats: usize) -> QueueBench {
    let secs = timed(repeats, || {
        let mut rng = SimRng::seed(0x5EED_0001);
        let mut sim = prefill(pending, &mut rng);
        for i in 0..ops {
            sim.schedule_in(
                SimDuration::from_micros(rng.uniform_range(1, 1_000_000)),
                i as u64,
            );
            std::hint::black_box(sim.step());
        }
        assert_eq!(sim.pending(), pending);
    });
    QueueBench {
        name: "schedule_step",
        pending,
        ops,
        median_ns_per_op: secs * 1e9 / ops as f64,
    }
}

/// schedule+cancel churn: every op schedules a fresh event and cancels the
/// oldest outstanding one (almost never the head), then steps once per 8
/// ops so tombstones also get reaped at pop. With an O(n) cancel this
/// bench blows up ~100x between 1k and 100k pending.
fn bench_schedule_cancel(pending: usize, ops: usize, repeats: usize) -> QueueBench {
    let secs = timed(repeats, || {
        let mut rng = SimRng::seed(0x5EED_0002);
        let mut sim = Simulator::new();
        let mut ids = std::collections::VecDeque::with_capacity(pending);
        for i in 0..pending {
            ids.push_back(sim.schedule_in(
                SimDuration::from_micros(rng.uniform_range(1, 1_000_000)),
                i as u64,
            ));
        }
        for i in 0..ops {
            ids.push_back(sim.schedule_in(
                SimDuration::from_micros(rng.uniform_range(1, 1_000_000)),
                i as u64,
            ));
            let victim = ids.pop_front().expect("queue nonempty");
            std::hint::black_box(sim.cancel(victim));
            if i % 8 == 0 {
                if let Some(popped) = sim.step() {
                    std::hint::black_box(popped);
                }
            }
        }
    });
    QueueBench {
        name: "schedule_cancel",
        pending,
        ops,
        median_ns_per_op: secs * 1e9 / ops as f64,
    }
}

/// One warm fig11 row: baseline + SpecFaaS at Low/Medium/High for one app.
fn fig11_row_secs(quick: bool, repeats: usize) -> f64 {
    let bundle = specfaas_apps::faaschain::apps().remove(0); // Login
    timed(repeats, || {
        for rps in [100.0, 250.0, 500.0] {
            let mut p = ExperimentParams::default().at_rps(rps);
            if quick {
                p.duration = SimDuration::from_millis(800);
                p.warmup = SimDuration::from_millis(100);
                p.train_requests = 60;
            }
            let base = measure_baseline_concurrent(&bundle, p);
            let spec = measure_spec_concurrent(&bundle, SpecConfig::full(), p);
            std::hint::black_box(base.mean_response_ms() / spec.mean_response_ms());
        }
    })
}

/// Times a fixed 8-cell grid under the executor at the given job count.
fn sweep_secs(jobs: usize, quick: bool, repeats: usize) -> f64 {
    let bundle = specfaas_apps::faaschain::apps().remove(0);
    timed(repeats, || {
        let cells: Vec<ExperimentCell<f64>> = (0..8u64)
            .map(|i| {
                let bundle = &bundle;
                ExperimentCell::new(format!("sweep/{i}"), move || {
                    let mut p = ExperimentParams::default().at_rps(100.0 + 50.0 * i as f64);
                    p.seed ^= i;
                    p.duration = SimDuration::from_millis(if quick { 400 } else { 1_500 });
                    p.warmup = SimDuration::from_millis(100);
                    p.train_requests = if quick { 40 } else { 100 };
                    measure_spec_concurrent(bundle, SpecConfig::full(), p).mean_response_ms()
                })
            })
            .collect();
        std::hint::black_box(executor::run_cells(jobs, cells));
    })
}

/// Minimal JSON string escape (labels here are plain ASCII anyway).
fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let quick = executor::has_flag("--quick");
    let out = executor::arg_value("out");
    // The event-queue microbench is single-threaded by nature; --jobs is
    // accepted (run_all forwards it) and applies to the sweep section.
    let _ = executor::jobs_from_args();

    let repeats = if quick { 3 } else { 5 };
    let (small_ops, big_ops) = if quick {
        (50_000, 50_000)
    } else {
        (400_000, 400_000)
    };

    println!("== Wall-clock: event-queue throughput ==\n");
    let queue_benches = vec![
        bench_schedule_step(1_000, small_ops, repeats),
        bench_schedule_step(100_000, big_ops, repeats),
        bench_schedule_cancel(1_000, small_ops, repeats),
        bench_schedule_cancel(100_000, big_ops, repeats),
    ];
    let mut t = Table::new(["Bench", "Pending", "ns/op", "Mops/s"]);
    for b in &queue_benches {
        t.row([
            b.name.to_string(),
            b.pending.to_string(),
            f1(b.median_ns_per_op),
            format!("{:.2}", b.ops_per_sec() / 1e6),
        ]);
    }
    println!("{}", t.render());
    let cancel_ratio = queue_benches[3].median_ns_per_op / queue_benches[2].median_ns_per_op;
    println!(
        "cancel ns/op ratio 100k/1k pending: {:.2}x (O(n) cancel would be ~100x)\n",
        cancel_ratio
    );

    println!("== Wall-clock: one fig11 warm row (Login, 3 loads) ==\n");
    let row_repeats = if quick { 1 } else { 3 };
    let row_secs = fig11_row_secs(quick, row_repeats);
    println!("median of {row_repeats}: {:.2} s\n", row_secs);

    println!("== Wall-clock: executor sweep (8 cells) ==\n");
    let sweep_jobs = [1usize, 2, 4];
    let sweep: Vec<(usize, f64)> = sweep_jobs
        .iter()
        .map(|&j| (j, sweep_secs(j, quick, row_repeats)))
        .collect();
    let mut t = Table::new(["Jobs", "Median(s)", "Speedup"]);
    for (j, s) in &sweep {
        t.row([
            j.to_string(),
            format!("{s:.2}"),
            format!("{:.2}x", sweep[0].1 / s),
        ]);
    }
    println!("{}", t.render());
    println!(
        "(available parallelism on this host: {})",
        executor::default_jobs()
    );

    // Machine-readable artifact.
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"schema\": \"specfaas-bench/wallclock/v1\",\n");
    j.push_str(&format!("  \"quick\": {quick},\n"));
    j.push_str(&format!(
        "  \"host_parallelism\": {},\n",
        executor::default_jobs()
    ));
    j.push_str(&format!("  \"repeats\": {repeats},\n"));
    j.push_str("  \"event_queue\": [\n");
    for (i, b) in queue_benches.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"bench\": \"{}\", \"pending\": {}, \"ops\": {}, \"median_ns_per_op\": {:.2}, \"ops_per_sec\": {:.0}}}{}\n",
            esc(b.name),
            b.pending,
            b.ops,
            b.median_ns_per_op,
            b.ops_per_sec(),
            if i + 1 < queue_benches.len() { "," } else { "" }
        ));
    }
    j.push_str("  ],\n");
    j.push_str(&format!(
        "  \"cancel_ns_ratio_100k_over_1k\": {:.3},\n",
        cancel_ratio
    ));
    j.push_str(&format!(
        "  \"fig11_row\": {{\"app\": \"Login\", \"loads_rps\": [100, 250, 500], \"repeats\": {row_repeats}, \"median_secs\": {:.3}}},\n",
        row_secs
    ));
    j.push_str("  \"jobs_sweep\": [\n");
    for (i, (jobs, secs)) in sweep.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"jobs\": {jobs}, \"cells\": 8, \"median_secs\": {:.3}, \"speedup\": {:.3}}}{}\n",
            secs,
            sweep[0].1 / secs,
            if i + 1 < sweep.len() { "," } else { "" }
        ));
    }
    j.push_str("  ]\n}\n");

    match (out, quick) {
        (Some(path), _) => {
            std::fs::write(&path, &j).expect("write wallclock json");
            println!("\nwrote {path}");
        }
        (None, false) => {
            std::fs::write("BENCH_wallclock.json", &j).expect("write wallclock json");
            println!("\nwrote BENCH_wallclock.json");
        }
        (None, true) => {}
    }
}
