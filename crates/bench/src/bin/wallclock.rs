//! Wall-clock benchmark harness — measures the *simulator's* speed, not
//! the simulated systems. Three sections:
//!
//! 1. **Event queue**: schedule/step and schedule/cancel churn throughput
//!    at 1k and 100k pending events. The calendar-bucket queue keeps both
//!    ops amortized O(1) at any backlog (cancel via slot/generation
//!    tombstones, delivery via bucket scan), so throughput must stay
//!    near-flat as the backlog grows 100x.
//! 2. **fig11 row**: wall time to produce one warm speedup row (one app at
//!    Low/Medium/High load) — the unit of work the experiment grid fans
//!    out. Client-pool sizing is hoisted out of the timed region, exactly
//!    as the fig11 binary hoists it out of its cells.
//! 3. **jobs sweep**: wall time for a fixed 8-cell grid under the parallel
//!    executor at `--jobs` 1/2/4, with per-seed sizing precomputed outside
//!    the timed region so the sweep measures executor overhead + cell
//!    work, not redundant setup.
//! 4. **instrumented overhead**: the same closed loop on a trained
//!    SpecFaaS engine with and without the streaming-observability
//!    instruments (metrics registry + windowed snapshots) armed. The
//!    ratio bounds how much the constant-memory observability layer may
//!    cost; the guard's clause 4 enforces the documented ceiling.
//!
//! Every number is a median of K repeats. Results are printed as a table
//! and written machine-readably to `BENCH_wallclock.json` (override with
//! `--out PATH`; `--quick` skips the file unless `--out` is given). The
//! artifact records both `host_parallelism` (what the OS advertises) and
//! `measured_parallelism` (what a CPU-bound probe actually achieved at 2
//! workers), so a jobs sweep is interpretable on throttled containers.
//!
//! `--guard PATH` compares this run against the committed artifact at
//! PATH and exits non-zero if any regression clause fires (see
//! [`specfaas_bench::wallclock_guard`]). CI runs
//! `wallclock --quick --out wallclock.json --guard BENCH_wallclock.json`.

use std::time::Instant;

use specfaas_bench::executor::{self, ExperimentCell};
use specfaas_bench::report::{f1, Table};
use specfaas_bench::runner::{
    baseline_single_ms, measure_baseline_concurrent_sized, measure_spec_concurrent_sized,
    prepared_spec, ExperimentParams,
};
use specfaas_bench::wallclock_guard;
use specfaas_core::SpecConfig;
use specfaas_sim::{MetricsRegistry, SimDuration, SimRng, Simulator, SnapshotLog};

/// Median of the samples (in place).
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Times `body` K times and returns the median wall time in seconds.
fn timed<K: FnMut()>(repeats: usize, mut body: K) -> f64 {
    let mut samples: Vec<f64> = (0..repeats.max(1))
        .map(|_| {
            let t0 = Instant::now();
            body();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    median(&mut samples)
}

struct QueueBench {
    name: &'static str,
    pending: usize,
    ops: usize,
    median_ns_per_op: f64,
}

impl QueueBench {
    fn ops_per_sec(&self) -> f64 {
        1e9 / self.median_ns_per_op
    }
}

/// Prefills a simulator with `pending` events spread over the next second.
fn prefill(pending: usize, rng: &mut SimRng) -> Simulator<u64> {
    let mut sim = Simulator::new();
    for i in 0..pending {
        sim.schedule_in(
            SimDuration::from_micros(rng.uniform_range(1, 1_000_000)),
            i as u64,
        );
    }
    sim
}

/// schedule+step churn: queue size stays at `pending`, every op is one
/// queue insert and one pop at that size.
///
/// The prefill (arena + bucket growth) happens *outside* the timed region:
/// ns/op measures steady-state churn at the given backlog, not one-time
/// allocation. Repeats continue on the same simulator — the queue is in
/// steady state throughout, so every repeat measures the same regime.
fn bench_schedule_step(pending: usize, ops: usize, repeats: usize) -> QueueBench {
    let mut rng = SimRng::seed(0x5EED_0001);
    let mut sim = prefill(pending, &mut rng);
    let mut item = 0u64;
    let secs = timed(repeats, || {
        for _ in 0..ops {
            sim.schedule_in(
                SimDuration::from_micros(rng.uniform_range(1, 1_000_000)),
                item,
            );
            item += 1;
            std::hint::black_box(sim.step());
        }
        assert_eq!(sim.pending(), pending);
    });
    QueueBench {
        name: "schedule_step",
        pending,
        ops,
        median_ns_per_op: secs * 1e9 / ops as f64,
    }
}

/// schedule+cancel churn: every op schedules a fresh event and cancels the
/// oldest outstanding one (almost never the head), then steps once per 8
/// ops so tombstones also get reaped at pop. With an O(n) cancel this
/// bench blows up ~100x between 1k and 100k pending; with tombstones that
/// are never compacted it still degrades as buckets silt up.
fn bench_schedule_cancel(pending: usize, ops: usize, repeats: usize) -> QueueBench {
    let mut rng = SimRng::seed(0x5EED_0002);
    let mut sim = Simulator::new();
    let mut ids = std::collections::VecDeque::with_capacity(pending);
    for i in 0..pending {
        ids.push_back(sim.schedule_in(
            SimDuration::from_micros(rng.uniform_range(1, 1_000_000)),
            i as u64,
        ));
    }
    let mut item = 0u64;
    let mut step_gate = 0u64;
    let secs = timed(repeats, || {
        for _ in 0..ops {
            ids.push_back(sim.schedule_in(
                SimDuration::from_micros(rng.uniform_range(1, 1_000_000)),
                item,
            ));
            item += 1;
            let victim = ids.pop_front().expect("queue nonempty");
            std::hint::black_box(sim.cancel(victim));
            if step_gate.is_multiple_of(8) {
                if let Some(popped) = sim.step() {
                    std::hint::black_box(popped);
                }
            }
            step_gate += 1;
        }
    });
    QueueBench {
        name: "schedule_cancel",
        pending,
        ops,
        median_ns_per_op: secs * 1e9 / ops as f64,
    }
}

/// One warm fig11 row: baseline + SpecFaaS at Low/Medium/High for one app.
/// Pool sizing is computed once, outside the timed region, mirroring the
/// fig11 binary's hoisted sizing stage.
fn fig11_row_secs(quick: bool, repeats: usize) -> f64 {
    let bundle = specfaas_apps::faaschain::apps().remove(0); // Login
    let single = baseline_single_ms(&bundle, ExperimentParams::default().seed, 3);
    timed(repeats, || {
        for rps in [100.0, 250.0, 500.0] {
            let mut p = ExperimentParams::default().at_rps(rps);
            if quick {
                p.duration = SimDuration::from_millis(800);
                p.warmup = SimDuration::from_millis(100);
                p.train_requests = 60;
            }
            let base = measure_baseline_concurrent_sized(&bundle, p, single);
            let spec = measure_spec_concurrent_sized(&bundle, SpecConfig::full(), p, single);
            std::hint::black_box(base.mean_response_ms() / spec.mean_response_ms());
        }
    })
}

/// Times a fixed 8-cell grid under the executor at the given job count.
/// `singles[i]` is the precomputed pool-sizing value for cell `i` — sizing
/// is identical per (bundle, seed), so measuring it inside every cell at
/// every job count would only add constant per-cell setup noise.
fn sweep_secs(jobs: usize, quick: bool, repeats: usize, singles: &[f64]) -> f64 {
    let bundle = specfaas_apps::faaschain::apps().remove(0);
    timed(repeats, || {
        let cells: Vec<ExperimentCell<f64>> = (0..8u64)
            .map(|i| {
                let bundle = &bundle;
                let single = singles[i as usize];
                ExperimentCell::new(format!("sweep/{i}"), move || {
                    let mut p = ExperimentParams::default().at_rps(100.0 + 50.0 * i as f64);
                    p.seed ^= i;
                    p.duration = SimDuration::from_millis(if quick { 400 } else { 1_500 });
                    p.warmup = SimDuration::from_millis(100);
                    p.train_requests = if quick { 40 } else { 100 };
                    measure_spec_concurrent_sized(bundle, SpecConfig::full(), p, single)
                        .mean_response_ms()
                })
            })
            .collect();
        std::hint::black_box(executor::run_cells(jobs, cells));
    })
}

/// Instrumented-run overhead: times `requests` closed-loop requests on a
/// trained SpecFaaS engine twice — once plain, once with the streaming
/// observability instruments armed (recording [`MetricsRegistry`] +
/// 250 ms windowed [`SnapshotLog`]). Engine prep (prewarm + training) is
/// hoisted outside both timed regions; repeats continue the same closed
/// loop, so both arms measure steady-state request processing and the
/// ratio isolates what the instruments add per event. Returns
/// `(requests, plain_secs, instrumented_secs)`.
fn instrumented_overhead(quick: bool, repeats: usize) -> (u64, f64, f64) {
    let bundle = specfaas_apps::faaschain::apps().remove(0); // Login
    let requests: u64 = if quick { 200 } else { 1_000 };
    let seed = ExperimentParams::default().seed;

    let mut plain = prepared_spec(&bundle, SpecConfig::full(), seed, 120);
    let gen = bundle.make_input.clone();
    let plain_secs = timed(repeats, || {
        let gen = gen.clone();
        std::hint::black_box(plain.run_closed(requests, move |r| gen(r)));
    });

    let mut inst = prepared_spec(&bundle, SpecConfig::full(), seed, 120);
    inst.set_registry(MetricsRegistry::recording());
    inst.set_snapshots(SnapshotLog::new(SimDuration::from_millis(250)));
    let gen = bundle.make_input.clone();
    let inst_secs = timed(repeats, || {
        let gen = gen.clone();
        std::hint::black_box(inst.run_closed(requests, move |r| gen(r)));
    });

    (requests, plain_secs, inst_secs)
}

/// Minimal JSON string escape (labels here are plain ASCII anyway).
fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let quick = executor::has_flag("--quick");
    // Event-queue section only — for iterating on the queue itself.
    let queue_only = executor::has_flag("--queue-only");
    let out = executor::arg_value("out");
    let guard = executor::arg_value("guard");
    // The event-queue microbench is single-threaded by nature; --jobs is
    // accepted (run_all forwards it) and applies to the sweep section.
    let _ = executor::jobs_from_args();

    let repeats = if quick { 3 } else { 5 };
    let (small_ops, big_ops) = if quick {
        (50_000, 50_000)
    } else {
        (400_000, 400_000)
    };

    // Probe the host before any timed section so the measurement noise of
    // the probe itself cannot land inside a benchmark window.
    let host_par = executor::host_parallelism();
    let measured_par = executor::measured_parallelism(2);

    println!("== Wall-clock: event-queue throughput ==\n");
    let queue_benches = vec![
        bench_schedule_step(1_000, small_ops, repeats),
        bench_schedule_step(100_000, big_ops, repeats),
        bench_schedule_cancel(1_000, small_ops, repeats),
        bench_schedule_cancel(100_000, big_ops, repeats),
    ];
    let mut t = Table::new(["Bench", "Pending", "ns/op", "Mops/s"]);
    for b in &queue_benches {
        t.row([
            b.name.to_string(),
            b.pending.to_string(),
            f1(b.median_ns_per_op),
            format!("{:.2}", b.ops_per_sec() / 1e6),
        ]);
    }
    println!("{}", t.render());
    let step_ratio = queue_benches[1].median_ns_per_op / queue_benches[0].median_ns_per_op;
    let cancel_ratio = queue_benches[3].median_ns_per_op / queue_benches[2].median_ns_per_op;
    println!(
        "schedule_step ns/op ratio 100k/1k pending: {:.2}x (guard limit {}x)",
        step_ratio,
        wallclock_guard::FLATNESS_LIMIT
    );
    println!(
        "cancel ns/op ratio 100k/1k pending: {:.2}x (O(n) cancel would be ~100x)\n",
        cancel_ratio
    );
    if queue_only {
        return;
    }

    println!("== Wall-clock: one fig11 warm row (Login, 3 loads) ==\n");
    let row_repeats = if quick { 1 } else { 3 };
    let row_secs = fig11_row_secs(quick, row_repeats);
    println!("median of {row_repeats}: {:.2} s\n", row_secs);

    println!("== Wall-clock: executor sweep (8 cells) ==\n");
    // Sizing for the 8 sweep cells, hoisted out of all timed regions.
    let base_seed = ExperimentParams::default().seed;
    let sweep_bundle = specfaas_apps::faaschain::apps().remove(0);
    let singles: Vec<f64> = (0..8u64)
        .map(|i| baseline_single_ms(&sweep_bundle, base_seed ^ i, 3))
        .collect();
    let sweep_jobs = [1usize, 2, 4];
    let sweep: Vec<(usize, f64)> = sweep_jobs
        .iter()
        .map(|&j| (j, sweep_secs(j, quick, row_repeats, &singles)))
        .collect();
    let mut t = Table::new(["Jobs", "Median(s)", "Speedup"]);
    for (j, s) in &sweep {
        t.row([
            j.to_string(),
            format!("{s:.2}"),
            format!("{:.2}x", sweep[0].1 / s),
        ]);
    }
    println!("{}", t.render());
    println!("(host parallelism: {host_par}, measured 2-worker speedup: {measured_par:.2}x)");

    println!("\n== Wall-clock: instrumented-run overhead (Login) ==\n");
    let (ov_requests, ov_plain, ov_inst) = instrumented_overhead(quick, row_repeats);
    let overhead_ratio = ov_inst / ov_plain;
    println!(
        "{ov_requests} requests: plain {:.3} s, instrumented {:.3} s, ratio {:.3}x (guard limit {}x)",
        ov_plain,
        ov_inst,
        overhead_ratio,
        wallclock_guard::INSTRUMENTED_OVERHEAD_LIMIT
    );

    // Machine-readable artifact.
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"schema\": \"specfaas-bench/wallclock/v2\",\n");
    j.push_str(&format!("  \"quick\": {quick},\n"));
    j.push_str(&format!("  \"host_parallelism\": {host_par},\n"));
    j.push_str(&format!("  \"measured_parallelism\": {measured_par:.3},\n"));
    j.push_str(&format!("  \"repeats\": {repeats},\n"));
    j.push_str("  \"event_queue\": [\n");
    for (i, b) in queue_benches.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"bench\": \"{}\", \"pending\": {}, \"ops\": {}, \"median_ns_per_op\": {:.2}, \"ops_per_sec\": {:.0}}}{}\n",
            esc(b.name),
            b.pending,
            b.ops,
            b.median_ns_per_op,
            b.ops_per_sec(),
            if i + 1 < queue_benches.len() { "," } else { "" }
        ));
    }
    j.push_str("  ],\n");
    j.push_str(&format!(
        "  \"step_ns_ratio_100k_over_1k\": {:.3},\n",
        step_ratio
    ));
    j.push_str(&format!(
        "  \"cancel_ns_ratio_100k_over_1k\": {:.3},\n",
        cancel_ratio
    ));
    j.push_str(&format!(
        "  \"fig11_row\": {{\"app\": \"Login\", \"loads_rps\": [100, 250, 500], \"repeats\": {row_repeats}, \"median_secs\": {:.3}}},\n",
        row_secs
    ));
    j.push_str("  \"jobs_sweep\": [\n");
    for (i, (jobs, secs)) in sweep.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"jobs\": {jobs}, \"cells\": 8, \"median_secs\": {:.3}, \"speedup\": {:.3}}}{}\n",
            secs,
            sweep[0].1 / secs,
            if i + 1 < sweep.len() { "," } else { "" }
        ));
    }
    j.push_str("  ],\n");
    j.push_str(&format!(
        "  \"instrumented_overhead\": {{\"app\": \"Login\", \"requests\": {ov_requests}, \
         \"repeats\": {row_repeats}, \"plain_secs\": {:.4}, \"instrumented_secs\": {:.4}, \
         \"overhead_ratio\": {:.4}}}\n",
        ov_plain, ov_inst, overhead_ratio
    ));
    j.push_str("}\n");

    match (out, quick) {
        (Some(path), _) => {
            std::fs::write(&path, &j).expect("write wallclock json");
            println!("\nwrote {path}");
        }
        (None, false) => {
            std::fs::write("BENCH_wallclock.json", &j).expect("write wallclock json");
            println!("\nwrote BENCH_wallclock.json");
        }
        (None, true) => {}
    }

    // Regression guard: compare this run against the committed blessing.
    if let Some(path) = guard {
        let committed_json = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read committed artifact {path}: {e}"));
        let committed = wallclock_guard::parse_artifact(&committed_json)
            .unwrap_or_else(|e| panic!("parse committed artifact {path}: {e}"));
        let current = wallclock_guard::parse_artifact(&j).expect("parse current artifact");
        let violations = wallclock_guard::check(&current, &committed);
        if violations.is_empty() {
            println!("\nguard vs {path}: PASS");
        } else {
            eprintln!("\nguard vs {path}: FAIL");
            for v in &violations {
                eprintln!("  - {v}");
            }
            std::process::exit(1);
        }
    }
}
