//! Ablation studies for the design decisions called out in DESIGN.md
//! (D1–D5) — beyond the paper's own figures:
//!
//! * **D1** path-history vs pathless branch prediction accuracy,
//! * **D2** stall-list squash minimization on/off,
//! * **D4** memoization-table capacity sweep (hit rate + speedup),
//! * **D5** the pure-function skip the paper implements but leaves off,
//! * speculation-depth sweep (the §VI throttling knob).
//!
//! `--jobs N` runs each sweep's points on N worker threads; output is
//! byte-identical to serial. Cells return raw measurements; ratios
//! (speedups against the section's baseline) are computed at render time
//! so the baseline is measured exactly once per section.

use specfaas_bench::executor::{self, ExperimentCell};
use specfaas_bench::report::{f1, f2, pct, speedup, Table};
use specfaas_bench::runner::{closed_mean_ms, mean_record_ms, prepared_baseline, prepared_spec};
use specfaas_core::SpecConfig;

fn single_spec_ms(bundle: &specfaas_apps::AppBundle, cfg: SpecConfig, n: u64) -> f64 {
    let mut e = prepared_spec(bundle, cfg, 0xAB1A, 300);
    let gen = bundle.make_input.clone();
    closed_mean_ms(&mut e, n, move |r| gen(r))
}

fn single_base_ms(bundle: &specfaas_apps::AppBundle, n: u64) -> f64 {
    let mut e = prepared_baseline(bundle, 0xAB1A);
    let gen = bundle.make_input.clone();
    closed_mean_ms(&mut e, n, move |r| gen(r))
}

/// Mean response of a fresh run under `cfg`, plus a probe read from the
/// trained engine (memo hit rate, predictor hit rate, …).
fn spec_run_with<P>(
    bundle: &specfaas_apps::AppBundle,
    cfg: SpecConfig,
    n: u64,
    probe: P,
) -> (f64, f64)
where
    P: FnOnce(&specfaas_core::SpecEngine, &specfaas_platform::RunMetrics) -> f64,
{
    let mut e = prepared_spec(bundle, cfg, 0xAB1A, 300);
    let gen = bundle.make_input.clone();
    let m = e.run_closed(n, move |r| gen(r));
    let mean = mean_record_ms(&m, 0);
    let probed = probe(&e, &m);
    (mean, probed)
}

fn d4_memo_capacity(jobs: usize) {
    println!("== D4: memoization-table capacity sweep (TcktApp) ==\n");
    let bundle = specfaas_apps::trainticket::ticket_app();
    let caps = [2usize, 5, 10, 25, 50, 200];

    let mut cells: Vec<ExperimentCell<(f64, f64)>> = Vec::new();
    cells.push(ExperimentCell::new("d4/base", || {
        (
            single_base_ms(&specfaas_apps::trainticket::ticket_app(), 100),
            0.0,
        )
    }));
    for cap in caps {
        let bundle = &bundle;
        cells.push(ExperimentCell::new(format!("d4/cap{cap}"), move || {
            let mut cfg = SpecConfig::full();
            cfg.memo_capacity = cap;
            spec_run_with(bundle, cfg, 100, |e, _| e.memos().hit_rate().rate())
        }));
    }
    let mut results = executor::run_cells(jobs, cells).into_iter();
    let (base, _) = results.next().expect("base cell");

    let mut t = Table::new(["Capacity", "MemoHitRate", "MeanResp(ms)", "Speedup"]);
    for cap in caps {
        let (mean, hit) = results.next().expect("cap cell");
        t.row([cap.to_string(), pct(hit), f1(mean), speedup(base / mean)]);
    }
    println!("{}", t.render());
    println!("Paper reference: a 50-entry table reaches ~96% hits on TrainTicket.\n");
}

fn d2_stall_list(jobs: usize) {
    println!("== D2: stall-list squash minimization (HotelBooking) ==\n");
    let bundle = specfaas_apps::faaschain::hotel_booking();

    let mut cells: Vec<ExperimentCell<(f64, f64, f64)>> = Vec::new();
    for on in [false, true] {
        let bundle = &bundle;
        cells.push(ExperimentCell::new(format!("d2/stall-{on}"), move || {
            let mut cfg = SpecConfig::full();
            cfg.stall_optimization = on;
            cfg.stall_after_squashes = 1;
            let mut e = prepared_spec(bundle, cfg, 0xAB1A, 300);
            let gen = bundle.make_input.clone();
            let m = e.run_closed(100, move |r| gen(r));
            let mean = mean_record_ms(&m, 0);
            (
                m.functions_squashed as f64,
                e.stall_list().stalls_avoided() as f64,
                mean,
            )
        }));
    }
    let results = executor::run_cells(jobs, cells);

    let mut t = Table::new(["StallOpt", "Squashes/100req", "StallsTaken", "MeanResp(ms)"]);
    for (on, (squashes, stalls, mean)) in [false, true].into_iter().zip(results) {
        t.row([
            if on { "on" } else { "off" }.to_string(),
            (squashes as u64).to_string(),
            (stalls as u64).to_string(),
            f1(mean),
        ]);
    }
    println!("{}", t.render());
}

fn d5_pure_skip(jobs: usize) {
    println!("== D5: pure-function skip (TrainTicket suite extension) ==\n");
    let bundles = specfaas_apps::trainticket::apps();

    let mut cells: Vec<ExperimentCell<(f64, f64)>> = Vec::new();
    for bundle in &bundles {
        cells.push(ExperimentCell::new(
            format!("d5/{}", bundle.name()),
            move || {
                let off = single_spec_ms(bundle, SpecConfig::full(), 60);
                let mut cfg = SpecConfig::full();
                cfg.pure_function_skip = true;
                let on = single_spec_ms(bundle, cfg, 60);
                (off, on)
            },
        ));
    }
    let results = executor::run_cells(jobs, cells);

    let mut t = Table::new(["App", "SkipOff(ms)", "SkipOn(ms)", "Gain"]);
    for (bundle, (off, on)) in bundles.iter().zip(results) {
        t.row([
            bundle.name().to_string(),
            f1(off),
            f1(on),
            speedup(off / on),
        ]);
    }
    println!("{}", t.render());
    println!("The paper measures >57.6% pure invocations but conservatively");
    println!("disables the skip in its evaluation (§VIII-B); this is the upside.\n");
}

fn depth_sweep(jobs: usize) {
    println!("== Speculation depth sweep (AliBanking, §VI throttling knob) ==\n");
    let bundles = specfaas_apps::alibaba::apps();
    let bundle = &bundles[1];
    let depths = [1usize, 2, 4, 8, 12, 24];

    let mut cells: Vec<ExperimentCell<f64>> = Vec::new();
    cells.push(ExperimentCell::new("depth/base", move || {
        single_base_ms(bundle, 60)
    }));
    for depth in depths {
        cells.push(ExperimentCell::new(format!("depth/{depth}"), move || {
            let mut cfg = SpecConfig::full();
            cfg.max_depth = depth;
            cfg.throttled_depth = depth.min(4);
            single_spec_ms(bundle, cfg, 60)
        }));
    }
    let mut results = executor::run_cells(jobs, cells).into_iter();
    let base = results.next().expect("base cell");

    let mut t = Table::new(["MaxDepth", "MeanResp(ms)", "Speedup"]);
    for depth in depths {
        let mean = results.next().expect("depth cell");
        t.row([depth.to_string(), f1(mean), speedup(base / mean)]);
    }
    println!("{}", t.render());
    println!("Depth 12 matches the paper's Data Buffer budget (≤12 columns).\n");
}

fn d1_path_history(jobs: usize) {
    println!("== D1: branch-confidence window sweep (SmartHome) ==\n");
    // The no-speculate window around 50% (§VI): too wide never
    // speculates marginal branches; too narrow mispredicts more.
    let bundle = specfaas_apps::faaschain::smart_home();
    let windows = [0.0f64, 0.05, 0.10, 0.25, 0.40];

    let mut cells: Vec<ExperimentCell<(f64, f64)>> = Vec::new();
    cells.push(ExperimentCell::new("d1/base", || {
        (
            single_base_ms(&specfaas_apps::faaschain::smart_home(), 100),
            0.0,
        )
    }));
    for window in windows {
        let bundle = &bundle;
        cells.push(ExperimentCell::new(format!("d1/w{window}"), move || {
            let mut cfg = SpecConfig::full();
            cfg.branch_confidence_window = window;
            spec_run_with(bundle, cfg, 100, |e, _| e.predictor().hit_rate().rate())
        }));
    }
    let mut results = executor::run_cells(jobs, cells).into_iter();
    let (base, _) = results.next().expect("base cell");

    let mut t = Table::new(["Window", "BranchHitRate", "MeanResp(ms)", "Speedup"]);
    for window in windows {
        let (mean, hit) = results.next().expect("window cell");
        t.row([f2(window), pct(hit), f1(mean), speedup(base / mean)]);
    }
    println!("{}", t.render());
}

fn main() {
    let jobs = executor::jobs_from_args();
    d4_memo_capacity(jobs);
    d2_stall_list(jobs);
    d5_pure_skip(jobs);
    depth_sweep(jobs);
    d1_path_history(jobs);
}
