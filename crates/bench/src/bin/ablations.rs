//! Ablation studies for the design decisions called out in DESIGN.md
//! (D1–D5) — beyond the paper's own figures:
//!
//! * **D1** path-history vs pathless branch prediction accuracy,
//! * **D2** stall-list squash minimization on/off,
//! * **D4** memoization-table capacity sweep (hit rate + speedup),
//! * **D5** the pure-function skip the paper implements but leaves off,
//! * speculation-depth sweep (the §VI throttling knob).

use std::sync::Arc;

use specfaas_bench::report::{f1, f2, pct, speedup, Table};
use specfaas_bench::runner::{prepared_spec, ExperimentParams};
use specfaas_core::SpecConfig;
use specfaas_platform::BaselineEngine;
use specfaas_sim::SimRng;

fn single_spec_ms(bundle: &specfaas_apps::AppBundle, cfg: SpecConfig, n: u64) -> f64 {
    let mut e = prepared_spec(bundle, cfg, 0xAB1A, 300);
    let gen = bundle.make_input.clone();
    let m = e.run_closed(n, move |r| gen(r));
    m.records
        .iter()
        .map(|r| r.response_time().as_millis_f64())
        .sum::<f64>()
        / m.records.len().max(1) as f64
}

fn single_base_ms(bundle: &specfaas_apps::AppBundle, n: u64) -> f64 {
    let mut e = BaselineEngine::new(Arc::clone(&bundle.app), 0xAB1A);
    e.prewarm();
    let mut rng = SimRng::seed(0xAB1A ^ 0x5eed);
    (bundle.seed)(&mut e.kv, &mut rng);
    let gen = bundle.make_input.clone();
    let m = e.run_closed(n, move |r| gen(r));
    m.records
        .iter()
        .map(|r| r.response_time().as_millis_f64())
        .sum::<f64>()
        / m.records.len().max(1) as f64
}

fn d4_memo_capacity() {
    println!("== D4: memoization-table capacity sweep (TcktApp) ==\n");
    let bundle = specfaas_apps::trainticket::ticket_app();
    let base = single_base_ms(&bundle, 100);
    let mut t = Table::new(["Capacity", "MemoHitRate", "MeanResp(ms)", "Speedup"]);
    for cap in [2usize, 5, 10, 25, 50, 200] {
        let mut cfg = SpecConfig::full();
        cfg.memo_capacity = cap;
        let mut e = prepared_spec(&bundle, cfg, 0xAB1A, 300);
        let gen = bundle.make_input.clone();
        let m = e.run_closed(100, move |r| gen(r));
        let mean = m
            .records
            .iter()
            .map(|r| r.response_time().as_millis_f64())
            .sum::<f64>()
            / m.records.len().max(1) as f64;
        t.row([
            cap.to_string(),
            pct(e.memos().hit_rate().rate()),
            f1(mean),
            speedup(base / mean),
        ]);
    }
    println!("{}", t.render());
    println!("Paper reference: a 50-entry table reaches ~96% hits on TrainTicket.\n");
}

fn d2_stall_list() {
    println!("== D2: stall-list squash minimization (HotelBooking) ==\n");
    let bundle = specfaas_apps::faaschain::hotel_booking();
    let mut t = Table::new(["StallOpt", "Squashes/100req", "StallsTaken", "MeanResp(ms)"]);
    for on in [false, true] {
        let mut cfg = SpecConfig::full();
        cfg.stall_optimization = on;
        cfg.stall_after_squashes = 1;
        let mut e = prepared_spec(&bundle, cfg, 0xAB1A, 300);
        let gen = bundle.make_input.clone();
        let m = e.run_closed(100, move |r| gen(r));
        let mean = m
            .records
            .iter()
            .map(|r| r.response_time().as_millis_f64())
            .sum::<f64>()
            / m.records.len().max(1) as f64;
        t.row([
            if on { "on" } else { "off" }.to_string(),
            m.functions_squashed.to_string(),
            e.stall_list().stalls_avoided().to_string(),
            f1(mean),
        ]);
    }
    println!("{}", t.render());
}

fn d5_pure_skip() {
    println!("== D5: pure-function skip (TrainTicket suite extension) ==\n");
    let mut t = Table::new(["App", "SkipOff(ms)", "SkipOn(ms)", "Gain"]);
    for bundle in specfaas_apps::trainticket::apps() {
        let off = single_spec_ms(&bundle, SpecConfig::full(), 60);
        let mut cfg = SpecConfig::full();
        cfg.pure_function_skip = true;
        let on = single_spec_ms(&bundle, cfg, 60);
        t.row([
            bundle.name().to_string(),
            f1(off),
            f1(on),
            speedup(off / on),
        ]);
    }
    println!("{}", t.render());
    println!("The paper measures >57.6% pure invocations but conservatively");
    println!("disables the skip in its evaluation (§VIII-B); this is the upside.\n");
}

fn depth_sweep() {
    println!("== Speculation depth sweep (AliBanking, §VI throttling knob) ==\n");
    let bundle = &specfaas_apps::alibaba::apps()[1];
    let base = single_base_ms(bundle, 60);
    let mut t = Table::new(["MaxDepth", "MeanResp(ms)", "Speedup"]);
    for depth in [1usize, 2, 4, 8, 12, 24] {
        let mut cfg = SpecConfig::full();
        cfg.max_depth = depth;
        cfg.throttled_depth = depth.min(4);
        let mean = single_spec_ms(bundle, cfg, 60);
        t.row([depth.to_string(), f1(mean), speedup(base / mean)]);
    }
    println!("{}", t.render());
    println!("Depth 12 matches the paper's Data Buffer budget (≤12 columns).\n");
}

fn d1_path_history() {
    println!("== D1: branch-confidence window sweep (SmartHome) ==\n");
    // The no-speculate window around 50% (§VI): too wide never
    // speculates marginal branches; too narrow mispredicts more.
    let bundle = specfaas_apps::faaschain::smart_home();
    let base = single_base_ms(&bundle, 100);
    let mut t = Table::new(["Window", "BranchHitRate", "MeanResp(ms)", "Speedup"]);
    for window in [0.0f64, 0.05, 0.10, 0.25, 0.40] {
        let mut cfg = SpecConfig::full();
        cfg.branch_confidence_window = window;
        let mut e = prepared_spec(&bundle, cfg, 0xAB1A, 300);
        let gen = bundle.make_input.clone();
        let m = e.run_closed(100, move |r| gen(r));
        let mean = m
            .records
            .iter()
            .map(|r| r.response_time().as_millis_f64())
            .sum::<f64>()
            / m.records.len().max(1) as f64;
        t.row([
            f2(window),
            pct(e.predictor().hit_rate().rate()),
            f1(mean),
            speedup(base / mean),
        ]);
    }
    println!("{}", t.render());
}

fn main() {
    let _ = ExperimentParams::default();
    d4_memo_capacity();
    d2_stall_list();
    d5_pure_skip();
    depth_sweep();
    d1_path_history();
}
