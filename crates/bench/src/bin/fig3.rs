//! Fig. 3 — average per-function response-time breakdown under
//! cold-start conditions, per suite.
//!
//! One cold request per application (no pre-warming); each function
//! invocation's time is attributed to Container Creation, Runtime Setup,
//! Platform Overhead, Transfer Function Overhead and Function Execution.
//! The last column checks Observation 1 on a separate warmed-up run:
//! function execution as a share of warm per-function response.
//!
//! `--jobs N` runs the per-app cold/warm measurements on N worker
//! threads; output is byte-identical to serial.

use specfaas_apps::all_suites;
use specfaas_bench::executor::{self, ExperimentCell};
use specfaas_bench::report::{f1, pct, Table};
use specfaas_platform::{BaselineEngine, Breakdown};
use specfaas_sim::SimRng;

/// Per-app cell: (cold breakdowns, warm breakdowns of the last request).
fn measure_app(bundle: &specfaas_apps::AppBundle) -> (Vec<Breakdown>, Vec<Breakdown>) {
    // Cold: fresh engine, first request pays full cold start.
    let mut e = BaselineEngine::new(bundle.app.clone(), 2);
    let mut rng = SimRng::seed(11);
    (bundle.seed)(&mut e.kv, &mut rng);
    let gen = bundle.make_input.clone();
    let m = e.run_closed(1, move |r| gen(r));
    let cold = m.breakdowns.clone();

    // Warm: pre-warmed engine, measure the third request.
    let mut e = BaselineEngine::new(bundle.app.clone(), 2);
    e.prewarm();
    let mut rng = SimRng::seed(12);
    (bundle.seed)(&mut e.kv, &mut rng);
    let gen = bundle.make_input.clone();
    let m = e.run_closed(3, move |r| gen(r));
    // Keep only the last request's function breakdowns.
    let last = m.records.last().expect("completed").functions_run as usize;
    let warm = m.breakdowns[m.breakdowns.len() - last..].to_vec();
    (cold, warm)
}

fn main() {
    let jobs = executor::jobs_from_args();
    println!("== Fig. 3: cold-start response-time breakdown (per function, ms) ==\n");
    let suites = all_suites();

    let mut cells: Vec<ExperimentCell<(Vec<Breakdown>, Vec<Breakdown>)>> = Vec::new();
    for suite in &suites {
        for bundle in &suite.apps {
            cells.push(ExperimentCell::new(
                format!("fig3/{}/{}", suite.name, bundle.name()),
                move || measure_app(bundle),
            ));
        }
    }
    let results = executor::run_cells(jobs, cells);

    let mut t = Table::new([
        "Suite",
        "ContainerCreation",
        "RuntimeSetup",
        "Platform",
        "Transfer",
        "Execution",
        "Exec% (warm)",
    ]);
    let mut it = results.into_iter();
    for suite in &suites {
        let mut cold = Vec::new();
        let mut warm = Vec::new();
        for _ in &suite.apps {
            let (c, w) = it.next().expect("one result per cell");
            cold.extend_from_slice(&c);
            warm.extend_from_slice(&w);
        }
        let c = Breakdown::mean_of(&cold);
        let w = Breakdown::mean_of(&warm);
        t.row([
            suite.name.to_string(),
            f1(c.container_creation.as_millis_f64()),
            f1(c.runtime_setup.as_millis_f64()),
            f1(c.platform.as_millis_f64()),
            f1(c.transfer.as_millis_f64()),
            f1(c.execution.as_millis_f64()),
            pct(w.execution_fraction()),
        ]);
    }
    println!("{}", t.render());
    println!("Paper reference: container creation ~1500 ms dominates cold start;");
    println!("warm function execution is only 33-42% of per-function response");
    println!("(Obs. 1). Note: for implicit workflows the RPC hop between caller");
    println!("and callee is charged to the caller's execution (the caller blocks),");
    println!("so the Transfer column applies to explicit workflows.");
}
