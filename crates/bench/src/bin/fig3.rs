//! Fig. 3 — average per-function response-time breakdown under
//! cold-start conditions, per suite.
//!
//! One cold request per application (no pre-warming); each function
//! invocation's time is attributed to Container Creation, Runtime Setup,
//! Platform Overhead, Transfer Function Overhead and Function Execution.
//! The last column checks Observation 1 on a separate warmed-up run:
//! function execution as a share of warm per-function response.

use specfaas_apps::all_suites;
use specfaas_bench::report::{f1, pct, Table};
use specfaas_platform::{BaselineEngine, Breakdown};
use specfaas_sim::SimRng;

fn main() {
    println!("== Fig. 3: cold-start response-time breakdown (per function, ms) ==\n");
    let mut t = Table::new([
        "Suite",
        "ContainerCreation",
        "RuntimeSetup",
        "Platform",
        "Transfer",
        "Execution",
        "Exec% (warm)",
    ]);
    for suite in all_suites() {
        let mut cold = Vec::new();
        let mut warm = Vec::new();
        for bundle in &suite.apps {
            // Cold: fresh engine, first request pays full cold start.
            let mut e = BaselineEngine::new(bundle.app.clone(), 2);
            let mut rng = SimRng::seed(11);
            (bundle.seed)(&mut e.kv, &mut rng);
            let gen = bundle.make_input.clone();
            let m = e.run_closed(1, move |r| gen(r));
            cold.extend_from_slice(&m.breakdowns);

            // Warm: pre-warmed engine, measure the third request.
            let mut e = BaselineEngine::new(bundle.app.clone(), 2);
            e.prewarm();
            let mut rng = SimRng::seed(12);
            (bundle.seed)(&mut e.kv, &mut rng);
            let gen = bundle.make_input.clone();
            let m = e.run_closed(3, move |r| gen(r));
            // Keep only the last request's function breakdowns.
            let last = m.records.last().expect("completed").functions_run as usize;
            warm.extend_from_slice(&m.breakdowns[m.breakdowns.len() - last..]);
        }
        let c = Breakdown::mean_of(&cold);
        let w = Breakdown::mean_of(&warm);
        t.row([
            suite.name.to_string(),
            f1(c.container_creation.as_millis_f64()),
            f1(c.runtime_setup.as_millis_f64()),
            f1(c.platform.as_millis_f64()),
            f1(c.transfer.as_millis_f64()),
            f1(c.execution.as_millis_f64()),
            pct(w.execution_fraction()),
        ]);
    }
    println!("{}", t.render());
    println!("Paper reference: container creation ~1500 ms dominates cold start;");
    println!("warm function execution is only 33-42% of per-function response");
    println!("(Obs. 1). Note: for implicit workflows the RPC hop between caller");
    println!("and callee is charged to the caller's execution (the caller blocks),");
    println!("so the Transfer column applies to explicit workflows.");
}
