//! Speculation-health scoreboard over every registered suite
//! (DESIGN.md, "Streaming observability").
//!
//! ```text
//! cargo run --release --bin scoreboard -- [--suite NAME] [--engine spec|baseline]
//!     [--requests N] [--train N] [--seed N] [--jobs N]
//!     [--out PATH] [--snapshots PATH] [--window-ms N]
//! ```
//!
//! Runs every application of the selected suites (default: all of
//! `SUITE_DEFS`) through a closed loop with the streaming observability
//! instruments armed, and prints one scoreboard row per app: speculation
//! accuracy, memo hit rate, streaming p50/p99/p99.9 latency, the
//! squash-depth histogram, wasted-vs-useful core time and warm-pool
//! effectiveness — followed by the fleet-wide top-K wasted-core-time
//! functions and the merged latency distribution. Everything is computed
//! in constant memory per run (log-linear histograms + Space-Saving
//! sketches), so the same binary scales to 10⁶⁺-request runs.
//!
//! With `--out PATH` the rows are written as JSONL; with
//! `--snapshots PATH` the windowed registry snapshots of every run are
//! written as JSONL (one stream, each line tagged with its app). Cells
//! fan out over `--jobs` worker threads; output is byte-identical at any
//! job count.

use specfaas_apps::{all_suites, suite_named, Suite};
use specfaas_bench::executor::{default_jobs, run_cells, ExperimentCell};
use specfaas_bench::runner::{prepared_baseline, prepared_spec, scoreboard_closed};
use specfaas_core::SpecConfig;
use specfaas_platform::scoreboard::{render_table, ScoreboardRow};
use specfaas_sim::{LogHistogram, SimDuration, SpaceSaving};

struct Args {
    suite: Option<String>,
    engine: String,
    requests: u64,
    train: u64,
    seed: u64,
    jobs: usize,
    out: Option<String>,
    snapshots: Option<String>,
    window_ms: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: scoreboard [--suite NAME] [--engine spec|baseline] [--requests N] \
         [--train N] [--seed N] [--jobs N] [--out PATH] [--snapshots PATH] [--window-ms N]"
    );
    std::process::exit(2);
}

fn usage_missing(flag: &str) -> ! {
    eprintln!("missing value for {flag}");
    usage();
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("bad numeric argument: {s}");
        usage();
    })
}

fn parse_args() -> Args {
    let mut args = Args {
        suite: None,
        engine: "spec".to_string(),
        requests: 60,
        train: 120,
        seed: 0x5c0e,
        jobs: default_jobs(),
        out: None,
        snapshots: None,
        window_ms: 250,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |flag: &str| it.next().unwrap_or_else(|| usage_missing(flag));
        match flag.as_str() {
            "--suite" => args.suite = Some(val("--suite")),
            "--engine" => args.engine = val("--engine"),
            "--requests" => args.requests = parse(&val("--requests")),
            "--train" => args.train = parse(&val("--train")),
            "--seed" => args.seed = parse(&val("--seed")),
            "--jobs" => args.jobs = parse(&val("--jobs")),
            "--out" => args.out = Some(val("--out")),
            "--snapshots" => args.snapshots = Some(val("--snapshots")),
            "--window-ms" => args.window_ms = parse(&val("--window-ms")),
            _ => usage(),
        }
    }
    if args.engine != "spec" && args.engine != "baseline" {
        usage();
    }
    args
}

/// One cell's result: the scoreboard row, the run's latency histogram
/// (for the fleet-wide merge) and the app-tagged snapshot lines.
struct CellResult {
    row: ScoreboardRow,
    latency: LogHistogram,
    snapshot_lines: Vec<String>,
}

fn main() {
    let args = parse_args();
    let suites: Vec<Suite> = match &args.suite {
        Some(name) => vec![suite_named(name)],
        None => all_suites(),
    };
    let window = SimDuration::from_millis(args.window_ms);
    let spec_engine = args.engine == "spec";

    let mut cells = Vec::new();
    for suite in &suites {
        for bundle in &suite.apps {
            let bundle = bundle.clone();
            let (requests, train, seed) = (args.requests, args.train, args.seed);
            cells.push(ExperimentCell::new(bundle.app.name.clone(), move || {
                let gen = bundle.make_input.clone();
                let (row, log, m) = if spec_engine {
                    let mut e = prepared_spec(&bundle, SpecConfig::full(), seed, train);
                    scoreboard_closed(&mut e, "spec", requests, window, move |r| gen(r))
                } else {
                    let mut e = prepared_baseline(&bundle, seed);
                    scoreboard_closed(&mut e, "baseline", requests, window, move |r| gen(r))
                };
                // Tag each snapshot line with its app so one merged JSONL
                // stream stays attributable.
                let snapshot_lines = log
                    .lines()
                    .iter()
                    .map(|l| format!("{{\"app\": \"{}\", {}", row.app, &l[1..]))
                    .collect();
                CellResult {
                    row,
                    latency: m.latency_hist.clone(),
                    snapshot_lines,
                }
            }));
        }
    }

    let results = run_cells(args.jobs, cells);

    // Fleet-wide aggregation, in submission order so any --jobs value
    // yields byte-identical output: merged latency distribution plus a
    // cross-app Space-Saving re-fold of each run's wasted-core-time top-K.
    let mut fleet_latency = LogHistogram::new();
    let mut fleet_wasted: SpaceSaving<String> = SpaceSaving::new(16);
    for r in &results {
        fleet_latency.merge(&r.latency);
        for (key, us) in &r.row.wasted_topk {
            fleet_wasted.add_weight(key.clone(), *us);
        }
    }

    let rows: Vec<ScoreboardRow> = results.iter().map(|r| r.row.clone()).collect();
    print!("{}", render_table(&rows));

    println!("\ntop wasted-core-time functions (fleet-wide):");
    if fleet_wasted.is_empty() {
        println!("  (nothing squashed)");
    }
    for (key, entry) in fleet_wasted.top().into_iter().take(10) {
        println!(
            "  {:<40} {:>10.1} ms wasted (±{:.1})",
            key,
            entry.count as f64 / 1_000.0,
            entry.error as f64 / 1_000.0
        );
    }

    println!(
        "\nfleet latency: {} requests, p50 {:.2} ms, p99 {:.2} ms, p99.9 {:.2} ms, max {:.2} ms \
         ({} histogram buckets)",
        fleet_latency.count(),
        fleet_latency.quantile_ms(0.50),
        fleet_latency.quantile_ms(0.99),
        fleet_latency.quantile_ms(0.999),
        fleet_latency.max().unwrap_or(0) as f64 / 1_000.0,
        fleet_latency.bucket_storage(),
    );

    if let Some(path) = &args.out {
        let mut doc = String::new();
        for row in &rows {
            doc.push_str(&row.jsonl());
            doc.push('\n');
        }
        std::fs::write(path, doc).expect("write --out");
        println!("wrote scoreboard rows to {path}");
    }
    if let Some(path) = &args.snapshots {
        let mut doc = String::new();
        for r in &results {
            for l in &r.snapshot_lines {
                doc.push_str(l);
                doc.push('\n');
            }
        }
        std::fs::write(path, doc).expect("write --snapshots");
        println!("wrote windowed snapshots to {path}");
    }
}
