//! Run profiler: time-series metrics registry + post-hoc trace analytics
//! (DESIGN.md, "Observability").
//!
//! ```text
//! cargo run --release --bin profile -- [--app NAME] [--engine spec|baseline]
//!     [--requests N] [--seed N] [--faults RATE] [--prom PATH] [--csv PATH]
//! ```
//!
//! Runs one application with both the flight recorder (invariant
//! checking) and the metrics registry armed, then prints:
//!
//! * the per-request critical path aggregated by Fig. 3 phase,
//! * squash attribution (wasted core-time by charge site, reconciled
//!   exactly against the engine's Table-IV squashed-CPU ledger),
//! * the speculation-depth waterfall, and
//! * the what-if speedup bound under zero-overhead speculation.
//!
//! With `--prom PATH` the final counter/gauge state is written in
//! Prometheus text exposition format; with `--csv PATH` the full gauge
//! time series is written as CSV. Identical seeds produce byte-identical
//! files. Any invariant violation or ledger mismatch fails the process.

use specfaas_bench::analysis::{analyze, check_paths_exact, PathAggregate};
use specfaas_bench::report::{f1, f2, pct, speedup, Table};
use specfaas_bench::runner::{instrumented_closed, prepared_baseline, prepared_spec};
use specfaas_core::SpecConfig;
use specfaas_sim::timeseries::MetricsRegistry;
use specfaas_sim::trace::Phase;
use specfaas_sim::{FaultPlan, RetryPolicy, SimDuration};

struct Args {
    app: String,
    engine: String,
    requests: u64,
    seed: u64,
    faults: f64,
    prom_path: Option<String>,
    csv_path: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: profile [--app NAME] [--engine spec|baseline] [--requests N] \
         [--seed N] [--faults RATE] [--prom PATH] [--csv PATH]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        app: "HotelBooking".to_string(),
        engine: "spec".to_string(),
        requests: 200,
        seed: 0x7ace,
        faults: 0.0,
        prom_path: None,
        csv_path: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |flag: &str| it.next().unwrap_or_else(|| usage_missing(flag));
        match flag.as_str() {
            "--app" => args.app = val("--app"),
            "--engine" => args.engine = val("--engine"),
            "--requests" => args.requests = parse(&val("--requests")),
            "--seed" => args.seed = parse(&val("--seed")),
            "--faults" => args.faults = parse(&val("--faults")),
            "--prom" => args.prom_path = Some(val("--prom")),
            "--csv" => args.csv_path = Some(val("--csv")),
            _ => usage(),
        }
    }
    args
}

fn usage_missing(flag: &str) -> ! {
    eprintln!("missing value for {flag}");
    usage();
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("bad numeric argument: {s}");
        usage();
    })
}

fn find_app(name: &str) -> specfaas_apps::AppBundle {
    if let Some(bundle) = specfaas_apps::find_app(name) {
        return bundle;
    }
    eprintln!("unknown app `{name}`; available:");
    for suite in specfaas_apps::all_suites() {
        for bundle in &suite.apps {
            eprintln!("  {} ({})", bundle.app.name, suite.name);
        }
    }
    std::process::exit(2);
}

fn main() {
    let args = parse_args();
    let bundle = find_app(&args.app);
    let plan = FaultPlan::none()
        .with_container_crash(args.faults)
        .with_kv_get(args.faults / 2.0)
        .with_kv_set(args.faults / 2.0);
    let policy = RetryPolicy::default()
        .with_max_attempts(8)
        .with_timeout(SimDuration::from_secs(2));

    // One generic instrumented body; the match arms only pick the engine.
    let gen = bundle.make_input.clone();
    let (tracer, registry, metrics) = match args.engine.as_str() {
        "spec" => instrumented_closed(
            &mut prepared_spec(&bundle, SpecConfig::full(), args.seed, 300),
            plan,
            policy,
            MetricsRegistry::recording(),
            args.requests,
            move |r| gen(r),
        ),
        "baseline" => instrumented_closed(
            &mut prepared_baseline(&bundle, args.seed),
            plan,
            policy,
            MetricsRegistry::recording(),
            args.requests,
            move |r| gen(r),
        ),
        _ => usage(),
    };

    println!(
        "{} / {}: {} requests done, {} failed, {} trace events",
        bundle.app.name,
        args.engine,
        metrics.completed,
        metrics.failed,
        tracer.events().len()
    );

    if !tracer.violations().is_empty() {
        eprintln!("invariant violations:");
        for v in tracer.violations() {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }
    println!("invariants: ok");

    let a = analyze(tracer.events());

    // The decomposition is exact and the squash attribution reconciles
    // with the Table-IV ledger — both are hard errors if they drift.
    let broken = check_paths_exact(&a);
    if !broken.is_empty() {
        eprintln!("critical-path decomposition is not exact for requests {broken:?}");
        std::process::exit(1);
    }
    if a.squash.total != metrics.squashed_core_time {
        eprintln!(
            "squash attribution ({}us) does not reconcile with the engine ledger ({}us)",
            a.squash.total.as_micros(),
            metrics.squashed_core_time.as_micros()
        );
        std::process::exit(1);
    }
    println!(
        "squash ledger reconciled: {:.3} core-ms attributed across {} charge sites",
        a.squash.total.as_millis_f64(),
        a.squash.by_site.len()
    );

    let agg = PathAggregate::of(&a.requests);
    let mut t = Table::new(["Phase", "Mean ms/req", "Share"]);
    let mean_lat = agg.mean_latency_ms();
    for p in Phase::ALL {
        let m = agg.mean_phase_ms(p);
        t.row([
            p.name().to_string(),
            f2(m),
            pct(if mean_lat > 0.0 { m / mean_lat } else { 0.0 }),
        ]);
    }
    let q = agg.mean_queue_ms();
    t.row([
        "queue/other".to_string(),
        f2(q),
        pct(if mean_lat > 0.0 { q / mean_lat } else { 0.0 }),
    ]);
    t.row(["total".to_string(), f2(mean_lat), pct(1.0)]);
    println!("\nCritical path by phase ({} requests):", agg.count);
    println!("{}", t.render());

    if !a.squash.by_site.is_empty() {
        let mut t = Table::new(["Squash site", "Wasted core-ms", "Charges"]);
        for (site, amt, n) in &a.squash.by_site {
            t.row([site.clone(), f2(amt.as_millis_f64()), n.to_string()]);
        }
        println!("Squash attribution by site:");
        println!("{}", t.render());
    }

    let mut t = Table::new(["Max spec depth", "Requests"]);
    for (d, n) in &a.depth.histogram {
        t.row([d.to_string(), n.to_string()]);
    }
    println!("Speculation-depth waterfall:");
    println!("{}", t.render());

    println!(
        "what-if bound (zero-overhead speculation): {} over mean latency {} ms",
        speedup(a.what_if.speedup_bound()),
        f1(mean_lat)
    );

    if let Some(path) = args.prom_path {
        let prom = registry.export_prometheus();
        std::fs::write(&path, &prom).expect("failed to write Prometheus file");
        println!(
            "wrote {} bytes of Prometheus exposition to {path}",
            prom.len()
        );
    }
    if let Some(path) = args.csv_path {
        let csv = registry.export_csv();
        std::fs::write(&path, &csv).expect("failed to write CSV file");
        println!(
            "wrote {} bytes of gauge time-series CSV to {path}",
            csv.len()
        );
    }
}
