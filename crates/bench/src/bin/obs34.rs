//! Observations 3, 4 and 5 — global-state access patterns, blob-trace
//! write statistics, and side-effect classes.

use specfaas_apps::azure_blobs::{generate, BlobTraceConfig};
use specfaas_bench::report::{pct, Table};
use specfaas_sim::SimRng;
use specfaas_storage::blob::BlobTraceStats;
use specfaas_workflow::analysis::RegistryProfile;

fn main() {
    println!("== Observation 3/5: function side-effect profile per suite ==\n");
    let mut t = Table::new([
        "Suite",
        "NoGlobalRead",
        "NoGlobalWrite",
        "SideEffectFree",
        "Pure",
    ]);
    for suite in specfaas_apps::all_suites() {
        let mut agg = Vec::new();
        for bundle in &suite.apps {
            agg.push(RegistryProfile::of(&bundle.app.registry));
        }
        let n = agg.len() as f64;
        let mean = |f: &dyn Fn(&RegistryProfile) -> f64| agg.iter().map(f).sum::<f64>() / n;
        t.row([
            suite.name.to_string(),
            pct(mean(&|p| p.no_global_read_fraction)),
            pct(mean(&|p| p.no_global_write_fraction)),
            pct(mean(&|p| p.side_effect_free_fraction)),
            pct(mean(&|p| p.pure_fraction)),
        ]);
    }
    println!("{}", t.render());
    println!("Paper reference: 75.8% (TrainTicket) / 85.1% (FaaSChain) read no");
    println!("writable global state; 63.4% of surveyed functions have no side effects.\n");

    println!("== Observation 4: blob-access trace statistics ==\n");
    let mut rng = SimRng::seed(0xB10B);
    let trace = generate(&BlobTraceConfig::default(), &mut rng);
    let s = BlobTraceStats::compute(&trace).expect("non-empty trace");
    let mut t = Table::new(["Metric", "Measured", "Paper"]);
    t.row([
        "accesses analyzed".to_string(),
        s.accesses.to_string(),
        "40M".into(),
    ]);
    t.row([
        "write fraction".to_string(),
        pct(s.write_fraction),
        "23%".into(),
    ]);
    t.row([
        "read-only blobs".to_string(),
        pct(s.read_only_blob_fraction),
        "66.7%".into(),
    ]);
    t.row([
        "writable blobs written <10x".to_string(),
        pct(s.writable_written_lt10_fraction),
        "99.9%".into(),
    ]);
    t.row([
        "write->read gap >1s".to_string(),
        pct(s.gap_over_1s_fraction),
        "96%".into(),
    ]);
    t.row([
        "write->read gap >10s".to_string(),
        pct(s.gap_over_10s_fraction),
        "27%".into(),
    ]);
    println!("{}", t.render());
}
