//! Fig. 12 — breakdown of SpecFaaS speedups into its three mechanisms,
//! applied cumulatively: branch prediction (with the Sequence-Table fast
//! path), data memoization, and the squash optimization (process-kill
//! instead of lazy squash).

use specfaas_bench::report::{speedup, Table};
use specfaas_bench::runner::{
    measure_baseline_concurrent, measure_spec_concurrent, ExperimentParams,
};
use specfaas_core::SpecConfig;
use specfaas_platform::Load;

fn main() {
    println!("== Fig. 12: speedup breakdown (cumulative, averaged over loads) ==\n");
    let configs: [(&str, SpecConfig); 3] = [
        ("BranchPred", SpecConfig::branch_prediction_only()),
        ("+Memoization", SpecConfig::without_squash_optimization()),
        ("+SquashOpt", SpecConfig::full()),
    ];
    let mut t = Table::new(["Suite", "App", "BranchPred", "+Memoization", "+SquashOpt"]);
    for suite in specfaas_apps::all_suites() {
        let mut sums = [0.0f64; 3];
        for bundle in &suite.apps {
            let mut row = vec![suite.name.to_string(), bundle.name().to_string()];
            for (ci, (_, cfg)) in configs.iter().enumerate() {
                let mut acc = 0.0;
                for load in Load::all() {
                    let p = ExperimentParams::default().at_rps(load.rps());
                    let base = measure_baseline_concurrent(bundle, p);
                    let spec = measure_spec_concurrent(bundle, cfg.clone(), p);
                    acc += base.mean_response_ms() / spec.mean_response_ms();
                }
                let s = acc / 3.0;
                sums[ci] += s;
                row.push(speedup(s));
            }
            t.row(row);
        }
        let n = suite.apps.len() as f64;
        t.row([
            suite.name.to_string(),
            "AVERAGE".into(),
            speedup(sums[0] / n),
            speedup(sums[1] / n),
            speedup(sums[2] / n),
        ]);
    }
    println!("{}", t.render());
    println!("Note: for implicit workflows (TrainTicket/Alibaba) branch prediction");
    println!("and memoization only work together (§VIII-B), so the first column");
    println!("shows only the Sequence-Table fast path for those suites.");
    println!("Paper reference: FaaSChain 2.9x -> 3.9x -> 5.0x; TrainTicket");
    println!("3.5x -> 4.4x; Alibaba 3.5x -> 4.5x.");
}
