//! Fig. 12 — breakdown of SpecFaaS speedups into its three mechanisms,
//! applied cumulatively: branch prediction (with the Sequence-Table fast
//! path), data memoization, and the squash optimization (process-kill
//! instead of lazy squash).
//!
//! `--jobs N` runs the {app × config × load} grid on N worker threads;
//! output is byte-identical to serial.

use specfaas_bench::executor::{self, ExperimentCell};
use specfaas_bench::report::{speedup, Table};
use specfaas_bench::runner::{
    measure_baseline_concurrent, measure_spec_concurrent, ExperimentParams,
};
use specfaas_core::SpecConfig;
use specfaas_platform::Load;

fn main() {
    let jobs = executor::jobs_from_args();
    println!("== Fig. 12: speedup breakdown (cumulative, averaged over loads) ==\n");
    let configs: [(&str, SpecConfig); 3] = [
        ("BranchPred", SpecConfig::branch_prediction_only()),
        ("+Memoization", SpecConfig::without_squash_optimization()),
        ("+SquashOpt", SpecConfig::full()),
    ];
    let suites = specfaas_apps::all_suites();

    // One cell per {app × config × load}, submitted in the serial loop
    // order so the per-load speedups reassemble deterministically.
    let mut cells: Vec<ExperimentCell<f64>> = Vec::new();
    for suite in &suites {
        for bundle in &suite.apps {
            for (name, cfg) in &configs {
                for load in Load::all() {
                    let cfg = cfg.clone();
                    cells.push(ExperimentCell::new(
                        format!("fig12/{}/{}/{:?}", bundle.name(), name, load),
                        move || {
                            let p = ExperimentParams::default().at_rps(load.rps());
                            let base = measure_baseline_concurrent(bundle, p);
                            let spec = measure_spec_concurrent(bundle, cfg, p);
                            base.mean_response_ms() / spec.mean_response_ms()
                        },
                    ));
                }
            }
        }
    }
    let results = executor::run_cells(jobs, cells);

    let mut t = Table::new(["Suite", "App", "BranchPred", "+Memoization", "+SquashOpt"]);
    let mut it = results.into_iter();
    for suite in &suites {
        let mut sums = [0.0f64; 3];
        for bundle in &suite.apps {
            let mut row = vec![suite.name.to_string(), bundle.name().to_string()];
            for sum in sums.iter_mut() {
                let mut acc = 0.0;
                for _ in Load::all() {
                    acc += it.next().expect("one result per cell");
                }
                let s = acc / 3.0;
                *sum += s;
                row.push(speedup(s));
            }
            t.row(row);
        }
        let n = suite.apps.len() as f64;
        t.row([
            suite.name.to_string(),
            "AVERAGE".into(),
            speedup(sums[0] / n),
            speedup(sums[1] / n),
            speedup(sums[2] / n),
        ]);
    }
    println!("{}", t.render());
    println!("Note: for implicit workflows (TrainTicket/Alibaba) branch prediction");
    println!("and memoization only work together (§VIII-B), so the first column");
    println!("shows only the Sequence-Table fast path for those suites.");
    println!("Paper reference: FaaSChain 2.9x -> 3.9x -> 5.0x; TrainTicket");
    println!("3.5x -> 4.4x; Alibaba 3.5x -> 4.5x.");
}
