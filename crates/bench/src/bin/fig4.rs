//! Fig. 4 — CDFs of P50–P90 per-node CPU utilization across the
//! (synthetic) Alibaba cluster trace.
//!
//! Accepts `--jobs N` like every other experiment binary; the whole
//! figure is a single cell (one trace generation pass), so the flag only
//! matters when this binary runs inside `run_all`'s process pool.

use specfaas_apps::alibaba::UtilizationTrace;
use specfaas_bench::executor::{self, ExperimentCell};
use specfaas_bench::report::{f2, Table};
use specfaas_sim::stats::Cdf;
use specfaas_sim::SimRng;

fn main() {
    let jobs = executor::jobs_from_args();
    println!("== Fig. 4: P50-P90 CPU utilization CDFs (Alibaba nodes) ==\n");
    let cells = vec![ExperimentCell::new("fig4/trace", || {
        let mut rng = SimRng::seed(0xA11BABA);
        let trace = UtilizationTrace::generate(2_000, 400, &mut rng);
        [50.0, 60.0, 70.0, 80.0, 90.0]
            .iter()
            .map(|p| Cdf::from_samples(trace.node_percentiles(*p)))
            .collect::<Vec<Cdf>>()
    })];
    let cdfs = executor::run_cells(jobs, cells).remove(0);

    let mut t = Table::new(["Utilization", "P50", "P60", "P70", "P80", "P90"]);
    for step in 0..=10 {
        let u = step as f64 / 10.0;
        let mut row = vec![format!("<= {:.1}", u)];
        for cdf in &cdfs {
            row.push(f2(cdf.fraction_at(u)));
        }
        t.row(row);
    }
    println!("{}", t.render());
    println!("Paper reference: most of the time CPU usage is 60-80%, leaving");
    println!("headroom for cycles wasted on misspeculation (Obs. 6).");
}
