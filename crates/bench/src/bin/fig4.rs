//! Fig. 4 — CDFs of P50–P90 per-node CPU utilization across the
//! (synthetic) Alibaba cluster trace.

use specfaas_apps::alibaba::UtilizationTrace;
use specfaas_bench::report::{f2, Table};
use specfaas_sim::stats::Cdf;
use specfaas_sim::SimRng;

fn main() {
    println!("== Fig. 4: P50-P90 CPU utilization CDFs (Alibaba nodes) ==\n");
    let mut rng = SimRng::seed(0xA11BABA);
    let trace = UtilizationTrace::generate(2_000, 400, &mut rng);
    let mut t = Table::new(["Utilization", "P50", "P60", "P70", "P80", "P90"]);
    let cdfs: Vec<Cdf> = [50.0, 60.0, 70.0, 80.0, 90.0]
        .iter()
        .map(|p| Cdf::from_samples(trace.node_percentiles(*p)))
        .collect();
    for step in 0..=10 {
        let u = step as f64 / 10.0;
        let mut row = vec![format!("<= {:.1}", u)];
        for cdf in &cdfs {
            row.push(f2(cdf.fraction_at(u)));
        }
        t.row(row);
    }
    println!("{}", t.render());
    println!("Paper reference: most of the time CPU usage is 60-80%, leaving");
    println!("headroom for cycles wasted on misspeculation (Obs. 6).");
}
