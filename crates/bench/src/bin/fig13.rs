//! Fig. 13 — P99 tail latency of SpecFaaS normalized to the baseline,
//! per suite and load level.
//!
//! `--jobs N` runs the {suite × load × app} grid on N worker threads;
//! output is byte-identical to serial.

use specfaas_bench::executor::{self, ExperimentCell};
use specfaas_bench::report::{f2, pct, Table};
use specfaas_bench::runner::{
    measure_baseline_concurrent, measure_spec_concurrent, ExperimentParams,
};
use specfaas_core::SpecConfig;
use specfaas_platform::Load;

fn main() {
    let jobs = executor::jobs_from_args();
    println!("== Fig. 13: normalized P99 tail latency (SpecFaaS / baseline) ==\n");
    let suites = specfaas_apps::all_suites();

    // One cell per {suite × load × app}: returns that app's (baseline P99,
    // SpecFaaS P99) pair, summed per load at assembly time.
    let mut cells: Vec<ExperimentCell<(f64, f64)>> = Vec::new();
    for suite in &suites {
        for load in Load::all() {
            for bundle in &suite.apps {
                cells.push(ExperimentCell::new(
                    format!("fig13/{}/{:?}/{}", suite.name, load, bundle.name()),
                    move || {
                        let p = ExperimentParams::default().at_rps(load.rps());
                        let base = measure_baseline_concurrent(bundle, p);
                        let spec = measure_spec_concurrent(bundle, SpecConfig::full(), p);
                        (base.p99_response_ms(), spec.p99_response_ms())
                    },
                ));
            }
        }
    }
    let results = executor::run_cells(jobs, cells);

    let mut t = Table::new(["Suite", "Low", "Medium", "High", "AvgReduction"]);
    let mut all_red = Vec::new();
    let mut it = results.into_iter();
    for suite in &suites {
        let mut row = vec![suite.name.to_string()];
        let mut ratios = Vec::new();
        for _load in Load::all() {
            let mut b99 = 0.0;
            let mut s99 = 0.0;
            for _ in &suite.apps {
                let (b, s) = it.next().expect("one result per cell");
                b99 += b;
                s99 += s;
            }
            let ratio = s99 / b99;
            ratios.push(ratio);
            row.push(f2(ratio));
        }
        let avg_ratio = ratios.iter().sum::<f64>() / ratios.len() as f64;
        all_red.push(1.0 - avg_ratio);
        row.push(pct(1.0 - avg_ratio));
        t.row(row);
    }
    println!("{}", t.render());
    let overall = all_red.iter().sum::<f64>() / all_red.len() as f64;
    println!("Overall average tail-latency reduction: {}", pct(overall));
    println!("Paper reference: 62% / 56% / 58% reductions per suite; 58.7% overall.");
}
