//! Runs every experiment binary's logic in sequence — the full
//! reproduction of the paper's evaluation section in one command:
//!
//! ```text
//! cargo run --release -p specfaas-bench --bin run_all
//! ```
//!
//! (Each artifact is also available as its own binary; see the crate
//! docs.) Output is plain text, one section per table/figure.

use std::process::Command;

fn main() {
    let bins = [
        "table1",
        "fig3",
        "fig4",
        "obs2",
        "obs34",
        "fig11",
        "fig12",
        "table3",
        "fig13",
        "fig14",
        "table4",
        "ablations",
    ];
    let exe = std::env::current_exe().expect("current exe path");
    let dir = exe.parent().expect("bin dir");
    for bin in bins {
        let path = dir.join(bin);
        println!("\n################ {bin} ################\n");
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            eprintln!("{bin} exited with {status}");
            std::process::exit(1);
        }
    }
}
