//! Runs every experiment binary's logic — the full reproduction of the
//! paper's evaluation section in one command:
//!
//! ```text
//! cargo run --release -p specfaas-bench --bin run_all -- --jobs 4
//! ```
//!
//! With `--jobs N`, up to N child binaries run concurrently (and each
//! child also receives `--jobs N` for its own cell grid). Every child's
//! stdout is captured and printed in the fixed serial order, so the
//! combined report is **byte-identical** to `--jobs 1` — parallelism
//! changes only the wall-clock time.
//!
//! `--only a,b,c` restricts the run to a comma-separated subset of
//! binaries (used by CI smoke tests); `--quick` is forwarded to children
//! that support it.

use std::process::Command;

use specfaas_bench::executor::{self, ExperimentCell};

/// Binaries that understand `--quick`.
const QUICK_AWARE: &[&str] = &["fig11"];

fn main() {
    let jobs = executor::jobs_from_args();
    let quick = executor::has_flag("--quick");
    let only: Option<Vec<String>> =
        executor::arg_value("only").map(|v| v.split(',').map(|s| s.trim().to_string()).collect());

    let bins = [
        "table1",
        "fig3",
        "fig4",
        "obs2",
        "obs34",
        "fig11",
        "fig12",
        "table3",
        "fig13",
        "fig14",
        "table4",
        "ablations",
    ];
    let exe = std::env::current_exe().expect("current exe path");
    let dir = exe.parent().expect("bin dir").to_path_buf();

    let selected: Vec<&str> = bins
        .into_iter()
        .filter(|b| {
            only.as_ref()
                .map(|o| o.iter().any(|x| x == b))
                .unwrap_or(true)
        })
        .collect();
    if let Some(o) = &only {
        for name in o {
            assert!(
                bins.contains(&name.as_str()),
                "--only: unknown binary `{name}`"
            );
        }
    }

    let cells: Vec<ExperimentCell<std::process::Output>> = selected
        .iter()
        .map(|&bin| {
            let dir = dir.clone();
            ExperimentCell::new(format!("run_all/{bin}"), move || {
                let path = dir.join(bin);
                let mut cmd = Command::new(&path);
                cmd.arg("--jobs").arg(jobs.to_string());
                if quick && QUICK_AWARE.contains(&bin) {
                    cmd.arg("--quick");
                }
                cmd.output()
                    .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"))
            })
        })
        .collect();

    let outputs = executor::run_cells(jobs, cells);

    let mut failed = false;
    for (bin, out) in selected.iter().zip(outputs) {
        println!("\n################ {bin} ################\n");
        print!("{}", String::from_utf8_lossy(&out.stdout));
        eprint!("{}", String::from_utf8_lossy(&out.stderr));
        if !out.status.success() {
            eprintln!("{bin} exited with {}", out.status);
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
