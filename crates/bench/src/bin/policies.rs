//! Policy sweep: platform policies × engines (DESIGN.md, "Pluggable
//! platform policies").
//!
//! ```text
//! cargo run --release --bin policies -- [--full] [--requests N] [--train N]
//!     [--seed N] [--jobs N] [--ttl-ms N] [--policy SPEC]
//!     [--scale-tenants N] [--scale-requests N] [--out PATH]
//!     [--default-guard]
//! ```
//!
//! Sweeps the pluggable platform-policy layer — keep-alive and prewarm
//! selection — over both execution engines. For each policy the sweep
//! runs one representative application per registered suite (all apps
//! with `--full`) through a closed loop on the baseline and the
//! speculative engine, then drives one quick flow-level scale tier
//! (`--scale-tenants` tenants × `--scale-requests` requests) through the
//! multi-tenant fleet under the same policy. Reported per cell: mean
//! response, cold-start rate (per-function container counters), policy
//! evictions, and the speculation win — so the table answers "how much
//! of SpecFaaS' win survives container unloading pressure?"
//!
//! The default sweep covers four policies:
//!
//! * `default` — the paper platform: unbounded keep-alive (capped per
//!   function), no prewarm. Bit-identical to the pre-policy engines.
//! * `keepalive=ttl:<N>ms` — fixed-TTL unloading (`--ttl-ms`, default
//!   100 ms of idleness).
//! * `keepalive=none` — every container is torn down on release; the
//!   worst-case cold-start regime.
//! * `keepalive=ttl:<N>ms+prewarm=seq-table` — TTL unloading with the
//!   sequence-table prewarmer recovering chain successors.
//!
//! `--policy SPEC` replaces the list with one policy parsed from
//! `SPEC` (see `PolicyConfig::parse`; e.g.
//! `place=round-robin+keepalive=ttl:250ms+prewarm=seq-table`).
//!
//! `--default-guard` instead re-derives the two committed
//! default-policy artifacts and byte-compares them against the goldens:
//! the hotel-booking Prometheus exposition
//! (`tests/golden/hotel_booking_spec.prom`, profile-e2e recipe) and the
//! deterministic fields of the quick scale tier
//! (`tests/golden/scale_quick_default.json`). Any drift exits non-zero —
//! CI runs this to pin "default policy == legacy platform" at the byte
//! level.
//!
//! Simulation results are byte-identical at any `--jobs`.

use std::sync::Arc;

use specfaas_apps::{all_suites, AppBundle};
use specfaas_bench::executor::{self, ExperimentCell};
use specfaas_bench::report::{f2, pct, Table};
use specfaas_bench::runner::{
    instrumented_closed, mean_record_ms, prepared_baseline_with, prepared_spec_with,
};
use specfaas_core::SpecConfig;
use specfaas_platform::fleet::{ScaleConfig, ScaleEngine, ScaleStats, TemplateProfile};
use specfaas_platform::PolicyConfig;
use specfaas_sim::timeseries::MetricsRegistry;
use specfaas_sim::tracegen::TraceConfig;
use specfaas_sim::{FaultPlan, RetryPolicy, SimDuration};

/// Default sweep seed.
const SEED: u64 = 0x90c1;

/// One (policy, app, engine) closed-loop measurement.
struct AppCell {
    policy: String,
    app: String,
    speculative: bool,
    mean_ms: f64,
    cold_rate: f64,
    evictions: u64,
}

/// One (policy, engine) quick scale-tier measurement.
struct ScaleCell {
    policy: String,
    speculative: bool,
    stats: ScaleStats,
}

fn usage() -> ! {
    eprintln!(
        "usage: policies [--full] [--requests N] [--train N] [--seed N] [--jobs N] \
         [--ttl-ms N] [--policy SPEC] [--scale-tenants N] [--scale-requests N] \
         [--out PATH] [--default-guard]"
    );
    std::process::exit(2);
}

fn num<T: std::str::FromStr>(name: &str, default: T) -> T {
    match executor::arg_value(name) {
        Some(s) => s.parse().unwrap_or_else(|_| usage()),
        None => default,
    }
}

/// Runs one app under one policy on one engine and reduces the run to
/// the sweep's row metrics (mean response + container-lifecycle rates).
fn run_app_cell(
    bundle: &AppBundle,
    policy: &PolicyConfig,
    speculative: bool,
    requests: u64,
    train: u64,
    seed: u64,
) -> AppCell {
    let gen = bundle.make_input.clone();
    let (m, row) = if speculative {
        let mut e = prepared_spec_with(bundle, SpecConfig::full(), seed, train, policy);
        let m = e.run_closed(requests, move |r| gen(r));
        let row = e.scoreboard("spec", &m);
        (m, row)
    } else {
        let mut e = prepared_baseline_with(bundle, seed, policy);
        let m = e.run_closed(requests, move |r| gen(r));
        let row = e.scoreboard("baseline", &m);
        (m, row)
    };
    AppCell {
        policy: policy.label(),
        app: bundle.app.name.clone(),
        speculative,
        mean_ms: mean_record_ms(&m, 0),
        cold_rate: row.cold_rate(),
        evictions: row.evictions,
    }
}

/// Runs the quick flow-level scale tier under one policy.
fn run_scale_cell(
    policy: &PolicyConfig,
    speculative: bool,
    tenants: u32,
    requests: u64,
    seed: u64,
) -> ScaleCell {
    let templates: Vec<Arc<TemplateProfile>> = specfaas_apps::all_app_specs()
        .iter()
        .map(|a| Arc::new(TemplateProfile::from_app(a)))
        .collect();
    let trace = TraceConfig::new(tenants, requests, seed);
    let mut cfg = ScaleConfig::new(trace, speculative);
    cfg.policy = *policy;
    ScaleCell {
        policy: policy.label(),
        speculative,
        stats: ScaleEngine::new(cfg, templates).run(),
    }
}

/// Minimal JSON string escape (labels here are plain ASCII anyway).
fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

// ---------------------------------------------------------------------
// --default-guard: byte-compare the default policy against the goldens.
// ---------------------------------------------------------------------

/// The profile-e2e recipe (`tests/profile_e2e.rs`): the committed hotel
/// Prometheus golden was produced by exactly these parameters.
fn hotel_prom_default() -> String {
    const SEED: u64 = 0x7ace;
    let plan = FaultPlan::none()
        .with_container_crash(0.02)
        .with_kv_get(0.01)
        .with_kv_set(0.01)
        .with_hang(0.002);
    let retry = RetryPolicy::default()
        .with_max_attempts(8)
        .with_timeout(SimDuration::from_secs(2));
    let bundle = specfaas_apps::faaschain::hotel_booking();
    let gen = bundle.make_input.clone();
    let mut e = prepared_spec_with(
        &bundle,
        SpecConfig::full(),
        SEED,
        120,
        &PolicyConfig::default(),
    );
    let (_, registry, _) = instrumented_closed(
        &mut e,
        plan,
        retry,
        MetricsRegistry::recording(),
        80,
        move |r| gen(r),
    );
    registry.export_prometheus()
}

/// The deterministic engine fields of the scale artifact — the
/// `scale.rs` `engine_json` minus the wall-clock-dependent rates.
fn det_engine_json(prefix: &str, s: &ScaleStats) -> String {
    format!(
        "\"{prefix}_sim_secs\": {:.3}, \"{prefix}_mean_ms\": {:.3}, \
         \"{prefix}_p50_ms\": {:.3}, \"{prefix}_p99_ms\": {:.3}, \
         \"{prefix}_cold_rate\": {:.6}, \"{prefix}_wasted_frac\": {:.6}, \
         \"{prefix}_peak_live\": {}, \"{prefix}_peak_mem_bytes\": {}, \
         \"{prefix}_cores\": {}, \"{prefix}_warm_capacity\": {}",
        s.sim_span.as_secs_f64(),
        s.mean_ms(),
        s.latency.quantile_ms(0.50),
        s.latency.quantile_ms(0.99),
        s.cold_rate(),
        s.wasted_frac(),
        s.peak_live,
        s.peak_mem_bytes,
        s.cores,
        s.warm_capacity,
    )
}

/// The quick scale tier stripped to its deterministic fields — the exact
/// layout of `tests/golden/scale_quick_default.json`.
fn scale_quick_stripped(
    base: &ScaleStats,
    spec: &ScaleStats,
    tenants: u32,
    requests: u64,
) -> String {
    let seed = 0xFA5C_u64; // the scale bench's default trace seed
    format!(
        "{{\n  \"schema\": \"{}\",\n  \"seed\": {},\n  \"requests_per_tier\": {},\n  \
         \"tiers\": [\n    {{ \"tenants\": {}, \"requests\": {},\n      {},\n      {},\n      \
         \"speculation_win\": {:.4} }}\n  ]\n}}\n",
        esc("specfaas-scale-v1"),
        seed,
        requests,
        tenants,
        requests,
        det_engine_json("baseline", base),
        det_engine_json("spec", spec),
        base.mean_ms() / spec.mean_ms(),
    )
}

fn golden_path(name: &str) -> String {
    format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"))
}

/// Compares one regenerated artifact against its committed golden;
/// returns whether they are byte-identical.
fn guard_compare(label: &str, got: &str, golden: &str) -> bool {
    let want =
        std::fs::read_to_string(golden).unwrap_or_else(|e| panic!("read golden {golden}: {e}"));
    if got == want {
        println!("default-policy guard [{label}]: PASS ({golden})");
        true
    } else {
        eprintln!(
            "default-policy guard [{label}]: FAIL — regenerated output is not \
             byte-identical to {golden}"
        );
        for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
            if g != w {
                eprintln!(
                    "  first diff at line {}:\n    got:  {g}\n    want: {w}",
                    i + 1
                );
                break;
            }
        }
        if got.lines().count() != want.lines().count() {
            eprintln!(
                "  line counts differ: got {}, want {}",
                got.lines().count(),
                want.lines().count()
            );
        }
        false
    }
}

/// `--default-guard`: regenerate both committed default-policy artifacts
/// under an explicitly-attached default `PolicyConfig` and byte-compare.
fn run_default_guard(jobs: usize) -> ! {
    println!("== policies --default-guard: default policy vs committed goldens ==");
    let cells = vec![
        ExperimentCell::new("guard/hotel-prom".to_string(), || {
            GuardCell::Prom(hotel_prom_default())
        }),
        ExperimentCell::new("guard/scale-base".to_string(), || {
            GuardCell::Scale(run_scale_cell(
                &PolicyConfig::default(),
                false,
                50,
                10_000,
                0xFA5C,
            ))
        }),
        ExperimentCell::new("guard/scale-spec".to_string(), || {
            GuardCell::Scale(run_scale_cell(
                &PolicyConfig::default(),
                true,
                50,
                10_000,
                0xFA5C,
            ))
        }),
    ];
    let mut results = executor::run_cells(jobs, cells);
    let (mut prom, mut base, mut spec) = (None, None, None);
    for r in results.drain(..) {
        match r {
            GuardCell::Prom(p) => prom = Some(p),
            GuardCell::Scale(c) if !c.speculative => base = Some(c),
            GuardCell::Scale(c) => spec = Some(c),
        }
    }
    let (prom, base, spec) = (prom.unwrap(), base.unwrap(), spec.unwrap());
    let scale = scale_quick_stripped(&base.stats, &spec.stats, 50, 10_000);
    let ok_prom = guard_compare("hotel prom", &prom, &golden_path("hotel_booking_spec.prom"));
    let ok_scale = guard_compare(
        "scale quick",
        &scale,
        &golden_path("scale_quick_default.json"),
    );
    std::process::exit(if ok_prom && ok_scale { 0 } else { 1 });
}

enum GuardCell {
    Prom(String),
    Scale(ScaleCell),
}

fn main() {
    let jobs = executor::jobs_from_args();
    if executor::has_flag("--default-guard") {
        run_default_guard(jobs);
    }
    let full = executor::has_flag("--full");
    let requests: u64 = num("requests", 80);
    let train: u64 = num("train", 120);
    let seed: u64 = num("seed", SEED);
    let ttl_ms: u64 = num("ttl-ms", 100);
    let scale_tenants: u32 = num("scale-tenants", 50);
    let scale_requests: u64 = num("scale-requests", 10_000);
    let out = executor::arg_value("out");

    let ttl = SimDuration::from_millis(ttl_ms);
    let policies: Vec<PolicyConfig> = match executor::arg_value("policy") {
        Some(spec) => vec![PolicyConfig::parse(&spec).unwrap_or_else(|e| {
            eprintln!("bad --policy {spec}: {e}");
            usage();
        })],
        None => vec![
            PolicyConfig::default(),
            PolicyConfig::fixed_ttl(ttl),
            PolicyConfig::no_keepalive(),
            PolicyConfig::ttl_with_prewarm(ttl),
        ],
    };

    // One representative app per suite (all apps with --full).
    let apps: Vec<AppBundle> = all_suites()
        .iter()
        .flat_map(|s| {
            if full {
                s.apps.clone()
            } else {
                vec![s.apps[0].clone()]
            }
        })
        .collect();

    println!("== policies: platform-policy sweep x engines ==");
    println!(
        "policies {:?}, {} apps x {requests} requests (train {train}), \
         scale tier {scale_tenants}t x {scale_requests}, seed {seed:#x}, jobs {jobs} \
         (simulation results are byte-identical at any --jobs)",
        policies.iter().map(|p| p.label()).collect::<Vec<_>>(),
        apps.len(),
    );

    // App cells: policy x app x engine, in submission order.
    let app_cells: Vec<ExperimentCell<AppCell>> = policies
        .iter()
        .flat_map(|policy| {
            let apps = &apps;
            apps.iter().flat_map(move |bundle| {
                [false, true].into_iter().map(move |speculative| {
                    let (policy, bundle) = (*policy, bundle.clone());
                    let label = format!(
                        "{}/{}/{}",
                        policy.label(),
                        bundle.app.name,
                        if speculative { "spec" } else { "base" }
                    );
                    ExperimentCell::new(label, move || {
                        run_app_cell(&bundle, &policy, speculative, requests, train, seed)
                    })
                })
            })
        })
        .collect();
    let app_results = executor::run_cells(jobs, app_cells);

    // Scale cells: policy x engine.
    let scale_cells: Vec<ExperimentCell<ScaleCell>> = policies
        .iter()
        .flat_map(|policy| {
            [false, true].into_iter().map(move |speculative| {
                let policy = *policy;
                let label = format!(
                    "scale/{}/{}",
                    policy.label(),
                    if speculative { "spec" } else { "base" }
                );
                ExperimentCell::new(label, move || {
                    run_scale_cell(&policy, speculative, scale_tenants, scale_requests, 0xFA5C)
                })
            })
        })
        .collect();
    let scale_results = executor::run_cells(jobs, scale_cells);

    // Per-app table: baseline/spec pairs ride adjacent in submission
    // order, so chunk and join.
    let mut table = Table::new([
        "policy",
        "app",
        "base ms",
        "spec ms",
        "win",
        "base cold %",
        "spec cold %",
        "evictions b/s",
    ]);
    let mut json_rows = Vec::new();
    for pair in app_results.chunks(2) {
        let (b, s) = (&pair[0], &pair[1]);
        assert!(!b.speculative && s.speculative && b.app == s.app);
        let win = b.mean_ms / s.mean_ms;
        table.row([
            b.policy.clone(),
            b.app.clone(),
            f2(b.mean_ms),
            f2(s.mean_ms),
            format!("{win:.2}x"),
            pct(b.cold_rate),
            pct(s.cold_rate),
            format!("{}/{}", b.evictions, s.evictions),
        ]);
        json_rows.push(format!(
            "    {{ \"policy\": \"{}\", \"app\": \"{}\", \"baseline_mean_ms\": {:.3}, \
             \"spec_mean_ms\": {:.3}, \"speculation_win\": {:.4}, \
             \"baseline_cold_rate\": {:.6}, \"spec_cold_rate\": {:.6}, \
             \"baseline_evictions\": {}, \"spec_evictions\": {} }}",
            esc(&b.policy),
            esc(&b.app),
            b.mean_ms,
            s.mean_ms,
            win,
            b.cold_rate,
            s.cold_rate,
            b.evictions,
            s.evictions,
        ));
    }
    println!(
        "\nper-app closed loops ({requests} requests):\n\n{}",
        table.render()
    );

    let mut scale_table = Table::new([
        "policy", "engine", "mean ms", "p99 ms", "cold %", "prewarms", "win",
    ]);
    let mut scale_json = Vec::new();
    for pair in scale_results.chunks(2) {
        let (b, s) = (&pair[0], &pair[1]);
        assert!(!b.speculative && s.speculative && b.policy == s.policy);
        let win = b.stats.mean_ms() / s.stats.mean_ms();
        for r in [b, s] {
            scale_table.row([
                r.policy.clone(),
                if r.speculative { "spec" } else { "baseline" }.to_string(),
                f2(r.stats.mean_ms()),
                f2(r.stats.latency.quantile_ms(0.99)),
                pct(r.stats.cold_rate()),
                r.stats.prewarm_issued.to_string(),
                if r.speculative {
                    format!("{win:.2}x")
                } else {
                    "-".to_string()
                },
            ]);
        }
        scale_json.push(format!(
            "    {{ \"policy\": \"{}\", \"baseline_mean_ms\": {:.3}, \"spec_mean_ms\": {:.3}, \
             \"speculation_win\": {:.4}, \"baseline_cold_rate\": {:.6}, \
             \"spec_cold_rate\": {:.6}, \"spec_prewarm_issued\": {} }}",
            esc(&b.policy),
            b.stats.mean_ms(),
            s.stats.mean_ms(),
            win,
            b.stats.cold_rate(),
            s.stats.cold_rate(),
            s.stats.prewarm_issued,
        ));
    }
    println!(
        "\nflow-level scale tier ({scale_tenants} tenants x {scale_requests} requests):\n\n{}",
        scale_table.render()
    );

    if let Some(path) = out {
        let artifact = format!(
            "{{\n  \"schema\": \"{}\",\n  \"seed\": {},\n  \"requests\": {},\n  \
             \"apps\": [\n{}\n  ],\n  \"scale\": [\n{}\n  ]\n}}\n",
            esc("specfaas-policies-v1"),
            seed,
            requests,
            json_rows.join(",\n"),
            scale_json.join(",\n"),
        );
        std::fs::write(&path, artifact).expect("write policies json");
        println!("wrote {path}");
    }
}
