//! Plain-text table rendering for experiment output.

/// A simple aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{:<width$}", c, width = widths[i]));
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        // `cols` can be zero (header-less table): saturate rather than
        // underflow into a multi-gigabyte separator line.
        let total: usize = widths.iter().sum::<usize>() + 2 * cols.saturating_sub(1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            line(&mut out, r);
        }
        out
    }
}

/// Formats a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a speedup like `4.62x`.
pub fn speedup(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a fraction as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["App", "Speedup"]);
        t.row(["Login", "2.50x"]);
        t.row(["FlightBooking", "6.10x"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("App"));
        assert!(lines[2].starts_with("Login"));
        // Columns aligned: "Speedup" starts at the same offset everywhere.
        let off = lines[0].find("Speedup").unwrap();
        assert_eq!(&lines[2][off..off + 5], "2.50x");
    }

    #[test]
    fn zero_column_table_renders_without_underflow() {
        let t = Table::new(Vec::<String>::new());
        let s = t.render();
        // Header line + empty separator: no panic, no huge allocation.
        assert_eq!(s, "\n\n");

        let mut with_rows = Table::new(Vec::<String>::new());
        with_rows.row(Vec::<String>::new());
        assert_eq!(with_rows.render(), "\n\n\n");
    }

    #[test]
    fn formatters() {
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(f2(1.256), "1.26");
        assert_eq!(speedup(4.6), "4.60x");
        assert_eq!(pct(0.587), "58.7%");
    }
}
