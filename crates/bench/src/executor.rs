//! The parallel experiment executor.
//!
//! The paper's evaluation is a grid of *independent* cells — {suite × app}
//! × {baseline, SpecFaaS, ablation config} × load × seed. Each cell builds
//! its own engines from a seed, so cells share no mutable state and can
//! run on any thread without changing their results. This module gives
//! every experiment binary the same submission API:
//!
//! 1. build a `Vec<ExperimentCell<T>>` describing the grid,
//! 2. call [`run_cells`] with the `--jobs` count,
//! 3. render the returned `Vec<T>` — results come back **in submission
//!    order**, so the rendered output is byte-identical whatever the job
//!    count or scheduling interleaving.
//!
//! Parallelism lives *only* here, in the harness: each DES run stays
//! single-threaded and deterministic (see DESIGN.md). Workers pull cells
//! from a shared queue (work-stealing in the degenerate one-queue sense:
//! whichever worker is free next takes the next cell), which load-balances
//! grids whose cells differ wildly in cost — a saturated High-load cell
//! can take 10× a Low-load one.
//!
//! Dependency-free by construction: `std::thread::scope` + a mutex-guarded
//! queue + a channel. No rayon.

use std::sync::mpsc;
use std::sync::Mutex;

/// One independent unit of experiment work, producing a `T`.
///
/// The closure must be self-contained up to shared *immutable* state
/// (bundles, configs): it is run exactly once, on an arbitrary thread.
pub struct ExperimentCell<'scope, T> {
    label: String,
    run: Box<dyn FnOnce() -> T + Send + 'scope>,
}

impl<'scope, T> ExperimentCell<'scope, T> {
    /// Wraps a closure as a cell. `label` identifies the cell in panic
    /// messages and sweep reports.
    pub fn new(label: impl Into<String>, run: impl FnOnce() -> T + Send + 'scope) -> Self {
        ExperimentCell {
            label: label.into(),
            run: Box::new(run),
        }
    }

    /// The cell's label.
    pub fn label(&self) -> &str {
        &self.label
    }
}

/// Runs `cells` on `jobs` worker threads, returning results in submission
/// order.
///
/// `jobs == 1` runs everything inline on the calling thread — the exact
/// serial semantics every binary had before the executor existed. With
/// `jobs > 1`, workers repeatedly pop the next unstarted cell from a
/// shared queue; because every cell is deterministic and results are
/// reassembled by submission index, the output is identical to the serial
/// order for any `jobs`.
///
/// # Panics
/// Propagates a panic from any cell (the panicking cell's label is
/// printed to stderr first).
pub fn run_cells<T: Send>(jobs: usize, cells: Vec<ExperimentCell<'_, T>>) -> Vec<T> {
    let jobs = jobs.max(1);
    if jobs == 1 || cells.len() <= 1 {
        return cells.into_iter().map(|c| (c.run)()).collect();
    }

    let n = cells.len();
    let queue: Mutex<Vec<(usize, ExperimentCell<T>)>> =
        Mutex::new(cells.into_iter().enumerate().rev().collect());
    let (tx, rx) = mpsc::channel::<(usize, T)>();

    std::thread::scope(|s| {
        for _ in 0..jobs.min(n) {
            let tx = tx.clone();
            let queue = &queue;
            s.spawn(move || loop {
                let Some((idx, cell)) = queue.lock().unwrap().pop() else {
                    return;
                };
                let label = cell.label;
                let result = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(cell.run))
                {
                    Ok(r) => r,
                    Err(payload) => {
                        eprintln!("experiment cell `{label}` panicked");
                        std::panic::resume_unwind(payload);
                    }
                };
                if tx.send((idx, result)).is_err() {
                    return;
                }
            });
        }
        drop(tx);

        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for (idx, result) in rx {
            slots[idx] = Some(result);
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(i, r)| r.unwrap_or_else(|| panic!("cell {i} produced no result")))
            .collect()
    })
}

/// Parses `--jobs N` / `--jobs=N` from the process arguments.
///
/// Defaults to the machine's available parallelism (the executor's whole
/// point is that a many-core box should not sit idle while a serial DES
/// grid grinds). `--jobs 1` restores fully serial execution.
pub fn jobs_from_args() -> usize {
    parse_jobs(std::env::args().skip(1)).unwrap_or_else(default_jobs)
}

/// The default job count: available hardware parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Extracts the `--jobs` value from an argument list, if present.
pub fn parse_jobs(args: impl IntoIterator<Item = String>) -> Option<usize> {
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        if a == "--jobs" {
            if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                return Some(std::cmp::max(n, 1));
            }
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            if let Ok(n) = v.parse::<usize>() {
                return Some(n.max(1));
            }
        }
    }
    None
}

/// True when the given flag (e.g. `--quick`) is present in the process
/// arguments. Shared by binaries that scale themselves down for smoke
/// tests.
pub fn has_flag(flag: &str) -> bool {
    std::env::args().skip(1).any(|a| a == flag)
}

/// Value of `--<name> <value>` / `--<name>=<value>` in the process
/// arguments, if present.
pub fn arg_value(name: &str) -> Option<String> {
    let long = format!("--{name}");
    let prefix = format!("--{name}=");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == long {
            return args.next();
        }
        if let Some(v) = a.strip_prefix(&prefix) {
            return Some(v.to_string());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_submission_order() {
        // Cells deliberately finish out of order (reverse sleeps).
        let cells: Vec<ExperimentCell<usize>> = (0..16)
            .map(|i| {
                ExperimentCell::new(format!("cell{i}"), move || {
                    std::thread::sleep(std::time::Duration::from_millis((16 - i) as u64));
                    i
                })
            })
            .collect();
        let out = run_cells(4, cells);
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let build = || {
            (0..32)
                .map(|i| ExperimentCell::new(format!("c{i}"), move || i * i))
                .collect::<Vec<_>>()
        };
        assert_eq!(run_cells(1, build()), run_cells(7, build()));
    }

    #[test]
    fn every_cell_runs_exactly_once() {
        static COUNT: AtomicUsize = AtomicUsize::new(0);
        let cells: Vec<ExperimentCell<()>> = (0..100)
            .map(|i| {
                ExperimentCell::new(format!("c{i}"), || {
                    COUNT.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        run_cells(8, cells);
        assert_eq!(COUNT.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn borrows_from_the_caller_are_allowed() {
        let data = [1u64, 2, 3, 4];
        let cells: Vec<ExperimentCell<u64>> = data
            .iter()
            .map(|v| ExperimentCell::new("borrow", move || v * 10))
            .collect();
        assert_eq!(run_cells(2, cells), vec![10, 20, 30, 40]);
    }

    #[test]
    fn parse_jobs_forms() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(parse_jobs(args(&["--jobs", "4"])), Some(4));
        assert_eq!(parse_jobs(args(&["--jobs=2"])), Some(2));
        assert_eq!(parse_jobs(args(&["--jobs", "0"])), Some(1));
        assert_eq!(parse_jobs(args(&["--quick"])), None);
    }

    #[test]
    fn empty_grid_is_fine() {
        let out: Vec<u8> = run_cells(4, Vec::new());
        assert!(out.is_empty());
    }
}
