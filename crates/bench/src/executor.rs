//! The parallel experiment executor.
//!
//! The paper's evaluation is a grid of *independent* cells — {suite × app}
//! × {baseline, SpecFaaS, ablation config} × load × seed. Each cell builds
//! its own engines from a seed, so cells share no mutable state and can
//! run on any thread without changing their results. This module gives
//! every experiment binary the same submission API:
//!
//! 1. build a `Vec<ExperimentCell<T>>` describing the grid,
//! 2. call [`run_cells`] with the `--jobs` count,
//! 3. render the returned `Vec<T>` — results come back **in submission
//!    order**, so the rendered output is byte-identical whatever the job
//!    count or scheduling interleaving.
//!
//! Parallelism lives *only* here, in the harness: each DES run stays
//! single-threaded and deterministic (see DESIGN.md). Workers claim the
//! next unstarted cell by bumping one atomic counter (work-stealing in the
//! degenerate one-queue sense: whichever worker is free next takes the
//! next cell), which load-balances grids whose cells differ wildly in
//! cost — a saturated High-load cell can take 10× a Low-load one.
//!
//! Per-cell harness overhead is deliberately minimal: claiming a cell is
//! one `fetch_add`, and each result is written straight into its
//! submission-indexed slot — no shared queue mutex, no channel, no
//! per-result allocation. The worker pool is sized
//! `min(jobs, cells)`, and the *default* job count comes from the
//! host's measured parallelism ([`default_jobs`]); asking for more
//! workers than the host can run (e.g. `--jobs 4` on a single core) is
//! honored — the determinism tests rely on exercising the parallel path
//! everywhere — but cannot speed anything up, which is why
//! [`measured_parallelism`] is recorded in `BENCH_wallclock.json` next to
//! the jobs sweep it explains.
//!
//! Dependency-free by construction: `std::thread::scope` + atomics +
//! per-slot mutexes. No rayon.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One independent unit of experiment work, producing a `T`.
///
/// The closure must be self-contained up to shared *immutable* state
/// (bundles, configs): it is run exactly once, on an arbitrary thread.
pub struct ExperimentCell<'scope, T> {
    label: String,
    run: Box<dyn FnOnce() -> T + Send + 'scope>,
}

impl<'scope, T> ExperimentCell<'scope, T> {
    /// Wraps a closure as a cell. `label` identifies the cell in panic
    /// messages and sweep reports.
    pub fn new(label: impl Into<String>, run: impl FnOnce() -> T + Send + 'scope) -> Self {
        ExperimentCell {
            label: label.into(),
            run: Box::new(run),
        }
    }

    /// The cell's label.
    pub fn label(&self) -> &str {
        &self.label
    }
}

/// Runs `cells` on `jobs` worker threads, returning results in submission
/// order.
///
/// `jobs == 1` runs everything inline on the calling thread — the exact
/// serial semantics every binary had before the executor existed. With
/// `jobs > 1`, workers repeatedly pop the next unstarted cell from a
/// shared queue; because every cell is deterministic and results are
/// reassembled by submission index, the output is identical to the serial
/// order for any `jobs`.
///
/// # Panics
/// Propagates a panic from any cell (the panicking cell's label is
/// printed to stderr first).
pub fn run_cells<T: Send>(jobs: usize, cells: Vec<ExperimentCell<'_, T>>) -> Vec<T> {
    let jobs = jobs.max(1);
    if jobs == 1 || cells.len() <= 1 {
        return cells.into_iter().map(|c| (c.run)()).collect();
    }

    let n = cells.len();
    // Each cell is taken exactly once (claimed by atomic index, so the
    // per-slot locks are never contended) and its result lands in the
    // matching submission-indexed slot.
    let work: Vec<Mutex<Option<ExperimentCell<T>>>> =
        cells.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for _ in 0..jobs.min(n) {
            let (work, results, next) = (&work, &results, &next);
            s.spawn(move || loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= n {
                    return;
                }
                let cell = work[idx]
                    .lock()
                    .unwrap()
                    .take()
                    .expect("cell claimed exactly once");
                let label = cell.label;
                let result = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(cell.run))
                {
                    Ok(r) => r,
                    Err(payload) => {
                        eprintln!("experiment cell `{label}` panicked");
                        std::panic::resume_unwind(payload);
                    }
                };
                *results[idx].lock().unwrap() = Some(result);
            });
        }
    });

    results
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            r.into_inner()
                .unwrap()
                .unwrap_or_else(|| panic!("cell {i} produced no result"))
        })
        .collect()
}

/// The host's logical parallelism as reported by the OS (respects cgroup
/// and affinity limits on Linux).
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// *Measured* parallel speedup of this host at `jobs` worker threads,
/// obtained by timing a fixed CPU-bound grid through [`run_cells`] at one
/// worker and at `jobs` workers. ≈1.0 on a single effective core whatever
/// the nominal CPU count (containers!), ≈`jobs` on an unloaded
/// multi-core. Recorded in `BENCH_wallclock.json` so a jobs sweep is
/// interpretable: a sweep cannot beat the hardware it ran on.
///
/// The probe is wall-clock based and deliberately cheap (~tens of ms);
/// memoized per job count for the life of the process.
pub fn measured_parallelism(jobs: usize) -> f64 {
    static CACHE: OnceLock<Mutex<Vec<(usize, f64)>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(Vec::new()));
    if let Some(&(_, s)) = cache.lock().unwrap().iter().find(|&&(j, _)| j == jobs) {
        return s;
    }

    fn spin_grid(jobs: usize, cells: usize, iters: u64) -> f64 {
        let grid: Vec<ExperimentCell<u64>> = (0..cells)
            .map(|i| {
                ExperimentCell::new(format!("spin/{i}"), move || {
                    // Data-dependent integer mix the optimizer cannot fold.
                    let mut x = 0x9E37_79B9_7F4A_7C15u64 ^ i as u64;
                    for _ in 0..iters {
                        x = x.wrapping_mul(0xD134_2543_DE82_EF95).rotate_left(17);
                    }
                    x
                })
            })
            .collect();
        let t0 = Instant::now();
        std::hint::black_box(run_cells(jobs, grid));
        t0.elapsed().as_secs_f64()
    }

    let cells = jobs.max(2) * 4;
    let iters = 2_000_000;
    // Warm-up pass so thread spawn / frequency ramp-up noise lands outside
    // the measurement, then best-of-3 per job count.
    spin_grid(jobs, cells, iters / 10);
    let serial = (0..3)
        .map(|_| spin_grid(1, cells, iters))
        .fold(f64::INFINITY, f64::min);
    let parallel = (0..3)
        .map(|_| spin_grid(jobs, cells, iters))
        .fold(f64::INFINITY, f64::min);
    let speedup = serial / parallel.max(1e-9);
    cache.lock().unwrap().push((jobs, speedup));
    speedup
}

/// Parses `--jobs N` / `--jobs=N` from the process arguments.
///
/// Defaults to the machine's available parallelism (the executor's whole
/// point is that a many-core box should not sit idle while a serial DES
/// grid grinds). `--jobs 1` restores fully serial execution.
pub fn jobs_from_args() -> usize {
    parse_jobs(std::env::args().skip(1)).unwrap_or_else(default_jobs)
}

/// The default job count: the host's parallelism ([`host_parallelism`]),
/// so the pool is sized to the hardware unless `--jobs` overrides it.
pub fn default_jobs() -> usize {
    host_parallelism()
}

/// Extracts the `--jobs` value from an argument list, if present.
pub fn parse_jobs(args: impl IntoIterator<Item = String>) -> Option<usize> {
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        if a == "--jobs" {
            if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                return Some(std::cmp::max(n, 1));
            }
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            if let Ok(n) = v.parse::<usize>() {
                return Some(n.max(1));
            }
        }
    }
    None
}

/// True when the given flag (e.g. `--quick`) is present in the process
/// arguments. Shared by binaries that scale themselves down for smoke
/// tests.
pub fn has_flag(flag: &str) -> bool {
    std::env::args().skip(1).any(|a| a == flag)
}

/// Value of `--<name> <value>` / `--<name>=<value>` in the process
/// arguments, if present.
pub fn arg_value(name: &str) -> Option<String> {
    let long = format!("--{name}");
    let prefix = format!("--{name}=");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == long {
            return args.next();
        }
        if let Some(v) = a.strip_prefix(&prefix) {
            return Some(v.to_string());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_submission_order() {
        // Cells deliberately finish out of order (reverse sleeps).
        let cells: Vec<ExperimentCell<usize>> = (0..16)
            .map(|i| {
                ExperimentCell::new(format!("cell{i}"), move || {
                    std::thread::sleep(std::time::Duration::from_millis((16 - i) as u64));
                    i
                })
            })
            .collect();
        let out = run_cells(4, cells);
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let build = || {
            (0..32)
                .map(|i| ExperimentCell::new(format!("c{i}"), move || i * i))
                .collect::<Vec<_>>()
        };
        assert_eq!(run_cells(1, build()), run_cells(7, build()));
    }

    #[test]
    fn every_cell_runs_exactly_once() {
        static COUNT: AtomicUsize = AtomicUsize::new(0);
        let cells: Vec<ExperimentCell<()>> = (0..100)
            .map(|i| {
                ExperimentCell::new(format!("c{i}"), || {
                    COUNT.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        run_cells(8, cells);
        assert_eq!(COUNT.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn borrows_from_the_caller_are_allowed() {
        let data = [1u64, 2, 3, 4];
        let cells: Vec<ExperimentCell<u64>> = data
            .iter()
            .map(|v| ExperimentCell::new("borrow", move || v * 10))
            .collect();
        assert_eq!(run_cells(2, cells), vec![10, 20, 30, 40]);
    }

    #[test]
    fn parse_jobs_forms() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(parse_jobs(args(&["--jobs", "4"])), Some(4));
        assert_eq!(parse_jobs(args(&["--jobs=2"])), Some(2));
        assert_eq!(parse_jobs(args(&["--jobs", "0"])), Some(1));
        assert_eq!(parse_jobs(args(&["--quick"])), None);
    }

    #[test]
    fn empty_grid_is_fine() {
        let out: Vec<u8> = run_cells(4, Vec::new());
        assert!(out.is_empty());
    }
}
