//! The shared measurement protocol for all experiments.
//!
//! Every measured configuration follows the paper's methodology (§VII):
//! a warmed-up environment (pre-warmed containers; for SpecFaaS also
//! trained sequence/memoization/predictor tables from prior invocations),
//! Poisson arrivals at the configured load, and a measurement window that
//! excludes the initial transient.

use std::sync::Arc;

use specfaas_apps::AppBundle;
use specfaas_core::{SpecConfig, SpecEngine};
use specfaas_platform::{
    BaselineEngine, EngineCore, Harness, PolicyConfig, RunMetrics, ScoreboardRow,
};
use specfaas_sim::timeseries::{MetricsRegistry, SnapshotLog};
use specfaas_sim::trace::Tracer;
use specfaas_sim::{FaultPlan, RetryPolicy, SimDuration, SimRng};
use specfaas_storage::Value;

/// Parameters of one experiment run.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentParams {
    /// Poisson arrival rate (requests per second).
    pub rps: f64,
    /// Length of the open-loop generation window (simulated).
    pub duration: SimDuration,
    /// Initial transient excluded from measurement.
    pub warmup: SimDuration,
    /// Closed-loop training invocations before the measured window
    /// (populates SpecFaaS' tables and the container pools).
    pub train_requests: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ExperimentParams {
    fn default() -> Self {
        ExperimentParams {
            rps: 100.0,
            duration: SimDuration::from_secs(5),
            warmup: SimDuration::from_millis(500),
            train_requests: 300,
            seed: 0xFAA5,
        }
    }
}

impl ExperimentParams {
    /// Same parameters at a different load.
    pub fn at_rps(mut self, rps: f64) -> Self {
        self.rps = rps;
        self
    }
}

/// Builds a pre-warmed baseline engine with seeded storage.
pub fn prepared_baseline(bundle: &AppBundle, seed: u64) -> BaselineEngine {
    prepared_baseline_with(bundle, seed, &PolicyConfig::default())
}

/// [`prepared_baseline`] under an explicit platform policy, attached
/// before pre-warm so the policy governs the whole engine lifetime
/// (under [`PolicyConfig::default`] this is bit-identical to the
/// unparameterized builder).
pub fn prepared_baseline_with(
    bundle: &AppBundle,
    seed: u64,
    policy: &PolicyConfig,
) -> BaselineEngine {
    let mut e = BaselineEngine::new(Arc::clone(&bundle.app), seed);
    e.set_policies(policy);
    e.prewarm();
    let mut rng = SimRng::seed(seed ^ 0x5eed);
    (bundle.seed)(&mut e.kv, &mut rng);
    e
}

/// Builds a pre-warmed, *trained* SpecFaaS engine with seeded storage.
pub fn prepared_spec(
    bundle: &AppBundle,
    config: SpecConfig,
    seed: u64,
    train_requests: u64,
) -> SpecEngine {
    prepared_spec_with(
        bundle,
        config,
        seed,
        train_requests,
        &PolicyConfig::default(),
    )
}

/// [`prepared_spec`] under an explicit platform policy. The policy is
/// attached before pre-warm and training, so a prewarm policy's sequence
/// table is populated by the training invocations exactly like SpecFaaS'
/// own speculation tables.
pub fn prepared_spec_with(
    bundle: &AppBundle,
    config: SpecConfig,
    seed: u64,
    train_requests: u64,
    policy: &PolicyConfig,
) -> SpecEngine {
    let mut e = SpecEngine::new(Arc::clone(&bundle.app), config, seed);
    e.set_policies(policy);
    e.prewarm();
    let mut rng = SimRng::seed(seed ^ 0x5eed);
    (bundle.seed)(&mut e.kv, &mut rng);
    let gen = Arc::clone(&bundle.make_input);
    e.run_closed(train_requests, move |r| gen(r));
    e
}

/// Arms fault injection on any engine harness and measures a closed
/// loop — the shared body of the per-engine bench match arms.
pub fn faulted_closed<E: EngineCore>(
    e: &mut Harness<E>,
    plan: FaultPlan,
    policy: RetryPolicy,
    requests: u64,
    input: impl FnMut(&mut SimRng) -> Value,
) -> RunMetrics {
    e.enable_faults(plan, policy);
    e.run_closed(requests, input)
}

/// [`faulted_closed`] with the invariant-checking flight recorder armed;
/// returns the recorder alongside the metrics.
pub fn traced_closed<E: EngineCore>(
    e: &mut Harness<E>,
    plan: FaultPlan,
    policy: RetryPolicy,
    requests: u64,
    input: impl FnMut(&mut SimRng) -> Value,
) -> (Tracer, RunMetrics) {
    e.enable_faults(plan, policy);
    e.set_tracer(Tracer::with_invariants());
    let m = e.run_closed(requests, input);
    (e.take_tracer(), m)
}

/// Fully instrumented closed loop on any engine: fault injection, the
/// invariant-checking flight recorder and the given metrics registry are
/// attached (in that order, matching the bit-identity tests), then the
/// instruments are taken back out and returned with the metrics.
pub fn instrumented_closed<E: EngineCore>(
    e: &mut Harness<E>,
    plan: FaultPlan,
    policy: RetryPolicy,
    registry: MetricsRegistry,
    requests: u64,
    input: impl FnMut(&mut SimRng) -> Value,
) -> (Tracer, MetricsRegistry, RunMetrics) {
    e.enable_faults(plan, policy);
    e.set_tracer(Tracer::with_invariants());
    e.set_registry(registry);
    let m = e.run_closed(requests, input);
    (e.take_tracer(), e.take_registry(), m)
}

/// Runs a closed loop with the streaming observability instruments armed
/// (metrics registry + windowed snapshot log) and assembles the
/// speculation-health scoreboard row for the run. Returns the row, the
/// snapshot log (final snapshot already stamped) and the run metrics;
/// the registry is taken back out and discarded — everything the
/// scoreboard needs has been copied into the row.
pub fn scoreboard_closed<E: EngineCore>(
    e: &mut Harness<E>,
    engine: &'static str,
    requests: u64,
    snapshot_window: SimDuration,
    input: impl FnMut(&mut SimRng) -> Value,
) -> (ScoreboardRow, SnapshotLog, RunMetrics) {
    e.set_registry(MetricsRegistry::recording());
    e.set_snapshots(SnapshotLog::new(snapshot_window));
    let m = e.run_closed(requests, input);
    let row = e.scoreboard(engine, &m);
    let log = e.take_snapshots().expect("snapshots armed above");
    e.take_registry();
    (row, log, m)
}

/// Mean completed-request response (ms) over `m.records`, skipping the
/// first `skip` (container warm-up) records.
pub fn mean_record_ms(m: &RunMetrics, skip: usize) -> f64 {
    let later = &m.records[m.records.len().min(skip)..];
    later
        .iter()
        .map(|r| r.response_time().as_millis_f64())
        .sum::<f64>()
        / later.len().max(1) as f64
}

/// Runs a closed loop on any prepared engine and returns the mean
/// completed-request response in milliseconds (no warm-up skip).
pub fn closed_mean_ms<E: EngineCore>(
    e: &mut Harness<E>,
    n: u64,
    input: impl FnMut(&mut SimRng) -> Value,
) -> f64 {
    mean_record_ms(&e.run_closed(n, input), 0)
}

/// Measures the baseline under an open-loop load.
pub fn measure_baseline_open(bundle: &AppBundle, p: ExperimentParams) -> RunMetrics {
    let mut e = prepared_baseline(bundle, p.seed);
    // Warm the containers along realistic paths.
    let gen = Arc::clone(&bundle.make_input);
    e.run_closed(p.train_requests.min(50), {
        let gen = Arc::clone(&gen);
        move |r| gen(r)
    });
    let gen2 = Arc::clone(&bundle.make_input);
    e.run_open(p.rps, p.duration, p.warmup, move |r| gen2(r))
}

/// Measures SpecFaaS under an open-loop load with the given config.
pub fn measure_spec_open(
    bundle: &AppBundle,
    config: SpecConfig,
    p: ExperimentParams,
) -> RunMetrics {
    let mut e = prepared_spec(bundle, config, p.seed, p.train_requests);
    let gen = Arc::clone(&bundle.make_input);
    e.run_open(p.rps, p.duration, p.warmup, move |r| gen(r))
}

/// Unloaded single-request mean response (the Table-III QoS reference):
/// average over `n` isolated requests.
pub fn baseline_single_ms(bundle: &AppBundle, seed: u64, n: u64) -> f64 {
    let mut e = prepared_baseline(bundle, seed);
    let gen = Arc::clone(&bundle.make_input);
    let m = e.run_closed(n.max(1) + 2, move |r| gen(r));
    // Skip the first two (container warm-up) records.
    mean_record_ms(&m, 2)
}

/// Unloaded single-request mean response for a trained SpecFaaS engine.
pub fn spec_single_ms(bundle: &AppBundle, config: SpecConfig, seed: u64, n: u64) -> f64 {
    let mut e = prepared_spec(bundle, config, seed, 200);
    let gen = Arc::clone(&bundle.make_input);
    closed_mean_ms(&mut e, n.max(1), move |r| gen(r))
}

/// Converts the paper's open-loop load level into a closed-loop client
/// count: enough concurrent clients that the *baseline* would be offered
/// approximately `rps` (clients = rps × unloaded baseline response). At
/// saturating levels the pool self-throttles instead of growing an
/// unbounded queue — the behaviour of a real fixed-pool load generator.
pub fn clients_for(rps: f64, baseline_single_ms: f64) -> u32 {
    ((rps * baseline_single_ms / 1_000.0).round() as u32).max(1)
}

/// Measures the baseline under a closed-loop client pool sized for the
/// requested load level.
pub fn measure_baseline_concurrent(bundle: &AppBundle, p: ExperimentParams) -> RunMetrics {
    let single = baseline_single_ms(bundle, p.seed, 3);
    measure_baseline_concurrent_sized(bundle, p, single)
}

/// [`measure_baseline_concurrent`] with the unloaded single-request
/// response precomputed by the caller. The sizing run (a full prepared
/// baseline engine) depends only on `(bundle, seed)`, so grid drivers
/// that fan one bundle out over many loads hoist it and compute it once
/// instead of once per cell — the measured result is bit-identical
/// because the sizing value is.
pub fn measure_baseline_concurrent_sized(
    bundle: &AppBundle,
    p: ExperimentParams,
    single_ms: f64,
) -> RunMetrics {
    let clients = clients_for(p.rps, single_ms);
    let mut e = prepared_baseline(bundle, p.seed);
    let gen = Arc::clone(&bundle.make_input);
    e.run_closed(30, {
        let gen = Arc::clone(&gen);
        move |r| gen(r)
    });
    let gen2 = Arc::clone(&bundle.make_input);
    e.run_concurrent(clients, p.duration, p.warmup, move |r| gen2(r))
}

/// Measures SpecFaaS under the same closed-loop client pool (sized from
/// the *baseline's* unloaded response, so both systems face the same
/// client population).
pub fn measure_spec_concurrent(
    bundle: &AppBundle,
    config: SpecConfig,
    p: ExperimentParams,
) -> RunMetrics {
    let single = baseline_single_ms(bundle, p.seed, 3);
    measure_spec_concurrent_sized(bundle, config, p, single)
}

/// [`measure_spec_concurrent`] with the unloaded *baseline*
/// single-request response precomputed by the caller (see
/// [`measure_baseline_concurrent_sized`] for why grids hoist it).
pub fn measure_spec_concurrent_sized(
    bundle: &AppBundle,
    config: SpecConfig,
    p: ExperimentParams,
    single_ms: f64,
) -> RunMetrics {
    let clients = clients_for(p.rps, single_ms);
    let mut e = prepared_spec(bundle, config, p.seed, p.train_requests);
    let gen = Arc::clone(&bundle.make_input);
    e.run_concurrent(clients, p.duration, p.warmup, move |r| gen(r))
}

/// Finds the effective throughput (Table III): the highest request rate
/// served with mean response ≤ 2× the unloaded single-request response,
/// located by bisection over the arrival rate.
///
/// Every probe is a full open-loop measurement, so probes are memoized by
/// rate: the expansion loop's final `hi` measurement is reused if the
/// bisection (or a caller-supplied bracket) ever lands on the same rate
/// again, cutting one full measurement per call.
pub fn effective_throughput<F>(mut measure: F, single_ms: f64, lo: f64, hi: f64) -> f64
where
    F: FnMut(f64) -> f64, // rps -> mean response ms
{
    let qos = 2.0 * single_ms;
    // Memoized probe: rates are derived from the same bracket by halving,
    // so re-visited rates compare bit-exactly.
    let mut probes: Vec<(f64, f64)> = Vec::new();
    let mut probe = move |rps: f64| -> f64 {
        if let Some(&(_, resp)) = probes.iter().find(|&&(r, _)| r == rps) {
            return resp;
        }
        let resp = measure(rps);
        probes.push((rps, resp));
        resp
    };
    let mut lo = lo;
    let mut hi = hi;
    // Expand hi until QoS violated (or cap).
    let mut hi_resp = probe(hi);
    while hi_resp <= qos && hi < 4_000.0 {
        lo = hi;
        hi *= 2.0;
        hi_resp = probe(hi);
    }
    if hi_resp <= qos {
        return hi;
    }
    for _ in 0..7 {
        let mid = 0.5 * (lo + hi);
        if probe(mid) <= qos {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfaas_apps::faaschain;

    #[test]
    fn params_builder() {
        let p = ExperimentParams::default().at_rps(250.0);
        assert_eq!(p.rps, 250.0);
    }

    #[test]
    fn effective_throughput_bisection_converges() {
        // Synthetic response curve: flat 10ms until 200 rps, then rising.
        let f = |rps: f64| {
            if rps <= 200.0 {
                10.0
            } else {
                10.0 + (rps - 200.0)
            }
        };
        let thr = effective_throughput(f, 10.0, 50.0, 100.0);
        assert!(
            (195.0..=215.0).contains(&thr),
            "bisection found {thr}, expected ~210 (QoS 20ms)"
        );
    }

    #[test]
    fn effective_throughput_probes_each_rate_once() {
        use std::cell::RefCell;
        // Count every probe and record the rates measured.
        let seen = RefCell::new(Vec::<f64>::new());
        let f = |rps: f64| {
            seen.borrow_mut().push(rps);
            if rps <= 200.0 {
                10.0
            } else {
                10.0 + (rps - 200.0)
            }
        };
        effective_throughput(f, 10.0, 50.0, 100.0);
        let probes = seen.borrow();
        // Expansion measures 100, 200, 400 (first violation), then 7
        // bisection midpoints: exactly 10 probes, no rate re-measured.
        assert_eq!(probes.len(), 3 + 7, "probe count: {probes:?}");
        let mut uniq = probes.clone();
        uniq.sort_by(f64::total_cmp);
        uniq.dedup();
        assert_eq!(uniq.len(), probes.len(), "no rate probed twice");
    }

    #[test]
    fn effective_throughput_degenerate_bracket_probes_once() {
        use std::cell::RefCell;
        // lo == hi and the bracket already violates QoS: every bisection
        // midpoint equals the bracket, so the memo must collapse the
        // 1 + 7 probes of the uncached implementation down to one.
        let count = RefCell::new(0u32);
        let f = |_rps: f64| {
            *count.borrow_mut() += 1;
            1_000.0
        };
        let thr = effective_throughput(f, 10.0, 100.0, 100.0);
        assert_eq!(*count.borrow(), 1, "memoized probe must be reused");
        assert_eq!(thr, 100.0);
    }

    #[test]
    fn baseline_and_spec_single_request_sane() {
        let bundle = &faaschain::apps()[0]; // Login
        let b = baseline_single_ms(bundle, 1, 5);
        let s = spec_single_ms(bundle, SpecConfig::full(), 1, 5);
        assert!(b > 5.0, "baseline {b}ms");
        assert!(s > 1.0, "spec {s}ms");
        assert!(s < b, "spec {s}ms should beat baseline {b}ms");
    }

    #[test]
    fn open_loop_measurements_produce_data() {
        let bundle = &faaschain::apps()[0];
        let p = ExperimentParams {
            rps: 50.0,
            duration: SimDuration::from_secs(1),
            warmup: SimDuration::from_millis(100),
            train_requests: 50,
            seed: 3,
        };
        let mb = measure_baseline_open(bundle, p);
        let ms = measure_spec_open(bundle, SpecConfig::full(), p);
        assert!(mb.completed > 20);
        assert!(ms.completed > 20);
        assert!(ms.mean_response_ms() < mb.mean_response_ms());
    }
}
