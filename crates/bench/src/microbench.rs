//! A minimal wall-clock micro-benchmark harness.
//!
//! The build environment is offline, so the crate cannot depend on
//! `criterion`. This module provides the small subset the benches need:
//! warmup, repeated timed batches, and a median-of-batches report. It is
//! deliberately simple — these benches guard against gross regressions in
//! the per-operation cost of the controller data structures, not against
//! single-digit-percent drift.

use std::time::Instant;

/// Runs `f` repeatedly and prints the median per-iteration cost.
///
/// The closure is invoked `iters` times per batch, for `batches` batches,
/// after one untimed warmup batch. Use [`std::hint::black_box`] inside the
/// closure to keep the optimizer honest.
pub fn bench(name: &str, iters: u64, f: &mut dyn FnMut()) {
    const BATCHES: usize = 7;
    for _ in 0..iters.min(1_000) {
        f(); // warmup
    }
    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(BATCHES);
    for _ in 0..BATCHES {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        per_iter_ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_ns[BATCHES / 2];
    let (lo, hi) = (per_iter_ns[0], per_iter_ns[BATCHES - 1]);
    println!("{name:<40} {median:>12.1} ns/iter  (min {lo:.1}, max {hi:.1})");
}

/// Convenience wrapper taking the iteration count from a target batch
/// duration: picks `iters` so one batch takes roughly `target_ms`.
pub fn bench_auto(name: &str, f: &mut dyn FnMut()) {
    // Calibrate: time a small probe run, then size batches to ~20ms.
    let probe = 16u64;
    let start = Instant::now();
    for _ in 0..probe {
        f();
    }
    let per = (start.elapsed().as_nanos() as f64 / probe as f64).max(1.0);
    let iters = ((20_000_000.0 / per) as u64).clamp(probe, 5_000_000);
    bench(name, iters, f);
}
