//! Regression guard for the committed wall-clock artifact.
//!
//! `BENCH_wallclock.json` is the repo's perf contract: the event-queue
//! microbenchmark numbers and the executor jobs sweep a change is not
//! allowed to regress. This module parses the artifact (both the committed
//! blessing and a freshly measured run) and checks the four clauses CI
//! enforces (`wallclock --guard <committed.json>`):
//!
//! 1. **Absolute ceiling** — `schedule_step` median ns/op at 100k pending
//!    may not exceed the committed value by more than 25 %.
//! 2. **Depth flatness** — `schedule_step` at 100k pending may not cost
//!    more than [`FLATNESS_LIMIT`]× its 1k-pending cost (the calendar
//!    queue's whole point; the old heap sat at 5.1×).
//! 3. **Jobs scaling** — on a host whose *measured* parallelism is ≥ 1.5
//!    (i.e. genuinely multi-core — containers often advertise cores they
//!    do not deliver), the jobs=2 sweep must show speedup ≥ 1.0. On a
//!    single effective core the clause is skipped: no harness can beat
//!    serial there, and the measured-parallelism field in the artifact
//!    records why.
//! 4. **Instrumentation overhead** — arming the streaming observability
//!    instruments (recording registry + windowed snapshots) may not slow
//!    the measured closed loop past
//!    [`INSTRUMENTED_OVERHEAD_LIMIT`]× the plain run. This clause is
//!    absolute (it compares the current run against itself, not against
//!    the blessing) and is skipped for artifacts that predate the field.
//!
//! The parser is a deliberately minimal extractor for the artifact's own
//! fixed emitter (flat keys, no nesting surprises) — not a general JSON
//! parser — so the bench crate stays dependency-free.

/// The artifact fields the guard compares.
#[derive(Debug, Clone, PartialEq)]
pub struct WallclockArtifact {
    /// `schedule_step` median ns/op at 1k pending.
    pub step_ns_1k: f64,
    /// `schedule_step` median ns/op at 100k pending.
    pub step_ns_100k: f64,
    /// `schedule_cancel` median ns/op at 1k pending.
    pub cancel_ns_1k: f64,
    /// `schedule_cancel` median ns/op at 100k pending.
    pub cancel_ns_100k: f64,
    /// Speedup of the jobs=2 sweep point over jobs=1 (absent in artifacts
    /// whose sweep did not include jobs=2).
    pub jobs2_speedup: Option<f64>,
    /// Logical CPU count of the host that produced the artifact.
    pub host_parallelism: u64,
    /// Measured 2-thread speedup of a CPU-bound probe on that host
    /// (see `executor::measured_parallelism`); older v1 artifacts that
    /// predate the field default to `host_parallelism` as a best guess.
    pub measured_parallelism: f64,
    /// Instrumented/plain wall-time ratio of the observability-overhead
    /// section (absent in artifacts that predate it).
    pub overhead_ratio: Option<f64>,
}

/// Extracts the first number following `"key":` in `chunk`.
fn num_after(chunk: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let rest = &chunk[chunk.find(&needle)? + needle.len()..];
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Finds the object (within `json`) that contains all of `markers`, and
/// extracts `key` from it. Objects are delimited naively by `{`/`}` —
/// sufficient for the artifact's flat structure.
fn obj_num(json: &str, markers: &[&str], key: &str) -> Option<f64> {
    let mut rest = json;
    while let Some(open) = rest.find('{') {
        let body_start = open + 1;
        let close = rest[body_start..].find('}').map(|i| body_start + i)?;
        let body = &rest[body_start..close];
        if markers.iter().all(|m| body.contains(m)) {
            if let Some(v) = num_after(body, key) {
                return Some(v);
            }
        }
        rest = &rest[close + 1..];
    }
    None
}

/// Parses the fields the guard needs out of a wallclock artifact.
pub fn parse_artifact(json: &str) -> Result<WallclockArtifact, String> {
    let queue = |bench: &str, pending: &str| -> Result<f64, String> {
        obj_num(
            json,
            &[
                &format!("\"bench\": \"{bench}\""),
                &format!("\"pending\": {pending},"),
            ],
            "median_ns_per_op",
        )
        .ok_or_else(|| format!("missing {bench}@{pending} in artifact"))
    };
    let host_parallelism = num_after(json, "host_parallelism")
        .ok_or_else(|| "missing host_parallelism".to_string())? as u64;
    Ok(WallclockArtifact {
        step_ns_1k: queue("schedule_step", "1000")?,
        step_ns_100k: queue("schedule_step", "100000")?,
        cancel_ns_1k: queue("schedule_cancel", "1000")?,
        cancel_ns_100k: queue("schedule_cancel", "100000")?,
        jobs2_speedup: obj_num(json, &["\"jobs\": 2,"], "speedup"),
        host_parallelism,
        measured_parallelism: num_after(json, "measured_parallelism")
            .unwrap_or(host_parallelism as f64),
        overhead_ratio: num_after(json, "overhead_ratio"),
    })
}

/// Headroom over the committed ns/op before the absolute clause fires.
pub const ABS_HEADROOM: f64 = 1.25;
/// Maximum allowed 100k/1k `schedule_step` cost ratio.
///
/// The calendar queue is amortized O(1) in queue depth, but constant-factor
/// cache effects remain: at 100k pending the working set (~4 MB of slots +
/// bucket entries) spills L2, so every op pays roughly one random
/// last-level-cache line plus TLB pressure that the fully-cached 1k
/// baseline (~48 KB) never sees. On the single-core Xeon blessing host the
/// steady-state ratio measures 2.2–2.5× run-to-run; the limit is that
/// envelope plus noise headroom. The structural failure modes this clause
/// defends against — tombstone silt or an O(n) scan reappearing in the hot
/// path — measured 5.1× before the calendar queue and blow well past this
/// limit. The tight day-to-day guard is the absolute ceiling above.
pub const FLATNESS_LIMIT: f64 = 2.75;
/// Measured parallelism below which the jobs clause is vacuous.
pub const MULTICORE_MIN: f64 = 1.5;
/// Maximum allowed instrumented/plain wall-time ratio.
///
/// The per-event cost of an armed registry is a dozen gauge samples
/// through cached [`GaugeHandle`]s (O(1) arena writes, no map walk, no
/// allocation — see `MetricsRegistry::sample_interned`) plus a handful
/// of O(1) histogram records and Space-Saving updates per request and a
/// snapshot-due check per event. Measured ratio on the blessing host is
/// ~1.15–1.4×; the name-keyed map-walk design this replaced measured
/// ~2.4× and would trip this clause. The limit leaves headroom for noisy
/// CI containers while still catching an accidental O(n) — a sort or
/// full-registry scan — sneaking back into the per-event path.
///
/// [`GaugeHandle`]: specfaas_sim::GaugeHandle
pub const INSTRUMENTED_OVERHEAD_LIMIT: f64 = 1.5;

/// Checks `current` against the `committed` blessing. Returns the list of
/// violated clauses (empty = pass).
pub fn check(current: &WallclockArtifact, committed: &WallclockArtifact) -> Vec<String> {
    let mut violations = Vec::new();
    let ceiling = committed.step_ns_100k * ABS_HEADROOM;
    if current.step_ns_100k > ceiling {
        violations.push(format!(
            "schedule_step@100k regressed: {:.1} ns/op > {:.1} (committed {:.1} × {ABS_HEADROOM})",
            current.step_ns_100k, ceiling, committed.step_ns_100k
        ));
    }
    let ratio = current.step_ns_100k / current.step_ns_1k;
    if ratio > FLATNESS_LIMIT {
        violations.push(format!(
            "schedule_step depth ratio not flat: 100k/1k = {ratio:.2}x > {FLATNESS_LIMIT}x \
             ({:.1} vs {:.1} ns/op)",
            current.step_ns_100k, current.step_ns_1k
        ));
    }
    if current.measured_parallelism >= MULTICORE_MIN {
        match current.jobs2_speedup {
            Some(s) if s < 1.0 => violations.push(format!(
                "jobs=2 sweep is a slowdown on a multi-core host \
                 (measured parallelism {:.2}): speedup {s:.3} < 1.0",
                current.measured_parallelism
            )),
            None => violations.push("jobs=2 sweep point missing from artifact".to_string()),
            _ => {}
        }
    }
    if let Some(r) = current.overhead_ratio {
        if r > INSTRUMENTED_OVERHEAD_LIMIT {
            violations.push(format!(
                "observability instruments too expensive: instrumented/plain ratio \
                 {r:.3}x > {INSTRUMENTED_OVERHEAD_LIMIT}x"
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(step_1k: f64, step_100k: f64, jobs2: f64, measured: f64) -> WallclockArtifact {
        WallclockArtifact {
            step_ns_1k: step_1k,
            step_ns_100k: step_100k,
            cancel_ns_1k: 100.0,
            cancel_ns_100k: 150.0,
            jobs2_speedup: Some(jobs2),
            host_parallelism: 4,
            measured_parallelism: measured,
            overhead_ratio: Some(1.02),
        }
    }

    #[test]
    fn parses_the_committed_artifact_shape() {
        let json = r#"{
  "schema": "specfaas-bench/wallclock/v2",
  "quick": false,
  "host_parallelism": 1,
  "measured_parallelism": 1.02,
  "repeats": 5,
  "event_queue": [
    {"bench": "schedule_step", "pending": 1000, "ops": 400000, "median_ns_per_op": 126.51, "ops_per_sec": 7904222},
    {"bench": "schedule_step", "pending": 100000, "ops": 400000, "median_ns_per_op": 648.30, "ops_per_sec": 1542500},
    {"bench": "schedule_cancel", "pending": 1000, "ops": 400000, "median_ns_per_op": 109.51, "ops_per_sec": 9131232},
    {"bench": "schedule_cancel", "pending": 100000, "ops": 400000, "median_ns_per_op": 280.09, "ops_per_sec": 3570294}
  ],
  "jobs_sweep": [
    {"jobs": 1, "cells": 8, "median_secs": 0.132, "speedup": 1.000},
    {"jobs": 2, "cells": 8, "median_secs": 0.145, "speedup": 0.910},
    {"jobs": 4, "cells": 8, "median_secs": 0.140, "speedup": 0.942}
  ],
  "instrumented_overhead": {"app": "Login", "requests": 1000, "repeats": 3, "plain_secs": 0.4012, "instrumented_secs": 0.4141, "overhead_ratio": 1.0321}
}"#;
        let a = parse_artifact(json).unwrap();
        assert_eq!(a.step_ns_1k, 126.51);
        assert_eq!(a.step_ns_100k, 648.30);
        assert_eq!(a.cancel_ns_1k, 109.51);
        assert_eq!(a.cancel_ns_100k, 280.09);
        assert_eq!(a.jobs2_speedup, Some(0.910));
        assert_eq!(a.host_parallelism, 1);
        assert_eq!(a.measured_parallelism, 1.02);
        // Must pick the ratio key, not a number inside the overhead object
        // that happens to come first.
        assert_eq!(a.overhead_ratio, Some(1.0321));
    }

    #[test]
    fn v1_artifact_without_measured_parallelism_still_parses() {
        let json = r#"{
  "host_parallelism": 4,
  "event_queue": [
    {"bench": "schedule_step", "pending": 1000, "median_ns_per_op": 100.0},
    {"bench": "schedule_step", "pending": 100000, "median_ns_per_op": 150.0},
    {"bench": "schedule_cancel", "pending": 1000, "median_ns_per_op": 100.0},
    {"bench": "schedule_cancel", "pending": 100000, "median_ns_per_op": 150.0}
  ]
}"#;
        let a = parse_artifact(json).unwrap();
        assert_eq!(a.measured_parallelism, 4.0);
        assert_eq!(a.jobs2_speedup, None);
        assert_eq!(a.overhead_ratio, None);
    }

    #[test]
    fn overhead_clause_fires_past_the_limit_and_skips_when_absent() {
        let committed = artifact(100.0, 150.0, 1.0, 1.0);
        let mut current = artifact(100.0, 150.0, 1.6, 2.0);
        current.overhead_ratio = Some(INSTRUMENTED_OVERHEAD_LIMIT + 0.1);
        let v = check(&current, &committed);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("instruments too expensive"));
        // Artifacts that predate the section skip the clause entirely.
        current.overhead_ratio = None;
        assert!(check(&current, &committed).is_empty());
    }

    #[test]
    fn passes_when_flat_and_scaling() {
        let committed = artifact(100.0, 150.0, 1.0, 1.0);
        let current = artifact(100.0, 160.0, 1.6, 2.0);
        assert!(check(&current, &committed).is_empty());
    }

    #[test]
    fn fails_on_absolute_regression() {
        let committed = artifact(100.0, 150.0, 1.0, 1.0);
        let current = artifact(100.0, 200.0, 1.6, 2.0);
        let v = check(&current, &committed);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("regressed"));
    }

    #[test]
    fn fails_on_depth_ratio() {
        let committed = artifact(100.0, 500.0, 1.0, 1.0);
        let current = artifact(100.0, 300.0, 1.6, 2.0);
        let v = check(&current, &committed);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("depth ratio"));
    }

    #[test]
    fn jobs_clause_enforced_only_on_measured_multicore() {
        let committed = artifact(100.0, 150.0, 1.0, 1.0);
        // Single effective core: jobs=2 below 1.0 is tolerated.
        let single = artifact(100.0, 150.0, 0.91, 1.05);
        assert!(check(&single, &committed).is_empty());
        // Measured multi-core: the same sweep is a violation.
        let multi = artifact(100.0, 150.0, 0.91, 1.9);
        let v = check(&multi, &committed);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("multi-core"));
    }
}
