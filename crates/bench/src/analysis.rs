//! Post-hoc trace analytics: per-request critical paths, squash
//! attribution, speculation-depth stats, and what-if speedup bounds.
//!
//! The flight recorder ([`specfaas_sim::trace`]) captures *what happened*;
//! this module answers *where the time went*. It consumes the recorded
//! event stream after a run — no engine coupling, no perturbation of the
//! measured system — and produces:
//!
//! * **Per-request critical paths** ([`RequestPath`]): the request's
//!   end-to-end latency decomposed into the paper's Fig. 3 phases
//!   (container creation, runtime setup, platform, transfer, execution,
//!   retry backoff) plus an explicit queue/other residual. The
//!   decomposition is exact: the buckets always sum to the request's
//!   arrival→terminal latency.
//! * **Squash attribution** ([`SquashAttribution`]): wasted core-time by
//!   charge site, by function, and by speculation-cascade depth. The
//!   grand total reconciles *exactly* with the engine's Table-IV
//!   squashed-CPU ledger, because every ledger increment emits one
//!   [`TraceEventKind::SquashCharge`] with the same amount.
//! * **Speculation-depth waterfall** ([`DepthStats`]): how deep each
//!   request's speculative pipeline ran, as a per-request-maximum
//!   histogram.
//! * **A what-if bound** ([`WhatIf`]): per-app speedup ceiling under
//!   zero-overhead speculation, where each request's ideal latency is its
//!   longest single execution span — no schedule can beat the longest
//!   serial handler, so `actual / ideal` is a genuine upper bound.
//!
//! # Example
//!
//! ```
//! use specfaas_bench::analysis::analyze;
//! use specfaas_sim::trace::{Phase, TraceEvent, TraceEventKind};
//! use specfaas_sim::SimTime;
//!
//! let t = SimTime::from_millis;
//! let events = [
//!     TraceEvent { at: t(0), kind: TraceEventKind::RequestArrival { req: 0 } },
//!     TraceEvent {
//!         at: t(1),
//!         kind: TraceEventKind::Span {
//!             req: 0, func: 0, node: 0, phase: Phase::Execution, end: t(4),
//!         },
//!     },
//!     TraceEvent { at: t(5), kind: TraceEventKind::Terminal { req: 0, completed: true } },
//! ];
//! let a = analyze(&events);
//! assert_eq!(a.requests.len(), 1);
//! // 5 ms end to end: 3 ms execution, 2 ms unattributed (queueing).
//! assert_eq!(a.requests[0].latency().as_millis(), 5);
//! assert_eq!(a.requests[0].breakdown.total().as_millis(), 5);
//! ```

use std::collections::{BTreeMap, BTreeSet};

use specfaas_sim::trace::{Phase, TraceEvent, TraceEventKind};
use specfaas_sim::{SimDuration, SimTime};

/// Time attributed to each Fig. 3 phase plus the uncovered residual.
///
/// Built by an elementary-interval sweep over the request's lifetime:
/// every instant between arrival and terminal is attributed to exactly
/// one bucket, so [`PhaseBreakdown::total`] equals the end-to-end latency
/// by construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Time per phase, indexed in [`Phase::ALL`] order.
    pub phases: [SimDuration; 6],
    /// Time covered by no recorded span: queueing for cores or
    /// controllers, commit waits, response return.
    pub queue_other: SimDuration,
}

impl PhaseBreakdown {
    /// The time attributed to one phase.
    pub fn phase(&self, p: Phase) -> SimDuration {
        self.phases[phase_index(p)]
    }

    /// Sum of every bucket — always the request's end-to-end latency.
    pub fn total(&self) -> SimDuration {
        self.phases.iter().copied().sum::<SimDuration>() + self.queue_other
    }
}

/// One request's critical path.
#[derive(Debug, Clone)]
pub struct RequestPath {
    /// Request id.
    pub req: u64,
    /// Arrival instant.
    pub arrived: SimTime,
    /// Terminal instant (success or abort).
    pub terminal: SimTime,
    /// True if the request completed successfully.
    pub completed: bool,
    /// Exact phase decomposition of the latency.
    pub breakdown: PhaseBreakdown,
    /// Ideal latency under zero-overhead speculation: the longest single
    /// execution span (every schedule must run it serially).
    pub ideal: SimDuration,
}

impl RequestPath {
    /// End-to-end latency (arrival to terminal).
    pub fn latency(&self) -> SimDuration {
        self.terminal - self.arrived
    }
}

/// Wasted core-time grouped by charge site, function, and cascade depth.
///
/// `total` equals the engine's `RunMetrics::squashed_core_time` for the
/// traced window — asserted by the profile tests.
#[derive(Debug, Clone, Default)]
pub struct SquashAttribution {
    /// Grand total of all charges — the Table-IV squashed-CPU ledger.
    pub total: SimDuration,
    /// Per charge-site `(site, wasted, charge count)`, sorted by
    /// descending wasted time (ties by name).
    pub by_site: Vec<(String, SimDuration, u64)>,
    /// Per function `(func, wasted)`, sorted by descending wasted time
    /// (ties by id). `u32::MAX` marks charges whose function was unknown.
    pub by_func: Vec<(u32, SimDuration)>,
    /// Per cascade depth `(depth, wasted)`, ascending. Depth 0 holds
    /// charges that did not come from a pipeline squash (teardowns,
    /// aborts, orphans).
    pub by_cascade: Vec<(u32, SimDuration)>,
}

/// Distribution of per-request maximum speculation depth.
#[derive(Debug, Clone, Default)]
pub struct DepthStats {
    /// `(max depth, number of requests that peaked there)`, ascending.
    pub histogram: Vec<(u32, u64)>,
}

impl DepthStats {
    /// The deepest speculation observed on any request.
    pub fn max_depth(&self) -> u32 {
        self.histogram.last().map(|(d, _)| *d).unwrap_or(0)
    }
}

/// Aggregate what-if speedup bound under zero-overhead speculation.
#[derive(Debug, Clone, Copy, Default)]
pub struct WhatIf {
    /// Sum of actual end-to-end latencies.
    pub actual_total: SimDuration,
    /// Sum of ideal latencies (longest execution span per request).
    pub ideal_total: SimDuration,
}

impl WhatIf {
    /// Upper bound on the speedup any speculation schedule could reach:
    /// mean actual latency over mean ideal latency. `1.0` when no
    /// request recorded an execution span.
    pub fn speedup_bound(&self) -> f64 {
        if self.ideal_total.is_zero() {
            return 1.0;
        }
        self.actual_total / self.ideal_total
    }
}

/// Everything the analyzer extracts from one recorded event stream.
#[derive(Debug, Clone, Default)]
pub struct TraceAnalysis {
    /// Per-request critical paths, in request-id order. Requests without
    /// both an arrival and a terminal event are skipped.
    pub requests: Vec<RequestPath>,
    /// Squash attribution over the whole stream (including charges whose
    /// request was already gone, so the total reconciles with the
    /// ledger).
    pub squash: SquashAttribution,
    /// Speculation-depth waterfall.
    pub depth: DepthStats,
    /// What-if speedup bound over the analyzed requests.
    pub what_if: WhatIf,
}

/// Index of a phase in [`Phase::ALL`] order.
fn phase_index(p: Phase) -> usize {
    Phase::ALL
        .iter()
        .position(|q| *q == p)
        .expect("known phase")
}

/// Attribution precedence when spans overlap: actual execution wins,
/// then cold-start phases, then platform/transfer hops, then backoff.
const PRECEDENCE: [Phase; 6] = [
    Phase::Execution,
    Phase::ContainerCreation,
    Phase::RuntimeSetup,
    Phase::Platform,
    Phase::Transfer,
    Phase::RetryBackoff,
];

#[derive(Debug, Default)]
struct ReqAcc {
    arrived: Option<SimTime>,
    terminal: Option<(SimTime, bool)>,
    /// Recorded spans `(start, end, phase)` (unclipped).
    spans: Vec<(SimTime, SimTime, Phase)>,
    /// Live speculative slot ids (waterfall bookkeeping).
    spec_live: BTreeSet<u64>,
    max_depth: u32,
}

/// Analyzes one recorded event stream. See the module docs for the exact
/// semantics of each output.
pub fn analyze(events: &[TraceEvent]) -> TraceAnalysis {
    let mut reqs: BTreeMap<u64, ReqAcc> = BTreeMap::new();
    let mut site_amt: BTreeMap<&'static str, (SimDuration, u64)> = BTreeMap::new();
    let mut func_amt: BTreeMap<u32, SimDuration> = BTreeMap::new();
    let mut cascade_amt: BTreeMap<u32, SimDuration> = BTreeMap::new();
    let mut squash_total = SimDuration::ZERO;

    for ev in events {
        match &ev.kind {
            TraceEventKind::RequestArrival { req } => {
                let acc = reqs.entry(*req).or_default();
                acc.arrived = Some(ev.at);
            }
            TraceEventKind::Terminal { req, completed } => {
                if let Some(acc) = reqs.get_mut(req) {
                    acc.terminal = Some((ev.at, *completed));
                    acc.spec_live.clear();
                }
            }
            // Teardowns of context-less instances label spans with
            // u64::MAX; they belong to no analyzable request.
            TraceEventKind::Span {
                req, phase, end, ..
            } if *req != u64::MAX => {
                if let Some(acc) = reqs.get_mut(req) {
                    acc.spans.push((ev.at, *end, *phase));
                }
            }
            TraceEventKind::RetryBackoff { req, backoff, .. } => {
                if let Some(acc) = reqs.get_mut(req) {
                    acc.spans
                        .push((ev.at, ev.at + *backoff, Phase::RetryBackoff));
                }
            }
            TraceEventKind::SlotLaunch {
                req,
                slot,
                speculative,
                ..
            } if *speculative => {
                if let Some(acc) = reqs.get_mut(req) {
                    acc.spec_live.insert(*slot);
                    acc.max_depth = acc.max_depth.max(acc.spec_live.len() as u32);
                }
            }
            TraceEventKind::Commit { req, slot, .. } => {
                if let Some(acc) = reqs.get_mut(req) {
                    acc.spec_live.remove(slot);
                }
            }
            TraceEventKind::Squash {
                req, slot, cascade, ..
            } => {
                if let Some(acc) = reqs.get_mut(req) {
                    // The cascade kills `cascade` slots from `slot` to the
                    // pipeline tail: drop the youngest live ids ≥ slot.
                    let doomed: Vec<u64> = acc
                        .spec_live
                        .range(*slot..)
                        .rev()
                        .take(*cascade as usize)
                        .copied()
                        .collect();
                    for s in doomed {
                        acc.spec_live.remove(&s);
                    }
                }
            }
            TraceEventKind::SquashCharge {
                func,
                site,
                cascade,
                amount,
                ..
            } => {
                squash_total += *amount;
                let e = site_amt.entry(site).or_default();
                e.0 += *amount;
                e.1 += 1;
                *func_amt.entry(*func).or_default() += *amount;
                *cascade_amt.entry(*cascade).or_default() += *amount;
            }
            _ => {}
        }
    }

    let mut requests = Vec::new();
    let mut depth_hist: BTreeMap<u32, u64> = BTreeMap::new();
    let mut what_if = WhatIf::default();
    for (req, acc) in &reqs {
        let (Some(arrived), Some((terminal, completed))) = (acc.arrived, acc.terminal) else {
            continue;
        };
        let breakdown = sweep(arrived, terminal, &acc.spans);
        let ideal = acc
            .spans
            .iter()
            .filter(|(_, _, p)| *p == Phase::Execution)
            .map(|(s, e, _)| (*e).min(terminal).saturating_since((*s).max(arrived)))
            .max()
            .filter(|d| !d.is_zero())
            .unwrap_or(terminal - arrived);
        what_if.actual_total += terminal - arrived;
        what_if.ideal_total += ideal;
        *depth_hist.entry(acc.max_depth).or_default() += 1;
        requests.push(RequestPath {
            req: *req,
            arrived,
            terminal,
            completed,
            breakdown,
            ideal,
        });
    }

    let mut by_site: Vec<(String, SimDuration, u64)> = site_amt
        .into_iter()
        .map(|(s, (amt, n))| (s.to_string(), amt, n))
        .collect();
    by_site.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut by_func: Vec<(u32, SimDuration)> = func_amt.into_iter().collect();
    by_func.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    TraceAnalysis {
        requests,
        squash: SquashAttribution {
            total: squash_total,
            by_site,
            by_func,
            by_cascade: cascade_amt.into_iter().collect(),
        },
        depth: DepthStats {
            histogram: depth_hist.into_iter().collect(),
        },
        what_if,
    }
}

/// Elementary-interval sweep: attributes every instant of
/// `[arrived, terminal]` to the highest-precedence phase covering it (or
/// the queue/other residual), so the buckets sum exactly.
fn sweep(
    arrived: SimTime,
    terminal: SimTime,
    spans: &[(SimTime, SimTime, Phase)],
) -> PhaseBreakdown {
    let mut cuts: BTreeSet<SimTime> = BTreeSet::new();
    cuts.insert(arrived);
    cuts.insert(terminal);
    let mut clipped: Vec<(SimTime, SimTime, Phase)> = Vec::with_capacity(spans.len());
    for (s, e, p) in spans {
        let s = (*s).max(arrived).min(terminal);
        let e = (*e).max(arrived).min(terminal);
        if s < e {
            cuts.insert(s);
            cuts.insert(e);
            clipped.push((s, e, *p));
        }
    }
    let mut out = PhaseBreakdown::default();
    let cuts: Vec<SimTime> = cuts.into_iter().collect();
    for w in cuts.windows(2) {
        let (a, b) = (w[0], w[1]);
        let len = b - a;
        let winner = PRECEDENCE.iter().find(|p| {
            clipped
                .iter()
                .any(|(s, e, q)| q == *p && *s <= a && *e >= b)
        });
        match winner {
            Some(p) => out.phases[phase_index(*p)] += len,
            None => out.queue_other += len,
        }
    }
    out
}

/// Aggregate of many request paths (for the per-app report table).
#[derive(Debug, Clone, Default)]
pub struct PathAggregate {
    /// Number of requests aggregated.
    pub count: u64,
    /// Summed phase buckets across all requests.
    pub breakdown: PhaseBreakdown,
    /// Summed end-to-end latency.
    pub latency_total: SimDuration,
}

impl PathAggregate {
    /// Aggregates a slice of request paths.
    pub fn of(paths: &[RequestPath]) -> Self {
        let mut agg = PathAggregate::default();
        for p in paths {
            agg.count += 1;
            for (i, d) in p.breakdown.phases.iter().enumerate() {
                agg.breakdown.phases[i] += *d;
            }
            agg.breakdown.queue_other += p.breakdown.queue_other;
            agg.latency_total += p.latency();
        }
        agg
    }

    /// Mean time in one phase, in fractional milliseconds.
    pub fn mean_phase_ms(&self, p: Phase) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.breakdown.phase(p).as_millis_f64() / self.count as f64
    }

    /// Mean unattributed (queue/other) time, in fractional milliseconds.
    pub fn mean_queue_ms(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.breakdown.queue_other.as_millis_f64() / self.count as f64
    }

    /// Mean end-to-end latency, in fractional milliseconds.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.latency_total.as_millis_f64() / self.count as f64
    }
}

/// Convenience for tests and the profile binary: per-request exactness of
/// the decomposition. Returns the ids of requests whose buckets do *not*
/// sum to their latency (always empty unless the sweep is broken).
pub fn check_paths_exact(analysis: &TraceAnalysis) -> Vec<u64> {
    analysis
        .requests
        .iter()
        .filter(|p| p.breakdown.total() != p.latency())
        .map(|p| p.req)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn arrival(at: u64, req: u64) -> TraceEvent {
        TraceEvent {
            at: t(at),
            kind: TraceEventKind::RequestArrival { req },
        }
    }

    fn terminal(at: u64, req: u64, completed: bool) -> TraceEvent {
        TraceEvent {
            at: t(at),
            kind: TraceEventKind::Terminal { req, completed },
        }
    }

    fn span(s: u64, e: u64, req: u64, phase: Phase) -> TraceEvent {
        TraceEvent {
            at: t(s),
            kind: TraceEventKind::Span {
                req,
                func: 0,
                node: 0,
                phase,
                end: t(e),
            },
        }
    }

    #[test]
    fn breakdown_sums_to_latency_with_overlap_and_gaps() {
        let events = [
            arrival(0, 1),
            span(1, 5, 1, Phase::Platform),
            // Execution overlaps platform: precedence gives it the overlap.
            span(3, 8, 1, Phase::Execution),
            span(20, 30, 1, Phase::Transfer), // clipped at terminal
            terminal(25, 1, true),
        ];
        let a = analyze(&events);
        assert_eq!(a.requests.len(), 1);
        let p = &a.requests[0];
        assert_eq!(p.latency(), SimDuration::from_millis(25));
        assert_eq!(p.breakdown.total(), p.latency());
        assert_eq!(
            p.breakdown.phase(Phase::Execution),
            SimDuration::from_millis(5)
        );
        assert_eq!(
            p.breakdown.phase(Phase::Platform),
            SimDuration::from_millis(2)
        );
        assert_eq!(
            p.breakdown.phase(Phase::Transfer),
            SimDuration::from_millis(5)
        );
        // 0..1 gap + 8..20 gap = 13 ms unattributed.
        assert_eq!(p.breakdown.queue_other, SimDuration::from_millis(13));
        assert!(check_paths_exact(&a).is_empty());
    }

    #[test]
    fn squash_attribution_groups_and_totals() {
        let charge = |site: &'static str, func: u32, cascade: u32, ms: u64| TraceEvent {
            at: t(1),
            kind: TraceEventKind::SquashCharge {
                req: 0,
                func,
                site,
                cascade,
                amount: SimDuration::from_millis(ms),
            },
        };
        let events = [
            charge("wrong_path", 2, 3, 10),
            charge("wrong_path", 3, 3, 5),
            charge("teardown", 2, 0, 1),
        ];
        let a = analyze(&events);
        assert_eq!(a.squash.total, SimDuration::from_millis(16));
        assert_eq!(a.squash.by_site[0].0, "wrong_path");
        assert_eq!(a.squash.by_site[0].1, SimDuration::from_millis(15));
        assert_eq!(a.squash.by_site[0].2, 2);
        assert_eq!(a.squash.by_func[0], (2, SimDuration::from_millis(11)));
        assert_eq!(
            a.squash.by_cascade,
            vec![
                (0, SimDuration::from_millis(1)),
                (3, SimDuration::from_millis(15))
            ]
        );
    }

    #[test]
    fn depth_waterfall_tracks_launch_commit_squash() {
        let launch = |at: u64, slot: u64, speculative: bool| TraceEvent {
            at: t(at),
            kind: TraceEventKind::SlotLaunch {
                req: 0,
                slot,
                func: 0,
                speculative,
            },
        };
        let commit = |at: u64, slot: u64| TraceEvent {
            at: t(at),
            kind: TraceEventKind::Commit {
                req: 0,
                slot,
                func: 0,
            },
        };
        let events = [
            arrival(0, 0),
            launch(1, 0, false),
            launch(2, 1, true),
            launch(3, 2, true), // depth 2
            commit(4, 1),
            commit(5, 2),
            terminal(6, 0, true),
        ];
        let a = analyze(&events);
        assert_eq!(a.depth.histogram, vec![(2, 1)]);
        assert_eq!(a.depth.max_depth(), 2);
    }

    #[test]
    fn what_if_bound_uses_longest_execution_span() {
        let events = [
            arrival(0, 0),
            span(0, 4, 0, Phase::Execution),
            span(4, 6, 0, Phase::Execution),
            terminal(10, 0, true),
        ];
        let a = analyze(&events);
        // actual 10 ms, ideal 4 ms → bound 2.5x.
        assert!((a.what_if.speedup_bound() - 2.5).abs() < 1e-12);
        assert_eq!(a.requests[0].ideal, SimDuration::from_millis(4));
    }

    #[test]
    fn unterminated_requests_are_skipped() {
        let events = [arrival(0, 0), arrival(0, 1), terminal(5, 1, false)];
        let a = analyze(&events);
        assert_eq!(a.requests.len(), 1);
        assert_eq!(a.requests[0].req, 1);
        assert!(!a.requests[0].completed);
    }
}
