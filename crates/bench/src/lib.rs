#![warn(missing_docs)]

//! # specfaas-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! SpecFaaS paper's evaluation (§VIII). One binary per artifact:
//!
//! | Binary   | Paper artifact |
//! |----------|----------------|
//! | `table1` | Table I — application-suite characterization |
//! | `fig3`   | Fig. 3 — cold-start response-time breakdown |
//! | `fig4`   | Fig. 4 — CDF of P50–P90 node CPU utilization |
//! | `obs2`   | Observation 2 — most-popular-sequence share |
//! | `obs34`  | Observations 3/4/5 — side-effect & blob-trace stats |
//! | `fig11`  | Fig. 11 — speedup per application × load |
//! | `fig12`  | Fig. 12 — speedup breakdown (cumulative ablation) |
//! | `table3` | Table III — effective throughput under QoS |
//! | `fig13`  | Fig. 13 — normalized P99 tail latency |
//! | `fig14`  | Fig. 14 — speedup vs branch-prediction hit rate |
//! | `table4` | Table IV — CPU utilization of squash mechanisms |
//! | `run_all`| everything above, in sequence |
//!
//! Two diagnostic binaries sit outside the paper's figure set:
//!
//! | Binary    | Purpose |
//! |-----------|---------|
//! | `faults`  | fault-injection ablation: fault-rate and retry-budget sweeps |
//! | `trace`   | flight recorder: invariant-checked run, `--trace` exports Chrome-trace JSON |
//! | `profile` | metrics registry + trace analytics: Prometheus/CSV export, critical paths, squash attribution |
//! | `scale`   | trace-driven multi-tenant scale runs: 10⁶+ requests across {10², 10³, 10⁴} tenants, guarded by `BENCH_scale.json` |
//!
//! The library half provides the shared measurement protocol
//! ([`runner`]), plain-text table rendering ([`report`]), and post-hoc
//! trace analytics ([`analysis`]).

pub mod analysis;
pub mod executor;
pub mod microbench;
pub mod report;
pub mod runner;
pub mod scale_guard;
pub mod wallclock_guard;

pub use executor::{run_cells, ExperimentCell};
pub use runner::{
    measure_baseline_open, measure_spec_open, prepared_baseline, prepared_spec, ExperimentParams,
};
