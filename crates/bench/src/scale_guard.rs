//! Regression guard for the committed scale-run artifact.
//!
//! `BENCH_scale.json` is the scale-mode perf contract: the trace-driven
//! multi-tenant engine must keep sustaining ~10⁶-request runs at fleet
//! tenant counts. This module parses the artifact (committed blessing and
//! fresh run) and checks the clauses CI enforces
//! (`scale --guard <committed.json>`):
//!
//! 1. **Throughput floor at 10³ tenants** — the slower of the two engines
//!    (baseline / speculative) must sustain at least
//!    [`THROUGHPUT_HEADROOM`] × the committed sim-requests/sec, and never
//!    fall below the absolute floor [`ABS_THROUGHPUT_FLOOR`]. The relative
//!    clause catches hot-path regressions; the absolute one catches a
//!    stale blessing.
//! 2. **Memory-growth ceiling between tenant tiers** — between adjacent
//!    tiers, peak model memory may grow at most linearly in the tenant
//!    count (× [`MEM_GROWTH_SLACK`]). Per-request state is slab-pooled
//!    and metrics are streaming, so memory must scale with *tenants*
//!    (directory + warm pool), never with *requests*. Checked on every
//!    artifact that carries ≥ 2 tiers — including the committed blessing,
//!    so a bad re-bless cannot sneak in super-linear growth.
//! 3. **Speculation still wins** — every tier's `speculation_win` must
//!    stay ≥ [`MIN_SPEC_WIN`]; losing the win at scale would mean the
//!    flow-level engine no longer reproduces the paper's effect.
//!
//! Like [`crate::wallclock_guard`], the parser is a minimal extractor for
//! the artifact's own fixed emitter, keeping the bench crate
//! dependency-free. Tier objects are emitted flat (no nested objects), so
//! naive `{`/`}` delimiting is sound.

/// One tenant tier's guarded fields.
#[derive(Debug, Clone, PartialEq)]
pub struct TierRow {
    /// Tenant count of this tier.
    pub tenants: u64,
    /// Requests driven through the tier.
    pub requests: u64,
    /// Baseline engine sim-requests per wall-clock second.
    pub baseline_rps: f64,
    /// Speculative engine sim-requests per wall-clock second.
    pub spec_rps: f64,
    /// Baseline peak model memory in bytes.
    pub baseline_mem: f64,
    /// Speculative peak model memory in bytes.
    pub spec_mem: f64,
    /// Baseline mean latency / spec mean latency.
    pub speculation_win: f64,
}

/// The parsed artifact: one row per tenant tier, ascending.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleArtifact {
    /// Tiers in ascending tenant order.
    pub tiers: Vec<TierRow>,
}

impl ScaleArtifact {
    /// The tier with exactly `tenants` tenants, if present.
    pub fn tier(&self, tenants: u64) -> Option<&TierRow> {
        self.tiers.iter().find(|t| t.tenants == tenants)
    }
}

/// Extracts the first number following `"key":` in `chunk`.
fn num_after(chunk: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let rest = &chunk[chunk.find(&needle)? + needle.len()..];
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses every tier object out of a scale artifact.
pub fn parse_artifact(json: &str) -> Result<ScaleArtifact, String> {
    let mut tiers = Vec::new();
    let mut rest = json;
    while let Some(open) = rest.find('{') {
        let body_start = open + 1;
        let Some(close) = rest[body_start..].find('}').map(|i| body_start + i) else {
            break;
        };
        let body = &rest[body_start..close];
        // A tier object carries both a tenant count and a win figure;
        // the top-level header object carries neither.
        if body.contains("\"tenants\":") && body.contains("\"speculation_win\":") {
            let get = |key: &str| -> Result<f64, String> {
                num_after(body, key).ok_or_else(|| format!("tier object missing `{key}`"))
            };
            tiers.push(TierRow {
                tenants: get("tenants")? as u64,
                requests: get("requests")? as u64,
                baseline_rps: get("baseline_req_per_sec")?,
                spec_rps: get("spec_req_per_sec")?,
                baseline_mem: get("baseline_peak_mem_bytes")?,
                spec_mem: get("spec_peak_mem_bytes")?,
                speculation_win: get("speculation_win")?,
            });
        }
        rest = &rest[close + 1..];
    }
    if tiers.is_empty() {
        return Err("no tier objects found in scale artifact".to_string());
    }
    tiers.sort_by_key(|t| t.tenants);
    Ok(ScaleArtifact { tiers })
}

/// The tenant tier the throughput clauses anchor on.
pub const GUARD_TIER: u64 = 1_000;
/// Fraction of the committed throughput the current run must retain.
/// Generous because CI hosts are noisy and often single-core-throttled.
pub const THROUGHPUT_HEADROOM: f64 = 0.35;
/// Absolute floor on sim-requests/sec at the guard tier. A 10⁶-request
/// run must finish in well under a CI-feasible minute per engine.
pub const ABS_THROUGHPUT_FLOOR: f64 = 30_000.0;
/// Memory between adjacent tiers may grow at most linearly in the tenant
/// ratio, times this slack (hash-map load factors, LRU set reblancing).
pub const MEM_GROWTH_SLACK: f64 = 1.25;
/// Minimum speculation win (baseline mean / spec mean) at every tier.
pub const MIN_SPEC_WIN: f64 = 1.15;

/// Slower of the two engines at a tier — the figure the throughput
/// clauses bound.
fn min_rps(t: &TierRow) -> f64 {
    t.baseline_rps.min(t.spec_rps)
}

fn check_mem_growth(label: &str, art: &ScaleArtifact, violations: &mut Vec<String>) {
    for w in art.tiers.windows(2) {
        let (lo, hi) = (&w[0], &w[1]);
        let tenant_ratio = hi.tenants as f64 / lo.tenants as f64;
        let mem_lo = lo.baseline_mem.max(lo.spec_mem);
        let mem_hi = hi.baseline_mem.max(hi.spec_mem);
        if mem_lo <= 0.0 {
            continue;
        }
        let growth = mem_hi / mem_lo;
        let limit = tenant_ratio * MEM_GROWTH_SLACK;
        if growth > limit {
            violations.push(format!(
                "{label}: peak memory grew {growth:.2}x from {} to {} tenants \
                 (limit {limit:.2}x = tenant ratio {tenant_ratio:.0}x * {MEM_GROWTH_SLACK})",
                lo.tenants, hi.tenants
            ));
        }
    }
}

/// Evaluates every guard clause; returns human-readable violations
/// (empty = pass).
pub fn check(current: &ScaleArtifact, committed: &ScaleArtifact) -> Vec<String> {
    let mut violations = Vec::new();

    // Clause 1: throughput floor at the guard tier.
    match (current.tier(GUARD_TIER), committed.tier(GUARD_TIER)) {
        (Some(cur), Some(old)) => {
            let floor = min_rps(old) * THROUGHPUT_HEADROOM;
            if min_rps(cur) < floor {
                violations.push(format!(
                    "throughput at {GUARD_TIER} tenants: {:.0} req/s < floor {:.0} \
                     ({THROUGHPUT_HEADROOM} * committed {:.0})",
                    min_rps(cur),
                    floor,
                    min_rps(old)
                ));
            }
            if min_rps(cur) < ABS_THROUGHPUT_FLOOR {
                violations.push(format!(
                    "throughput at {GUARD_TIER} tenants: {:.0} req/s < absolute floor {:.0}",
                    min_rps(cur),
                    ABS_THROUGHPUT_FLOOR
                ));
            }
        }
        (None, _) => violations.push(format!(
            "current run has no {GUARD_TIER}-tenant tier (run `scale --tiers {GUARD_TIER}`)"
        )),
        (_, None) => violations.push(format!(
            "committed artifact has no {GUARD_TIER}-tenant tier"
        )),
    }

    // Clause 2: memory-growth ceiling between tiers, on both artifacts.
    if committed.tiers.len() >= 2 {
        check_mem_growth("committed", committed, &mut violations);
    }
    if current.tiers.len() >= 2 {
        check_mem_growth("current", current, &mut violations);
    }

    // Clause 3: speculation still wins at every tier of both artifacts.
    for (label, art) in [("committed", committed), ("current", current)] {
        for t in &art.tiers {
            if t.speculation_win < MIN_SPEC_WIN {
                violations.push(format!(
                    "{label}: speculation win {:.2}x at {} tenants < minimum {MIN_SPEC_WIN}x",
                    t.speculation_win, t.tenants
                ));
            }
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tier(tenants: u64, rps: f64, mem: f64, win: f64) -> String {
        format!(
            "{{ \"tenants\": {tenants}, \"requests\": 1000000, \
             \"baseline_req_per_sec\": {rps}, \"baseline_mean_ms\": 60.0, \
             \"baseline_peak_mem_bytes\": {mem}, \
             \"spec_req_per_sec\": {rps}, \"spec_mean_ms\": 25.0, \
             \"spec_peak_mem_bytes\": {mem}, \"speculation_win\": {win} }}"
        )
    }

    fn artifact(tiers: &[String]) -> String {
        format!(
            "{{ \"schema\": \"specfaas-scale-v1\", \"seed\": 64133, \"tiers\": [\n{}\n] }}",
            tiers.join(",\n")
        )
    }

    fn healthy() -> String {
        artifact(&[
            tier(100, 300_000.0, 2_000_000.0, 2.0),
            tier(1_000, 250_000.0, 8_000_000.0, 2.1),
            tier(10_000, 200_000.0, 60_000_000.0, 1.9),
        ])
    }

    #[test]
    fn parses_all_tiers_in_ascending_order() {
        let art = parse_artifact(&healthy()).unwrap();
        assert_eq!(art.tiers.len(), 3);
        assert_eq!(art.tiers[0].tenants, 100);
        assert_eq!(art.tiers[2].tenants, 10_000);
        assert_eq!(art.tier(1_000).unwrap().baseline_rps, 250_000.0);
    }

    #[test]
    fn healthy_artifact_passes_against_itself() {
        let art = parse_artifact(&healthy()).unwrap();
        assert!(check(&art, &art).is_empty());
    }

    #[test]
    fn throughput_collapse_fires_clause_1() {
        let committed = parse_artifact(&healthy()).unwrap();
        let slow = artifact(&[
            tier(100, 300_000.0, 2_000_000.0, 2.0),
            tier(1_000, 40_000.0, 8_000_000.0, 2.1), // < 0.35 * 250k
            tier(10_000, 200_000.0, 60_000_000.0, 1.9),
        ]);
        let current = parse_artifact(&slow).unwrap();
        let v = check(&current, &committed);
        assert!(
            v.iter().any(|m| m.contains("throughput at 1000 tenants")),
            "{v:?}"
        );
    }

    #[test]
    fn absolute_floor_fires_even_with_slow_blessing() {
        // A stale blessing of 50k req/s would let 0.35x = 17.5k pass the
        // relative clause; the absolute floor still catches it.
        let slow_bless = artifact(&[tier(1_000, 50_000.0, 8_000_000.0, 2.0)]);
        let slower = artifact(&[tier(1_000, 20_000.0, 8_000_000.0, 2.0)]);
        let v = check(
            &parse_artifact(&slower).unwrap(),
            &parse_artifact(&slow_bless).unwrap(),
        );
        assert!(v.iter().any(|m| m.contains("absolute floor")), "{v:?}");
    }

    #[test]
    fn superlinear_memory_growth_fires_clause_2() {
        let committed = parse_artifact(&healthy()).unwrap();
        let bloated = artifact(&[
            tier(100, 300_000.0, 2_000_000.0, 2.0),
            // 100x memory for 10x tenants: request-proportional state leaked in.
            tier(1_000, 250_000.0, 200_000_000.0, 2.1),
            tier(10_000, 200_000.0, 2_000_000_000.0, 1.9),
        ]);
        let current = parse_artifact(&bloated).unwrap();
        let v = check(&current, &committed);
        assert!(v.iter().any(|m| m.contains("peak memory grew")), "{v:?}");
    }

    #[test]
    fn lost_speculation_win_fires_clause_3() {
        let committed = parse_artifact(&healthy()).unwrap();
        let flat = artifact(&[tier(1_000, 250_000.0, 8_000_000.0, 1.01)]);
        let current = parse_artifact(&flat).unwrap();
        let v = check(&current, &committed);
        assert!(v.iter().any(|m| m.contains("speculation win")), "{v:?}");
    }

    #[test]
    fn missing_guard_tier_is_a_violation() {
        let committed = parse_artifact(&healthy()).unwrap();
        let only_small = artifact(&[tier(100, 300_000.0, 2_000_000.0, 2.0)]);
        let current = parse_artifact(&only_small).unwrap();
        let v = check(&current, &committed);
        assert!(v.iter().any(|m| m.contains("no 1000-tenant tier")), "{v:?}");
    }

    #[test]
    fn garbage_fails_to_parse() {
        assert!(parse_artifact("{}").is_err());
        assert!(parse_artifact("not json at all").is_err());
    }

    #[test]
    fn committed_artifact_parses() {
        // The blessing checked into the repo must stay parseable; skip
        // quietly if it does not exist yet (first generation).
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");
        if let Ok(json) = std::fs::read_to_string(path) {
            let art = parse_artifact(&json).expect("committed BENCH_scale.json parses");
            assert!(art.tier(100).is_some());
            assert!(art.tier(1_000).is_some());
            assert!(art.tier(10_000).is_some());
            assert!(check(&art, &art).is_empty(), "blessing passes vs itself");
        }
    }
}
