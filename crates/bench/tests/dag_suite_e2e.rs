//! End-to-end coverage for the DAG suite (MapReduce word count,
//! ML-inference pipeline, FINRA-style validation).
//!
//! * the suite characterization at a fixed seed matches a checked-in
//!   golden rendering (re-bless with `BLESS_GOLDEN=1`),
//! * squash attribution recovered from the trace reconciles exactly
//!   with the engine's Table-IV squashed-CPU ledger for every DAG app,
//! * instrumented runs (tracer + metrics registry armed, fault injector
//!   enabled with an all-zero plan) are bit-identical to plain runs —
//!   observability and fault plumbing must not perturb wide fork/joins.

use specfaas_apps::characterize::characterize_suite;
use specfaas_bench::analysis::analyze;
use specfaas_bench::runner::{instrumented_closed, prepared_baseline, prepared_spec};
use specfaas_core::SpecConfig;
use specfaas_sim::timeseries::MetricsRegistry;
use specfaas_sim::{FaultPlan, RetryPolicy, SimDuration};

const SEED: u64 = 0xDA6;
const TRAIN: u64 = 100;
const REQUESTS: u64 = 60;

fn policy() -> RetryPolicy {
    RetryPolicy::default()
        .with_max_attempts(8)
        .with_timeout(SimDuration::from_secs(2))
}

#[test]
fn characterization_matches_golden_file() {
    let suite = specfaas_apps::suite_named("DAG");
    let c = characterize_suite(&suite, 1);
    let mut got = String::new();
    got.push_str(&format!("suite: {}\n", c.suite));
    got.push_str(&format!("workflow_type: {}\n", c.workflow_type));
    got.push_str(&format!("applications: {}\n", c.applications));
    got.push_str(&format!("avg_functions: {:.2}\n", c.avg_functions));
    match c.avg_branches {
        Some(b) => got.push_str(&format!("avg_branches: {b:.2}\n")),
        None => got.push_str("avg_branches: -\n"),
    }
    got.push_str(&format!("avg_data_deps: {:.2}\n", c.avg_data_deps));
    match c.avg_callees_per_caller {
        Some(v) => got.push_str(&format!("avg_callees_per_caller: {v:.2}\n")),
        None => got.push_str("avg_callees_per_caller: -\n"),
    }
    got.push_str(&format!("max_dag_depth: {}\n", c.max_dag_depth));
    got.push_str(&format!("avg_exec_time_ms: {:.2}\n", c.avg_exec_time_ms));

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/dag_suite_characterization.txt"
    );
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        std::fs::write(path, &got).expect("failed to bless golden file");
        return;
    }
    let want = std::fs::read_to_string(path)
        .expect("golden file missing; run with BLESS_GOLDEN=1 to create it");
    assert_eq!(
        got, want,
        "DAG suite characterization drifted from the golden file; \
         re-bless with BLESS_GOLDEN=1 if the change is intentional"
    );
}

#[test]
fn squash_ledger_reconciles_for_every_dag_app() {
    for bundle in specfaas_apps::suite_named("DAG").apps {
        let gen = bundle.make_input.clone();
        let (tracer, _, m) = instrumented_closed(
            &mut prepared_spec(&bundle, SpecConfig::full(), SEED, TRAIN),
            FaultPlan::none(),
            policy(),
            MetricsRegistry::recording(),
            REQUESTS,
            move |r| gen(r),
        );
        let name = &bundle.app.name;
        assert!(
            tracer.violations().is_empty(),
            "{name}: invariant violations: {:?}",
            tracer.violations()
        );
        let a = analyze(tracer.events());
        assert_eq!(
            a.squash.total, m.squashed_core_time,
            "{name}: attributed squash total != Table-IV ledger"
        );
        let by_site: SimDuration = a.squash.by_site.iter().map(|(_, amt, _)| *amt).sum();
        assert_eq!(
            by_site, a.squash.total,
            "{name}: per-site attribution does not sum to the total"
        );
    }
}

#[test]
fn instrumented_runs_are_bit_identical_to_plain_runs() {
    for bundle in specfaas_apps::suite_named("DAG").apps {
        let name = bundle.app.name.clone();
        for engine in ["spec", "baseline"] {
            // Plain: no tracer, no registry, no fault layer.
            let plain = {
                let gen = bundle.make_input.clone();
                match engine {
                    "spec" => prepared_spec(&bundle, SpecConfig::full(), SEED, TRAIN)
                        .run_closed(REQUESTS, move |r| gen(r)),
                    _ => prepared_baseline(&bundle, SEED).run_closed(REQUESTS, move |r| gen(r)),
                }
            };
            // Instrumented: tracer + recording registry + an enabled
            // fault injector whose plan never fires.
            let gen = bundle.make_input.clone();
            let (tracer, _, recorded) = match engine {
                "spec" => instrumented_closed(
                    &mut prepared_spec(&bundle, SpecConfig::full(), SEED, TRAIN),
                    FaultPlan::none(),
                    policy(),
                    MetricsRegistry::recording(),
                    REQUESTS,
                    move |r| gen(r),
                ),
                _ => instrumented_closed(
                    &mut prepared_baseline(&bundle, SEED),
                    FaultPlan::none(),
                    policy(),
                    MetricsRegistry::recording(),
                    REQUESTS,
                    move |r| gen(r),
                ),
            };
            let label = format!("{name}/{engine}");
            assert!(tracer.violations().is_empty(), "{label}: violations");
            assert_eq!(plain.completed, recorded.completed, "{label}: completed");
            assert_eq!(plain.failed, recorded.failed, "{label}: failed");
            assert_eq!(
                plain.useful_core_time, recorded.useful_core_time,
                "{label}: useful core-time"
            );
            assert_eq!(
                plain.squashed_core_time, recorded.squashed_core_time,
                "{label}: squashed core-time"
            );
            assert_eq!(
                plain.latency.mean_ms(),
                recorded.latency.mean_ms(),
                "{label}: mean latency"
            );
            assert_eq!(
                plain.records.len(),
                recorded.records.len(),
                "{label}: record count"
            );
            for (i, (rp, rr)) in plain.records.iter().zip(&recorded.records).enumerate() {
                assert_eq!(rp.outcome, rr.outcome, "{label}: request {i} outcome");
                assert_eq!(rp.sequence, rr.sequence, "{label}: request {i} sequence");
            }
        }
    }
}

/// Speculation must actually pay off on the DAG shapes: a trained spec
/// engine beats the baseline end-to-end on every app in the suite.
#[test]
fn trained_spec_beats_baseline_on_every_dag_app() {
    for bundle in specfaas_apps::suite_named("DAG").apps {
        let gen = bundle.make_input.clone();
        let mb = prepared_baseline(&bundle, SEED).run_closed(REQUESTS, move |r| gen(r));
        let gen = bundle.make_input.clone();
        let ms = prepared_spec(&bundle, SpecConfig::full(), SEED, TRAIN)
            .run_closed(REQUESTS, move |r| gen(r));
        let (b, s) = (mb.latency.mean_ms(), ms.latency.mean_ms());
        assert!(
            s < b,
            "{}: trained spec mean latency {s:.2}ms not below baseline {b:.2}ms",
            bundle.app.name
        );
    }
}
