//! End-to-end tests for the metrics registry and trace analytics
//! (DESIGN.md, "Observability").
//!
//! For one representative application per suite these tests assert that
//!
//! * arming the metrics registry leaves `RunMetrics` bit-identical for
//!   both engines (sampling never touches the RNG or the event queue),
//! * two same-seed runs produce byte-identical Prometheus and CSV
//!   exports,
//! * the Prometheus exposition for a fixed app and seed matches a
//!   checked-in golden file (re-bless with `BLESS_GOLDEN=1`),
//! * squash attribution recovered from the trace reconciles exactly
//!   with the engine's squashed-CPU ledger (Table IV), and
//! * per-request critical-path phase buckets sum exactly to the
//!   end-to-end latency.

use specfaas_bench::analysis::{analyze, check_paths_exact};
use specfaas_bench::runner::{instrumented_closed, prepared_baseline, prepared_spec};
use specfaas_core::SpecConfig;
use specfaas_platform::RunMetrics;
use specfaas_sim::timeseries::MetricsRegistry;
use specfaas_sim::trace::Tracer;
use specfaas_sim::{FaultPlan, RetryPolicy, SimDuration};

const SEED: u64 = 0x7ace;
const TRAIN: u64 = 120;
const REQUESTS: u64 = 80;

fn plan() -> FaultPlan {
    FaultPlan::none()
        .with_container_crash(0.02)
        .with_kv_get(0.01)
        .with_kv_set(0.01)
        .with_hang(0.002)
}

fn policy() -> RetryPolicy {
    RetryPolicy::default()
        .with_max_attempts(8)
        .with_timeout(SimDuration::from_secs(2))
}

/// One instrumented measurement pass. `engine` is `"spec"` or
/// `"baseline"`; `record` arms the registry (a disabled registry is
/// installed otherwise, which must be a no-op).
fn instrumented_run(
    bundle: &specfaas_apps::AppBundle,
    engine: &str,
    record: bool,
) -> (Tracer, MetricsRegistry, RunMetrics) {
    let registry = if record {
        MetricsRegistry::recording()
    } else {
        MetricsRegistry::disabled()
    };
    let gen = bundle.make_input.clone();
    match engine {
        "spec" => instrumented_closed(
            &mut prepared_spec(bundle, SpecConfig::full(), SEED, TRAIN),
            plan(),
            policy(),
            registry,
            REQUESTS,
            move |r| gen(r),
        ),
        "baseline" => instrumented_closed(
            &mut prepared_baseline(bundle, SEED),
            plan(),
            policy(),
            registry,
            REQUESTS,
            move |r| gen(r),
        ),
        other => panic!("unknown engine {other}"),
    }
}

fn assert_metrics_eq(a: &RunMetrics, b: &RunMetrics, label: &str) {
    assert_eq!(a.completed, b.completed, "{label}: completed diverged");
    assert_eq!(a.failed, b.failed, "{label}: failed diverged");
    assert_eq!(
        a.useful_core_time, b.useful_core_time,
        "{label}: useful core-time diverged"
    );
    assert_eq!(
        a.squashed_core_time, b.squashed_core_time,
        "{label}: squashed core-time diverged"
    );
    assert_eq!(
        a.latency.mean_ms(),
        b.latency.mean_ms(),
        "{label}: latency diverged"
    );
    assert_eq!(
        a.p99_response_ms(),
        b.p99_response_ms(),
        "{label}: streaming p99 diverged"
    );
}

#[test]
fn registry_is_invisible_to_run_metrics_on_both_engines() {
    for suite in specfaas_apps::all_suites() {
        let bundle = &suite.apps[0];
        for engine in ["spec", "baseline"] {
            let label = format!("{}/{}/{engine}", suite.name, bundle.app.name);
            let (_, _, plain) = instrumented_run(bundle, engine, false);
            let (_, registry, recorded) = instrumented_run(bundle, engine, true);
            assert!(registry.enabled(), "{label}: registry not armed");
            assert_metrics_eq(&plain, &recorded, &label);
        }
    }
}

#[test]
fn same_seed_runs_emit_byte_identical_exports() {
    for suite in specfaas_apps::all_suites() {
        let bundle = &suite.apps[0];
        let label = format!("{}/{}", suite.name, bundle.app.name);
        let (_, ra, _) = instrumented_run(bundle, "spec", true);
        let (_, rb, _) = instrumented_run(bundle, "spec", true);
        assert_eq!(
            ra.export_prometheus(),
            rb.export_prometheus(),
            "{label}: Prometheus exposition diverges"
        );
        assert_eq!(
            ra.export_csv(),
            rb.export_csv(),
            "{label}: CSV time series diverges"
        );
    }
}

#[test]
fn prometheus_exposition_matches_golden_file() {
    let bundle = specfaas_apps::faaschain::hotel_booking();
    let (_, registry, _) = instrumented_run(&bundle, "spec", true);
    let got = registry.export_prometheus();

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/hotel_booking_spec.prom"
    );
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        std::fs::write(path, &got).expect("failed to bless golden file");
        return;
    }
    let want = std::fs::read_to_string(path)
        .expect("golden file missing; run with BLESS_GOLDEN=1 to create it");
    assert_eq!(
        got, want,
        "Prometheus exposition drifted from the golden file; \
         re-bless with BLESS_GOLDEN=1 if the change is intentional"
    );
}

#[test]
fn squash_attribution_reconciles_with_engine_ledger() {
    let bundle = specfaas_apps::faaschain::hotel_booking();
    for engine in ["spec", "baseline"] {
        let (tracer, _, m) = instrumented_run(&bundle, engine, true);
        assert!(tracer.violations().is_empty(), "{engine}: violations");
        let a = analyze(tracer.events());
        assert_eq!(
            a.squash.total, m.squashed_core_time,
            "{engine}: attributed squash total != Table-IV ledger"
        );
        let by_site: SimDuration = a.squash.by_site.iter().map(|(_, amt, _)| *amt).sum();
        assert_eq!(
            by_site, a.squash.total,
            "{engine}: per-site attribution does not sum to the total"
        );
    }
}

#[test]
fn critical_path_phases_sum_to_latency() {
    for suite in specfaas_apps::all_suites() {
        let bundle = &suite.apps[0];
        for engine in ["spec", "baseline"] {
            let label = format!("{}/{}/{engine}", suite.name, bundle.app.name);
            let (tracer, _, m) = instrumented_run(bundle, engine, true);
            let a = analyze(tracer.events());
            assert!(
                !a.requests.is_empty(),
                "{label}: no request paths recovered"
            );
            assert_eq!(
                a.requests.len() as u64,
                m.completed + m.failed,
                "{label}: path count != terminal requests"
            );
            let broken = check_paths_exact(&a);
            assert!(
                broken.is_empty(),
                "{label}: phase buckets do not sum to latency for {broken:?}"
            );
        }
    }
}
