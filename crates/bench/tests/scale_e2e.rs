//! End-to-end checks of the trace-driven multi-tenant scale engine as the
//! `scale` binary drives it: real application templates, both engines,
//! determinism, and the constant-memory property that makes 10⁶–10⁷
//! request runs feasible.

use std::sync::Arc;

use specfaas_apps::all_app_specs;
use specfaas_platform::fleet::{ScaleConfig, ScaleEngine, ScaleStats, TemplateProfile};
use specfaas_sim::tracegen::TraceConfig;

fn templates() -> Vec<Arc<TemplateProfile>> {
    all_app_specs()
        .iter()
        .map(|a| Arc::new(TemplateProfile::from_app(a)))
        .collect()
}

fn run(tenants: u32, requests: u64, seed: u64, speculative: bool) -> ScaleStats {
    let trace = TraceConfig::new(tenants, requests, seed);
    let cfg = ScaleConfig::new(trace, speculative);
    ScaleEngine::new(cfg, templates()).run()
}

/// A fingerprint of everything that must be reproducible run-to-run (and
/// therefore across `--jobs`, since cells are independent and reported in
/// submission order).
fn fingerprint(s: &ScaleStats) -> Vec<u64> {
    vec![
        s.completed,
        s.sim_span.as_micros(),
        s.latency.count(),
        s.latency.quantile_ms(0.50).to_bits(),
        s.latency.quantile_ms(0.99).to_bits(),
        s.mean_ms().to_bits(),
        s.cold_starts,
        s.warm_starts,
        s.evictions,
        s.wasted_core_us,
        s.busy_core_us,
        s.peak_live as u64,
        s.peak_mem_bytes,
    ]
}

#[test]
fn quick_run_completes_and_speculation_wins() {
    let base = run(50, 20_000, 7, false);
    let spec = run(50, 20_000, 7, true);
    assert_eq!(base.completed, 20_000);
    assert_eq!(spec.completed, 20_000);
    // Warmup requests are excluded from the latency distribution.
    assert_eq!(base.latency.count(), 20_000 - 1_000);
    // Prewarmed pool + cold-start coalescing: steady state runs warm.
    assert!(base.cold_rate() < 0.10, "cold rate {}", base.cold_rate());
    // Speculative overlap must beat the sequential baseline at flow level.
    let win = base.mean_ms() / spec.mean_ms();
    assert!(win > 1.2, "speculation win {win:.2} <= 1.2");
    // Baseline never squashes; speculation wastes a bounded fraction.
    assert_eq!(base.wasted_core_us, 0);
    assert!(spec.wasted_frac() < 0.25, "wasted {}", spec.wasted_frac());
}

#[test]
fn repeated_runs_are_byte_identical() {
    for speculative in [false, true] {
        let a = run(80, 15_000, 0xFA5C, speculative);
        let b = run(80, 15_000, 0xFA5C, speculative);
        assert_eq!(fingerprint(&a), fingerprint(&b), "spec={speculative}");
    }
}

#[test]
fn different_seeds_give_different_runs() {
    let a = run(80, 15_000, 1, true);
    let b = run(80, 15_000, 2, true);
    assert_ne!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn memory_is_constant_in_request_count() {
    // The whole point of streaming metrics and the slab: a 3x longer
    // trace must not grow the footprint materially (the histogram may
    // touch a few more buckets; the slab high-water mark may wiggle).
    let short = run(100, 20_000, 11, true);
    let long = run(100, 60_000, 11, true);
    let ratio = long.peak_mem_bytes as f64 / short.peak_mem_bytes as f64;
    assert!(
        ratio < 1.5,
        "peak mem grew {ratio:.2}x over a 3x longer trace \
         ({} -> {} bytes)",
        short.peak_mem_bytes,
        long.peak_mem_bytes,
    );
}

#[test]
fn memory_grows_sublinearly_with_tenants() {
    // Per-tenant state is a few interned words plus warm-pool slots, so
    // 10x the tenants must cost well under 10x the memory.
    let small = run(50, 10_000, 3, true);
    let big = run(500, 10_000, 3, true);
    let ratio = big.peak_mem_bytes as f64 / small.peak_mem_bytes as f64;
    assert!(
        ratio < 8.0,
        "peak mem grew {ratio:.2}x for 10x tenants \
         ({} -> {} bytes)",
        small.peak_mem_bytes,
        big.peak_mem_bytes,
    );
}
