//! End-to-end flight-recorder tests (DESIGN.md, "Observability").
//!
//! For one representative application per suite (FaaSChain, TrainTicket,
//! Alibaba) these tests run the speculative engine with the invariant
//! checker armed under a survivable fault plan and assert that
//!
//! * no invariant trips (commit order, leaked slots, core-time
//!   conservation, memo capacity),
//! * the Chrome-trace export parses,
//! * two same-seed runs produce byte-identical traces, and
//! * installing a disabled tracer leaves run metrics bit-identical.

use specfaas_bench::runner::{prepared_baseline, prepared_spec, traced_closed};
use specfaas_core::SpecConfig;
use specfaas_platform::RunMetrics;
use specfaas_sim::trace::{validate_json, Tracer};
use specfaas_sim::{FaultPlan, RetryPolicy, SimDuration};

const SEED: u64 = 0x7ace;
const TRAIN: u64 = 120;
const REQUESTS: u64 = 80;

fn plan() -> FaultPlan {
    FaultPlan::none()
        .with_container_crash(0.02)
        .with_kv_get(0.01)
        .with_kv_set(0.01)
        .with_hang(0.002)
}

fn policy() -> RetryPolicy {
    RetryPolicy::default()
        .with_max_attempts(8)
        .with_timeout(SimDuration::from_secs(2))
}

/// Runs one traced speculative measurement pass and returns the tracer
/// (with any recorded violations) plus the run metrics.
fn traced_spec_run(bundle: &specfaas_apps::AppBundle) -> (Tracer, RunMetrics) {
    let gen = bundle.make_input.clone();
    traced_closed(
        &mut prepared_spec(bundle, SpecConfig::full(), SEED, TRAIN),
        plan(),
        policy(),
        REQUESTS,
        move |r| gen(r),
    )
}

fn assert_clean(tracer: &Tracer, label: &str) {
    assert!(
        tracer.violations().is_empty(),
        "{label}: invariant violations: {:#?}",
        tracer.violations()
    );
    assert!(
        !tracer.events().is_empty(),
        "{label}: tracer recorded no events"
    );
    let json = tracer.export_chrome_json();
    validate_json(&json).unwrap_or_else(|e| panic!("{label}: bad trace JSON: {e}"));
}

#[test]
fn invariants_hold_across_all_suites_under_faults() {
    for suite in specfaas_apps::all_suites() {
        let bundle = &suite.apps[0];
        let label = format!("{}/{}", suite.name, bundle.app.name);
        let (tracer, m) = traced_spec_run(bundle);
        assert_clean(&tracer, &label);
        assert!(m.completed > 0, "{label}: no requests completed");
    }
}

#[test]
fn same_seed_runs_emit_byte_identical_traces() {
    for suite in specfaas_apps::all_suites() {
        let bundle = &suite.apps[0];
        let label = format!("{}/{}", suite.name, bundle.app.name);
        let (a, _) = traced_spec_run(bundle);
        let (b, _) = traced_spec_run(bundle);
        assert_eq!(a.events(), b.events(), "{label}: event streams diverge");
        assert_eq!(
            a.export_chrome_json(),
            b.export_chrome_json(),
            "{label}: exported JSON diverges"
        );
    }
}

#[test]
fn baseline_engine_passes_invariants_under_faults() {
    let bundle = specfaas_apps::faaschain::hotel_booking();
    let gen = bundle.make_input.clone();
    let (tracer, m) = traced_closed(
        &mut prepared_baseline(&bundle, SEED),
        plan(),
        policy(),
        REQUESTS,
        move |r| gen(r),
    );
    assert_clean(&tracer, "Baseline/HotelBooking");
    assert!(m.completed > 0);
}

#[test]
fn disabled_tracer_leaves_metrics_bit_identical() {
    let bundle = specfaas_apps::trainticket::ticket_app();

    let run = |install_disabled: bool| -> RunMetrics {
        let mut spec = prepared_spec(&bundle, SpecConfig::full(), SEED, TRAIN);
        spec.enable_faults(plan(), policy());
        if install_disabled {
            spec.set_tracer(Tracer::disabled());
        }
        let gen = bundle.make_input.clone();
        spec.run_closed(REQUESTS, move |r| gen(r))
    };

    let plain = run(false);
    let traced = run(true);
    assert_eq!(plain.completed, traced.completed);
    assert_eq!(plain.failed, traced.failed);
    assert_eq!(plain.useful_core_time, traced.useful_core_time);
    assert_eq!(plain.squashed_core_time, traced.squashed_core_time);
    assert_eq!(plain.latency.mean_ms(), traced.latency.mean_ms());
}
