//! Cross-engine equivalence: speculation must be semantically invisible.
//!
//! For every suite application and several seeds, the speculative engine
//! and the baseline engine are fed the *same* pre-generated input
//! sequence, one request at a time. Speculation may only change *when*
//! work happens (latencies and core-time differ by design) — never *what*
//! is computed. So after the run both engines must agree on
//!
//! * the final KV-store state (every key and value),
//! * which requests completed vs. failed, and
//! * each request's committed function invocations (the observable
//!   control-flow path; compared as a multiset because parallel-stage
//!   siblings commit in a timing-dependent order on both engines).

use std::sync::Arc;

use specfaas_apps::AppBundle;
use specfaas_core::{PolicyConfig, SpecConfig, SpecEngine};
use specfaas_platform::{BaselineEngine, RequestOutcome, RunMetrics};
use specfaas_sim::SimRng;
use specfaas_storage::Value;

const REQUESTS: usize = 40;
const SEEDS: [u64; 3] = [1, 0xE0, 0xFAA5];

/// The same inputs for both engines, drawn from an RNG *outside* either
/// engine so neither engine's internal draws can skew the workload.
fn inputs_for(bundle: &AppBundle, seed: u64) -> Vec<Value> {
    let mut rng = SimRng::seed(seed);
    (0..REQUESTS)
        .map(|_| (bundle.make_input)(&mut rng))
        .collect()
}

/// Sorted dump of the final KV state (iteration order is not specified).
fn kv_dump(kv_pairs: Vec<(String, String)>) -> Vec<(String, String)> {
    let mut pairs = kv_pairs;
    pairs.sort();
    pairs
}

/// Runs `inputs` one request at a time and returns the run metrics plus
/// the final KV state.
fn run_baseline(
    bundle: &AppBundle,
    seed: u64,
    inputs: &[Value],
) -> (RunMetrics, Vec<(String, String)>) {
    let mut e = BaselineEngine::new(Arc::clone(&bundle.app), seed);
    e.prewarm();
    let mut rng = SimRng::seed(seed ^ 0x5eed);
    (bundle.seed)(&mut e.kv, &mut rng);
    for input in inputs {
        e.run_single(input.clone());
    }
    let m = e.run_closed(0, |_| Value::Null);
    let dump = kv_dump(
        e.kv.iter()
            .map(|(k, v)| (k.to_string(), format!("{v:?}")))
            .collect(),
    );
    (m, dump)
}

fn run_spec(
    bundle: &AppBundle,
    seed: u64,
    inputs: &[Value],
) -> (RunMetrics, Vec<(String, String)>) {
    let mut e = SpecEngine::new(Arc::clone(&bundle.app), SpecConfig::full(), seed);
    e.prewarm();
    let mut rng = SimRng::seed(seed ^ 0x5eed);
    (bundle.seed)(&mut e.kv, &mut rng);
    for input in inputs {
        e.run_single(input.clone());
    }
    let m = e.run_closed(0, |_| Value::Null);
    let dump = kv_dump(
        e.kv.iter()
            .map(|(k, v)| (k.to_string(), format!("{v:?}")))
            .collect(),
    );
    (m, dump)
}

#[test]
fn spec_and_baseline_agree_on_state_and_outputs() {
    for suite in specfaas_apps::all_suites() {
        for bundle in &suite.apps {
            for seed in SEEDS {
                let label = format!("{}/{}/seed={seed}", suite.name, bundle.app.name);
                let inputs = inputs_for(bundle, seed);
                let (mb, kb) = run_baseline(bundle, seed, &inputs);
                let (ms, ks) = run_spec(bundle, seed, &inputs);

                assert_eq!(
                    mb.completed, ms.completed,
                    "{label}: completed-request counts diverge"
                );
                assert_eq!(mb.failed, ms.failed, "{label}: failure counts diverge");
                assert_eq!(
                    mb.records.len(),
                    ms.records.len(),
                    "{label}: record counts diverge"
                );
                for (i, (rb, rs)) in mb.records.iter().zip(&ms.records).enumerate() {
                    assert_eq!(
                        rb.outcome, rs.outcome,
                        "{label}: request {i} outcome diverges"
                    );
                    // Parallel-stage siblings may commit in either order,
                    // so compare the committed invocations as a multiset.
                    let mut sb = rb.sequence.clone();
                    let mut ss = rs.sequence.clone();
                    sb.sort_unstable();
                    ss.sort_unstable();
                    assert_eq!(sb, ss, "{label}: request {i} committed functions diverge");
                    assert_eq!(
                        rb.outcome,
                        RequestOutcome::Completed,
                        "{label}: request {i} did not complete (fault-free run)"
                    );
                }
                assert_eq!(kb, ks, "{label}: final KV-store state diverges");
            }
        }
    }
}

/// Platform policies may only move *when* containers exist — never what
/// the workflow computes. Both engines under the same aggressive
/// non-default policy (round-robin placement, short-TTL unloading,
/// sequence-table prewarm) must still agree on outcomes, committed
/// function multisets and the final KV state.
#[test]
fn engines_agree_under_non_default_policy() {
    let policy = PolicyConfig::parse("place=round-robin+keepalive=ttl:150ms+prewarm=seq-table")
        .expect("policy spec parses");
    for suite in specfaas_apps::all_suites() {
        let bundle = &suite.apps[0];
        for seed in [1u64, 0xE0] {
            let label = format!(
                "{}/{}/seed={seed}/policy={}",
                suite.name,
                bundle.app.name,
                policy.label()
            );
            let inputs = inputs_for(bundle, seed);

            let mut be = BaselineEngine::new(Arc::clone(&bundle.app), seed);
            be.set_policies(&policy);
            be.prewarm();
            let mut rng = SimRng::seed(seed ^ 0x5eed);
            (bundle.seed)(&mut be.kv, &mut rng);
            for input in &inputs {
                be.run_single(input.clone());
            }
            let mb = be.run_closed(0, |_| Value::Null);

            let mut se = SpecEngine::new(Arc::clone(&bundle.app), SpecConfig::full(), seed);
            se.set_policies(&policy);
            se.prewarm();
            let mut rng = SimRng::seed(seed ^ 0x5eed);
            (bundle.seed)(&mut se.kv, &mut rng);
            for input in &inputs {
                se.run_single(input.clone());
            }
            let ms = se.run_closed(0, |_| Value::Null);

            assert_eq!(mb.completed, ms.completed, "{label}: completed diverge");
            assert_eq!(mb.failed, ms.failed, "{label}: failed diverge");
            for (i, (rb, rs)) in mb.records.iter().zip(&ms.records).enumerate() {
                assert_eq!(rb.outcome, rs.outcome, "{label}: request {i} outcome");
                let mut sb = rb.sequence.clone();
                let mut ss = rs.sequence.clone();
                sb.sort_unstable();
                ss.sort_unstable();
                assert_eq!(sb, ss, "{label}: request {i} committed functions");
            }
            let kb = kv_dump(
                be.kv
                    .iter()
                    .map(|(k, v)| (k.to_string(), format!("{v:?}")))
                    .collect(),
            );
            let ks = kv_dump(
                se.kv
                    .iter()
                    .map(|(k, v)| (k.to_string(), format!("{v:?}")))
                    .collect(),
            );
            assert_eq!(kb, ks, "{label}: final KV-store state diverges");
        }
    }
}

/// Speculation must stay invisible under training too: a spec engine
/// whose persistent tables were warmed by earlier invocations still
/// commits the same state as a cold one fed the same measured inputs.
#[test]
fn trained_spec_commits_the_same_state_as_cold_spec() {
    let bundle = specfaas_apps::faaschain::hotel_booking();
    let seed = 7u64;
    let inputs = inputs_for(&bundle, seed);

    let run = |train: u64| {
        let mut e = SpecEngine::new(Arc::clone(&bundle.app), SpecConfig::full(), seed);
        e.prewarm();
        let mut rng = SimRng::seed(seed ^ 0x5eed);
        (bundle.seed)(&mut e.kv, &mut rng);
        let gen = bundle.make_input.clone();
        e.run_closed(train, move |r| gen(r));
        // Reset storage so only the measured inputs shape the final state.
        e.kv.clear();
        let mut rng = SimRng::seed(seed ^ 0x5eed);
        (bundle.seed)(&mut e.kv, &mut rng);
        for input in &inputs {
            e.run_single(input.clone());
        }
        kv_dump(
            e.kv.iter()
                .map(|(k, v)| (k.to_string(), format!("{v:?}")))
                .collect(),
        )
    };

    assert_eq!(run(0), run(200), "training changed committed state");
}
