//! Cross-thread determinism, end to end: running an experiment binary
//! with `--jobs 4` must produce *byte-identical* stdout to the serial run.
//! Parallelism lives only in the harness — every cell is an independent,
//! seeded, single-threaded simulation — so any divergence here means a
//! cell ordering or shared-state bug in the executor.

use std::process::Command;

fn stdout_of(bin: &str, args: &[&str]) -> Vec<u8> {
    let out = Command::new(bin)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("failed to run {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} {args:?} failed: {}",
        out.status
    );
    out.stdout
}

#[test]
fn fig11_quick_parallel_output_is_byte_identical_to_serial() {
    let bin = env!("CARGO_BIN_EXE_fig11");
    let serial = stdout_of(bin, &["--quick", "--jobs", "1"]);
    let parallel = stdout_of(bin, &["--quick", "--jobs", "4"]);
    assert!(!serial.is_empty(), "fig11 produced no output");
    assert_eq!(
        serial,
        parallel,
        "fig11 --jobs 4 diverged from serial:\n--- serial ---\n{}\n--- jobs 4 ---\n{}",
        String::from_utf8_lossy(&serial),
        String::from_utf8_lossy(&parallel)
    );
}

#[test]
fn table1_parallel_output_is_byte_identical_to_serial() {
    let bin = env!("CARGO_BIN_EXE_table1");
    let serial = stdout_of(bin, &["--jobs", "1"]);
    let parallel = stdout_of(bin, &["--jobs", "3"]);
    assert!(!serial.is_empty(), "table1 produced no output");
    assert_eq!(serial, parallel, "table1 --jobs 3 diverged from serial");
}

/// The DAG suite rides the same determinism guarantee: two same-seed
/// `trace` runs of the wide fork/join word-count app must export
/// byte-identical Chrome-trace JSON.
#[test]
fn trace_export_for_dag_app_is_deterministic() {
    let bin = env!("CARGO_BIN_EXE_trace");
    let dir = std::env::temp_dir();
    let p1 = dir.join("specfaas_dag_trace_1.json");
    let p2 = dir.join("specfaas_dag_trace_2.json");
    for p in [&p1, &p2] {
        stdout_of(
            bin,
            &[
                "--app",
                "WordCount",
                "--requests",
                "40",
                "--trace",
                p.to_str().unwrap(),
            ],
        );
    }
    let a = std::fs::read(&p1).expect("first trace file");
    let b = std::fs::read(&p2).expect("second trace file");
    assert!(!a.is_empty(), "trace export is empty");
    assert_eq!(a, b, "same-seed trace exports differ for WordCount");
}
