//! Randomized DAG-topology equivalence fuzzing.
//!
//! The hand-built suites cover 19 fixed topologies; this test feeds
//! seeded *random* DAGs (bounded width/depth, wide fork/joins,
//! data-dependent branches, cross-boundary storage reads — see
//! `specfaas_apps::topology`) through the same cross-engine equivalence
//! harness as `equivalence_e2e`: for every generated app, the
//! speculative engine and the baseline must agree on final KV state,
//! request outcomes, and committed-function multisets.
//!
//! The seed budget is fixed (`DEFAULT_TOPOLOGIES`) so runs are
//! reproducible; set `FUZZ_TOPOLOGIES=<n>` to widen or narrow the sweep
//! (CI pins it explicitly).

use std::sync::Arc;

use specfaas_apps::AppBundle;
use specfaas_core::{SpecConfig, SpecEngine};
use specfaas_platform::{BaselineEngine, RequestOutcome, RunMetrics};
use specfaas_sim::SimRng;
use specfaas_storage::Value;

/// Topologies checked per run unless `FUZZ_TOPOLOGIES` overrides it.
const DEFAULT_TOPOLOGIES: u64 = 100;
/// Requests fed to each engine per topology.
const REQUESTS: usize = 12;
/// Base of the seed range, so fuzz seeds never collide with suite seeds.
const SEED_BASE: u64 = 0xDA6_0000;

fn budget() -> u64 {
    std::env::var("FUZZ_TOPOLOGIES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_TOPOLOGIES)
}

fn inputs_for(bundle: &AppBundle, seed: u64) -> Vec<Value> {
    let mut rng = SimRng::seed(seed);
    (0..REQUESTS)
        .map(|_| (bundle.make_input)(&mut rng))
        .collect()
}

fn kv_dump(kv_pairs: Vec<(String, String)>) -> Vec<(String, String)> {
    let mut pairs = kv_pairs;
    pairs.sort();
    pairs
}

fn run_baseline(
    bundle: &AppBundle,
    seed: u64,
    inputs: &[Value],
) -> (RunMetrics, Vec<(String, String)>) {
    let mut e = BaselineEngine::new(Arc::clone(&bundle.app), seed);
    e.prewarm();
    let mut rng = SimRng::seed(seed ^ 0x5eed);
    (bundle.seed)(&mut e.kv, &mut rng);
    for input in inputs {
        e.run_single(input.clone());
    }
    let m = e.run_closed(0, |_| Value::Null);
    let dump = kv_dump(
        e.kv.iter()
            .map(|(k, v)| (k.to_string(), format!("{v:?}")))
            .collect(),
    );
    (m, dump)
}

fn run_spec(
    bundle: &AppBundle,
    seed: u64,
    inputs: &[Value],
) -> (RunMetrics, Vec<(String, String)>) {
    let mut e = SpecEngine::new(Arc::clone(&bundle.app), SpecConfig::full(), seed);
    e.prewarm();
    let mut rng = SimRng::seed(seed ^ 0x5eed);
    (bundle.seed)(&mut e.kv, &mut rng);
    for input in inputs {
        e.run_single(input.clone());
    }
    let m = e.run_closed(0, |_| Value::Null);
    let dump = kv_dump(
        e.kv.iter()
            .map(|(k, v)| (k.to_string(), format!("{v:?}")))
            .collect(),
    );
    (m, dump)
}

#[test]
fn random_topologies_commit_identically_on_both_engines() {
    let n = budget();
    assert!(n > 0, "FUZZ_TOPOLOGIES must be positive");
    for t in 0..n {
        let topo_seed = SEED_BASE + t;
        let bundle = specfaas_apps::topology::random_bundle(topo_seed);
        let label = format!("topology seed {topo_seed:#x}");
        let inputs = inputs_for(&bundle, topo_seed);
        let (mb, kb) = run_baseline(&bundle, topo_seed, &inputs);
        let (ms, ks) = run_spec(&bundle, topo_seed, &inputs);

        assert_eq!(mb.completed, ms.completed, "{label}: completed diverge");
        assert_eq!(mb.failed, ms.failed, "{label}: failed diverge");
        assert_eq!(
            mb.records.len(),
            ms.records.len(),
            "{label}: record counts diverge"
        );
        for (i, (rb, rs)) in mb.records.iter().zip(&ms.records).enumerate() {
            assert_eq!(rb.outcome, rs.outcome, "{label}: request {i} outcome");
            assert_eq!(
                rb.outcome,
                RequestOutcome::Completed,
                "{label}: request {i} did not complete (fault-free run)"
            );
            let mut sb = rb.sequence.clone();
            let mut ss = rs.sequence.clone();
            sb.sort_unstable();
            ss.sort_unstable();
            assert_eq!(
                sb, ss,
                "{label}: request {i} committed-function multisets diverge"
            );
        }
        assert_eq!(kb, ks, "{label}: final KV-store state diverges");
    }
}

/// A mutated seed must change the topology (the generator is actually
/// sensitive to its seed, not collapsing to one shape).
#[test]
fn fuzz_seeds_generate_distinct_topologies() {
    let shapes: Vec<Vec<String>> = (0..16)
        .map(|t| {
            specfaas_apps::topology::random_bundle(SEED_BASE + t)
                .app
                .workflow
                .function_names()
                .iter()
                .map(|s| s.to_string())
                .collect()
        })
        .collect();
    let distinct: std::collections::HashSet<_> = shapes.iter().collect();
    assert!(
        distinct.len() > 8,
        "only {} distinct topologies in 16 seeds",
        distinct.len()
    );
}
