//! End-to-end tests for the speculation-health scoreboard and the
//! windowed snapshot stream (DESIGN.md, "Streaming observability").
//!
//! These assert the scoreboard's acceptance properties on real engine
//! runs: arming the scoreboard instruments leaves run metrics
//! bit-identical to a plain run, the streaming percentiles track the
//! exact recorder within the histogram's documented error bound, the
//! windowed JSONL snapshots advance monotonically, and the rendered
//! table / JSONL rows cover every app that ran.

use specfaas_bench::runner::{prepared_baseline, prepared_spec, scoreboard_closed};
use specfaas_core::SpecConfig;
use specfaas_platform::scoreboard::render_table;
use specfaas_platform::RunMetrics;
use specfaas_sim::{LogHistogram, SimDuration};

const SEED: u64 = 0x5c0e;
const TRAIN: u64 = 120;
const REQUESTS: u64 = 60;

fn window() -> SimDuration {
    SimDuration::from_millis(250)
}

fn assert_metrics_eq(a: &RunMetrics, b: &RunMetrics, label: &str) {
    assert_eq!(a.completed, b.completed, "{label}: completed diverged");
    assert_eq!(a.failed, b.failed, "{label}: failed diverged");
    assert_eq!(
        a.useful_core_time, b.useful_core_time,
        "{label}: useful core-time diverged"
    );
    assert_eq!(
        a.squashed_core_time, b.squashed_core_time,
        "{label}: squashed core-time diverged"
    );
    assert_eq!(
        a.latency.mean_ms(),
        b.latency.mean_ms(),
        "{label}: latency diverged"
    );
}

#[test]
fn scoreboard_instruments_are_invisible_to_run_metrics() {
    for suite in specfaas_apps::all_suites() {
        let bundle = &suite.apps[0];
        let label = format!("{}/{}", suite.name, bundle.app.name);

        let gen = bundle.make_input.clone();
        let mut plain_engine = prepared_spec(bundle, SpecConfig::full(), SEED, TRAIN);
        let plain = plain_engine.run_closed(REQUESTS, move |r| gen(r));

        let gen = bundle.make_input.clone();
        let mut armed_engine = prepared_spec(bundle, SpecConfig::full(), SEED, TRAIN);
        let (_, _, armed) =
            scoreboard_closed(&mut armed_engine, "spec", REQUESTS, window(), move |r| {
                gen(r)
            });

        assert_metrics_eq(&plain, &armed, &label);
    }
}

#[test]
fn scoreboard_row_is_consistent_on_both_engines() {
    let bundle = specfaas_apps::faaschain::hotel_booking();
    for engine in ["spec", "baseline"] {
        let gen = bundle.make_input.clone();
        let (row, _, m) = if engine == "spec" {
            let mut e = prepared_spec(&bundle, SpecConfig::full(), SEED, TRAIN);
            scoreboard_closed(&mut e, "spec", REQUESTS, window(), move |r| gen(r))
        } else {
            let mut e = prepared_baseline(&bundle, SEED);
            scoreboard_closed(&mut e, "baseline", REQUESTS, window(), move |r| gen(r))
        };

        assert_eq!(row.engine, engine);
        assert_eq!(row.completed, m.completed, "{engine}: completed mismatch");
        assert_eq!(row.failed, m.failed, "{engine}: failed mismatch");
        assert!(
            row.p50_ms <= row.p99_ms && row.p99_ms <= row.p999_ms,
            "{engine}: percentiles not monotone: {} {} {}",
            row.p50_ms,
            row.p99_ms,
            row.p999_ms
        );
        // The squash-depth histogram counts one entry per measured
        // completion (depth 0 for clean requests).
        assert_eq!(
            row.squash_depth.count(),
            m.records.len() as u64,
            "{engine}: squash-depth histogram misses completions"
        );
        assert!(
            (0.0..=1.0).contains(&row.wasted_fraction()),
            "{engine}: wasted fraction out of range"
        );
        let line = row.jsonl();
        assert!(
            line.starts_with("{\"app\": ") && line.ends_with('}'),
            "{engine}: malformed JSONL row: {line}"
        );
        if engine == "baseline" {
            assert_eq!(row.branch_total, 0, "baseline cannot predict branches");
            assert!(row.wasted_topk.is_empty(), "baseline cannot squash");
        }
    }
}

#[test]
fn streaming_percentiles_track_exact_recorder() {
    let bundle = specfaas_apps::faaschain::hotel_booking();
    let gen = bundle.make_input.clone();
    let mut e = prepared_spec(&bundle, SpecConfig::full(), SEED, TRAIN);
    let (row, _, m) = scoreboard_closed(&mut e, "spec", 200, window(), move |r| gen(r));
    // Exact quantiles under the histogram's own rank convention
    // (rank = ceil(q·n), 1-based), so the comparison isolates bucketing
    // error from rank-interpolation differences.
    let mut lat_us: Vec<u64> = m
        .records
        .iter()
        .map(|r| r.response_time().as_micros())
        .collect();
    lat_us.sort_unstable();
    assert!(!lat_us.is_empty());
    for (q, streamed_ms) in [(0.50, row.p50_ms), (0.99, row.p99_ms)] {
        let rank = ((q * lat_us.len() as f64).ceil() as u64).clamp(1, lat_us.len() as u64);
        let exact_us = lat_us[(rank - 1) as usize] as f64;
        let streamed_us = streamed_ms * 1_000.0;
        let bound = exact_us * LogHistogram::RELATIVE_ERROR + 1.0;
        assert!(
            (streamed_us - exact_us).abs() <= bound,
            "p{q}: streamed {streamed_us} us vs exact {exact_us} us (bound {bound})"
        );
    }
}

#[test]
fn snapshots_advance_monotonically_and_end_with_finish() {
    let bundle = specfaas_apps::faaschain::hotel_booking();
    let gen = bundle.make_input.clone();
    let mut e = prepared_spec(&bundle, SpecConfig::full(), SEED, TRAIN);
    let (_, log, _) = scoreboard_closed(&mut e, "spec", REQUESTS, window(), move |r| gen(r));
    let lines = log.lines();
    assert!(
        lines.len() >= 2,
        "expected boundary snapshots plus the finish line, got {}",
        lines.len()
    );
    let stamps: Vec<u64> = lines
        .iter()
        .map(|l| {
            let rest = l
                .strip_prefix("{\"t_us\": ")
                .unwrap_or_else(|| panic!("snapshot line missing t_us: {l}"));
            rest[..rest.find(',').expect("t_us terminator")]
                .parse()
                .expect("t_us number")
        })
        .collect();
    for pair in stamps.windows(2) {
        assert!(pair[0] <= pair[1], "snapshot stamps regressed: {stamps:?}");
    }
    let jsonl = log.to_jsonl();
    assert_eq!(jsonl.lines().count(), lines.len());
}

#[test]
fn rendered_table_and_rows_cover_every_app() {
    let suite = specfaas_apps::suite_named("FaaSChain");
    let mut rows = Vec::new();
    for bundle in &suite.apps {
        let gen = bundle.make_input.clone();
        let mut e = prepared_spec(bundle, SpecConfig::full(), SEED, TRAIN);
        let (row, _, _) = scoreboard_closed(&mut e, "spec", 20, window(), move |r| gen(r));
        rows.push(row);
    }
    let table = render_table(&rows);
    for bundle in &suite.apps {
        assert!(
            table.contains(bundle.app.name.as_str()),
            "table missing app {}",
            bundle.app.name
        );
    }
    assert_eq!(rows.len(), suite.apps.len(), "one row per app");
    for row in &rows {
        assert!(
            row.jsonl().contains(&format!("\"app\": \"{}\"", row.app)),
            "JSONL row does not name its app: {}",
            row.app
        );
    }
}
