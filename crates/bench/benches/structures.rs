//! Microbenchmarks of the SpecFaaS core data structures: the operations
//! the controller performs on every function launch, storage access and
//! commit — they must be cheap relative to the platform overheads they
//! replace (§V-E argues the structures are small and fast).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use specfaas_core::databuffer::DataBuffer;
use specfaas_core::pipeline::SlotId;
use specfaas_core::predictor::{BranchPredictor, BranchSite, PathHistory};
use specfaas_core::{MemoTable, Prediction};
use specfaas_sim::{SimDuration, Simulator};
use specfaas_storage::Value;

fn bench_predictor(c: &mut Criterion) {
    let mut g = c.benchmark_group("branch_predictor");
    let mut bp = BranchPredictor::new(0.1);
    let path = PathHistory::start().extend(1).extend(2).extend(3);
    for _ in 0..100 {
        bp.update(BranchSite::Entry(3), path, true);
    }
    g.bench_function("predict_hit", |b| {
        b.iter(|| {
            let p = bp.predict(BranchSite::Entry(3), path, None);
            assert_eq!(p, Prediction::Taken);
        })
    });
    g.bench_function("update", |b| {
        b.iter_batched(
            || bp.clone(),
            |mut bp| bp.update(BranchSite::Entry(3), path, true),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("path_extend", |b| {
        b.iter(|| PathHistory::start().extend(7).extend(9).extend(11))
    });
    g.finish();
}

fn bench_memo(c: &mut Criterion) {
    let mut g = c.benchmark_group("memoization");
    for size in [10usize, 50, 200] {
        let mut table = MemoTable::new(size);
        for i in 0..size as i64 {
            table.insert(
                Value::map([("user", Value::Int(i))]),
                Value::map([("out", Value::Int(i * 3))]),
                vec![],
            );
        }
        let probe = Value::map([("user", Value::Int(size as i64 / 2))]);
        g.bench_function(format!("lookup_hit_{size}"), |b| {
            b.iter(|| table.lookup(&probe).is_some())
        });
    }
    g.finish();
}

fn bench_data_buffer(c: &mut Criterion) {
    let mut g = c.benchmark_group("data_buffer");
    let order: Vec<SlotId> = (0..12).map(SlotId).collect();
    g.bench_function("write_no_conflict", |b| {
        b.iter_batched(
            DataBuffer::new,
            |mut db| db.write(SlotId(0), "record", Value::Int(1), &order),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("read_forwarded", |b| {
        b.iter_batched(
            || {
                let mut db = DataBuffer::new();
                db.write(SlotId(0), "record", Value::Int(1), &order);
                db
            },
            |mut db| db.read(SlotId(5), "record", &order),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("commit_4_writes", |b| {
        b.iter_batched(
            || {
                let mut db = DataBuffer::new();
                for k in 0..4 {
                    db.write(SlotId(0), &format!("k{k}"), Value::Int(k), &order);
                }
                db
            },
            |mut db| db.commit(SlotId(0)),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("simulator_10k_events", |b| {
        b.iter(|| {
            let mut sim = Simulator::new();
            for i in 0..10_000u64 {
                sim.schedule_in(SimDuration::from_micros(i % 997), i);
            }
            let mut n = 0;
            while sim.step().is_some() {
                n += 1;
            }
            assert_eq!(n, 10_000);
        })
    });
}

criterion_group!(
    benches,
    bench_predictor,
    bench_memo,
    bench_data_buffer,
    bench_event_queue
);
criterion_main!(benches);
