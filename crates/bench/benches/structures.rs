//! Microbenchmarks of the SpecFaaS core data structures: the operations
//! the controller performs on every function launch, storage access and
//! commit — they must be cheap relative to the platform overheads they
//! replace (§V-E argues the structures are small and fast).
//!
//! Uses the crate's own wall-clock harness (`specfaas_bench::microbench`)
//! because the offline build environment cannot fetch `criterion`.

use std::hint::black_box;

use specfaas_bench::microbench::bench_auto;
use specfaas_core::databuffer::DataBuffer;
use specfaas_core::pipeline::SlotId;
use specfaas_core::predictor::{BranchPredictor, BranchSite, PathHistory};
use specfaas_core::{MemoTable, Prediction};
use specfaas_sim::{SimDuration, Simulator};
use specfaas_storage::Value;

fn bench_predictor() {
    let mut bp = BranchPredictor::new(0.1);
    let path = PathHistory::start().extend(1).extend(2).extend(3);
    for _ in 0..100 {
        bp.update(BranchSite::Entry(3), path, true);
    }
    bench_auto("branch_predictor/predict_hit", &mut || {
        let p = bp.predict(BranchSite::Entry(3), path, None);
        assert_eq!(p, Prediction::Taken);
    });
    bench_auto("branch_predictor/update", &mut || {
        let mut bp = black_box(bp.clone());
        bp.update(BranchSite::Entry(3), path, true);
        black_box(&bp);
    });
    bench_auto("branch_predictor/path_extend", &mut || {
        black_box(PathHistory::start().extend(7).extend(9).extend(11));
    });
}

fn bench_memo() {
    for size in [10usize, 50, 200] {
        let mut table = MemoTable::new(size);
        for i in 0..size as i64 {
            table.insert(
                Value::map([("user", Value::Int(i))]),
                Value::map([("out", Value::Int(i * 3))]),
                vec![],
            );
        }
        let probe = Value::map([("user", Value::Int(size as i64 / 2))]);
        bench_auto(&format!("memoization/lookup_hit_{size}"), &mut || {
            black_box(table.lookup(&probe).is_some());
        });
    }
}

fn bench_data_buffer() {
    let order: Vec<SlotId> = (0..12).map(SlotId).collect();
    bench_auto("data_buffer/write_no_conflict", &mut || {
        let mut db = DataBuffer::new();
        db.write(SlotId(0), "record", Value::Int(1), &order);
        black_box(&db);
    });
    bench_auto("data_buffer/read_forwarded", &mut || {
        let mut db = DataBuffer::new();
        db.write(SlotId(0), "record", Value::Int(1), &order);
        black_box(db.read(SlotId(5), "record", &order));
    });
    bench_auto("data_buffer/commit_4_writes", &mut || {
        let mut db = DataBuffer::new();
        for k in 0..4 {
            db.write(SlotId(0), &format!("k{k}"), Value::Int(k), &order);
        }
        black_box(db.commit(SlotId(0)));
    });
}

fn bench_event_queue() {
    bench_auto("simulator/10k_events", &mut || {
        let mut sim = Simulator::new();
        for i in 0..10_000u64 {
            sim.schedule_in(SimDuration::from_micros(i % 997), i);
        }
        let mut n = 0;
        while sim.step().is_some() {
            n += 1;
        }
        assert_eq!(n, 10_000);
    });
}

fn main() {
    bench_predictor();
    bench_memo();
    bench_data_buffer();
    bench_event_queue();
}
