//! End-to-end engine benchmarks: simulated single-invocation latency of
//! the baseline vs SpecFaaS (the microscopic version of Fig. 11), and
//! simulator throughput on a full application.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use specfaas_core::{SpecConfig, SpecEngine};
use specfaas_platform::BaselineEngine;
use specfaas_sim::SimRng;
use specfaas_storage::Value;

fn bench_single_invocation(c: &mut Criterion) {
    let mut g = c.benchmark_group("single_invocation_host_cost");
    g.sample_size(30);
    let bundle = specfaas_apps::faaschain::banking();

    g.bench_function("baseline", |b| {
        let mut e = BaselineEngine::new(Arc::clone(&bundle.app), 1);
        e.prewarm();
        let mut rng = SimRng::seed(1);
        (bundle.seed)(&mut e.kv, &mut rng);
        let input = (bundle.make_input)(&mut rng);
        b.iter(|| e.run_single(input.clone()));
    });

    g.bench_function("specfaas_trained", |b| {
        let mut e = SpecEngine::new(Arc::clone(&bundle.app), SpecConfig::full(), 1);
        e.prewarm();
        let mut rng = SimRng::seed(1);
        (bundle.seed)(&mut e.kv, &mut rng);
        let input = (bundle.make_input)(&mut rng);
        for _ in 0..5 {
            e.run_single(input.clone());
        }
        b.iter(|| e.run_single(input.clone()));
    });
    g.finish();
}

fn bench_closed_loop_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulation_throughput");
    g.sample_size(10);
    let bundle = specfaas_apps::trainticket::ticket_app();
    g.bench_function("100_requests_specfaas", |b| {
        b.iter(|| {
            let mut e = SpecEngine::new(Arc::clone(&bundle.app), SpecConfig::full(), 2);
            e.prewarm();
            let mut rng = SimRng::seed(2);
            (bundle.seed)(&mut e.kv, &mut rng);
            let gen = bundle.make_input.clone();
            let m = e.run_closed(100, move |r| gen(r));
            assert_eq!(m.completed, 100);
        })
    });
    g.finish();
}

criterion_group!(benches, bench_single_invocation, bench_closed_loop_throughput);
criterion_main!(benches);
