//! End-to-end engine benchmarks: simulated single-invocation latency of
//! the baseline vs SpecFaaS (the microscopic version of Fig. 11), and
//! simulator throughput on a full application.
//!
//! Uses the crate's own wall-clock harness (`specfaas_bench::microbench`)
//! because the offline build environment cannot fetch `criterion`.

use std::sync::Arc;

use specfaas_bench::microbench::bench;
use specfaas_core::{SpecConfig, SpecEngine};
use specfaas_platform::BaselineEngine;
use specfaas_sim::SimRng;

fn bench_single_invocation() {
    let bundle = specfaas_apps::faaschain::banking();

    {
        let mut e = BaselineEngine::new(Arc::clone(&bundle.app), 1);
        e.prewarm();
        let mut rng = SimRng::seed(1);
        (bundle.seed)(&mut e.kv, &mut rng);
        let input = (bundle.make_input)(&mut rng);
        bench("single_invocation/baseline", 200, &mut || {
            e.run_single(input.clone());
        });
    }

    {
        let mut e = SpecEngine::new(Arc::clone(&bundle.app), SpecConfig::full(), 1);
        e.prewarm();
        let mut rng = SimRng::seed(1);
        (bundle.seed)(&mut e.kv, &mut rng);
        let input = (bundle.make_input)(&mut rng);
        for _ in 0..5 {
            e.run_single(input.clone());
        }
        bench("single_invocation/specfaas_trained", 200, &mut || {
            e.run_single(input.clone());
        });
    }
}

fn bench_closed_loop_throughput() {
    let bundle = specfaas_apps::trainticket::ticket_app();
    bench("simulation/100_requests_specfaas", 5, &mut || {
        let mut e = SpecEngine::new(Arc::clone(&bundle.app), SpecConfig::full(), 2);
        e.prewarm();
        let mut rng = SimRng::seed(2);
        (bundle.seed)(&mut e.kv, &mut rng);
        let gen = bundle.make_input.clone();
        let m = e.run_closed(100, move |r| gen(r));
        assert_eq!(m.completed, 100);
    });
}

fn main() {
    bench_single_invocation();
    bench_closed_loop_throughput();
}
