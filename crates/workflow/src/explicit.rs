//! Explicit workflows: the OpenWhisk-Composer-shaped DSL and its
//! compilation into the flat form consumed by the Sequence Table.
//!
//! The paper's Listing 1 composes a smart-home app from `when` (control
//! dependence) and `sequence` (data dependence) directives; `while` /
//! `do_while` compile to the same code as `when`, and `parallel` runs
//! functions concurrently (§II-A). [`Workflow`] mirrors those directives.
//!
//! [`CompiledWorkflow`] is the static layout the controller keeps per
//! application (paper Fig. 8): an array of function entries where plain
//! entries point at their successor, branch entries carry taken /
//! not-taken targets (loops become back-edges), and fork entries fan out
//! to parallel branches that re-converge at a join entry.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::function::{FuncId, FunctionRegistry};

/// A workflow composition, mirroring OpenWhisk Composer directives.
///
/// # Example
///
/// The paper's smart-home application (Listing 1 / Fig. 1):
///
/// ```
/// use specfaas_workflow::Workflow;
///
/// let wf = Workflow::when(
///     "Login",
///     Workflow::sequence(vec![
///         Workflow::task("ReadTemp"),
///         Workflow::task("Normalize"),
///         Workflow::when("CompareTemp", Workflow::task("TurnAir"), None),
///         Workflow::task("Done"),
///     ]),
///     Some(Workflow::task("Fail")),
/// );
/// assert_eq!(wf.function_names().len(), 7);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Workflow {
    /// Invoke a single function.
    Task(String),
    /// Run sub-workflows one after another, piping each output into the
    /// next input (`sequence` directive).
    Sequence(Vec<Workflow>),
    /// Branch: run `cond`, then `then` if its output is truthy (or the
    /// `field` projection of its output, when given), else `els`
    /// (`when` directive).
    When {
        /// Condition function name.
        cond: String,
        /// Optional output field to test instead of the whole output.
        field: Option<String>,
        /// Taken branch.
        then: Box<Workflow>,
        /// Not-taken branch (`None` = fall through).
        els: Option<Box<Workflow>>,
    },
    /// Loop: run `cond`; while its output (or `field`) is truthy, run
    /// `body` and re-run `cond` (`while` directive; compiles to the same
    /// entry kind as `when`, with a back edge).
    WhileLoop {
        /// Condition function name.
        cond: String,
        /// Optional output field to test.
        field: Option<String>,
        /// Loop body.
        body: Box<Workflow>,
    },
    /// Run sub-workflows concurrently, joining afterwards (`parallel`
    /// directive — not supported by OpenWhisk's Python Composer, added by
    /// the paper's authors, §II-A).
    Parallel(Vec<Workflow>),
}

impl Workflow {
    /// A single-function workflow.
    pub fn task(name: impl Into<String>) -> Workflow {
        Workflow::Task(name.into())
    }

    /// A sequential composition.
    pub fn sequence(parts: Vec<Workflow>) -> Workflow {
        Workflow::Sequence(parts)
    }

    /// A branch on the truthiness of `cond`'s entire output.
    pub fn when(cond: impl Into<String>, then: Workflow, els: Option<Workflow>) -> Workflow {
        Workflow::When {
            cond: cond.into(),
            field: None,
            then: Box::new(then),
            els: els.map(Box::new),
        }
    }

    /// A branch testing one field of `cond`'s output.
    pub fn when_field(
        cond: impl Into<String>,
        field: impl Into<String>,
        then: Workflow,
        els: Option<Workflow>,
    ) -> Workflow {
        Workflow::When {
            cond: cond.into(),
            field: Some(field.into()),
            then: Box::new(then),
            els: els.map(Box::new),
        }
    }

    /// A while loop testing one field of `cond`'s output.
    pub fn while_field(
        cond: impl Into<String>,
        field: impl Into<String>,
        body: Workflow,
    ) -> Workflow {
        Workflow::WhileLoop {
            cond: cond.into(),
            field: Some(field.into()),
            body: Box::new(body),
        }
    }

    /// A parallel composition.
    pub fn parallel(parts: Vec<Workflow>) -> Workflow {
        Workflow::Parallel(parts)
    }

    /// All function names referenced, in first-appearance order.
    pub fn function_names(&self) -> Vec<&str> {
        let mut names = Vec::new();
        fn walk<'w>(w: &'w Workflow, out: &mut Vec<&'w str>) {
            match w {
                Workflow::Task(n) => {
                    if !out.contains(&n.as_str()) {
                        out.push(n);
                    }
                }
                Workflow::Sequence(ps) | Workflow::Parallel(ps) => {
                    for p in ps {
                        walk(p, out);
                    }
                }
                Workflow::When {
                    cond, then, els, ..
                } => {
                    if !out.contains(&cond.as_str()) {
                        out.push(cond);
                    }
                    walk(then, out);
                    if let Some(e) = els {
                        walk(e, out);
                    }
                }
                Workflow::WhileLoop { cond, body, .. } => {
                    if !out.contains(&cond.as_str()) {
                        out.push(cond);
                    }
                    walk(body, out);
                }
            }
        }
        walk(self, &mut names);
        names
    }

    /// Number of `when` / `while` directives (cross-function branches,
    /// the "Avg # Branches" column of Table I).
    pub fn branch_count(&self) -> usize {
        match self {
            Workflow::Task(_) => 0,
            Workflow::Sequence(ps) | Workflow::Parallel(ps) => {
                ps.iter().map(Workflow::branch_count).sum()
            }
            Workflow::When { then, els, .. } => {
                1 + then.branch_count() + els.as_ref().map_or(0, |e| e.branch_count())
            }
            Workflow::WhileLoop { body, .. } => 1 + body.branch_count(),
        }
    }

    /// Longest function chain through the workflow (the "Max DAG Depth"
    /// column of Table I; loops counted as one iteration).
    pub fn max_depth(&self) -> usize {
        match self {
            Workflow::Task(_) => 1,
            Workflow::Sequence(ps) => ps.iter().map(Workflow::max_depth).sum(),
            Workflow::Parallel(ps) => ps.iter().map(Workflow::max_depth).max().unwrap_or(0),
            Workflow::When { then, els, .. } => {
                1 + then
                    .max_depth()
                    .max(els.as_ref().map_or(0, |e| e.max_depth()))
            }
            Workflow::WhileLoop { body, .. } => 1 + body.max_depth(),
        }
    }
}

/// Error compiling a workflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// A referenced function is not in the registry.
    UnknownFunction(String),
    /// `parallel` must follow a function inside a `sequence` (so the fork
    /// has an entry to hang off), and must not be the first element.
    UnsupportedParallelPlacement,
    /// Empty `sequence` or `parallel` composition.
    EmptyComposition,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnknownFunction(n) => write!(f, "unknown function `{n}` in workflow"),
            CompileError::UnsupportedParallelPlacement => {
                write!(f, "`parallel` must follow a function within a `sequence`")
            }
            CompileError::EmptyComposition => write!(f, "empty sequence/parallel composition"),
        }
    }
}

impl std::error::Error for CompileError {}

/// How execution continues after a sequence-table entry's function
/// completes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EntryKind {
    /// Proceed to `next` (or finish the application if `None`).
    Simple {
        /// Successor entry index.
        next: Option<usize>,
    },
    /// Branch on the function's output (optionally one `field` of it):
    /// truthy → `taken`, falsy → `not_taken`. A `taken` index less than or
    /// equal to the entry's own index is a loop back-edge.
    Branch {
        /// Output field to test (`None` tests the whole output).
        field: Option<String>,
        /// Target when the condition is truthy (`None` = finish).
        taken: Option<usize>,
        /// Target when the condition is falsy (`None` = finish).
        not_taken: Option<usize>,
    },
    /// Fan out to the heads of parallel branches; all branches then
    /// converge on `join` (an entry with `join_arity > 1`), or the
    /// application finishes when every branch completes (`join == None`).
    Fork {
        /// Branch head entry indexes.
        branches: Vec<usize>,
        /// Join entry index.
        join: Option<usize>,
    },
}

/// One entry of a compiled workflow (one row of the Sequence Table's
/// static skeleton).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeqEntry {
    /// The function this entry invokes.
    pub func: FuncId,
    /// Continuation after the function completes.
    pub kind: EntryKind,
    /// Number of predecessor arrivals required before this entry runs:
    /// 1 for ordinary entries, the branch count for a parallel join.
    pub join_arity: u32,
}

/// A workflow compiled to the flat, pointer-linked layout of paper Fig. 8.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledWorkflow {
    /// Entries in layout order.
    pub entries: Vec<SeqEntry>,
    /// Index of the first entry to execute.
    pub start: usize,
}

/// A dangling continuation slot produced while compiling a sub-workflow,
/// to be patched with the successor entry index.
#[derive(Debug, Clone, Copy)]
enum Tail {
    Next(usize),
    Taken(usize),
    NotTaken(usize),
    /// Dangling end of a fork branch plus the fork entry itself
    /// (`join` slot).
    ForkJoin(usize),
}

impl CompiledWorkflow {
    /// Compiles a workflow against a registry.
    ///
    /// # Errors
    /// Returns [`CompileError`] for unknown functions, empty compositions,
    /// or unsupported `parallel` placement.
    pub fn compile(
        workflow: &Workflow,
        registry: &FunctionRegistry,
    ) -> Result<CompiledWorkflow, CompileError> {
        let mut entries: Vec<SeqEntry> = Vec::new();
        let (start, tails) = compile_node(workflow, registry, &mut entries)?;
        // Dangling tails finish the application; `Simple { next: None }`
        // etc. is already their state, so nothing to patch.
        let _ = tails;
        Ok(CompiledWorkflow { entries, start })
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the workflow compiled to no entries (cannot happen via
    /// [`CompiledWorkflow::compile`], which rejects empty compositions).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Indexes of entries that are branches (used to size branch-predictor
    /// state).
    pub fn branch_entries(&self) -> Vec<usize> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e.kind, EntryKind::Branch { .. }))
            .map(|(i, _)| i)
            .collect()
    }
}

fn lookup(name: &str, reg: &FunctionRegistry) -> Result<FuncId, CompileError> {
    reg.lookup(name)
        .ok_or_else(|| CompileError::UnknownFunction(name.to_owned()))
}

fn patch(entries: &mut [SeqEntry], tails: &[Tail], target: usize) {
    for t in tails {
        match *t {
            Tail::Next(i) => {
                if let EntryKind::Simple { next } = &mut entries[i].kind {
                    *next = Some(target);
                }
            }
            Tail::Taken(i) => {
                if let EntryKind::Branch { taken, .. } = &mut entries[i].kind {
                    *taken = Some(target);
                }
            }
            Tail::NotTaken(i) => {
                if let EntryKind::Branch { not_taken, .. } = &mut entries[i].kind {
                    *not_taken = Some(target);
                }
            }
            Tail::ForkJoin(i) => {
                if let EntryKind::Fork { join, .. } = &mut entries[i].kind {
                    *join = Some(target);
                }
            }
        }
    }
}

fn compile_node(
    w: &Workflow,
    reg: &FunctionRegistry,
    entries: &mut Vec<SeqEntry>,
) -> Result<(usize, Vec<Tail>), CompileError> {
    match w {
        Workflow::Task(name) => {
            let idx = entries.len();
            entries.push(SeqEntry {
                func: lookup(name, reg)?,
                kind: EntryKind::Simple { next: None },
                join_arity: 1,
            });
            Ok((idx, vec![Tail::Next(idx)]))
        }
        Workflow::Sequence(parts) => {
            if parts.is_empty() {
                return Err(CompileError::EmptyComposition);
            }
            let mut head: Option<usize> = None;
            let mut tails: Vec<Tail> = Vec::new();
            // Set when the previous element was a `parallel`: the next
            // entry is its join and must wait for this many arrivals.
            let mut pending_join_arity: Option<u32> = None;
            for part in parts {
                if let Workflow::Parallel(branches) = part {
                    // The fork hangs off every pending tail's entry; each
                    // of those entries becomes a Fork. Requires at least
                    // one predecessor function.
                    if tails.is_empty() || branches.is_empty() {
                        return Err(if branches.is_empty() {
                            CompileError::EmptyComposition
                        } else {
                            CompileError::UnsupportedParallelPlacement
                        });
                    }
                    // Only single simple-tail predecessors can fork (a
                    // branch cannot end directly in a parallel).
                    let fork_entry = match tails.as_slice() {
                        [Tail::Next(i)] => *i,
                        _ => return Err(CompileError::UnsupportedParallelPlacement),
                    };
                    let mut heads = Vec::with_capacity(branches.len());
                    let mut branch_tails: Vec<Tail> = Vec::new();
                    for b in branches {
                        let (h, ts) = compile_node(b, reg, entries)?;
                        heads.push(h);
                        branch_tails.extend(ts);
                    }
                    let n_branches = heads.len() as u32;
                    entries[fork_entry].kind = EntryKind::Fork {
                        branches: heads,
                        join: None,
                    };
                    // Branch tails + the fork's join slot converge on
                    // whatever comes next in the sequence. Each branch
                    // contributes exactly ONE dynamic arrival at the join
                    // (internal `when` arms are alternatives), so the
                    // join arity is the branch count, not the tail count.
                    branch_tails.push(Tail::ForkJoin(fork_entry));
                    tails = branch_tails;
                    pending_join_arity = Some(n_branches);
                    if head.is_none() {
                        head = Some(fork_entry);
                    }
                    continue;
                }
                let (h, ts) = compile_node(part, reg, entries)?;
                if let Some(arity) = pending_join_arity.take() {
                    if arity > 1 {
                        entries[h].join_arity = arity;
                    }
                }
                patch(entries, &tails, h);
                tails = ts;
                if head.is_none() {
                    head = Some(h);
                }
            }
            Ok((head.expect("non-empty sequence"), tails))
        }
        Workflow::When {
            cond,
            field,
            then,
            els,
        } => {
            let idx = entries.len();
            entries.push(SeqEntry {
                func: lookup(cond, reg)?,
                kind: EntryKind::Branch {
                    field: field.clone(),
                    taken: None,
                    not_taken: None,
                },
                join_arity: 1,
            });
            let (then_head, mut tails) = compile_node(then, reg, entries)?;
            patch(entries, &[Tail::Taken(idx)], then_head);
            match els {
                Some(e) => {
                    let (els_head, els_tails) = compile_node(e, reg, entries)?;
                    patch(entries, &[Tail::NotTaken(idx)], els_head);
                    tails.extend(els_tails);
                }
                None => tails.push(Tail::NotTaken(idx)),
            }
            Ok((idx, tails))
        }
        Workflow::WhileLoop { cond, field, body } => {
            let idx = entries.len();
            entries.push(SeqEntry {
                func: lookup(cond, reg)?,
                kind: EntryKind::Branch {
                    field: field.clone(),
                    taken: None,
                    not_taken: None,
                },
                join_arity: 1,
            });
            let (body_head, body_tails) = compile_node(body, reg, entries)?;
            patch(entries, &[Tail::Taken(idx)], body_head);
            // Back edge: body repeats the condition check.
            patch(entries, &body_tails, idx);
            Ok((idx, vec![Tail::NotTaken(idx)]))
        }
        Workflow::Parallel(_) => Err(CompileError::UnsupportedParallelPlacement),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::lit;
    use crate::function::FunctionSpec;
    use crate::program::Program;

    fn registry(names: &[&str]) -> FunctionRegistry {
        let mut reg = FunctionRegistry::new();
        for n in names {
            reg.register(FunctionSpec::new(*n, Program::builder().ret(lit(1i64))));
        }
        reg
    }

    #[test]
    fn compile_simple_chain() {
        let reg = registry(&["a", "b", "c"]);
        let wf = Workflow::sequence(vec![
            Workflow::task("a"),
            Workflow::task("b"),
            Workflow::task("c"),
        ]);
        let c = CompiledWorkflow::compile(&wf, &reg).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.start, 0);
        assert_eq!(c.entries[0].kind, EntryKind::Simple { next: Some(1) });
        assert_eq!(c.entries[1].kind, EntryKind::Simple { next: Some(2) });
        assert_eq!(c.entries[2].kind, EntryKind::Simple { next: None });
    }

    #[test]
    fn compile_when_with_else() {
        let reg = registry(&["cond", "t", "e"]);
        let wf = Workflow::when("cond", Workflow::task("t"), Some(Workflow::task("e")));
        let c = CompiledWorkflow::compile(&wf, &reg).unwrap();
        match &c.entries[0].kind {
            EntryKind::Branch {
                taken, not_taken, ..
            } => {
                assert_eq!(*taken, Some(1));
                assert_eq!(*not_taken, Some(2));
            }
            other => panic!("expected branch, got {other:?}"),
        }
        assert_eq!(c.branch_entries(), vec![0]);
    }

    #[test]
    fn compile_when_without_else_falls_through() {
        let reg = registry(&["cond", "t", "after"]);
        let wf = Workflow::sequence(vec![
            Workflow::when("cond", Workflow::task("t"), None),
            Workflow::task("after"),
        ]);
        let c = CompiledWorkflow::compile(&wf, &reg).unwrap();
        match &c.entries[0].kind {
            EntryKind::Branch {
                taken, not_taken, ..
            } => {
                assert_eq!(*taken, Some(1), "taken goes to t");
                assert_eq!(*not_taken, Some(2), "not-taken skips to after");
            }
            other => panic!("expected branch, got {other:?}"),
        }
        // t's next is after.
        assert_eq!(c.entries[1].kind, EntryKind::Simple { next: Some(2) });
    }

    #[test]
    fn compile_while_creates_back_edge() {
        let reg = registry(&["check", "body", "after"]);
        let wf = Workflow::sequence(vec![
            Workflow::while_field("check", "more", Workflow::task("body")),
            Workflow::task("after"),
        ]);
        let c = CompiledWorkflow::compile(&wf, &reg).unwrap();
        match &c.entries[0].kind {
            EntryKind::Branch {
                field,
                taken,
                not_taken,
            } => {
                assert_eq!(field.as_deref(), Some("more"));
                assert_eq!(*taken, Some(1));
                assert_eq!(*not_taken, Some(2));
            }
            other => panic!("expected branch, got {other:?}"),
        }
        // Body loops back to the condition.
        assert_eq!(c.entries[1].kind, EntryKind::Simple { next: Some(0) });
    }

    #[test]
    fn compile_parallel_with_join() {
        let reg = registry(&["pre", "b1", "b2", "join"]);
        let wf = Workflow::sequence(vec![
            Workflow::task("pre"),
            Workflow::parallel(vec![Workflow::task("b1"), Workflow::task("b2")]),
            Workflow::task("join"),
        ]);
        let c = CompiledWorkflow::compile(&wf, &reg).unwrap();
        match &c.entries[0].kind {
            EntryKind::Fork { branches, join } => {
                assert_eq!(branches, &vec![1, 2]);
                assert_eq!(*join, Some(3));
            }
            other => panic!("expected fork, got {other:?}"),
        }
        assert_eq!(c.entries[3].join_arity, 2);
        assert_eq!(c.entries[1].kind, EntryKind::Simple { next: Some(3) });
        assert_eq!(c.entries[2].kind, EntryKind::Simple { next: Some(3) });
    }

    #[test]
    fn compile_parallel_without_join() {
        let reg = registry(&["pre", "b1", "b2"]);
        let wf = Workflow::sequence(vec![
            Workflow::task("pre"),
            Workflow::parallel(vec![Workflow::task("b1"), Workflow::task("b2")]),
        ]);
        let c = CompiledWorkflow::compile(&wf, &reg).unwrap();
        match &c.entries[0].kind {
            EntryKind::Fork { join, .. } => assert_eq!(*join, None),
            other => panic!("expected fork, got {other:?}"),
        }
    }

    #[test]
    fn parallel_first_is_rejected() {
        let reg = registry(&["a", "b"]);
        let wf = Workflow::parallel(vec![Workflow::task("a"), Workflow::task("b")]);
        assert_eq!(
            CompiledWorkflow::compile(&wf, &reg).unwrap_err(),
            CompileError::UnsupportedParallelPlacement
        );
    }

    #[test]
    fn unknown_function_is_rejected() {
        let reg = registry(&["a"]);
        let wf = Workflow::task("ghost");
        assert_eq!(
            CompiledWorkflow::compile(&wf, &reg).unwrap_err(),
            CompileError::UnknownFunction("ghost".into())
        );
    }

    #[test]
    fn empty_sequence_is_rejected() {
        let reg = registry(&[]);
        assert_eq!(
            CompiledWorkflow::compile(&Workflow::sequence(vec![]), &reg).unwrap_err(),
            CompileError::EmptyComposition
        );
    }

    #[test]
    fn smart_home_shape() {
        // Listing 1 of the paper.
        let reg = registry(&[
            "Login",
            "ReadTemp",
            "Normalize",
            "CompareTemp",
            "TurnAir",
            "Done",
            "Fail",
        ]);
        let wf = Workflow::when(
            "Login",
            Workflow::sequence(vec![
                Workflow::task("ReadTemp"),
                Workflow::task("Normalize"),
                Workflow::when("CompareTemp", Workflow::task("TurnAir"), None),
                Workflow::task("Done"),
            ]),
            Some(Workflow::task("Fail")),
        );
        assert_eq!(wf.branch_count(), 2);
        assert_eq!(wf.max_depth(), 6); // Login,ReadTemp,Normalize,CompareTemp,TurnAir,Done
        let c = CompiledWorkflow::compile(&wf, &reg).unwrap();
        assert_eq!(c.len(), 7);
        assert_eq!(c.branch_entries().len(), 2);
    }

    #[test]
    fn function_names_dedup_in_order() {
        let wf = Workflow::sequence(vec![
            Workflow::task("a"),
            Workflow::task("b"),
            Workflow::task("a"),
        ]);
        assert_eq!(wf.function_names(), vec!["a", "b"]);
    }
}
