//! The resumable program interpreter.
//!
//! A function instance executes by repeatedly calling [`Interp::step`]: the
//! interpreter evaluates pure statements immediately and suspends whenever
//! it reaches an effectful statement, returning an [`Effect`] to the
//! platform. The platform charges simulated time (compute segments, storage
//! latency, callee execution) and then resumes the interpreter with the
//! effect's result.
//!
//! This mirrors how the SpecFaaS prototype intercepts its runtime: storage
//! operations, function calls, HTTP requests and file syscalls all become
//! visible control points where the speculation machinery (Data Buffer,
//! side-effect deferral) can intervene.

use specfaas_sim::hash::FxHashMap;
use std::fmt;
use std::sync::Arc;

use specfaas_sim::{SimDuration, SimRng};
use specfaas_storage::Value;

use crate::program::{Block, Program, Stmt};

/// An error raised while executing a function program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgError {
    /// Reference to a variable that was never bound.
    UnknownVar(String),
    /// Type mismatch in an expression.
    TypeError(String),
    /// Integer or float division by zero.
    DivisionByZero,
    /// A `While` loop exceeded its `max_iters` bound.
    LoopLimit,
    /// `step` was called after the program finished.
    AlreadyFinished,
    /// `step` expected a resume value (e.g. after a `Get`) but none was
    /// supplied, or one was supplied when not expected.
    ResumeMismatch,
}

impl fmt::Display for ProgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgError::UnknownVar(v) => write!(f, "unknown variable `{v}`"),
            ProgError::TypeError(msg) => write!(f, "type error: {msg}"),
            ProgError::DivisionByZero => write!(f, "division by zero"),
            ProgError::LoopLimit => write!(f, "loop iteration limit exceeded"),
            ProgError::AlreadyFinished => write!(f, "program already finished"),
            ProgError::ResumeMismatch => write!(f, "resume value mismatch"),
        }
    }
}

impl std::error::Error for ProgError {}

/// An effect surfaced by the interpreter; the platform decides how much
/// simulated time it costs and what value (if any) it produces.
#[derive(Debug, Clone, PartialEq)]
pub enum Effect {
    /// Busy-compute for this long, then resume with no value.
    Compute(SimDuration),
    /// Read `key` from global storage; resume with the value.
    Get {
        /// Storage key.
        key: String,
    },
    /// Write `value` to `key`; resume with no value once acknowledged.
    Set {
        /// Storage key.
        key: String,
        /// Value to store.
        value: Value,
    },
    /// Call function `func` with `args`; resume with its output.
    Call {
        /// Callee name.
        func: String,
        /// Callee input document.
        args: Value,
    },
    /// External HTTP request; resume with no value when performed.
    Http {
        /// Request URL.
        url: String,
    },
    /// Write a temporary local file; resume with no value.
    FileWrite {
        /// File name.
        name: String,
        /// Data written.
        data: Value,
    },
    /// Read a temporary local file; resume with the contents.
    FileRead {
        /// File name.
        name: String,
    },
    /// The program finished with this output document.
    Done(Value),
}

/// What the interpreter is waiting for across a suspension.
#[derive(Debug, Clone, PartialEq)]
enum Pending {
    None,
    /// Resume value must be bound to this variable.
    BindVar(String),
    /// Resume is an acknowledgement with no value.
    Ack,
}

#[derive(Debug)]
enum FrameKind {
    /// Straight-line block (program body or an `If` arm).
    Linear,
    /// A `While` body; when the block ends, re-check the condition.
    Loop {
        cond: crate::expr::Expr,
        body: Block,
        remaining: u32,
    },
}

#[derive(Debug)]
struct Frame {
    block: Block,
    pc: usize,
    kind: FrameKind,
}

/// A resumable execution of one [`Program`] over one input document.
///
/// # Example
///
/// ```
/// use specfaas_workflow::{Interp, Program, Effect};
/// use specfaas_workflow::expr::{lit, var};
/// use specfaas_storage::Value;
/// use specfaas_sim::SimRng;
///
/// let p = Program::builder()
///     .get(lit("answer"), "a")
///     .ret(var("a"));
/// let mut interp = Interp::new(&p, Value::Null);
/// let mut rng = SimRng::seed(0);
///
/// // First step suspends on the storage read.
/// let eff = interp.step(None, &mut rng).unwrap();
/// assert_eq!(eff, Effect::Get { key: "answer".into() });
///
/// // The platform resolves the read and resumes.
/// let eff = interp.step(Some(Value::Int(42)), &mut rng).unwrap();
/// assert_eq!(eff, Effect::Done(Value::Int(42)));
/// ```
#[derive(Debug)]
pub struct Interp {
    input: Value,
    env: FxHashMap<String, Value>,
    frames: Vec<Frame>,
    pending: Pending,
    finished: bool,
    steps: u64,
}

impl Interp {
    /// Starts an execution of `program` on `input`.
    pub fn new(program: &Program, input: Value) -> Self {
        Interp {
            input,
            env: FxHashMap::default(),
            frames: vec![Frame {
                block: Arc::clone(&program.body),
                pc: 0,
                kind: FrameKind::Linear,
            }],
            pending: Pending::None,
            finished: false,
            steps: 0,
        }
    }

    /// The input document this execution was started with.
    pub fn input(&self) -> &Value {
        &self.input
    }

    /// Number of `step` calls so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// True once the program has produced [`Effect::Done`] or errored.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    fn eval(&self, e: &crate::expr::Expr) -> Result<Value, ProgError> {
        e.eval(&self.input, &self.env)
    }

    fn key_string(&self, e: &crate::expr::Expr) -> Result<String, ProgError> {
        let v = self.eval(e)?;
        Ok(match v {
            Value::Str(s) => s,
            other => other.to_string(),
        })
    }

    /// Advances execution until the next effect.
    ///
    /// `resume` carries the result of the previous effect: `Some(value)`
    /// after `Get`/`Call`/`FileRead`, `Some(Value::Null)` or `None` after
    /// acknowledged effects, and `None` on the very first call.
    ///
    /// # Errors
    /// Returns a [`ProgError`] if the program misbehaves (type error,
    /// loop-limit, resume protocol violation, stepping a finished
    /// execution). A platform treats this as a failed invocation.
    pub fn step(&mut self, resume: Option<Value>, rng: &mut SimRng) -> Result<Effect, ProgError> {
        if self.finished {
            return Err(ProgError::AlreadyFinished);
        }
        self.steps += 1;

        // Deliver the resume value.
        match std::mem::replace(&mut self.pending, Pending::None) {
            Pending::None => {
                if self.steps > 1 {
                    // Interior steps always follow an effect.
                    return Err(ProgError::ResumeMismatch);
                }
            }
            Pending::BindVar(var) => {
                let v = resume.ok_or(ProgError::ResumeMismatch)?;
                self.env.insert(var, v);
            }
            Pending::Ack => {
                // Value (if any) is ignored.
            }
        }

        loop {
            let Some(frame) = self.frames.last_mut() else {
                self.finished = true;
                return Ok(Effect::Done(Value::Null));
            };

            if frame.pc >= frame.block.len() {
                // Block exhausted: loop frames re-check their condition,
                // linear frames pop.
                let frame = self.frames.pop().expect("frame exists");
                if let FrameKind::Loop {
                    cond,
                    body,
                    remaining,
                } = frame.kind
                {
                    let c = cond.eval(&self.input, &self.env)?;
                    if c.truthy() {
                        if remaining == 0 {
                            self.finished = true;
                            return Err(ProgError::LoopLimit);
                        }
                        self.frames.push(Frame {
                            block: Arc::clone(&body),
                            pc: 0,
                            kind: FrameKind::Loop {
                                cond,
                                body,
                                remaining: remaining - 1,
                            },
                        });
                    }
                }
                continue;
            }

            // Borrow the statement through a cheap Arc bump of the block
            // rather than deep-cloning the Stmt (strings + expression
            // trees) on every interpreter step — this runs several times
            // per simulated event.
            let block = Arc::clone(&frame.block);
            let pc = frame.pc;
            frame.pc += 1;

            match &block[pc] {
                Stmt::Compute(spec) => {
                    self.pending = Pending::Ack;
                    return Ok(Effect::Compute(spec.sample(rng)));
                }
                Stmt::Let { var, expr } => {
                    let v = self.eval(expr)?;
                    self.env.insert(var.clone(), v);
                }
                Stmt::Get { key, var } => {
                    let key = self.key_string(key)?;
                    self.pending = Pending::BindVar(var.clone());
                    return Ok(Effect::Get { key });
                }
                Stmt::Set { key, value } => {
                    let key = self.key_string(key)?;
                    let value = self.eval(value)?;
                    self.pending = Pending::Ack;
                    return Ok(Effect::Set { key, value });
                }
                Stmt::Call { func, args, var } => {
                    let args = self.eval(args)?;
                    self.pending = Pending::BindVar(var.clone());
                    return Ok(Effect::Call {
                        func: func.clone(),
                        args,
                    });
                }
                Stmt::Http { url } => {
                    let url = self.key_string(url)?;
                    self.pending = Pending::Ack;
                    return Ok(Effect::Http { url });
                }
                Stmt::FileWrite { name, data } => {
                    let name = self.key_string(name)?;
                    let data = self.eval(data)?;
                    self.pending = Pending::Ack;
                    return Ok(Effect::FileWrite { name, data });
                }
                Stmt::FileRead { name, var } => {
                    let name = self.key_string(name)?;
                    self.pending = Pending::BindVar(var.clone());
                    return Ok(Effect::FileRead { name });
                }
                Stmt::If { cond, then, els } => {
                    let c = self.eval(cond)?;
                    let block = if c.truthy() {
                        Arc::clone(then)
                    } else {
                        Arc::clone(els)
                    };
                    self.frames.push(Frame {
                        block,
                        pc: 0,
                        kind: FrameKind::Linear,
                    });
                }
                Stmt::While {
                    cond,
                    body,
                    max_iters,
                } => {
                    let c = self.eval(cond)?;
                    if c.truthy() {
                        if *max_iters == 0 {
                            self.finished = true;
                            return Err(ProgError::LoopLimit);
                        }
                        self.frames.push(Frame {
                            block: Arc::clone(body),
                            pc: 0,
                            kind: FrameKind::Loop {
                                cond: cond.clone(),
                                body: Arc::clone(body),
                                remaining: max_iters - 1,
                            },
                        });
                    }
                }
                Stmt::Return(expr) => {
                    let v = self.eval(expr)?;
                    self.finished = true;
                    return Ok(Effect::Done(v));
                }
            }
        }
    }

    /// Runs the program to completion against simple in-memory storage and
    /// a call resolver, returning the output.
    ///
    /// This is the *functional semantics* of a program, used by tests,
    /// static characterization, and the memoization validation logic —
    /// anywhere timing does not matter.
    ///
    /// `storage` maps keys to values; `files` is the temp-file namespace;
    /// `call` resolves nested function calls.
    ///
    /// # Errors
    /// Propagates any [`ProgError`] from execution.
    pub fn run_functional<C>(
        program: &Program,
        input: Value,
        storage: &mut FxHashMap<String, Value>,
        call: &mut C,
        rng: &mut SimRng,
    ) -> Result<Value, ProgError>
    where
        C: FnMut(
            &str,
            Value,
            &mut FxHashMap<String, Value>,
            &mut SimRng,
        ) -> Result<Value, ProgError>,
    {
        let mut files: FxHashMap<String, Value> = FxHashMap::default();
        let mut interp = Interp::new(program, input);
        let mut resume: Option<Value> = None;
        loop {
            match interp.step(resume.take(), rng)? {
                Effect::Compute(_) => {}
                Effect::Get { key } => {
                    resume = Some(storage.get(&key).cloned().unwrap_or(Value::Null));
                }
                Effect::Set { key, value } => {
                    storage.insert(key, value);
                }
                Effect::Call { func, args } => {
                    resume = Some(call(&func, args, storage, rng)?);
                }
                Effect::Http { .. } => {}
                Effect::FileWrite { name, data } => {
                    files.insert(name, data);
                }
                Effect::FileRead { name } => {
                    resume = Some(files.get(&name).cloned().unwrap_or(Value::Null));
                }
                Effect::Done(v) => return Ok(v),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::*;
    use crate::program::DurationSpec;

    fn rng() -> SimRng {
        SimRng::seed(99)
    }

    fn run(p: &Program, input: Value) -> Value {
        let mut storage = FxHashMap::default();
        Interp::run_functional(
            p,
            input,
            &mut storage,
            &mut |_, _, _, _| Ok(Value::Null),
            &mut rng(),
        )
        .unwrap()
    }

    #[test]
    fn straight_line_compute_and_return() {
        let p = Program::builder().compute_ms(3).ret(lit("ok"));
        let mut i = Interp::new(&p, Value::Null);
        let mut r = rng();
        assert_eq!(
            i.step(None, &mut r).unwrap(),
            Effect::Compute(SimDuration::from_millis(3))
        );
        assert_eq!(
            i.step(None, &mut r).unwrap(),
            Effect::Done(Value::str("ok"))
        );
        assert!(i.is_finished());
    }

    #[test]
    fn step_after_done_errors() {
        let p = Program::builder().ret(lit(1i64));
        let mut i = Interp::new(&p, Value::Null);
        let mut r = rng();
        i.step(None, &mut r).unwrap();
        assert_eq!(i.step(None, &mut r), Err(ProgError::AlreadyFinished));
    }

    #[test]
    fn get_suspends_and_binds() {
        let p = Program::builder()
            .get(concat([lit("user:"), field(input(), "id")]), "u")
            .ret(var("u"));
        let mut i = Interp::new(&p, Value::map([("id", Value::Int(7))]));
        let mut r = rng();
        assert_eq!(
            i.step(None, &mut r).unwrap(),
            Effect::Get {
                key: "user:7".into()
            }
        );
        assert_eq!(
            i.step(Some(Value::str("alice")), &mut r).unwrap(),
            Effect::Done(Value::str("alice"))
        );
    }

    #[test]
    fn missing_resume_value_is_protocol_error() {
        let p = Program::builder().get(lit("k"), "v").ret(var("v"));
        let mut i = Interp::new(&p, Value::Null);
        let mut r = rng();
        i.step(None, &mut r).unwrap();
        assert_eq!(i.step(None, &mut r), Err(ProgError::ResumeMismatch));
    }

    #[test]
    fn if_branches_on_data() {
        let p = Program::builder()
            .if_(
                gt(field(input(), "x"), lit(10i64)),
                vec![Stmt::Return(lit("big"))],
                vec![Stmt::Return(lit("small"))],
            )
            .build();
        assert_eq!(
            run(&p, Value::map([("x", Value::Int(50))])),
            Value::str("big")
        );
        assert_eq!(
            run(&p, Value::map([("x", Value::Int(5))])),
            Value::str("small")
        );
    }

    #[test]
    fn while_loop_accumulates() {
        // i = 0; total = 0; while i < 5 { total += i; i += 1 } return total
        let p = Program::builder()
            .let_("i", lit(0i64))
            .let_("total", lit(0i64))
            .while_(
                lt(var("i"), lit(5i64)),
                vec![
                    Stmt::Let {
                        var: "total".into(),
                        expr: add(var("total"), var("i")),
                    },
                    Stmt::Let {
                        var: "i".into(),
                        expr: add(var("i"), lit(1i64)),
                    },
                ],
                100,
            )
            .ret(var("total"));
        assert_eq!(run(&p, Value::Null), Value::Int(10));
    }

    #[test]
    fn while_loop_limit_enforced() {
        let p = Program::builder()
            .while_(lit(true), vec![], 3)
            .ret(lit(0i64));
        let mut storage = FxHashMap::default();
        let err = Interp::run_functional(
            &p,
            Value::Null,
            &mut storage,
            &mut |_, _, _, _| Ok(Value::Null),
            &mut rng(),
        )
        .unwrap_err();
        assert_eq!(err, ProgError::LoopLimit);
    }

    #[test]
    fn storage_set_then_get_roundtrip() {
        let p = Program::builder()
            .set(lit("k"), field(input(), "v"))
            .get(lit("k"), "back")
            .ret(var("back"));
        assert_eq!(run(&p, Value::map([("v", Value::Int(9))])), Value::Int(9));
    }

    #[test]
    fn files_are_private_scratch_space() {
        let p = Program::builder()
            .file_write(lit("tmp"), lit("data"))
            .file_read(lit("tmp"), "d")
            .file_read(lit("other"), "missing")
            .ret(make_list([var("d"), var("missing")]));
        assert_eq!(
            run(&p, Value::Null),
            Value::list([Value::str("data"), Value::Null])
        );
    }

    #[test]
    fn nested_calls_resolve_via_resolver() {
        let callee = Program::builder().ret(add(field(input(), "x"), lit(1i64)));
        let caller = Program::builder()
            .call("inc", make_map([("x", lit(41i64))]), "r")
            .ret(var("r"));
        let mut storage = FxHashMap::default();
        let out = Interp::run_functional(
            &caller,
            Value::Null,
            &mut storage,
            &mut |name, args, storage, rng| {
                assert_eq!(name, "inc");
                Interp::run_functional(
                    &callee,
                    args,
                    storage,
                    &mut |_, _, _, _| Ok(Value::Null),
                    rng,
                )
            },
            &mut rng(),
        )
        .unwrap();
        assert_eq!(out, Value::Int(42));
    }

    #[test]
    fn fallthrough_returns_null() {
        let p = Program::builder().compute_ms(1).build();
        assert_eq!(run(&p, Value::Null), Value::Null);
    }

    #[test]
    fn http_effect_surfaces_url() {
        let p = Program::builder()
            .http(concat([lit("https://api/"), field(input(), "ep")]))
            .ret(lit(true));
        let mut i = Interp::new(&p, Value::map([("ep", Value::str("pay"))]));
        let mut r = rng();
        assert_eq!(
            i.step(None, &mut r).unwrap(),
            Effect::Http {
                url: "https://api/pay".into()
            }
        );
        assert_eq!(
            i.step(None, &mut r).unwrap(),
            Effect::Done(Value::Bool(true))
        );
    }

    #[test]
    fn jittered_compute_varies_but_data_does_not() {
        let p = Program::builder()
            .compute_jitter_ms(10, 0.3)
            .ret(hash_of(field(input(), "seed")));
        let inp = Value::map([("seed", Value::Int(5))]);
        let a = run(&p, inp.clone());
        let b = run(&p, inp);
        assert_eq!(a, b, "output must be deterministic despite timing jitter");
    }

    #[test]
    fn deeply_nested_blocks() {
        let p = Program::builder()
            .if_(
                lit(true),
                vec![Stmt::If {
                    cond: lit(true),
                    then: Arc::new(vec![Stmt::If {
                        cond: lit(false),
                        then: Arc::new(vec![Stmt::Return(lit("wrong"))]),
                        els: Arc::new(vec![Stmt::Return(lit("right"))]),
                    }]),
                    els: Arc::new(vec![]),
                }],
                vec![],
            )
            .build();
        assert_eq!(run(&p, Value::Null), Value::str("right"));
    }

    #[test]
    fn duration_spec_zero_while_never_entered() {
        let p = Program::builder()
            .while_(lit(false), vec![Stmt::Compute(DurationSpec::millis(1))], 0)
            .ret(lit("skipped"));
        assert_eq!(run(&p, Value::Null), Value::str("skipped"));
    }
}
