#![warn(missing_docs)]

//! # specfaas-workflow
//!
//! The function model and workflow DSL of the SpecFaaS reproduction.
//!
//! The paper treats every serverless function as a black box (§II-A) whose
//! observable behaviour is: consume an input document, burn CPU, issue
//! `get`/`set` operations against global storage, possibly call other
//! functions (implicit workflows, §II-C), possibly issue HTTP requests or
//! write temporary local files (the three side-effect classes of
//! Observation 5), and produce an output document.
//!
//! This crate implements that behaviour model from scratch:
//!
//! * [`program`] — a small statement/expression language ([`Program`]) in
//!   which every application function is written. Programs *really
//!   compute*: outputs are data-dependent on inputs and on storage reads,
//!   which is what gives speculation its genuine success/failure semantics.
//! * [`interp`] — a resumable interpreter that yields [`interp::Effect`]s
//!   (compute for d microseconds, read key, write key, call function, …) so
//!   the discrete-event platform can charge simulated time to each step.
//! * [`function`] — function specifications, annotations
//!   (`pure-function`, `non-speculative`, §VI) and the function registry.
//! * [`explicit`] — the OpenWhisk-Composer-shaped workflow DSL
//!   (`sequence`, `when`, `while_loop`, `parallel`) and its compilation to
//!   the flat, branch-annotated form the Sequence Table consumes (§V-A).
//! * [`analysis`] — static side-effect classification of programs
//!   (Observations 3 and 5).

pub mod analysis;
pub mod explicit;
pub mod expr;
pub mod function;
pub mod interp;
pub mod program;

pub use explicit::{CompiledWorkflow, EntryKind, SeqEntry, Workflow};
pub use expr::Expr;
pub use function::{Annotations, AppSpec, FuncId, FunctionRegistry, FunctionSpec};
pub use interp::{Effect, Interp, ProgError};
pub use program::{DurationSpec, Program, ProgramBuilder, Stmt};
