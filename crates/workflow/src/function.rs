//! Function specifications, annotations, and the function registry.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::explicit::{CompiledWorkflow, Workflow};
use crate::program::Program;

/// Interned identifier of a registered function.
///
/// Stable within one [`FunctionRegistry`]; indexes are assigned in
/// registration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FuncId(pub u32);

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn#{}", self.0)
    }
}

/// Developer-supplied speculation hints (paper §VI, "Function
/// Annotations").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Annotations {
    /// `pure-function`: the function reads/writes no global state, so the
    /// controller may *skip* executing it entirely on a memoization hit.
    pub pure_function: bool,
    /// `non-speculative`: never execute this function speculatively; wait
    /// until every predecessor has committed.
    pub non_speculative: bool,
}

impl Annotations {
    /// No annotations (the default).
    pub fn none() -> Self {
        Annotations::default()
    }

    /// Marks the function pure.
    pub fn pure_function() -> Self {
        Annotations {
            pure_function: true,
            ..Annotations::default()
        }
    }

    /// Marks the function non-speculative.
    pub fn non_speculative() -> Self {
        Annotations {
            non_speculative: true,
            ..Annotations::default()
        }
    }
}

/// A registered serverless function: a name, its program, and annotations.
#[derive(Debug, Clone)]
pub struct FunctionSpec {
    /// Unique (per application) function name.
    pub name: String,
    /// The function body.
    pub program: Program,
    /// Speculation annotations.
    pub annotations: Annotations,
}

impl FunctionSpec {
    /// Creates an unannotated function.
    pub fn new(name: impl Into<String>, program: Program) -> Self {
        FunctionSpec {
            name: name.into(),
            program,
            annotations: Annotations::none(),
        }
    }

    /// Creates a function with annotations.
    pub fn with_annotations(
        name: impl Into<String>,
        program: Program,
        annotations: Annotations,
    ) -> Self {
        FunctionSpec {
            name: name.into(),
            program,
            annotations,
        }
    }
}

/// The set of functions that make up one application.
///
/// # Example
///
/// ```
/// use specfaas_workflow::{FunctionRegistry, FunctionSpec, Program};
/// use specfaas_workflow::expr::lit;
///
/// let mut reg = FunctionRegistry::new();
/// let id = reg.register(FunctionSpec::new("hello", Program::builder().ret(lit("hi"))));
/// assert_eq!(reg.name(id), "hello");
/// assert_eq!(reg.lookup("hello"), Some(id));
/// ```
#[derive(Debug, Clone, Default)]
pub struct FunctionRegistry {
    funcs: Vec<FunctionSpec>,
    by_name: HashMap<String, FuncId>,
}

impl FunctionRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        FunctionRegistry::default()
    }

    /// Registers a function, returning its id.
    ///
    /// # Panics
    /// Panics if a function with the same name is already registered.
    pub fn register(&mut self, spec: FunctionSpec) -> FuncId {
        assert!(
            !self.by_name.contains_key(&spec.name),
            "duplicate function name `{}`",
            spec.name
        );
        let id = FuncId(self.funcs.len() as u32);
        self.by_name.insert(spec.name.clone(), id);
        self.funcs.push(spec);
        id
    }

    /// Looks up a function id by name.
    pub fn lookup(&self, name: &str) -> Option<FuncId> {
        self.by_name.get(name).copied()
    }

    /// The specification of a function.
    ///
    /// # Panics
    /// Panics if `id` does not belong to this registry.
    pub fn spec(&self, id: FuncId) -> &FunctionSpec {
        &self.funcs[id.0 as usize]
    }

    /// The name of a function.
    ///
    /// # Panics
    /// Panics if `id` does not belong to this registry.
    pub fn name(&self, id: FuncId) -> &str {
        &self.spec(id).name
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.funcs.len()
    }

    /// True if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.funcs.is_empty()
    }

    /// Iterates `(id, spec)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (FuncId, &FunctionSpec)> {
        self.funcs
            .iter()
            .enumerate()
            .map(|(i, s)| (FuncId(i as u32), s))
    }
}

/// A complete application: functions plus its workflow.
///
/// Explicit-workflow apps carry a composed [`Workflow`]; implicit-workflow
/// apps use [`Workflow::Task`] pointing at the root function (the call
/// graph unfolds dynamically via `Call` effects, since the platform cannot
/// see function internals — paper §II-C).
#[derive(Debug, Clone)]
pub struct AppSpec {
    /// Application name (e.g. `"SmartHome"`).
    pub name: String,
    /// The suite this app belongs to (e.g. `"FaaSChain"`).
    pub suite: String,
    /// The application's functions.
    pub registry: FunctionRegistry,
    /// The workflow composition.
    pub workflow: Workflow,
    /// The compiled sequence-table form of the workflow.
    pub compiled: CompiledWorkflow,
}

impl AppSpec {
    /// Builds an application, compiling its workflow.
    ///
    /// # Panics
    /// Panics if the workflow references a function name missing from the
    /// registry (a construction bug in the app suite).
    pub fn new(
        name: impl Into<String>,
        suite: impl Into<String>,
        registry: FunctionRegistry,
        workflow: Workflow,
    ) -> Self {
        let compiled = CompiledWorkflow::compile(&workflow, &registry)
            .expect("workflow references unregistered function");
        AppSpec {
            name: name.into(),
            suite: suite.into(),
            registry,
            workflow,
            compiled,
        }
    }

    /// True if the app's workflow is a single root task (implicit
    /// workflow).
    pub fn is_implicit(&self) -> bool {
        matches!(self.workflow, Workflow::Task(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::lit;

    fn prog() -> Program {
        Program::builder().ret(lit(1i64))
    }

    #[test]
    fn register_and_lookup() {
        let mut reg = FunctionRegistry::new();
        let a = reg.register(FunctionSpec::new("a", prog()));
        let b = reg.register(FunctionSpec::new("b", prog()));
        assert_ne!(a, b);
        assert_eq!(reg.lookup("a"), Some(a));
        assert_eq!(reg.lookup("zz"), None);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate function name")]
    fn duplicate_name_panics() {
        let mut reg = FunctionRegistry::new();
        reg.register(FunctionSpec::new("a", prog()));
        reg.register(FunctionSpec::new("a", prog()));
    }

    #[test]
    fn annotations_constructors() {
        assert!(Annotations::pure_function().pure_function);
        assert!(!Annotations::pure_function().non_speculative);
        assert!(Annotations::non_speculative().non_speculative);
    }

    #[test]
    fn iter_in_registration_order() {
        let mut reg = FunctionRegistry::new();
        reg.register(FunctionSpec::new("x", prog()));
        reg.register(FunctionSpec::new("y", prog()));
        let names: Vec<_> = reg.iter().map(|(_, s)| s.name.as_str()).collect();
        assert_eq!(names, vec!["x", "y"]);
    }

    #[test]
    fn app_spec_implicit_detection() {
        let mut reg = FunctionRegistry::new();
        reg.register(FunctionSpec::new("root", prog()));
        let app = AppSpec::new("App", "Suite", reg, Workflow::task("root"));
        assert!(app.is_implicit());
        assert_eq!(app.compiled.entries.len(), 1);
    }
}
