//! The pure expression language used inside function programs.
//!
//! Expressions evaluate against a local variable environment plus the
//! function's input document. They have no side effects — all effects
//! (storage, calls, compute time) are statements ([`crate::program::Stmt`]).

use specfaas_sim::hash::FxHashMap;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

use specfaas_storage::Value;

use crate::interp::ProgError;

/// A binary operator in the expression language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Numeric addition (also string concatenation when both are strings).
    Add,
    /// Numeric subtraction.
    Sub,
    /// Numeric multiplication.
    Mul,
    /// Numeric division. Division by zero is a [`ProgError`].
    Div,
    /// Integer modulo. Modulo zero is a [`ProgError`].
    Mod,
    /// Structural equality.
    Eq,
    /// Structural inequality.
    Ne,
    /// Numeric less-than.
    Lt,
    /// Numeric less-or-equal.
    Le,
    /// Numeric greater-than.
    Gt,
    /// Numeric greater-or-equal.
    Ge,
    /// Short-circuiting logical and (on truthiness).
    And,
    /// Short-circuiting logical or (on truthiness).
    Or,
}

/// A pure expression.
///
/// Build expressions with the free constructor functions in this module
/// ([`lit`], [`var`], [`input`], [`field`], [`concat()`], …); they keep
/// application code readable:
///
/// ```
/// use specfaas_workflow::expr::{input, field, lit, gt};
/// use specfaas_storage::Value;
///
/// // input.amount > 100
/// let e = gt(field(input(), "amount"), lit(100i64));
/// let v = e.eval(&Value::map([("amount", Value::Int(250))]),
///                &Default::default()).unwrap();
/// assert_eq!(v, Value::Bool(true));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Lit(Value),
    /// The function's entire input document.
    Input,
    /// A local variable, set by `Let`/`Get`/`Call` statements.
    Var(String),
    /// Field projection on a map value.
    Field(Box<Expr>, String),
    /// List indexing (negative indices count from the end).
    Index(Box<Expr>, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Logical negation of truthiness.
    Not(Box<Expr>),
    /// String concatenation of the `Display` forms of the operands
    /// (strings render unquoted). Used heavily to build storage keys.
    Concat(Vec<Expr>),
    /// Construct a map.
    MakeMap(Vec<(String, Expr)>),
    /// Construct a list.
    MakeList(Vec<Expr>),
    /// Deterministic 64-bit hash of a value, as a non-negative `Int`.
    /// Stands in for arbitrary data transformations: it makes outputs
    /// depend on inputs in a way memoization must reproduce exactly.
    HashOf(Box<Expr>),
    /// Length of a list, map or string.
    Len(Box<Expr>),
    /// `cond ? a : b` on truthiness.
    IfElse(Box<Expr>, Box<Expr>, Box<Expr>),
}

/// Deterministic value hash (FNV-1a over the `Hash` impl via a stable
/// hasher) — stable across runs and platforms, unlike `DefaultHasher`.
fn stable_hash(v: &Value) -> i64 {
    struct Fnv(u64);
    impl Hasher for Fnv {
        fn finish(&self) -> u64 {
            self.0
        }
        fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 ^= b as u64;
                self.0 = self.0.wrapping_mul(0x100000001b3);
            }
        }
    }
    let mut h = Fnv(0xcbf29ce484222325);
    v.hash(&mut h);
    (h.finish() & 0x7fff_ffff_ffff_ffff) as i64
}

fn display_for_concat(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        other => other.to_string(),
    }
}

impl Expr {
    /// Evaluates the expression against `input` and local variables `env`.
    ///
    /// # Errors
    /// Returns [`ProgError`] on type mismatches, unknown variables,
    /// out-of-range indexing, or division by zero.
    pub fn eval(&self, input: &Value, env: &FxHashMap<String, Value>) -> Result<Value, ProgError> {
        match self {
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Input => Ok(input.clone()),
            Expr::Var(name) => env
                .get(name)
                .cloned()
                .ok_or_else(|| ProgError::UnknownVar(name.clone())),
            Expr::Field(e, f) => {
                let v = e.eval(input, env)?;
                Ok(v.get_field(f).cloned().unwrap_or(Value::Null))
            }
            Expr::Index(e, i) => {
                let list = e.eval(input, env)?;
                let idx = i.eval(input, env)?;
                let items = list
                    .as_list()
                    .ok_or_else(|| ProgError::TypeError("index on non-list".into()))?;
                let raw = idx
                    .as_int()
                    .ok_or_else(|| ProgError::TypeError("non-integer index".into()))?;
                let n = items.len() as i64;
                let pos = if raw < 0 { raw + n } else { raw };
                if pos < 0 || pos >= n {
                    return Ok(Value::Null);
                }
                Ok(items[pos as usize].clone())
            }
            Expr::Bin(op, a, b) => {
                // Short-circuit logical operators first.
                match op {
                    BinOp::And => {
                        let av = a.eval(input, env)?;
                        if !av.truthy() {
                            return Ok(Value::Bool(false));
                        }
                        return Ok(Value::Bool(b.eval(input, env)?.truthy()));
                    }
                    BinOp::Or => {
                        let av = a.eval(input, env)?;
                        if av.truthy() {
                            return Ok(Value::Bool(true));
                        }
                        return Ok(Value::Bool(b.eval(input, env)?.truthy()));
                    }
                    _ => {}
                }
                let av = a.eval(input, env)?;
                let bv = b.eval(input, env)?;
                eval_binop(*op, &av, &bv)
            }
            Expr::Not(e) => Ok(Value::Bool(!e.eval(input, env)?.truthy())),
            Expr::Concat(parts) => {
                let mut s = String::new();
                for p in parts {
                    s.push_str(&display_for_concat(&p.eval(input, env)?));
                }
                Ok(Value::Str(s))
            }
            Expr::MakeMap(entries) => {
                let mut m = BTreeMap::new();
                for (k, e) in entries {
                    m.insert(k.clone(), e.eval(input, env)?);
                }
                Ok(Value::Map(m))
            }
            Expr::MakeList(items) => {
                let mut l = Vec::with_capacity(items.len());
                for e in items {
                    l.push(e.eval(input, env)?);
                }
                Ok(Value::List(l))
            }
            Expr::HashOf(e) => Ok(Value::Int(stable_hash(&e.eval(input, env)?))),
            Expr::Len(e) => {
                let v = e.eval(input, env)?;
                let n = match &v {
                    Value::Str(s) => s.len(),
                    Value::List(l) => l.len(),
                    Value::Map(m) => m.len(),
                    _ => return Err(ProgError::TypeError("len on scalar".into())),
                };
                Ok(Value::Int(n as i64))
            }
            Expr::IfElse(c, a, b) => {
                if c.eval(input, env)?.truthy() {
                    a.eval(input, env)
                } else {
                    b.eval(input, env)
                }
            }
        }
    }
}

fn eval_binop(op: BinOp, a: &Value, b: &Value) -> Result<Value, ProgError> {
    use BinOp::*;
    match op {
        Eq => return Ok(Value::Bool(a == b)),
        Ne => return Ok(Value::Bool(a != b)),
        _ => {}
    }
    // String + string concatenates.
    if op == Add {
        if let (Value::Str(x), Value::Str(y)) = (a, b) {
            return Ok(Value::Str(format!("{x}{y}")));
        }
    }
    // Integer-preserving arithmetic when both sides are Int.
    if let (Value::Int(x), Value::Int(y)) = (a, b) {
        return match op {
            Add => Ok(Value::Int(x.wrapping_add(*y))),
            Sub => Ok(Value::Int(x.wrapping_sub(*y))),
            Mul => Ok(Value::Int(x.wrapping_mul(*y))),
            Div => {
                if *y == 0 {
                    Err(ProgError::DivisionByZero)
                } else {
                    Ok(Value::Int(x / y))
                }
            }
            Mod => {
                if *y == 0 {
                    Err(ProgError::DivisionByZero)
                } else {
                    Ok(Value::Int(x.rem_euclid(*y)))
                }
            }
            Lt => Ok(Value::Bool(x < y)),
            Le => Ok(Value::Bool(x <= y)),
            Gt => Ok(Value::Bool(x > y)),
            Ge => Ok(Value::Bool(x >= y)),
            Eq | Ne | And | Or => unreachable!("handled above"),
        };
    }
    let (x, y) = match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => (x, y),
        _ => {
            return Err(ProgError::TypeError(format!(
                "binary {op:?} on non-numeric operands {a} and {b}"
            )))
        }
    };
    match op {
        Add => Ok(Value::Float(x + y)),
        Sub => Ok(Value::Float(x - y)),
        Mul => Ok(Value::Float(x * y)),
        Div => {
            if y == 0.0 {
                Err(ProgError::DivisionByZero)
            } else {
                Ok(Value::Float(x / y))
            }
        }
        Mod => {
            if y == 0.0 {
                Err(ProgError::DivisionByZero)
            } else {
                Ok(Value::Float(x.rem_euclid(y)))
            }
        }
        Lt => Ok(Value::Bool(x < y)),
        Le => Ok(Value::Bool(x <= y)),
        Gt => Ok(Value::Bool(x > y)),
        Ge => Ok(Value::Bool(x >= y)),
        Eq | Ne | And | Or => unreachable!("handled above"),
    }
}

// ---------------------------------------------------------------------------
// Free constructor helpers (the app-authoring API).
// ---------------------------------------------------------------------------

/// A literal value.
pub fn lit(v: impl Into<Value>) -> Expr {
    Expr::Lit(v.into())
}

/// The function's input document.
pub fn input() -> Expr {
    Expr::Input
}

/// A local variable reference.
pub fn var(name: impl Into<String>) -> Expr {
    Expr::Var(name.into())
}

/// Field projection: `base.field`.
pub fn field(base: Expr, name: impl Into<String>) -> Expr {
    Expr::Field(Box::new(base), name.into())
}

/// List indexing: `base[idx]`.
pub fn index(base: Expr, idx: Expr) -> Expr {
    Expr::Index(Box::new(base), Box::new(idx))
}

/// String concatenation of rendered operands.
pub fn concat<const N: usize>(parts: [Expr; N]) -> Expr {
    Expr::Concat(parts.into())
}

/// Map construction.
pub fn make_map<K: Into<String>, const N: usize>(entries: [(K, Expr); N]) -> Expr {
    Expr::MakeMap(entries.into_iter().map(|(k, e)| (k.into(), e)).collect())
}

/// List construction.
pub fn make_list<const N: usize>(items: [Expr; N]) -> Expr {
    Expr::MakeList(items.into())
}

/// Deterministic hash of a value.
pub fn hash_of(e: Expr) -> Expr {
    Expr::HashOf(Box::new(e))
}

/// Length of a string/list/map.
pub fn len(e: Expr) -> Expr {
    Expr::Len(Box::new(e))
}

/// Truthiness negation.
pub fn not(e: Expr) -> Expr {
    Expr::Not(Box::new(e))
}

/// Conditional expression.
pub fn if_else(c: Expr, a: Expr, b: Expr) -> Expr {
    Expr::IfElse(Box::new(c), Box::new(a), Box::new(b))
}

macro_rules! binop_fn {
    ($(#[$doc:meta] $name:ident => $op:ident),* $(,)?) => {
        $(
            #[$doc]
            pub fn $name(a: Expr, b: Expr) -> Expr {
                Expr::Bin(BinOp::$op, Box::new(a), Box::new(b))
            }
        )*
    };
}

binop_fn! {
    /// Addition (string concatenation for two strings).
    add => Add,
    /// Subtraction.
    sub => Sub,
    /// Multiplication.
    mul => Mul,
    /// Division.
    div => Div,
    /// Modulo.
    modulo => Mod,
    /// Structural equality.
    eq => Eq,
    /// Structural inequality.
    ne => Ne,
    /// Less-than.
    lt => Lt,
    /// Less-or-equal.
    le => Le,
    /// Greater-than.
    gt => Gt,
    /// Greater-or-equal.
    ge => Ge,
    /// Logical and.
    and => And,
    /// Logical or.
    or => Or,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(e: &Expr) -> Value {
        e.eval(&Value::Null, &FxHashMap::default()).unwrap()
    }

    #[test]
    fn arithmetic_int_preserving() {
        assert_eq!(ev(&add(lit(2i64), lit(3i64))), Value::Int(5));
        assert_eq!(ev(&mul(lit(2i64), lit(3i64))), Value::Int(6));
        assert_eq!(ev(&div(lit(7i64), lit(2i64))), Value::Int(3));
        assert_eq!(ev(&modulo(lit(-7i64), lit(3i64))), Value::Int(2));
    }

    #[test]
    fn arithmetic_float_promotion() {
        assert_eq!(ev(&add(lit(2i64), lit(0.5))), Value::Float(2.5));
        assert_eq!(ev(&div(lit(1.0), lit(4i64))), Value::Float(0.25));
    }

    #[test]
    fn division_by_zero_errors() {
        let e = div(lit(1i64), lit(0i64));
        assert!(matches!(
            e.eval(&Value::Null, &FxHashMap::default()),
            Err(ProgError::DivisionByZero)
        ));
    }

    #[test]
    fn string_add_concatenates() {
        assert_eq!(ev(&add(lit("ab"), lit("cd"))), Value::str("abcd"));
    }

    #[test]
    fn comparisons() {
        assert_eq!(ev(&lt(lit(1i64), lit(2i64))), Value::Bool(true));
        assert_eq!(ev(&ge(lit(2.0), lit(2i64))), Value::Bool(true));
        assert_eq!(ev(&eq(lit("a"), lit("a"))), Value::Bool(true));
        assert_eq!(
            ev(&ne(lit(1i64), lit(1.0))),
            Value::Bool(true),
            "Int != Float structurally"
        );
    }

    #[test]
    fn short_circuit_and_or() {
        // The right side would error (unknown var) if evaluated.
        let e = and(lit(false), var("missing"));
        assert_eq!(ev(&e), Value::Bool(false));
        let e = or(lit(true), var("missing"));
        assert_eq!(ev(&e), Value::Bool(true));
    }

    #[test]
    fn field_access_returns_null_for_missing() {
        let doc = Value::map([("a", Value::Int(1))]);
        let env = FxHashMap::default();
        assert_eq!(field(input(), "a").eval(&doc, &env).unwrap(), Value::Int(1));
        assert_eq!(field(input(), "b").eval(&doc, &env).unwrap(), Value::Null);
    }

    #[test]
    fn indexing_with_negative_and_oob() {
        let l = lit(Value::list([
            Value::Int(10),
            Value::Int(20),
            Value::Int(30),
        ]));
        assert_eq!(ev(&index(l.clone(), lit(0i64))), Value::Int(10));
        assert_eq!(ev(&index(l.clone(), lit(-1i64))), Value::Int(30));
        assert_eq!(ev(&index(l, lit(99i64))), Value::Null);
    }

    #[test]
    fn concat_renders_strings_unquoted() {
        let e = concat([lit("user:"), lit(42i64)]);
        assert_eq!(ev(&e), Value::str("user:42"));
    }

    #[test]
    fn make_map_and_list() {
        let e = make_map([("k", lit(1i64))]);
        assert_eq!(ev(&e), Value::map([("k", Value::Int(1))]));
        let e = make_list([lit(1i64), lit(2i64)]);
        assert_eq!(ev(&e), Value::list([Value::Int(1), Value::Int(2)]));
    }

    #[test]
    fn hash_is_deterministic_and_input_sensitive() {
        let a = ev(&hash_of(lit("alpha")));
        let a2 = ev(&hash_of(lit("alpha")));
        let b = ev(&hash_of(lit("beta")));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert!(a.as_int().unwrap() >= 0);
    }

    #[test]
    fn len_and_not_and_ifelse() {
        assert_eq!(ev(&len(lit("abc"))), Value::Int(3));
        assert_eq!(ev(&not(lit(0i64))), Value::Bool(true));
        assert_eq!(ev(&if_else(lit(true), lit(1i64), lit(2i64))), Value::Int(1));
        assert_eq!(ev(&if_else(lit(0i64), lit(1i64), lit(2i64))), Value::Int(2));
    }

    #[test]
    fn unknown_var_errors() {
        assert!(matches!(
            var("nope").eval(&Value::Null, &FxHashMap::default()),
            Err(ProgError::UnknownVar(_))
        ));
    }

    #[test]
    fn type_errors_reported() {
        assert!(matches!(
            len(lit(3i64)).eval(&Value::Null, &FxHashMap::default()),
            Err(ProgError::TypeError(_))
        ));
        assert!(matches!(
            add(lit("s"), lit(1i64)).eval(&Value::Null, &FxHashMap::default()),
            Err(ProgError::TypeError(_))
        ));
    }
}
