//! Static side-effect analysis of function programs.
//!
//! Reproduces the paper's characterization methodology:
//!
//! * **Observation 3** — the fraction of functions that never read writable
//!   global state, and the fraction that never write global state.
//! * **Observation 5** — functions have only three side-effect classes:
//!   global-storage writes, temporary-local-file writes, and HTTP requests.
//!
//! The SpecFaaS controller also uses the pure-function classification to
//! honour the `pure-function` annotation safely.

use serde::{Deserialize, Serialize};

use crate::function::{FunctionRegistry, FunctionSpec};
use crate::program::{Program, Stmt};

/// The side-effect profile of one function program.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SideEffects {
    /// Reads global storage (`Get`).
    pub reads_global: bool,
    /// Writes global storage (`Set`).
    pub writes_global: bool,
    /// Writes temporary local files (`FileWrite`).
    pub writes_local_files: bool,
    /// Issues HTTP requests (`Http`).
    pub http_requests: bool,
    /// Calls other functions (`Call`).
    pub calls_functions: bool,
}

impl SideEffects {
    /// Analyzes one program.
    pub fn of(program: &Program) -> SideEffects {
        let mut fx = SideEffects::default();
        program.visit(&mut |s: &Stmt| match s {
            Stmt::Get { .. } => fx.reads_global = true,
            Stmt::Set { .. } => fx.writes_global = true,
            Stmt::FileWrite { .. } => fx.writes_local_files = true,
            Stmt::Http { .. } => fx.http_requests = true,
            Stmt::Call { .. } => fx.calls_functions = true,
            _ => {}
        });
        fx
    }

    /// Pure in the paper's sense (§V-B): no global reads or writes, and no
    /// externally visible effects — inputs fully determine outputs.
    /// (Temporary local files are discarded at handler exit, so they do not
    /// break purity.)
    pub fn is_pure(&self) -> bool {
        !self.reads_global && !self.writes_global && !self.http_requests && !self.calls_functions
    }

    /// Has *any* side effect visible outside the handler process
    /// (Observation 5's "has side-effects" bucket).
    pub fn has_side_effects(&self) -> bool {
        self.writes_global || self.writes_local_files || self.http_requests
    }
}

/// Aggregate side-effect statistics over a registry of functions — the
/// percentages quoted in Observations 3 and 5.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RegistryProfile {
    /// Number of functions analyzed.
    pub functions: usize,
    /// Fraction that never read global state.
    pub no_global_read_fraction: f64,
    /// Fraction that never write global state.
    pub no_global_write_fraction: f64,
    /// Fraction with no side effects at all.
    pub side_effect_free_fraction: f64,
    /// Fraction that are pure (memoization may skip them).
    pub pure_fraction: f64,
}

impl RegistryProfile {
    /// Profiles every function in a registry.
    pub fn of(registry: &FunctionRegistry) -> RegistryProfile {
        let specs: Vec<&FunctionSpec> = registry.iter().map(|(_, s)| s).collect();
        let n = specs.len();
        if n == 0 {
            return RegistryProfile::default();
        }
        let effects: Vec<SideEffects> = specs.iter().map(|s| SideEffects::of(&s.program)).collect();
        let frac = |pred: &dyn Fn(&SideEffects) -> bool| {
            effects.iter().filter(|e| pred(e)).count() as f64 / n as f64
        };
        RegistryProfile {
            functions: n,
            no_global_read_fraction: frac(&|e| !e.reads_global),
            no_global_write_fraction: frac(&|e| !e.writes_global),
            side_effect_free_fraction: frac(&|e| !e.has_side_effects()),
            pure_fraction: frac(&SideEffects::is_pure),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::lit;
    use crate::function::FunctionSpec;

    #[test]
    fn pure_program_detected() {
        let p = Program::builder().compute_ms(1).ret(lit(1i64));
        let fx = SideEffects::of(&p);
        assert!(fx.is_pure());
        assert!(!fx.has_side_effects());
    }

    #[test]
    fn global_write_breaks_purity() {
        let p = Program::builder().set(lit("k"), lit(1i64)).ret(lit(1i64));
        let fx = SideEffects::of(&p);
        assert!(!fx.is_pure());
        assert!(fx.has_side_effects());
        assert!(fx.writes_global);
    }

    #[test]
    fn local_files_are_side_effect_but_not_impure() {
        let p = Program::builder()
            .file_write(lit("tmp"), lit(1i64))
            .ret(lit(1i64));
        let fx = SideEffects::of(&p);
        assert!(fx.is_pure(), "temp files do not break purity");
        assert!(fx.has_side_effects());
    }

    #[test]
    fn nested_effects_found() {
        let p = Program::builder()
            .if_(lit(true), vec![Stmt::Http { url: lit("u") }], vec![])
            .build();
        assert!(SideEffects::of(&p).http_requests);
    }

    #[test]
    fn call_detected() {
        let p = Program::builder().call("f", lit(1i64), "r").ret(lit(1i64));
        let fx = SideEffects::of(&p);
        assert!(fx.calls_functions);
        assert!(!fx.is_pure());
    }

    #[test]
    fn registry_profile_fractions() {
        let mut reg = FunctionRegistry::new();
        reg.register(FunctionSpec::new(
            "pure",
            Program::builder().compute_ms(1).ret(lit(1i64)),
        ));
        reg.register(FunctionSpec::new(
            "writer",
            Program::builder().set(lit("k"), lit(1i64)).ret(lit(1i64)),
        ));
        reg.register(FunctionSpec::new(
            "reader",
            Program::builder().get(lit("k"), "v").ret(lit(1i64)),
        ));
        reg.register(FunctionSpec::new(
            "rw",
            Program::builder()
                .get(lit("k"), "v")
                .set(lit("k"), lit(2i64))
                .ret(lit(1i64)),
        ));
        let prof = RegistryProfile::of(&reg);
        assert_eq!(prof.functions, 4);
        assert!((prof.no_global_read_fraction - 0.5).abs() < 1e-12);
        assert!((prof.no_global_write_fraction - 0.5).abs() < 1e-12);
        assert!((prof.side_effect_free_fraction - 0.5).abs() < 1e-12);
        assert!((prof.pure_fraction - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_registry_profile() {
        let prof = RegistryProfile::of(&FunctionRegistry::new());
        assert_eq!(prof.functions, 0);
        assert_eq!(prof.pure_fraction, 0.0);
    }
}
