//! The statement language of function programs, and its builder.
//!
//! A [`Program`] is a list of statements. Effectful statements (compute,
//! storage access, calls, HTTP, files) suspend the interpreter and surface
//! an [`crate::interp::Effect`] to the platform, which charges simulated
//! time and resumes with any result.

use std::sync::Arc;

use specfaas_sim::{SimDuration, SimRng};

use crate::expr::Expr;

/// How long a compute segment takes.
#[derive(Debug, Clone, PartialEq)]
pub enum DurationSpec {
    /// Exactly this long, every invocation.
    Fixed(SimDuration),
    /// Normally distributed around `mean` with coefficient of variation
    /// `cv`, clamped to `[mean/4, mean*4]`. Jitter affects only *timing*,
    /// never data values, so memoization stays sound.
    Jittered {
        /// Mean duration.
        mean: SimDuration,
        /// Coefficient of variation (std-dev / mean).
        cv: f64,
    },
}

impl DurationSpec {
    /// Fixed duration in milliseconds.
    pub fn millis(ms: u64) -> DurationSpec {
        DurationSpec::Fixed(SimDuration::from_millis(ms))
    }

    /// Fixed duration in microseconds.
    pub fn micros(us: u64) -> DurationSpec {
        DurationSpec::Fixed(SimDuration::from_micros(us))
    }

    /// Draws a concrete duration.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        match self {
            DurationSpec::Fixed(d) => *d,
            DurationSpec::Jittered { mean, cv } => {
                let m = mean.as_micros() as f64;
                let us = rng.normal_clamped(m, m * cv, m / 4.0, m * 4.0);
                SimDuration::from_micros(us.round() as u64)
            }
        }
    }

    /// The mean duration (the fixed value, or the jitter mean).
    pub fn mean(&self) -> SimDuration {
        match self {
            DurationSpec::Fixed(d) => *d,
            DurationSpec::Jittered { mean, .. } => *mean,
        }
    }
}

/// A block of statements, shared so interpreter frames can point into the
/// program without cloning statement bodies.
pub type Block = Arc<Vec<Stmt>>;

/// One statement in a function program.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Burn CPU for the given duration.
    Compute(DurationSpec),
    /// Bind a local variable to the value of an expression.
    Let {
        /// Variable name.
        var: String,
        /// Pure expression to evaluate.
        expr: Expr,
    },
    /// Read `key` from global storage into `var` (`Value::Null` if absent).
    Get {
        /// Expression producing the storage key (rendered as a string).
        key: Expr,
        /// Variable receiving the value.
        var: String,
    },
    /// Write `value` to `key` in global storage.
    Set {
        /// Expression producing the storage key.
        key: Expr,
        /// Expression producing the value to store.
        value: Expr,
    },
    /// Call another function with `args`, binding its output to `var`.
    /// The caller blocks until the callee returns (paper §II-C).
    Call {
        /// Callee function name.
        func: String,
        /// Expression producing the callee input document.
        args: Expr,
        /// Variable receiving the callee output.
        var: String,
    },
    /// Issue an external HTTP request (a side effect that speculative
    /// functions must defer, paper §VI "Side-effect Handling").
    Http {
        /// Expression producing the request URL.
        url: Expr,
    },
    /// Write a temporary local file (copy-on-write under speculation).
    FileWrite {
        /// Expression producing the file name.
        name: Expr,
        /// Expression producing the data.
        data: Expr,
    },
    /// Read a temporary local file into `var` (`Value::Null` if absent).
    FileRead {
        /// Expression producing the file name.
        name: Expr,
        /// Variable receiving the contents.
        var: String,
    },
    /// Two-way branch.
    If {
        /// Condition (truthiness).
        cond: Expr,
        /// Then-block.
        then: Block,
        /// Else-block (possibly empty).
        els: Block,
    },
    /// Bounded loop; re-evaluates `cond` before each iteration and aborts
    /// with [`crate::interp::ProgError::LoopLimit`] after `max_iters`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
        /// Hard iteration bound (programs must terminate).
        max_iters: u32,
    },
    /// Finish the function with the given output document.
    Return(Expr),
}

/// A complete function program.
///
/// Falls off the end → returns `Value::Null`.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Top-level statement block.
    pub body: Block,
}

impl Program {
    /// Creates a program from a statement list.
    pub fn new(body: Vec<Stmt>) -> Self {
        Program {
            body: Arc::new(body),
        }
    }

    /// Starts a fluent builder.
    pub fn builder() -> ProgramBuilder {
        ProgramBuilder::new()
    }

    /// Walks all statements (including nested blocks), calling `f` on each.
    pub fn visit<F: FnMut(&Stmt)>(&self, f: &mut F) {
        fn walk<F: FnMut(&Stmt)>(block: &Block, f: &mut F) {
            for s in block.iter() {
                f(s);
                match s {
                    Stmt::If { then, els, .. } => {
                        walk(then, f);
                        walk(els, f);
                    }
                    Stmt::While { body, .. } => walk(body, f),
                    _ => {}
                }
            }
        }
        walk(&self.body, f);
    }

    /// Sum of the mean durations of all compute statements on the longest
    /// syntactic path (loops counted once). A rough static service-time
    /// estimate used by the characterization harness.
    pub fn static_compute_estimate(&self) -> SimDuration {
        fn est(block: &Block) -> SimDuration {
            let mut total = SimDuration::ZERO;
            for s in block.iter() {
                match s {
                    Stmt::Compute(d) => total += d.mean(),
                    Stmt::If { then, els, .. } => total += est(then).max(est(els)),
                    Stmt::While { body, .. } => total += est(body),
                    _ => {}
                }
            }
            total
        }
        est(&self.body)
    }
}

/// Fluent builder for [`Program`].
///
/// # Example
///
/// ```
/// use specfaas_workflow::{Program, DurationSpec};
/// use specfaas_workflow::expr::{input, field, lit, make_map, var, add};
///
/// let p = Program::builder()
///     .compute_ms(5)
///     .get(field(input(), "key"), "record")
///     .let_("total", add(field(var("record"), "count"), lit(1i64)))
///     .ret(make_map([("total", var("total"))]));
/// assert_eq!(p.body.len(), 4);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    stmts: Vec<Stmt>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ProgramBuilder::default()
    }

    /// Appends a raw statement.
    pub fn stmt(mut self, s: Stmt) -> Self {
        self.stmts.push(s);
        self
    }

    /// Compute for a fixed number of milliseconds.
    pub fn compute_ms(self, ms: u64) -> Self {
        self.stmt(Stmt::Compute(DurationSpec::millis(ms)))
    }

    /// Compute for a fixed number of microseconds.
    pub fn compute_us(self, us: u64) -> Self {
        self.stmt(Stmt::Compute(DurationSpec::micros(us)))
    }

    /// Compute with jitter (mean milliseconds, coefficient of variation).
    pub fn compute_jitter_ms(self, mean_ms: u64, cv: f64) -> Self {
        self.stmt(Stmt::Compute(DurationSpec::Jittered {
            mean: SimDuration::from_millis(mean_ms),
            cv,
        }))
    }

    /// Bind a local variable.
    pub fn let_(self, var: impl Into<String>, expr: Expr) -> Self {
        self.stmt(Stmt::Let {
            var: var.into(),
            expr,
        })
    }

    /// Read global storage.
    pub fn get(self, key: Expr, var: impl Into<String>) -> Self {
        self.stmt(Stmt::Get {
            key,
            var: var.into(),
        })
    }

    /// Write global storage.
    pub fn set(self, key: Expr, value: Expr) -> Self {
        self.stmt(Stmt::Set { key, value })
    }

    /// Call another function.
    pub fn call(self, func: impl Into<String>, args: Expr, var: impl Into<String>) -> Self {
        self.stmt(Stmt::Call {
            func: func.into(),
            args,
            var: var.into(),
        })
    }

    /// Issue an HTTP request.
    pub fn http(self, url: Expr) -> Self {
        self.stmt(Stmt::Http { url })
    }

    /// Write a temporary local file.
    pub fn file_write(self, name: Expr, data: Expr) -> Self {
        self.stmt(Stmt::FileWrite { name, data })
    }

    /// Read a temporary local file.
    pub fn file_read(self, name: Expr, var: impl Into<String>) -> Self {
        self.stmt(Stmt::FileRead {
            name,
            var: var.into(),
        })
    }

    /// Branch on a condition.
    pub fn if_(self, cond: Expr, then: Vec<Stmt>, els: Vec<Stmt>) -> Self {
        self.stmt(Stmt::If {
            cond,
            then: Arc::new(then),
            els: Arc::new(els),
        })
    }

    /// Bounded while loop.
    pub fn while_(self, cond: Expr, body: Vec<Stmt>, max_iters: u32) -> Self {
        self.stmt(Stmt::While {
            cond,
            body: Arc::new(body),
            max_iters,
        })
    }

    /// Return an output document and finish the program.
    pub fn ret(self, expr: Expr) -> Program {
        self.stmt(Stmt::Return(expr)).build()
    }

    /// Finishes the program without an explicit return (output `Null`).
    pub fn build(self) -> Program {
        Program::new(self.stmts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::lit;

    #[test]
    fn duration_spec_fixed_and_mean() {
        let d = DurationSpec::millis(7);
        let mut rng = SimRng::seed(1);
        assert_eq!(d.sample(&mut rng), SimDuration::from_millis(7));
        assert_eq!(d.mean(), SimDuration::from_millis(7));
    }

    #[test]
    fn duration_spec_jitter_bounds() {
        let d = DurationSpec::Jittered {
            mean: SimDuration::from_millis(10),
            cv: 0.5,
        };
        let mut rng = SimRng::seed(2);
        for _ in 0..200 {
            let s = d.sample(&mut rng);
            assert!(s >= SimDuration::from_micros(2_500));
            assert!(s <= SimDuration::from_millis(40));
        }
        assert_eq!(d.mean(), SimDuration::from_millis(10));
    }

    #[test]
    fn builder_produces_expected_shape() {
        let p = Program::builder()
            .compute_ms(1)
            .set(lit("k"), lit(1i64))
            .ret(lit("done"));
        assert_eq!(p.body.len(), 3);
        assert!(matches!(p.body[2], Stmt::Return(_)));
    }

    #[test]
    fn visit_reaches_nested_statements() {
        let p = Program::builder()
            .if_(
                lit(true),
                vec![Stmt::Compute(DurationSpec::millis(1))],
                vec![Stmt::While {
                    cond: lit(false),
                    body: Arc::new(vec![Stmt::Compute(DurationSpec::millis(2))]),
                    max_iters: 3,
                }],
            )
            .build();
        let mut computes = 0;
        p.visit(&mut |s| {
            if matches!(s, Stmt::Compute(_)) {
                computes += 1;
            }
        });
        assert_eq!(computes, 2);
    }

    #[test]
    fn static_estimate_takes_max_branch() {
        let p = Program::builder()
            .compute_ms(5)
            .if_(
                lit(true),
                vec![Stmt::Compute(DurationSpec::millis(10))],
                vec![Stmt::Compute(DurationSpec::millis(30))],
            )
            .build();
        assert_eq!(p.static_compute_estimate(), SimDuration::from_millis(35));
    }
}
