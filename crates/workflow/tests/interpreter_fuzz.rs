//! Property tests over the program interpreter: randomly generated
//! programs must never panic, always terminate (loop bounds), and be
//! deterministic for a given input and storage state.

use proptest::prelude::*;
use specfaas_sim::SimRng;
use specfaas_storage::Value;
use specfaas_workflow::expr::*;
use specfaas_workflow::{Expr, Interp, Program, Stmt};
use std::collections::HashMap;
use std::sync::Arc;

/// A small generator of well-formed expressions over known variables.
fn arb_expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        any::<i64>().prop_map(|v| lit(v)),
        any::<bool>().prop_map(|b| lit(Value::Bool(b))),
        "[a-z]{1,4}".prop_map(|s| lit(Value::str(s))),
        Just(input()),
        Just(var("x")), // bound by the program prologue
    ];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| add(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| sub(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| mul(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| div(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| eq(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| lt(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| and(a, b)),
            inner.clone().prop_map(not),
            inner.clone().prop_map(hash_of),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, a, b)| if_else(c, a, b)),
        ]
    })
    .boxed()
}

/// Well-formed statements (variables referenced are always bound).
fn arb_stmt() -> BoxedStrategy<Stmt> {
    prop_oneof![
        (1u64..20).prop_map(|ms| Stmt::Compute(specfaas_workflow::DurationSpec::millis(ms))),
        arb_expr(2).prop_map(|e| Stmt::Let {
            var: "x".into(),
            expr: e
        }),
        arb_expr(2).prop_map(|k| Stmt::Get {
            key: concat([lit("key:"), hash_of(k)]),
            var: "x".into()
        }),
        (arb_expr(2), arb_expr(2)).prop_map(|(k, v)| Stmt::Set {
            key: concat([lit("key:"), hash_of(k)]),
            value: v
        }),
        (arb_expr(2), arb_expr(2)).prop_map(|(n, d)| Stmt::FileWrite {
            name: concat([lit("f"), hash_of(n)]),
            data: d
        }),
        (arb_expr(1), proptest::collection::vec(arb_leaf_stmt(), 0..3))
            .prop_map(|(c, body)| Stmt::While {
                cond: c,
                body: Arc::new(body),
                max_iters: 4,
            }),
        (
            arb_expr(1),
            proptest::collection::vec(arb_leaf_stmt(), 0..3),
            proptest::collection::vec(arb_leaf_stmt(), 0..3)
        )
            .prop_map(|(c, t, e)| Stmt::If {
                cond: c,
                then: Arc::new(t),
                els: Arc::new(e),
            }),
    ]
    .boxed()
}

fn arb_leaf_stmt() -> BoxedStrategy<Stmt> {
    prop_oneof![
        (1u64..5).prop_map(|ms| Stmt::Compute(specfaas_workflow::DurationSpec::millis(ms))),
        arb_expr(1).prop_map(|e| Stmt::Let {
            var: "x".into(),
            expr: e
        }),
    ]
    .boxed()
}

fn arb_program() -> BoxedStrategy<Program> {
    proptest::collection::vec(arb_stmt(), 0..8)
        .prop_map(|mut stmts| {
            // Prologue binds `x`; epilogue returns it.
            stmts.insert(
                0,
                Stmt::Let {
                    var: "x".into(),
                    expr: lit(0i64),
                },
            );
            stmts.push(Stmt::Return(var("x")));
            Program::new(stmts)
        })
        .boxed()
}

fn run_program(p: &Program, input: Value, seed: u64) -> Result<Value, String> {
    let mut storage: HashMap<String, Value> = HashMap::new();
    let mut rng = SimRng::seed(seed);
    Interp::run_functional(p, input, &mut storage, &mut |_, _, _, _| Ok(Value::Null), &mut rng)
        .map_err(|e| e.to_string())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Random programs never panic and always terminate (errors are
    /// fine; hangs and panics are not).
    #[test]
    fn interpreter_total_on_random_programs(p in arb_program(), v in any::<i64>()) {
        let _ = run_program(&p, Value::Int(v), 1);
    }

    /// Program outputs are deterministic in (program, input), regardless
    /// of the timing-jitter seed.
    #[test]
    fn interpreter_deterministic(p in arb_program(), v in any::<i64>()) {
        let a = run_program(&p, Value::Int(v), 1);
        let b = run_program(&p, Value::Int(v), 999);
        prop_assert_eq!(a, b);
    }

    /// Step counts are bounded: with loop bounds of 4 and ≤8 top-level
    /// statements, no program runs forever.
    #[test]
    fn interpreter_bounded_steps(p in arb_program()) {
        let mut interp = Interp::new(&p, Value::Int(1));
        let mut rng = SimRng::seed(3);
        let mut resume: Option<Value> = None;
        for _ in 0..10_000 {
            match interp.step(resume.take(), &mut rng) {
                Ok(specfaas_workflow::Effect::Done(_)) | Err(_) => return Ok(()),
                Ok(specfaas_workflow::Effect::Get { .. })
                | Ok(specfaas_workflow::Effect::FileRead { .. })
                | Ok(specfaas_workflow::Effect::Call { .. }) => {
                    resume = Some(Value::Null);
                }
                Ok(_) => {}
            }
        }
        prop_assert!(false, "program did not terminate within 10k steps");
    }
}
