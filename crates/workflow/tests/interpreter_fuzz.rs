//! Property tests over the program interpreter: randomly generated
//! programs must never panic, always terminate (loop bounds), and be
//! deterministic for a given input and storage state.
//!
//! The generators are driven by the repo's own seeded `SimRng` (the
//! offline build environment cannot fetch `proptest`), so every case is
//! reproducible from the loop seed printed in an assertion message.

use specfaas_sim::hash::FxHashMap;
use specfaas_sim::SimRng;
use specfaas_storage::Value;
use specfaas_workflow::expr::*;
use specfaas_workflow::{Effect, Expr, Interp, Program, Stmt};
use std::sync::Arc;

const CASES: u64 = 200;

/// A small generator of well-formed expressions over known variables.
fn arb_expr(rng: &mut SimRng, depth: u32) -> Expr {
    let leaf = depth == 0 || rng.chance(0.35);
    if leaf {
        return match rng.uniform_u64(5) {
            0 => lit(rng.uniform_range(0, 1 << 32) as i64 - (1 << 31)),
            1 => lit(Value::Bool(rng.chance(0.5))),
            2 => {
                let len = rng.uniform_range(1, 4) as usize;
                let s: String = (0..len)
                    .map(|_| (b'a' + rng.uniform_u64(26) as u8) as char)
                    .collect();
                lit(Value::str(s))
            }
            3 => input(),
            _ => var("x"), // bound by the program prologue
        };
    }
    let a = arb_expr(rng, depth - 1);
    let b = arb_expr(rng, depth - 1);
    match rng.uniform_u64(10) {
        0 => add(a, b),
        1 => sub(a, b),
        2 => mul(a, b),
        3 => div(a, b),
        4 => eq(a, b),
        5 => lt(a, b),
        6 => and(a, b),
        7 => not(a),
        8 => hash_of(a),
        _ => {
            let c = arb_expr(rng, depth - 1);
            if_else(c, a, b)
        }
    }
}

fn arb_leaf_stmt(rng: &mut SimRng) -> Stmt {
    if rng.chance(0.5) {
        Stmt::Compute(specfaas_workflow::DurationSpec::millis(
            rng.uniform_range(1, 4),
        ))
    } else {
        Stmt::Let {
            var: "x".into(),
            expr: arb_expr(rng, 1),
        }
    }
}

fn arb_leaf_block(rng: &mut SimRng) -> Vec<Stmt> {
    (0..rng.uniform_u64(3))
        .map(|_| arb_leaf_stmt(rng))
        .collect()
}

/// Well-formed statements (variables referenced are always bound).
fn arb_stmt(rng: &mut SimRng) -> Stmt {
    match rng.uniform_u64(7) {
        0 => Stmt::Compute(specfaas_workflow::DurationSpec::millis(
            rng.uniform_range(1, 19),
        )),
        1 => Stmt::Let {
            var: "x".into(),
            expr: arb_expr(rng, 2),
        },
        2 => Stmt::Get {
            key: concat([lit("key:"), hash_of(arb_expr(rng, 2))]),
            var: "x".into(),
        },
        3 => Stmt::Set {
            key: concat([lit("key:"), hash_of(arb_expr(rng, 2))]),
            value: arb_expr(rng, 2),
        },
        4 => Stmt::FileWrite {
            name: concat([lit("f"), hash_of(arb_expr(rng, 2))]),
            data: arb_expr(rng, 2),
        },
        5 => Stmt::While {
            cond: arb_expr(rng, 1),
            body: Arc::new(arb_leaf_block(rng)),
            max_iters: 4,
        },
        _ => Stmt::If {
            cond: arb_expr(rng, 1),
            then: Arc::new(arb_leaf_block(rng)),
            els: Arc::new(arb_leaf_block(rng)),
        },
    }
}

fn arb_program(rng: &mut SimRng) -> Program {
    let mut stmts: Vec<Stmt> = (0..rng.uniform_u64(8)).map(|_| arb_stmt(rng)).collect();
    // Prologue binds `x`; epilogue returns it.
    stmts.insert(
        0,
        Stmt::Let {
            var: "x".into(),
            expr: lit(0i64),
        },
    );
    stmts.push(Stmt::Return(var("x")));
    Program::new(stmts)
}

fn run_program(p: &Program, input: Value, seed: u64) -> Result<Value, String> {
    let mut storage: FxHashMap<String, Value> = FxHashMap::default();
    let mut rng = SimRng::seed(seed);
    Interp::run_functional(
        p,
        input,
        &mut storage,
        &mut |_, _, _, _| Ok(Value::Null),
        &mut rng,
    )
    .map_err(|e| e.to_string())
}

/// Random programs never panic and always terminate (errors are fine;
/// hangs and panics are not).
#[test]
fn interpreter_total_on_random_programs() {
    for case in 0..CASES {
        let mut rng = SimRng::seed(0xF00D + case);
        let p = arb_program(&mut rng);
        let v = rng.uniform_range(0, 1 << 40) as i64 - (1 << 39);
        let _ = run_program(&p, Value::Int(v), 1);
    }
}

/// Program outputs are deterministic in (program, input), regardless of
/// the timing-jitter seed.
#[test]
fn interpreter_deterministic() {
    for case in 0..CASES {
        let mut rng = SimRng::seed(0xBEEF + case);
        let p = arb_program(&mut rng);
        let v = rng.uniform_range(0, 1 << 40) as i64 - (1 << 39);
        let a = run_program(&p, Value::Int(v), 1);
        let b = run_program(&p, Value::Int(v), 999);
        assert_eq!(a, b, "case {case}: outputs diverged across jitter seeds");
    }
}

/// Step counts are bounded: with loop bounds of 4 and ≤8 top-level
/// statements, no program runs forever.
#[test]
fn interpreter_bounded_steps() {
    'cases: for case in 0..CASES {
        let mut gen = SimRng::seed(0xCAFE + case);
        let p = arb_program(&mut gen);
        let mut interp = Interp::new(&p, Value::Int(1));
        let mut rng = SimRng::seed(3);
        let mut resume: Option<Value> = None;
        for _ in 0..10_000 {
            match interp.step(resume.take(), &mut rng) {
                Ok(Effect::Done(_)) | Err(_) => continue 'cases,
                Ok(Effect::Get { .. }) | Ok(Effect::FileRead { .. }) | Ok(Effect::Call { .. }) => {
                    resume = Some(Value::Null);
                }
                Ok(_) => {}
            }
        }
        panic!("case {case}: program did not terminate within 10k steps");
    }
}
