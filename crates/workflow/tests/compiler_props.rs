//! Property tests for the workflow compiler: arbitrary well-formed
//! workflow trees compile to structurally sound sequence tables.
//!
//! Generation is driven by the repo's own seeded `SimRng` (the offline
//! build environment cannot fetch `proptest`), so every case is
//! reproducible from the printed loop seed.

use specfaas_sim::SimRng;
use specfaas_workflow::expr::lit;
use specfaas_workflow::{
    CompiledWorkflow, EntryKind, FunctionRegistry, FunctionSpec, Program, Workflow,
};

const FUNCS: usize = 12;
const CASES: u64 = 300;

fn registry() -> FunctionRegistry {
    let mut reg = FunctionRegistry::new();
    for i in 0..FUNCS {
        reg.register(FunctionSpec::new(
            format!("g{i}"),
            Program::builder().ret(lit(1i64)),
        ));
    }
    reg
}

fn arb_task(rng: &mut SimRng) -> Workflow {
    Workflow::task(format!("g{}", rng.uniform_u64(FUNCS as u64)))
}

/// Random workflows over the fixed registry. `parallel` only appears in
/// the supported placement (inside a sequence, after a task).
fn arb_workflow(rng: &mut SimRng, depth: u32) -> Workflow {
    if depth == 0 || rng.chance(0.3) {
        return arb_task(rng);
    }
    match rng.uniform_u64(4) {
        0 => {
            let n = rng.uniform_range(1, 3);
            Workflow::sequence((0..n).map(|_| arb_workflow(rng, depth - 1)).collect())
        }
        1 => {
            let cond = format!("g{}", rng.uniform_u64(FUNCS as u64));
            let then = arb_workflow(rng, depth - 1);
            let els = rng.chance(0.5).then(|| arb_workflow(rng, depth - 1));
            Workflow::when(cond, then, els)
        }
        2 => Workflow::WhileLoop {
            cond: format!("g{}", rng.uniform_u64(FUNCS as u64)),
            field: Some("more".into()),
            body: Box::new(arb_workflow(rng, depth - 1)),
        },
        // sequence [task, parallel [...], task] — the supported shape.
        _ => {
            let pre = arb_task(rng);
            let n = rng.uniform_range(1, 2);
            let branches = (0..n).map(|_| arb_workflow(rng, depth - 1)).collect();
            let join = arb_task(rng);
            Workflow::sequence(vec![pre, Workflow::parallel(branches), join])
        }
    }
}

fn check_sound(c: &CompiledWorkflow) {
    let n = c.entries.len();
    assert!(c.start < n, "start {} out of bounds {n}", c.start);
    for (i, e) in c.entries.iter().enumerate() {
        match &e.kind {
            EntryKind::Simple { next } => {
                if let Some(x) = next {
                    assert!(*x < n, "entry {i}: next {x} out of bounds");
                }
            }
            EntryKind::Branch {
                taken, not_taken, ..
            } => {
                for t in [taken, not_taken].into_iter().flatten() {
                    assert!(*t < n, "entry {i}: branch target {t} out of bounds");
                }
            }
            EntryKind::Fork { branches, join } => {
                assert!(!branches.is_empty(), "entry {i}: empty fork");
                for b in branches {
                    assert!(*b < n, "entry {i}: fork branch {b} out of bounds");
                }
                if let Some(j) = join {
                    assert!(*j < n, "entry {i}: join {j} out of bounds");
                    assert!(
                        c.entries[*j].join_arity as usize == branches.len(),
                        "entry {i}: join arity mismatch"
                    );
                }
            }
        }
    }
}

/// Every random workflow either compiles to a sound table or reports a
/// well-defined error (never panics, never emits dangling indexes).
#[test]
fn compile_is_sound_or_rejects() {
    let reg = registry();
    for case in 0..CASES {
        let mut rng = SimRng::seed(0x51AB + case);
        let w = arb_workflow(&mut rng, 3);
        if let Ok(c) = CompiledWorkflow::compile(&w, &reg) {
            check_sound(&c);
            // Branch-count consistency with the source tree.
            assert!(
                c.branch_entries().len() >= w.branch_count().min(c.len()) / 2,
                "case {case}: too few branch entries"
            );
        }
    }
}

/// Compilation is deterministic.
#[test]
fn compile_deterministic() {
    let reg = registry();
    for case in 0..CASES {
        let mut rng = SimRng::seed(0xD0_0D + case);
        let w = arb_workflow(&mut rng, 3);
        let a = CompiledWorkflow::compile(&w, &reg);
        let b = CompiledWorkflow::compile(&w, &reg);
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "case {case}: non-deterministic compile"
        );
    }
}

/// Every function referenced in the source appears in the table.
#[test]
fn all_functions_reachable() {
    let reg = registry();
    for case in 0..CASES {
        let mut rng = SimRng::seed(0xFA_CE + case);
        let w = arb_workflow(&mut rng, 3);
        if let Ok(c) = CompiledWorkflow::compile(&w, &reg) {
            let names = w.function_names();
            let table_funcs: std::collections::HashSet<u32> =
                c.entries.iter().map(|e| e.func.0).collect();
            for n in names {
                let id = reg.lookup(n).unwrap();
                assert!(
                    table_funcs.contains(&id.0),
                    "case {case}: {n} missing from table"
                );
            }
        }
    }
}
