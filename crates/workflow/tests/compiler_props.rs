//! Property tests for the workflow compiler: arbitrary well-formed
//! workflow trees compile to structurally sound sequence tables.

use proptest::prelude::*;
use specfaas_workflow::expr::lit;
use specfaas_workflow::{
    CompiledWorkflow, EntryKind, FunctionRegistry, FunctionSpec, Program, Workflow,
};

const FUNCS: usize = 12;

fn registry() -> FunctionRegistry {
    let mut reg = FunctionRegistry::new();
    for i in 0..FUNCS {
        reg.register(FunctionSpec::new(
            format!("g{i}"),
            Program::builder().ret(lit(1i64)),
        ));
    }
    reg
}

/// Random workflows over the fixed registry. `parallel` only appears in
/// the supported placement (inside a sequence, after a task).
fn arb_workflow(depth: u32) -> BoxedStrategy<Workflow> {
    let task = (0..FUNCS).prop_map(|i| Workflow::task(format!("g{i}")));
    task.prop_recursive(depth, 24, 4, |inner| {
        let task = (0..FUNCS).prop_map(|i| Workflow::task(format!("g{i}")));
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Workflow::sequence),
            ((0..FUNCS), inner.clone(), proptest::option::of(inner.clone()))
                .prop_map(|(c, t, e)| Workflow::when(format!("g{c}"), t, e)),
            ((0..FUNCS), inner.clone()).prop_map(|(c, b)| Workflow::WhileLoop {
                cond: format!("g{c}"),
                field: Some("more".into()),
                body: Box::new(b),
            }),
            // sequence [task, parallel [...], task] — the supported shape.
            (task, proptest::collection::vec(inner, 1..3), (0..FUNCS)).prop_map(
                |(pre, branches, join)| {
                    Workflow::sequence(vec![
                        pre,
                        Workflow::parallel(branches),
                        Workflow::task(format!("g{join}")),
                    ])
                }
            ),
        ]
    })
    .boxed()
}

fn check_sound(c: &CompiledWorkflow) {
    let n = c.entries.len();
    assert!(c.start < n, "start {} out of bounds {n}", c.start);
    for (i, e) in c.entries.iter().enumerate() {
        match &e.kind {
            EntryKind::Simple { next } => {
                if let Some(x) = next {
                    assert!(*x < n, "entry {i}: next {x} out of bounds");
                }
            }
            EntryKind::Branch {
                taken, not_taken, ..
            } => {
                for t in [taken, not_taken].into_iter().flatten() {
                    assert!(*t < n, "entry {i}: branch target {t} out of bounds");
                }
            }
            EntryKind::Fork { branches, join } => {
                assert!(!branches.is_empty(), "entry {i}: empty fork");
                for b in branches {
                    assert!(*b < n, "entry {i}: fork branch {b} out of bounds");
                }
                if let Some(j) = join {
                    assert!(*j < n, "entry {i}: join {j} out of bounds");
                    assert!(
                        c.entries[*j].join_arity as usize == branches.len(),
                        "entry {i}: join arity mismatch"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Every random workflow either compiles to a sound table or reports
    /// a well-defined error (never panics, never emits dangling indexes).
    #[test]
    fn compile_is_sound_or_rejects(w in arb_workflow(3)) {
        let reg = registry();
        if let Ok(c) = CompiledWorkflow::compile(&w, &reg) {
            check_sound(&c);
            // Branch-count consistency with the source tree.
            prop_assert!(c.branch_entries().len() >= w.branch_count().min(c.len()) / 2);
        }
    }

    /// Compilation is deterministic.
    #[test]
    fn compile_deterministic(w in arb_workflow(3)) {
        let reg = registry();
        let a = CompiledWorkflow::compile(&w, &reg);
        let b = CompiledWorkflow::compile(&w, &reg);
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    /// Every function referenced in the source appears in the table.
    #[test]
    fn all_functions_reachable(w in arb_workflow(3)) {
        let reg = registry();
        if let Ok(c) = CompiledWorkflow::compile(&w, &reg) {
            let names = w.function_names();
            let table_funcs: std::collections::HashSet<u32> =
                c.entries.iter().map(|e| e.func.0).collect();
            for n in names {
                let id = reg.lookup(n).unwrap();
                prop_assert!(table_funcs.contains(&id.0), "{n} missing from table");
            }
        }
    }
}
