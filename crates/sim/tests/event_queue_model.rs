//! Property test: the slot/generation event queue against a brutally
//! simple reference model (a Vec kept in delivery order) under long
//! random sequences of schedule / cancel / step / step_until, including
//! cancels of already-fired and already-cancelled ids. After every
//! operation the exact `pending()` count and `peek_time()` must agree;
//! every delivered event must match the model's next expected delivery.

use specfaas_sim::{EventId, SimDuration, SimRng, SimTime, Simulator};

/// Reference model: pending events in (time, seq) delivery order.
struct Model {
    /// (at, seq, payload) — kept sorted by (at, seq).
    pending: Vec<(SimTime, u64, u64)>,
    now: SimTime,
    next_seq: u64,
}

impl Model {
    fn new() -> Self {
        Model {
            pending: Vec::new(),
            now: SimTime::ZERO,
            next_seq: 0,
        }
    }

    fn schedule(&mut self, at: SimTime, payload: u64) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let pos = self
            .pending
            .partition_point(|&(t, s, _)| (t, s) < (at, seq));
        self.pending.insert(pos, (at, seq, payload));
        seq
    }

    /// Cancels by seq; true if it was still pending.
    fn cancel(&mut self, seq: u64) -> bool {
        match self.pending.iter().position(|&(_, s, _)| s == seq) {
            Some(i) => {
                self.pending.remove(i);
                true
            }
            None => false,
        }
    }

    fn step(&mut self) -> Option<(SimTime, u64)> {
        if self.pending.is_empty() {
            return None;
        }
        let (at, _, payload) = self.pending.remove(0);
        self.now = at;
        Some((at, payload))
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.pending.first().map(|&(t, _, _)| t)
    }
}

#[test]
fn random_schedule_cancel_step_matches_reference_model() {
    let mut rng = SimRng::seed(0xE7E77);
    for trial in 0..50u64 {
        let mut sim: Simulator<u64> = Simulator::new();
        let mut model = Model::new();
        // All ids ever issued, live or not: (sim id, model seq).
        let mut ids: Vec<(EventId, u64)> = Vec::new();
        let mut payload = 0u64;

        for op in 0..600 {
            match rng.uniform_u64(10) {
                // Schedule (weighted heaviest so queues grow).
                0..=4 => {
                    let at = sim.now() + SimDuration::from_micros(rng.uniform_u64(5_000));
                    payload += 1;
                    let id = sim.schedule_at(at, payload);
                    let seq = model.schedule(at, payload);
                    ids.push((id, seq));
                }
                // Cancel a random id ever issued (live, fired, cancelled,
                // or recycled-slot stale — all must agree with the model).
                5..=6 => {
                    if !ids.is_empty() {
                        let (id, seq) = ids[rng.uniform_u64(ids.len() as u64) as usize];
                        let a = sim.cancel(id);
                        let b = model.cancel(seq);
                        assert_eq!(a, b, "trial {trial} op {op}: cancel disagreed");
                    }
                }
                // Step once.
                7..=8 => {
                    let got = sim.step();
                    let want = model.step();
                    assert_eq!(got, want, "trial {trial} op {op}: step disagreed");
                }
                // step_until a random deadline.
                _ => {
                    let deadline = sim.now() + SimDuration::from_micros(rng.uniform_u64(2_000));
                    loop {
                        let fires = model.peek_time().is_some_and(|t| t <= deadline);
                        let got = sim.step_until(deadline);
                        if fires {
                            assert_eq!(
                                got,
                                model.step(),
                                "trial {trial} op {op}: step_until disagreed"
                            );
                        } else {
                            assert_eq!(
                                got, None,
                                "trial {trial} op {op}: step_until fired past deadline"
                            );
                            break;
                        }
                    }
                }
            }
            assert_eq!(
                sim.pending(),
                model.pending.len(),
                "trial {trial} op {op}: pending() diverged"
            );
            assert_eq!(
                sim.peek_time(),
                model.peek_time(),
                "trial {trial} op {op}: peek_time() diverged"
            );
        }

        // Drain both queues; delivery order must match exactly.
        loop {
            let got = sim.step();
            let want = model.step();
            assert_eq!(got, want, "trial {trial}: drain disagreed");
            if got.is_none() {
                break;
            }
        }
        assert!(sim.is_idle());
    }
}
