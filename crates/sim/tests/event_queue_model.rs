//! Property tests: the calendar-bucket event queue against reference
//! models under long random sequences of schedule / cancel / step /
//! step_until, including cancels of already-fired and already-cancelled
//! ids. After every operation the exact `pending()` count and
//! `peek_time()` must agree; every delivered event must match the model's
//! next expected delivery.
//!
//! Two models are used: a brutally simple sorted `Vec` for short
//! interleavings, and a `BTreeMap` keyed by `(time, seq)` for the scaled
//! runs at 1k / 10k / 100k pending events (the Vec model's O(n) inserts
//! would dominate at those sizes). The scaled runs mix delay magnitudes
//! from "this instant" to tens of simulated seconds, so events cross the
//! wheel horizon in both directions and exercise the overflow heap,
//! bucket-width rebuilds, and tombstone compaction.

use specfaas_sim::{EventId, SimDuration, SimRng, SimTime, Simulator};

/// Reference model: pending events in (time, seq) delivery order.
struct Model {
    /// (at, seq, payload) — kept sorted by (at, seq).
    pending: Vec<(SimTime, u64, u64)>,
    now: SimTime,
    next_seq: u64,
}

impl Model {
    fn new() -> Self {
        Model {
            pending: Vec::new(),
            now: SimTime::ZERO,
            next_seq: 0,
        }
    }

    fn schedule(&mut self, at: SimTime, payload: u64) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let pos = self
            .pending
            .partition_point(|&(t, s, _)| (t, s) < (at, seq));
        self.pending.insert(pos, (at, seq, payload));
        seq
    }

    /// Cancels by seq; true if it was still pending.
    fn cancel(&mut self, seq: u64) -> bool {
        match self.pending.iter().position(|&(_, s, _)| s == seq) {
            Some(i) => {
                self.pending.remove(i);
                true
            }
            None => false,
        }
    }

    fn step(&mut self) -> Option<(SimTime, u64)> {
        if self.pending.is_empty() {
            return None;
        }
        let (at, _, payload) = self.pending.remove(0);
        self.now = at;
        Some((at, payload))
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.pending.first().map(|&(t, _, _)| t)
    }
}

#[test]
fn random_schedule_cancel_step_matches_reference_model() {
    let mut rng = SimRng::seed(0xE7E77);
    for trial in 0..50u64 {
        let mut sim: Simulator<u64> = Simulator::new();
        let mut model = Model::new();
        // All ids ever issued, live or not: (sim id, model seq).
        let mut ids: Vec<(EventId, u64)> = Vec::new();
        let mut payload = 0u64;

        for op in 0..600 {
            match rng.uniform_u64(10) {
                // Schedule (weighted heaviest so queues grow).
                0..=4 => {
                    let at = sim.now() + SimDuration::from_micros(rng.uniform_u64(5_000));
                    payload += 1;
                    let id = sim.schedule_at(at, payload);
                    let seq = model.schedule(at, payload);
                    ids.push((id, seq));
                }
                // Cancel a random id ever issued (live, fired, cancelled,
                // or recycled-slot stale — all must agree with the model).
                5..=6 => {
                    if !ids.is_empty() {
                        let (id, seq) = ids[rng.uniform_u64(ids.len() as u64) as usize];
                        let a = sim.cancel(id);
                        let b = model.cancel(seq);
                        assert_eq!(a, b, "trial {trial} op {op}: cancel disagreed");
                    }
                }
                // Step once.
                7..=8 => {
                    let got = sim.step();
                    let want = model.step();
                    assert_eq!(got, want, "trial {trial} op {op}: step disagreed");
                }
                // step_until a random deadline.
                _ => {
                    let deadline = sim.now() + SimDuration::from_micros(rng.uniform_u64(2_000));
                    loop {
                        let fires = model.peek_time().is_some_and(|t| t <= deadline);
                        let got = sim.step_until(deadline);
                        if fires {
                            assert_eq!(
                                got,
                                model.step(),
                                "trial {trial} op {op}: step_until disagreed"
                            );
                        } else {
                            assert_eq!(
                                got, None,
                                "trial {trial} op {op}: step_until fired past deadline"
                            );
                            break;
                        }
                    }
                }
            }
            assert_eq!(
                sim.pending(),
                model.pending.len(),
                "trial {trial} op {op}: pending() diverged"
            );
            assert_eq!(
                sim.peek_time(),
                model.peek_time(),
                "trial {trial} op {op}: peek_time() diverged"
            );
        }

        // Drain both queues; delivery order must match exactly.
        loop {
            let got = sim.step();
            let want = model.step();
            assert_eq!(got, want, "trial {trial}: drain disagreed");
            if got.is_none() {
                break;
            }
        }
        assert!(sim.is_idle());
    }
}

/// Reference model for the scaled runs: `(at, seq) -> payload` in a
/// BTreeMap (delivery order is the key order), with a seq-indexed side map
/// so cancels by id stay O(log n).
struct BigModel {
    pending: std::collections::BTreeMap<(SimTime, u64), u64>,
    by_seq: std::collections::HashMap<u64, SimTime>,
    next_seq: u64,
}

impl BigModel {
    fn new() -> Self {
        BigModel {
            pending: std::collections::BTreeMap::new(),
            by_seq: std::collections::HashMap::new(),
            next_seq: 0,
        }
    }

    fn schedule(&mut self, at: SimTime, payload: u64) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.insert((at, seq), payload);
        self.by_seq.insert(seq, at);
        seq
    }

    fn cancel(&mut self, seq: u64) -> bool {
        match self.by_seq.remove(&seq) {
            Some(at) => {
                self.pending.remove(&(at, seq));
                true
            }
            None => false,
        }
    }

    fn step(&mut self) -> Option<(SimTime, u64)> {
        let (&(at, seq), &payload) = self.pending.iter().next()?;
        self.pending.remove(&(at, seq));
        self.by_seq.remove(&seq);
        Some((at, payload))
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.pending.keys().next().map(|&(t, _)| t)
    }
}

/// Random delay spanning five magnitudes: same-instant, microseconds,
/// milliseconds, seconds (within the initial wheel horizon), and tens of
/// seconds (beyond it, forcing overflow-heap traffic and width rebuilds).
fn random_delay(rng: &mut SimRng) -> SimDuration {
    match rng.uniform_u64(5) {
        0 => SimDuration::from_micros(0),
        1 => SimDuration::from_micros(rng.uniform_u64(1_000)),
        2 => SimDuration::from_micros(rng.uniform_u64(100_000)),
        3 => SimDuration::from_micros(rng.uniform_u64(2_000_000)),
        _ => SimDuration::from_micros(rng.uniform_u64(30_000_000)),
    }
}

/// Drives `ops` random schedule/cancel/step/step_until operations around a
/// steady-state backlog of `scale` pending events, checking exactness
/// after every operation.
fn run_scaled_trial(scale: usize, ops: usize, seed: u64) {
    let mut rng = SimRng::seed(seed);
    let mut sim: Simulator<u64> = Simulator::new();
    let mut model = BigModel::new();
    let mut ids: Vec<(EventId, u64)> = Vec::new();
    let mut payload = 0u64;

    let schedule = |sim: &mut Simulator<u64>,
                    model: &mut BigModel,
                    ids: &mut Vec<(EventId, u64)>,
                    payload: &mut u64,
                    rng: &mut SimRng| {
        let at = sim.now() + random_delay(rng);
        *payload += 1;
        let id = sim.schedule_at(at, *payload);
        let seq = model.schedule(at, *payload);
        ids.push((id, seq));
    };

    // Build the backlog, including bursts at identical timestamps so the
    // scaled runs also cover same-instant FIFO ordering.
    while sim.pending() < scale {
        if rng.uniform_u64(10) == 0 {
            let at = sim.now() + random_delay(&mut rng);
            for _ in 0..rng.uniform_u64(8) + 2 {
                payload += 1;
                let id = sim.schedule_at(at, payload);
                let seq = model.schedule(at, payload);
                ids.push((id, seq));
            }
        } else {
            schedule(&mut sim, &mut model, &mut ids, &mut payload, &mut rng);
        }
    }

    for op in 0..ops {
        match rng.uniform_u64(10) {
            0..=3 => schedule(&mut sim, &mut model, &mut ids, &mut payload, &mut rng),
            // Cancel a random id ever issued — live, fired, cancelled, or
            // recycled-slot stale; cancelling the head must keep
            // peek_time() exact (checked below every op).
            4..=6 => {
                if !ids.is_empty() {
                    let (id, seq) = ids[rng.uniform_u64(ids.len() as u64) as usize];
                    assert_eq!(
                        sim.cancel(id),
                        model.cancel(seq),
                        "scale {scale} op {op}: cancel disagreed"
                    );
                }
            }
            7..=8 => {
                assert_eq!(
                    sim.step(),
                    model.step(),
                    "scale {scale} op {op}: step disagreed"
                );
            }
            _ => {
                let deadline = sim.now() + random_delay(&mut rng);
                loop {
                    let fires = model.peek_time().is_some_and(|t| t <= deadline);
                    let got = sim.step_until(deadline);
                    if fires {
                        assert_eq!(
                            got,
                            model.step(),
                            "scale {scale} op {op}: step_until disagreed"
                        );
                    } else {
                        assert_eq!(got, None, "scale {scale} op {op}: fired past deadline");
                        break;
                    }
                }
            }
        }
        assert_eq!(
            sim.pending(),
            model.pending.len(),
            "scale {scale} op {op}: pending() diverged"
        );
        assert_eq!(
            sim.peek_time(),
            model.peek_time(),
            "scale {scale} op {op}: peek_time() diverged"
        );
    }

    // Partial drain: delivery order must match exactly (full drain at 100k
    // would dominate the test's runtime without adding coverage).
    for _ in 0..(scale / 2).max(100) {
        let got = sim.step();
        assert_eq!(got, model.step(), "scale {scale}: drain disagreed");
        if got.is_none() {
            break;
        }
    }
    assert_eq!(sim.pending(), model.pending.len());
}

#[test]
fn scaled_model_equivalence_1k_pending() {
    run_scaled_trial(1_000, 4_000, 0xCA1E_0001);
}

#[test]
fn scaled_model_equivalence_10k_pending() {
    run_scaled_trial(10_000, 4_000, 0xCA1E_0010);
}

#[test]
fn scaled_model_equivalence_100k_pending() {
    run_scaled_trial(100_000, 4_000, 0xCA1E_0100);
}

/// Same-timestamp FIFO ordering must hold for a wide burst even when the
/// burst is buried under a large backlog and interleaved with head
/// cancels (which force cached-minimum refreshes through the burst's
/// bucket).
#[test]
fn same_timestamp_fifo_under_backlog_and_head_cancels() {
    let mut rng = SimRng::seed(0xF1F0);
    let mut sim: Simulator<u64> = Simulator::new();
    // Backlog spread over 1 s.
    for i in 0..20_000u64 {
        sim.schedule_in(SimDuration::from_micros(rng.uniform_u64(1_000_000) + 1), i);
    }
    // A 512-wide burst at one instant, tagged so deliveries are
    // recognizable, plus head-adjacent victims to cancel.
    let burst_at = sim.now() + SimDuration::from_micros(500_000);
    let tags: Vec<u64> = (0..512).map(|i| 1_000_000 + i).collect();
    for &t in &tags {
        sim.schedule_at(burst_at, t);
    }
    // Repeatedly cancel the current head event (via a fresh earliest
    // probe) and verify peek_time() snaps back exactly to the pre-probe
    // head after the cancel.
    for probe in 0..64u64 {
        let before = sim.peek_time();
        let at = sim.now() + SimDuration::from_micros(probe + 1);
        if before.is_some_and(|t| t < at) {
            continue; // probe would not be the head; nothing to exercise
        }
        let id = sim.schedule_at(at, u64::MAX);
        assert_eq!(sim.peek_time(), Some(at), "probe must be the head");
        assert!(sim.cancel(id));
        assert_eq!(sim.peek_time(), before, "head cancel must restore peek");
    }
    // Drain; the burst tags must come out in insertion order.
    let mut seen = Vec::new();
    while let Some((t, v)) = sim.step() {
        if v >= 1_000_000 && v != u64::MAX {
            assert_eq!(t, burst_at);
            seen.push(v);
        }
    }
    assert_eq!(seen, tags, "same-instant burst must deliver FIFO");
}
