//! Property tests for the streaming observability primitives: the
//! mergeable [`LogHistogram`] and the [`SpaceSaving`] heavy-hitter
//! sketch (DESIGN.md, "Streaming observability").
//!
//! These are hand-rolled property sweeps over seeded [`SimRng`] streams
//! (the workspace carries no property-testing dependency): each test
//! fixes a family of adversarial-ish distributions and asserts the
//! documented algebraic or accuracy guarantee over every seed in a range.

use specfaas_sim::{LogHistogram, SimRng, SpaceSaving};

/// A value stream of `n` samples from one of several shapes — uniform,
/// exponential-ish (product of uniforms), heavy-tailed, constant, and
/// tiny values exercising the exact linear region.
fn stream(seed: u64, n: usize) -> Vec<u64> {
    let mut rng = SimRng::seed(seed);
    let shape = seed % 5;
    (0..n)
        .map(|_| match shape {
            0 => rng.uniform_u64(1_000_000),
            1 => 1 + rng.uniform_u64(1_000) * rng.uniform_u64(1_000),
            2 => 1u64 << rng.uniform_u64(40),
            3 => 42,
            _ => rng.uniform_u64(64), // linear region only
        })
        .collect()
}

fn hist_of(values: &[u64]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// Exact quantile with the same rank convention the histogram documents:
/// rank = ceil(q·n) clamped to [1, n], value = rank-th smallest.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

#[test]
fn merge_is_associative_and_commutative() {
    for seed in 0..20u64 {
        let a = hist_of(&stream(seed * 3 + 1, 400));
        let b = hist_of(&stream(seed * 3 + 2, 300));
        let c = hist_of(&stream(seed * 3 + 3, 500));

        // (a ∪ b) ∪ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ∪ (b ∪ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right, "merge not associative at seed {seed}");

        // b ∪ a == a ∪ b
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge not commutative at seed {seed}");
    }
}

#[test]
fn sharded_merge_is_order_independent_like_jobs_fanout() {
    // The property `--jobs` determinism rests on: however a stream is
    // sharded, and whatever order the shards are folded in, the merged
    // histogram is identical to recording the stream whole.
    for seed in 0..10u64 {
        let values = stream(seed + 77, 1_200);
        let whole = hist_of(&values);
        for shards in [2usize, 3, 7] {
            let parts: Vec<LogHistogram> = values
                .chunks(values.len().div_ceil(shards))
                .map(hist_of)
                .collect();
            // Forward fold order.
            let mut fwd = LogHistogram::new();
            for p in &parts {
                fwd.merge(p);
            }
            // Reverse fold order (a different jobs interleaving).
            let mut rev = LogHistogram::new();
            for p in parts.iter().rev() {
                rev.merge(p);
            }
            assert_eq!(fwd, whole, "sharded merge != whole at seed {seed}");
            assert_eq!(rev, whole, "fold order changed merge at seed {seed}");
        }
    }
}

#[test]
fn quantiles_are_monotone_in_q() {
    for seed in 0..20u64 {
        let h = hist_of(&stream(seed, 700));
        let mut prev = 0u64;
        for i in 0..=100u64 {
            let q = i as f64 / 100.0;
            let v = h.quantile(q);
            assert!(
                v >= prev,
                "quantile({q}) = {v} < quantile({}) = {prev} at seed {seed}",
                (i as f64 - 1.0) / 100.0
            );
            prev = v;
        }
        assert_eq!(h.quantile(1.0), h.max().unwrap());
    }
}

#[test]
fn quantiles_track_exact_within_documented_relative_error() {
    for seed in 0..20u64 {
        let mut values = stream(seed + 1, 5_000);
        let h = hist_of(&values);
        values.sort_unstable();
        for q in [0.01, 0.10, 0.50, 0.90, 0.99, 0.999] {
            let exact = exact_quantile(&values, q) as f64;
            let approx = h.quantile(q) as f64;
            // ±1 absorbs the integer midpoint rounding of one-wide buckets.
            let bound = exact * LogHistogram::RELATIVE_ERROR + 1.0;
            assert!(
                (approx - exact).abs() <= bound,
                "q={q} seed={seed}: histogram {approx} vs exact {exact} (bound {bound})"
            );
        }
    }
}

#[test]
fn histogram_memory_is_constant_in_stream_length() {
    let mut h = LogHistogram::new();
    let mut rng = SimRng::seed(9);
    for _ in 0..200_000 {
        h.record(1 + rng.uniform_u64(u64::MAX / 2));
    }
    assert_eq!(h.count(), 200_000);
    assert!(
        h.bucket_storage() <= LogHistogram::MAX_BUCKETS,
        "bucket storage {} exceeds the documented cap {}",
        h.bucket_storage(),
        LogHistogram::MAX_BUCKETS
    );
}

#[test]
fn space_saving_reports_every_heavy_hitter() {
    // Classic guarantee: with capacity k over total weight n, any key of
    // true weight > n/k is present in the sketch, with
    // count - error <= true <= count.
    for seed in 0..20u64 {
        let mut rng = SimRng::seed(seed ^ 0x70b0);
        let k = 16usize;
        let mut sketch = SpaceSaving::new(k);
        let mut truth = std::collections::BTreeMap::<String, u64>::new();
        // 3 whales buried in a wide noise floor of 200 distinct keys.
        for _ in 0..6_000 {
            let key = if rng.uniform_u64(100) < 30 {
                format!("whale-{}", rng.uniform_u64(3))
            } else {
                format!("noise-{}", rng.uniform_u64(200))
            };
            *truth.entry(key.clone()).or_insert(0) += 1;
            sketch.add(key);
        }
        let total = sketch.total();
        assert_eq!(total, 6_000);
        let threshold = total / k as u64;
        for (key, &true_count) in &truth {
            if true_count > threshold {
                let e = sketch
                    .get(key)
                    .unwrap_or_else(|| panic!("heavy hitter {key} ({true_count}) evicted"));
                assert!(e.count >= true_count, "{key}: count underestimates");
                assert!(e.count - e.error <= true_count, "{key}: bound violated");
            }
        }
    }
}

#[test]
fn space_saving_merge_keeps_heavy_hitters_across_shards() {
    // Shard a stream, sketch each shard, fold the shards in submission
    // order (the scoreboard's fleet aggregation): the global whale must
    // survive with a sound bound, and the fold must be deterministic for
    // a fixed order.
    for seed in 0..10u64 {
        let mut rng = SimRng::seed(seed ^ 0x5a5a);
        let shards = 4usize;
        let mut sketches = vec![SpaceSaving::new(16); shards];
        let mut whale_true = 0u64;
        for i in 0..8_000usize {
            let key = if rng.uniform_u64(10) < 2 {
                whale_true += 1;
                "whale".to_string()
            } else {
                format!("noise-{}", rng.uniform_u64(300))
            };
            sketches[i % shards].add(key);
        }
        let mut merged = SpaceSaving::new(16);
        for s in &sketches {
            merged.merge(s);
        }
        let mut merged2 = SpaceSaving::new(16);
        for s in &sketches {
            merged2.merge(s);
        }
        assert_eq!(merged, merged2, "same-order fold not deterministic");
        assert_eq!(merged.total(), 8_000);
        let e = merged
            .get(&"whale".to_string())
            .expect("whale lost in merge");
        assert!(e.count >= whale_true, "merged count underestimates whale");
    }
}
