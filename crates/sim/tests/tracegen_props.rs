//! Determinism and structure properties of the synthetic trace generator.
//!
//! These are the guarantees the scale bench leans on: byte-identical
//! streams per seed, a `(time, seq)` total order that survives per-tenant
//! splitting and re-merging, and popularity ranks that do not move when
//! experiment cells re-derive the Zipf table under `--jobs` sharding.

use specfaas_sim::tracegen::{encode_stream, Arrival, TraceConfig, TraceGen, ZipfTable};
use specfaas_sim::SimDuration;

#[test]
fn same_seed_is_byte_identical() {
    for seed in [0u64, 7, 0xFAA5] {
        let cfg = TraceConfig::new(200, 20_000, seed);
        let a: Vec<Arrival> = TraceGen::new(cfg.clone()).collect();
        let b: Vec<Arrival> = TraceGen::new(cfg).collect();
        assert_eq!(encode_stream(&a), encode_stream(&b), "seed {seed}");
        assert_eq!(a.len(), 20_000);
    }
}

#[test]
fn different_seeds_differ() {
    let a: Vec<Arrival> = TraceGen::new(TraceConfig::new(50, 1_000, 1)).collect();
    let b: Vec<Arrival> = TraceGen::new(TraceConfig::new(50, 1_000, 2)).collect();
    assert_ne!(encode_stream(&a), encode_stream(&b));
}

#[test]
fn batch_size_does_not_change_the_stream() {
    let cfg = TraceConfig::new(100, 10_000, 11);
    let reference: Vec<Arrival> = TraceGen::new(cfg.clone()).collect();
    for batch in [1usize, 17, 1024, 100_000] {
        let mut gen = TraceGen::new(cfg.clone());
        let mut got = Vec::new();
        while gen.fill(&mut got, batch) > 0 {}
        assert_eq!(reference, got, "batch size {batch}");
    }
}

#[test]
fn stream_is_a_time_seq_total_order_with_dense_seq() {
    let cfg = TraceConfig::new(300, 30_000, 23);
    let arrivals: Vec<Arrival> = TraceGen::new(cfg).collect();
    for (i, a) in arrivals.iter().enumerate() {
        assert_eq!(a.seq, i as u64, "seq must be dense");
    }
    for w in arrivals.windows(2) {
        assert!(
            (w[0].time, w[0].seq) < (w[1].time, w[1].seq),
            "stream must be strictly ordered by (time, seq)"
        );
    }
}

/// Splitting the stream into per-tenant sub-streams and merging them back
/// by (time, seq) must reproduce the original stream exactly — the
/// property that lets shards process tenants independently.
#[test]
fn per_tenant_streams_merge_back_deterministically() {
    let cfg = TraceConfig::new(64, 20_000, 31);
    let original: Vec<Arrival> = TraceGen::new(cfg).collect();

    let mut per_tenant: Vec<Vec<Arrival>> = vec![Vec::new(); 64];
    for a in &original {
        per_tenant[a.tenant as usize].push(*a);
    }
    // Each sub-stream inherits the order.
    for stream in &per_tenant {
        for w in stream.windows(2) {
            assert!((w[0].time, w[0].seq) < (w[1].time, w[1].seq));
        }
    }
    let mut merged: Vec<Arrival> = per_tenant.into_iter().flatten().collect();
    merged.sort_by_key(|a| (a.time, a.seq));
    assert_eq!(merged, original);
}

/// Popularity ranks depend only on (seed, tenants): re-deriving the table
/// from another worker/shard, with a different sample history or request
/// budget, yields the same tenant⇄rank mapping.
#[test]
fn zipf_ranks_stable_across_jobs_sharding() {
    let seed = 0x5CA1E;
    let tenants = 1_000;
    let reference = ZipfTable::new(tenants, 1.1, seed);

    // Shard 1: derived standalone.
    let standalone = ZipfTable::new(tenants, 1.1, seed);
    // Shard 2: derived inside a TraceGen that has consumed arrivals.
    let mut cfg = TraceConfig::new(tenants, 5_000, seed);
    cfg.zipf_exponent = 1.1;
    let mut gen = TraceGen::new(cfg.clone());
    let mut sink = Vec::new();
    gen.fill(&mut sink, 5_000);
    // Shard 3: same seed but a different request budget.
    cfg.requests = 123;
    let other_budget = TraceGen::new(cfg);

    for t in 0..tenants {
        let want = reference.rank_of_tenant(t);
        assert_eq!(standalone.rank_of_tenant(t), want);
        assert_eq!(gen.zipf().rank_of_tenant(t), want);
        assert_eq!(other_budget.zipf().rank_of_tenant(t), want);
    }
}

/// The hottest rank must actually dominate the arrival stream, and lower
/// ranks must (statistically) outdraw much higher ones.
#[test]
fn popularity_follows_rank() {
    let cfg = TraceConfig::new(500, 100_000, 17);
    let gen = TraceGen::new(cfg.clone());
    let zipf = gen.zipf().clone();
    let mut counts = vec![0u64; 500];
    for a in gen {
        counts[a.tenant as usize] += 1;
    }
    let by_rank: Vec<u64> = (0..500)
        .map(|r| counts[zipf.tenant_of_rank(r) as usize])
        .collect();
    assert!(
        by_rank[0] > by_rank[100] * 5,
        "rank 0 ({}) should dwarf rank 100 ({})",
        by_rank[0],
        by_rank[100]
    );
    let head: u64 = by_rank[..10].iter().sum();
    let total: u64 = by_rank.iter().sum();
    assert!(
        head as f64 > total as f64 * 0.4,
        "top-10 tenants should take a heavy share (got {head}/{total})"
    );
}

#[test]
fn arrival_encoding_is_20_bytes_and_invertible_in_order() {
    let cfg = TraceConfig::new(10, 100, 3);
    let arrivals: Vec<Arrival> = TraceGen::new(cfg).collect();
    let bytes = encode_stream(&arrivals);
    assert_eq!(bytes.len(), arrivals.len() * 20);
    // Spot-check the first record's layout.
    let t = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
    let seq = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let tenant = u32::from_le_bytes(bytes[16..20].try_into().unwrap());
    assert_eq!(t, arrivals[0].time.as_micros());
    assert_eq!(seq, 0);
    assert_eq!(tenant, arrivals[0].tenant);
}

#[test]
fn gaps_always_advance_time() {
    let mut cfg = TraceConfig::new(4, 10_000, 41);
    cfg.mean_rps = 1e6; // brutal rate: gaps clamp at 1 µs
    let arrivals: Vec<Arrival> = TraceGen::new(cfg).collect();
    for w in arrivals.windows(2) {
        assert!(
            w[1].time >= w[0].time + SimDuration::from_micros(1),
            "every candidate gap is clamped to >= 1 µs"
        );
    }
    assert!(arrivals[0].time.as_micros() >= 1);
}
