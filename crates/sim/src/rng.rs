//! Seeded random number generation and the distributions the experiments
//! need.
//!
//! The paper models request inter-arrival times with a Poisson process
//! (§VII) and draws function service times, branch outcomes, and dataset
//! values from skewed distributions. Everything here is built on a
//! deterministic, splittable seeded generator so experiment runs are
//! reproducible.
//!
//! The generator is a self-contained xoshiro256++ (public domain, Blackman
//! & Vigna) seeded through SplitMix64, so the simulator carries no external
//! RNG dependency — important because the build environment is offline.

/// A deterministic random source for one simulation run.
///
/// Wraps a xoshiro256++ state with the handful of draw helpers used across
/// the reproduction. Use [`SimRng::split`] to derive independent streams
/// (e.g. one per application instance, or one for the fault injector)
/// without correlating them.
///
/// # Example
///
/// ```
/// use specfaas_sim::SimRng;
///
/// let mut a = SimRng::seed(42);
/// let mut b = SimRng::seed(42);
/// assert_eq!(a.uniform_u64(100), b.uniform_u64(100));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: [u64; 4],
}

/// SplitMix64 step, used to expand a 64-bit seed into the 256-bit state.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        let mut x = seed;
        SimRng {
            state: [
                splitmix64(&mut x),
                splitmix64(&mut x),
                splitmix64(&mut x),
                splitmix64(&mut x),
            ],
        }
    }

    /// One xoshiro256++ output.
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Derives an independent child generator.
    ///
    /// The child's stream is fully determined by the parent state at the
    /// time of the split, so overall determinism is preserved.
    pub fn split(&mut self) -> SimRng {
        SimRng::seed(self.next_u64())
    }

    /// Uniform integer in `[0, bound)`, unbiased (Lemire's method).
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn uniform_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "uniform_u64 bound must be positive");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn uniform_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "uniform_range requires lo <= hi");
        let span = hi - lo;
        if span == u64::MAX {
            self.next_u64()
        } else {
            lo + self.uniform_u64(span + 1)
        }
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn uniform_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `(0, 1)` — never exactly zero, safe for `ln()`.
    ///
    /// Public so hot paths that have hoisted a distribution's constants
    /// (e.g. an exponential's precomputed mean) can reproduce
    /// [`SimRng::exponential`] bit-for-bit without re-paying its per-call
    /// assertion and division.
    pub fn uniform_f64_open(&mut self) -> f64 {
        loop {
            let u = self.uniform_f64();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// Bernoulli trial: true with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.uniform_f64() < p
    }

    /// Exponentially distributed value with the given mean.
    ///
    /// Used for Poisson inter-arrival times: a Poisson process with rate
    /// `lambda` has exponential gaps with mean `1 / lambda`.
    ///
    /// # Panics
    /// Panics if `mean` is not finite and positive.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be positive"
        );
        let u = self.uniform_f64_open();
        -mean * u.ln()
    }

    /// A value from a truncated normal distribution (Box–Muller), clamped
    /// to `[min, max]`.
    ///
    /// Used for service-time jitter around the calibrated means.
    pub fn normal_clamped(&mut self, mean: f64, std_dev: f64, min: f64, max: f64) -> f64 {
        let u1 = self.uniform_f64_open();
        let u2 = self.uniform_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (mean + z * std_dev).clamp(min, max)
    }

    /// An index in `[0, n)` drawn from a Zipf distribution with exponent
    /// `s`, computed by inverse-CDF over the finite support.
    ///
    /// Used by the dataset generators: real-world keys (user ids, routes,
    /// blobs) are heavily skewed, which is what gives the memoization
    /// tables their high hit rates (paper §VIII-B).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        assert!(n > 0, "zipf support must be non-empty");
        // Finite support: normalize sum_{k=1..n} k^-s and invert.
        // n is small (hundreds) in all our uses, so linear scan is fine.
        let norm: f64 = (1..=n).map(|k| (k as f64).powf(-s)).sum();
        let mut target = self.uniform_f64() * norm;
        for k in 1..=n {
            target -= (k as f64).powf(-s);
            if target <= 0.0 {
                return k - 1;
            }
        }
        n - 1
    }

    /// Picks one index according to a slice of non-negative weights.
    ///
    /// # Panics
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            !weights.is_empty() && total > 0.0,
            "weighted_index requires positive total weight"
        );
        let mut target = self.uniform_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            target -= w;
            if target <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.uniform_range(0, i as u64) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_same_seed_same_stream() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.uniform_u64(1_000_000), b.uniform_u64(1_000_000));
        }
    }

    #[test]
    fn split_streams_diverge() {
        let mut parent = SimRng::seed(7);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        let s1: Vec<u64> = (0..10).map(|_| c1.uniform_u64(1_000_000)).collect();
        let s2: Vec<u64> = (0..10).map(|_| c2.uniform_u64(1_000_000)).collect();
        assert_ne!(s1, s2);
    }

    #[test]
    fn uniform_u64_stays_in_bounds() {
        let mut rng = SimRng::seed(23);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..1_000 {
                assert!(rng.uniform_u64(bound) < bound);
            }
        }
    }

    #[test]
    fn uniform_u64_is_roughly_uniform() {
        let mut rng = SimRng::seed(29);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.uniform_u64(8) as usize] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c} off uniform");
        }
    }

    #[test]
    fn uniform_range_full_span_does_not_overflow() {
        let mut rng = SimRng::seed(31);
        // Must not panic or loop: span + 1 would overflow u64.
        let _ = rng.uniform_range(0, u64::MAX);
        assert_eq!(rng.uniform_range(5, 5), 5);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::seed(11);
        let n = 20_000;
        let mean = 4.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let empirical = sum / n as f64;
        assert!(
            (empirical - mean).abs() < 0.15,
            "empirical mean {empirical} too far from {mean}"
        );
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed(3);
        assert!((0..100).all(|_| rng.chance(1.0)));
        assert!((0..100).all(|_| !rng.chance(0.0)));
        // Out-of-range probabilities clamp rather than panic.
        assert!(rng.chance(2.0));
        assert!(!rng.chance(-1.0));
    }

    #[test]
    fn zipf_is_skewed_toward_low_indices() {
        let mut rng = SimRng::seed(5);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.zipf(10, 1.2)] += 1;
        }
        assert!(counts[0] > counts[9] * 3, "zipf head should dominate tail");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = SimRng::seed(13);
        let mut hits = [0usize; 3];
        for _ in 0..9_000 {
            hits[rng.weighted_index(&[0.0, 1.0, 2.0])] += 1;
        }
        assert_eq!(hits[0], 0);
        assert!(hits[2] > hits[1]);
    }

    #[test]
    fn normal_clamped_bounds() {
        let mut rng = SimRng::seed(17);
        for _ in 0..1_000 {
            let v = rng.normal_clamped(10.0, 100.0, 0.0, 20.0);
            assert!((0.0..=20.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed(19);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
