#![warn(missing_docs)]

//! # specfaas-sim
//!
//! Deterministic discrete-event simulation (DES) kernel used by the SpecFaaS
//! reproduction.
//!
//! The SpecFaaS paper (HPCA 2023) evaluates a speculative serverless
//! orchestrator on a five-node OpenWhisk cluster. This crate provides the
//! substrate that replaces that physical testbed: a virtual clock
//! ([`SimTime`]), an ordered event queue ([`Simulator`]), seeded random
//! number generation ([`SimRng`]), queued resources such as CPU core pools
//! ([`resource::CorePool`]) and single-server stations
//! ([`resource::ServiceStation`]), and the statistics machinery
//! ([`stats`]) needed to report latency percentiles, CDFs, throughput and
//! utilization exactly the way the paper's evaluation section does.
//!
//! Everything is deterministic for a given seed: two runs of the same
//! experiment produce identical timelines, which makes the reproduction's
//! tables and figures stable.
//!
//! ## Example
//!
//! ```
//! use specfaas_sim::{Simulator, SimDuration};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping(u32) }
//!
//! let mut sim = Simulator::new();
//! sim.schedule_in(SimDuration::from_millis(5), Ev::Ping(1));
//! sim.schedule_in(SimDuration::from_millis(2), Ev::Ping(2));
//!
//! let (t, ev) = sim.step().unwrap();
//! assert_eq!(t.as_millis(), 2);
//! assert_eq!(ev, Ev::Ping(2));
//! ```

pub mod event;
pub mod fault;
pub mod hash;
pub mod hist;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;
pub mod timeseries;
pub mod topk;
pub mod trace;
pub mod tracegen;

pub use event::{EventId, Simulator};
pub use fault::{FaultInjector, FaultPlan, FaultSite, RetryPolicy};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use hist::LogHistogram;
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use timeseries::{GaugeHandle, MetricsRegistry, SnapshotLog};
pub use topk::SpaceSaving;
pub use trace::{TraceEvent, TraceEventKind, Tracer};
pub use tracegen::{Arrival, TraceConfig, TraceGen, ZipfTable};
