//! Queued resources: CPU core pools and single-server service stations.
//!
//! The platform layer models each server node as a [`CorePool`] (execution
//! slots that function handler processes occupy) and the controller /
//! front-end as a [`ServiceStation`] (a FIFO single-server queue whose
//! waiting time is what the paper calls *Platform Overhead*, growing under
//! load). Both are passive: they track occupancy and waiters, and the
//! caller turns grant decisions into simulator events.

use std::collections::VecDeque;

use crate::stats::UtilizationTracker;
use crate::time::{SimDuration, SimTime};

/// A pool of identical execution slots (CPU cores / SMT threads) with a
/// FIFO queue of waiters.
///
/// Waiters are identified by a caller-chosen token `T` (the platform uses
/// function-instance ids). The pool never schedules events itself: when a
/// slot frees up, [`CorePool::release`] returns the token that should now
/// run, and the caller schedules its start event.
///
/// # Example
///
/// ```
/// use specfaas_sim::resource::CorePool;
/// use specfaas_sim::SimTime;
///
/// let mut pool: CorePool<u32> = CorePool::new(1);
/// let t = SimTime::ZERO;
/// assert!(pool.try_acquire(t));        // slot granted immediately
/// pool.enqueue(7);                     // second request must wait
/// let next = pool.release(t);          // slot freed -> waiter 7 granted
/// assert_eq!(next, Some(7));
/// ```
#[derive(Debug)]
pub struct CorePool<T> {
    capacity: u64,
    busy: u64,
    waiters: VecDeque<T>,
    util: UtilizationTracker,
    peak_queue: usize,
}

impl<T> CorePool<T> {
    /// Creates a pool with `capacity` slots, all free.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "core pool capacity must be positive");
        CorePool {
            capacity,
            busy: 0,
            waiters: VecDeque::new(),
            util: UtilizationTracker::new(capacity),
            peak_queue: 0,
        }
    }

    /// Total slots.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Currently occupied slots.
    pub fn busy(&self) -> u64 {
        self.busy
    }

    /// Currently free slots.
    pub fn free(&self) -> u64 {
        self.capacity - self.busy
    }

    /// Number of queued waiters.
    pub fn queue_len(&self) -> usize {
        self.waiters.len()
    }

    /// Largest queue length observed.
    pub fn peak_queue(&self) -> usize {
        self.peak_queue
    }

    /// Attempts to take a slot immediately. Returns `true` on success; on
    /// failure the caller should [`CorePool::enqueue`] a waiter token.
    pub fn try_acquire(&mut self, now: SimTime) -> bool {
        if self.busy < self.capacity {
            self.busy += 1;
            self.util.acquire(now, 1);
            true
        } else {
            false
        }
    }

    /// Appends a waiter to the FIFO queue.
    pub fn enqueue(&mut self, token: T) {
        self.waiters.push_back(token);
        self.peak_queue = self.peak_queue.max(self.waiters.len());
    }

    /// Removes a queued waiter (e.g. because its function got squashed
    /// before ever starting). Returns `true` if found.
    pub fn remove_waiter<F: FnMut(&T) -> bool>(&mut self, pred: F) -> bool {
        if let Some(pos) = self.waiters.iter().position(pred) {
            self.waiters.remove(pos);
            true
        } else {
            false
        }
    }

    /// Frees one slot. If a waiter is queued, the slot is handed to it
    /// directly (the pool stays at the same occupancy) and its token is
    /// returned so the caller can start it.
    ///
    /// # Panics
    /// Panics if no slot is busy.
    pub fn release(&mut self, now: SimTime) -> Option<T> {
        assert!(self.busy > 0, "release on an idle pool");
        if let Some(next) = self.waiters.pop_front() {
            // Slot transfers to the waiter: busy count unchanged.
            Some(next)
        } else {
            self.busy -= 1;
            self.util.release(now, 1);
            None
        }
    }

    /// Average utilization over the measurement window.
    pub fn utilization(&mut self, now: SimTime) -> f64 {
        self.util.utilization(now)
    }

    /// Restarts the utilization measurement window at `now`.
    pub fn reset_utilization_window(&mut self, now: SimTime) {
        self.util.reset_window(now);
    }

    /// Exact integrated busy core-time since construction (never reset) —
    /// feeds the flight recorder's core-time conservation invariant.
    pub fn busy_core_time_total(&mut self, now: SimTime) -> SimDuration {
        self.util.busy_core_time_total(now)
    }

    /// Out-of-order transition timestamps observed (see
    /// [`UtilizationTracker::time_anomalies`]).
    pub fn time_anomalies(&self) -> u64 {
        self.util.time_anomalies()
    }
}

/// A single-server FIFO queue with deterministic service times — an M/D/1
/// style station used to model the controller and front-end components.
///
/// Each submitted job gets a completion time; under load, jobs queue behind
/// one another, which is how platform overhead inflates at high request
/// rates (paper §VIII-A: "speedups slightly decrease with higher load").
///
/// # Example
///
/// ```
/// use specfaas_sim::resource::ServiceStation;
/// use specfaas_sim::{SimTime, SimDuration};
///
/// let mut s = ServiceStation::new();
/// let d1 = s.submit(SimTime::ZERO, SimDuration::from_millis(3));
/// let d2 = s.submit(SimTime::ZERO, SimDuration::from_millis(3));
/// assert_eq!(d1.as_millis(), 3); // served immediately
/// assert_eq!(d2.as_millis(), 6); // waits behind the first job
/// ```
#[derive(Debug, Clone, Default)]
pub struct ServiceStation {
    /// Time at which the server frees up.
    free_at: SimTime,
    jobs: u64,
    busy_time: SimDuration,
    /// Completion instants of recent jobs, ascending (completion times are
    /// monotone because service is FIFO). Entries at or before the latest
    /// submission instant are pruned on every [`ServiceStation::submit`],
    /// so the deque never outgrows the number of jobs in flight.
    done_times: VecDeque<SimTime>,
}

impl ServiceStation {
    /// Creates an idle station.
    pub fn new() -> Self {
        ServiceStation::default()
    }

    /// Submits a job arriving at `now` needing `service` time. Returns the
    /// *total* delay from `now` until the job finishes (queueing + service).
    pub fn submit(&mut self, now: SimTime, service: SimDuration) -> SimDuration {
        let start = self.free_at.max(now);
        let done = start + service;
        self.free_at = done;
        self.jobs += 1;
        self.busy_time += service;
        while self.done_times.front().is_some_and(|t| *t <= now) {
            self.done_times.pop_front();
        }
        self.done_times.push_back(done);
        done - now
    }

    /// Number of jobs queued or in service at `now`: submitted jobs whose
    /// completion instant lies strictly in the future. Read-only — safe to
    /// call from metrics sampling without perturbing the station.
    pub fn queue_depth(&self, now: SimTime) -> usize {
        let served = self.done_times.partition_point(|t| *t <= now);
        self.done_times.len() - served
    }

    /// Number of jobs ever submitted.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Aggregate service time delivered.
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }

    /// The instant the server next becomes free.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Fraction of `[0, now]` the server spent busy.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let span = now.as_micros() as f64;
        if span == 0.0 {
            return 0.0;
        }
        (self.busy_time.as_micros() as f64 / span).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_grants_up_to_capacity() {
        let mut p: CorePool<u32> = CorePool::new(2);
        let t = SimTime::ZERO;
        assert!(p.try_acquire(t));
        assert!(p.try_acquire(t));
        assert!(!p.try_acquire(t));
        assert_eq!(p.busy(), 2);
        assert_eq!(p.free(), 0);
    }

    #[test]
    fn pool_fifo_handoff_on_release() {
        let mut p: CorePool<u32> = CorePool::new(1);
        let t = SimTime::ZERO;
        assert!(p.try_acquire(t));
        p.enqueue(1);
        p.enqueue(2);
        assert_eq!(p.release(SimTime::from_millis(1)), Some(1));
        assert_eq!(p.release(SimTime::from_millis(2)), Some(2));
        assert_eq!(p.release(SimTime::from_millis(3)), None);
        assert_eq!(p.busy(), 0);
    }

    #[test]
    fn pool_remove_waiter() {
        let mut p: CorePool<u32> = CorePool::new(1);
        p.try_acquire(SimTime::ZERO);
        p.enqueue(1);
        p.enqueue(2);
        assert!(p.remove_waiter(|t| *t == 1));
        assert!(!p.remove_waiter(|t| *t == 1));
        assert_eq!(p.release(SimTime::from_millis(1)), Some(2));
    }

    #[test]
    fn pool_utilization_tracks_busy_time() {
        let mut p: CorePool<u32> = CorePool::new(2);
        assert!(p.try_acquire(SimTime::ZERO));
        p.release(SimTime::from_millis(10));
        // 1 of 2 cores for 10ms of a 10ms window = 50%.
        assert!((p.utilization(SimTime::from_millis(10)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pool_busy_total_counts_through_handoff() {
        let mut p: CorePool<u32> = CorePool::new(1);
        assert!(p.try_acquire(SimTime::ZERO));
        p.enqueue(7);
        // Handoff at 10ms: the slot stays busy straight through.
        assert_eq!(p.release(SimTime::from_millis(10)), Some(7));
        assert_eq!(p.release(SimTime::from_millis(25)), None);
        assert_eq!(
            p.busy_core_time_total(SimTime::from_millis(40)),
            SimDuration::from_millis(25)
        );
        assert_eq!(p.time_anomalies(), 0);
    }

    #[test]
    fn pool_peak_queue() {
        let mut p: CorePool<u32> = CorePool::new(1);
        p.try_acquire(SimTime::ZERO);
        p.enqueue(1);
        p.enqueue(2);
        p.release(SimTime::from_millis(1));
        assert_eq!(p.peak_queue(), 2);
    }

    #[test]
    #[should_panic(expected = "idle pool")]
    fn pool_release_idle_panics() {
        let mut p: CorePool<u32> = CorePool::new(1);
        p.release(SimTime::ZERO);
    }

    #[test]
    fn station_queues_jobs_fifo() {
        let mut s = ServiceStation::new();
        let a = s.submit(SimTime::ZERO, SimDuration::from_millis(5));
        let b = s.submit(SimTime::from_millis(2), SimDuration::from_millis(5));
        assert_eq!(a, SimDuration::from_millis(5));
        // Second job arrives at 2ms, waits until 5ms, finishes at 10ms.
        assert_eq!(b, SimDuration::from_millis(8));
    }

    #[test]
    fn station_queue_depth_tracks_jobs_in_flight() {
        let mut s = ServiceStation::new();
        let t = SimTime::from_millis;
        assert_eq!(s.queue_depth(SimTime::ZERO), 0);
        s.submit(SimTime::ZERO, SimDuration::from_millis(5)); // done at 5
        s.submit(t(1), SimDuration::from_millis(5)); // done at 10
        s.submit(t(1), SimDuration::from_millis(5)); // done at 15
        assert_eq!(s.queue_depth(t(1)), 3);
        assert_eq!(s.queue_depth(t(5)), 2); // first job completed at 5
        assert_eq!(s.queue_depth(t(12)), 1);
        assert_eq!(s.queue_depth(t(15)), 0);
        // Pruning on submit keeps the deque bounded by jobs in flight.
        s.submit(t(20), SimDuration::from_millis(1));
        assert_eq!(s.queue_depth(t(20)), 1);
    }

    #[test]
    fn station_idles_between_bursts() {
        let mut s = ServiceStation::new();
        s.submit(SimTime::ZERO, SimDuration::from_millis(1));
        let d = s.submit(SimTime::from_millis(100), SimDuration::from_millis(1));
        assert_eq!(d, SimDuration::from_millis(1));
        assert!((s.utilization(SimTime::from_millis(101)) - 2.0 / 101.0).abs() < 1e-9);
    }
}
