//! Mergeable log-linear histogram for constant-memory tail latencies.
//!
//! [`LogHistogram`] is the streaming replacement for the exact
//! sort-every-sample [`crate::stats::LatencyRecorder`]: HDR-style
//! bounded-relative-error buckets, O(1) record, an associative and
//! commutative merge (so `--jobs` shards combine byte-identically no
//! matter the shard count or merge order), and rank-based quantile
//! queries (p50/p90/p99/p99.9/max). Memory is bounded by the bucket
//! layout — at most [`LogHistogram::MAX_BUCKETS`] `u64` counters — and is
//! *independent of the sample count*, which is what makes 10⁶–10⁷-request
//! runs affordable to observe.
//!
//! # Bucket math
//!
//! Values are non-negative `u64` in the caller's unit (the engines record
//! microseconds). Values below 64 get one exact bucket each (the linear
//! region). Above that, every power-of-two range `[2^e, 2^(e+1))` is
//! split into 64 equal sub-buckets, so a bucket's width is `2^(e-6)` and
//! its relative width is at most 1/64. Quantiles report the bucket
//! *midpoint* (clamped to the observed min/max), so the reported value is
//! within [`LogHistogram::RELATIVE_ERROR`] = 1/128 (< 1 %) of every
//! sample in that bucket. Bucket indexing is two shifts and a
//! `leading_zeros` — no floating point anywhere, which is why merged
//! shards are byte-identical and cross-platform stable.
//!
//! # Example
//!
//! ```
//! use specfaas_sim::hist::LogHistogram;
//!
//! let mut h = LogHistogram::new();
//! for v in 1..=10_000u64 {
//!     h.record(v);
//! }
//! let p99 = h.quantile(0.99);
//! assert!((p99 as f64 - 9_900.0).abs() / 9_900.0 < 0.01);
//! assert_eq!(h.quantile(1.0), 10_000); // max is exact
//! ```

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// Number of sub-buckets per power-of-two range (and the size of the
/// exact linear region), as a power of two.
const SUB_BITS: u32 = 6;
/// Sub-buckets per power-of-two range.
const SUB: u64 = 1 << SUB_BITS;

/// A mergeable log-linear histogram: O(1) record, deterministic merge,
/// bounded-relative-error quantiles, constant memory.
///
/// See the [module documentation](self) for the bucket math and the
/// determinism argument.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogHistogram {
    /// Per-bucket counts, grown on demand up to [`LogHistogram::MAX_BUCKETS`].
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Upper bound on the number of buckets (and thus on memory), for any
    /// input distribution: the linear region plus 58 subdivided
    /// power-of-two ranges covering all of `u64` (max index is
    /// `(63 - SUB_BITS + 1)·SUB + SUB - 1`).
    pub const MAX_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB as usize;
    /// Worst-case relative error of a quantile estimate: buckets have
    /// relative width ≤ 1/64 and quantiles report the midpoint.
    pub const RELATIVE_ERROR: f64 = 1.0 / 128.0;

    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index of `v` — exact below [`SUB`], log-linear above.
    #[inline]
    fn index_of(v: u64) -> usize {
        if v < SUB {
            v as usize
        } else {
            let e = 63 - v.leading_zeros(); // v in [2^e, 2^(e+1)), e >= SUB_BITS
            let sub = (v >> (e - SUB_BITS)) & (SUB - 1);
            ((e - SUB_BITS + 1) as u64 * SUB + sub) as usize
        }
    }

    /// Inclusive lower bound of bucket `i`.
    fn bucket_lo(i: usize) -> u64 {
        let i = i as u64;
        if i < SUB {
            i
        } else {
            let e = i / SUB + SUB_BITS as u64 - 1;
            let sub = i % SUB;
            (SUB + sub) << (e - SUB_BITS as u64)
        }
    }

    /// Exclusive upper bound of bucket `i` (saturating at `u64::MAX`).
    fn bucket_hi(i: usize) -> u64 {
        if (i as u64) < SUB {
            i as u64 + 1
        } else {
            let e = i as u64 / SUB + SUB_BITS as u64 - 1;
            Self::bucket_lo(i).saturating_add(1u64 << (e - SUB_BITS as u64))
        }
    }

    /// Representative value of bucket `i` (its midpoint).
    fn bucket_mid(i: usize) -> u64 {
        let lo = Self::bucket_lo(i);
        let hi = Self::bucket_hi(i);
        lo + (hi - lo) / 2
    }

    /// Records one value. O(1): one shift-based index plus a possible
    /// one-time `Vec` growth (bounded by [`LogHistogram::MAX_BUCKETS`]).
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` occurrences of `v`.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = Self::index_of(v);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Records a duration in microseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_micros());
    }

    /// Records a raw millisecond value (rounded to whole microseconds,
    /// clamped at zero).
    pub fn record_ms(&mut self, ms: f64) {
        self.record((ms * 1_000.0).round().max(0.0) as u64);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of the recorded values, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Number of bucket counters currently allocated. Bounded by
    /// [`LogHistogram::MAX_BUCKETS`] whatever the sample count — the
    /// constant-memory property the scale runs rely on.
    pub fn bucket_storage(&self) -> usize {
        self.counts.len()
    }

    /// The value at quantile `q` in `[0, 1]`: the midpoint of the bucket
    /// holding the sample of rank `ceil(q·n)` (rank 1 for `q = 0`),
    /// clamped to the observed `[min, max]` — so `quantile(0.0)` is the
    /// exact minimum and `quantile(1.0)` the exact maximum. Returns 0 if
    /// empty. Monotone in `q`, and within
    /// [`LogHistogram::RELATIVE_ERROR`] of every sample in the bucket.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        // The extreme ranks are the tracked min/max — return them exactly.
        if rank == 1 {
            return self.min;
        }
        if rank == self.count {
            return self.max;
        }
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_mid(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Convenience: the quantile converted from microseconds to
    /// milliseconds (engines record latencies in microseconds).
    pub fn quantile_ms(&self, q: f64) -> f64 {
        self.quantile(q) as f64 / 1_000.0
    }

    /// Number of recorded values that landed in buckets whose entire
    /// range is ≤ the bucket containing `v` — the cumulative count behind
    /// a Prometheus `le` bucket boundary. Exact when `v` is a bucket
    /// upper bound; otherwise counts through the end of `v`'s bucket.
    pub fn count_le(&self, v: u64) -> u64 {
        let idx = Self::index_of(v);
        self.counts.iter().take(idx + 1).sum()
    }

    /// Iterates the non-empty buckets as `(lo, hi, count)` with `hi`
    /// exclusive, in increasing value order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_lo(i), Self::bucket_hi(i), c))
    }

    /// Merges another histogram into this one: element-wise `u64` bucket
    /// addition, so the merge is exactly associative and commutative —
    /// sharded runs combine byte-identically regardless of shard count or
    /// merge order.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_region_is_exact() {
        let mut h = LogHistogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        for v in 0..64u64 {
            assert_eq!(LogHistogram::index_of(v), v as usize);
        }
        assert_eq!(h.count(), 64);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(63));
    }

    #[test]
    fn bucket_bounds_partition_the_value_space() {
        // Every bucket's hi equals the next bucket's lo, and index_of maps
        // lo and hi-1 back to the bucket itself.
        for i in 0..2_000usize {
            let lo = LogHistogram::bucket_lo(i);
            let hi = LogHistogram::bucket_hi(i);
            assert!(hi > lo, "bucket {i} empty: [{lo},{hi})");
            assert_eq!(LogHistogram::index_of(lo), i, "lo of bucket {i}");
            assert_eq!(LogHistogram::index_of(hi - 1), i, "hi-1 of bucket {i}");
            assert_eq!(LogHistogram::bucket_lo(i + 1), hi, "gap after bucket {i}");
        }
    }

    #[test]
    fn relative_width_bounded() {
        for i in 64..3_000usize {
            let lo = LogHistogram::bucket_lo(i);
            let hi = LogHistogram::bucket_hi(i);
            let width = (hi - lo) as f64;
            assert!(
                width / lo as f64 <= 1.0 / 64.0 + 1e-12,
                "bucket {i} [{lo},{hi}) too wide"
            );
        }
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let mut h = LogHistogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for (q, expect) in [(0.5, 50_000.0), (0.9, 90_000.0), (0.99, 99_000.0)] {
            let got = h.quantile(q) as f64;
            assert!(
                (got - expect).abs() / expect < 0.01,
                "q={q}: got {got}, want ~{expect}"
            );
        }
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 100_000);
    }

    #[test]
    fn single_value_quantiles_are_exact() {
        let mut h = LogHistogram::new();
        h.record(7_000);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 7_000);
        }
        assert_eq!(h.quantile_ms(0.5), 7.0);
    }

    #[test]
    fn empty_histogram_degrades_to_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.min().is_none());
        assert!(h.max().is_none());
        assert_eq!(h.count_le(1_000), 0);
    }

    #[test]
    fn merge_equals_recording_together() {
        let mut rng = crate::rng::SimRng::seed(0x4157);
        let xs: Vec<u64> = (0..5_000)
            .map(|_| rng.uniform_range(1, 1_000_000))
            .collect();
        let mut together = LogHistogram::new();
        for &x in &xs {
            together.record(x);
        }
        let mut merged = LogHistogram::new();
        for chunk in xs.chunks(777) {
            let mut h = LogHistogram::new();
            for &x in chunk {
                h.record(x);
            }
            merged.merge(&h);
        }
        assert_eq!(merged, together, "merge must be lossless and exact");
    }

    #[test]
    fn memory_is_constant_in_sample_count() {
        let mut rng = crate::rng::SimRng::seed(0xBEEF);
        let mut h = LogHistogram::new();
        for _ in 0..10_000 {
            h.record(rng.uniform_range(1, 10_000_000));
        }
        let at_10k = h.bucket_storage();
        for _ in 0..200_000 {
            h.record(rng.uniform_range(1, 10_000_000));
        }
        assert_eq!(
            h.bucket_storage(),
            at_10k,
            "bucket storage grew with sample count"
        );
        assert!(at_10k <= LogHistogram::MAX_BUCKETS);
    }

    #[test]
    fn count_le_matches_bucketed_truth() {
        let mut h = LogHistogram::new();
        for v in [10u64, 100, 1_000, 10_000, 100_000] {
            h.record(v);
        }
        assert_eq!(h.count_le(10), 1);
        assert_eq!(h.count_le(150), 2);
        assert_eq!(h.count_le(1_000_000), 5);
        assert_eq!(h.count_le(1), 0);
    }
}
