//! Fast, deterministic hashing for the simulator's hot maps.
//!
//! `std`'s default `HashMap` uses SipHash-1-3 behind a per-process random
//! seed. That is the right default against hash-flooding adversaries, but
//! every key in this workspace comes from the simulation itself (slot ids,
//! instance ids, memo keys, KV record names), so DoS resistance buys
//! nothing while the SipHash rounds sit squarely on the interpreter's hot
//! path — the memo table, the live-instance maps and the KV store are
//! probed several times per simulated event.
//!
//! [`FxHasher`] is the classic multiply-and-rotate word hash used by the
//! Rust compiler's internal tables: fold each 8-byte chunk into the state
//! with a rotate, xor, and a multiplication by a 64-bit odd constant
//! derived from the golden ratio. It is 3–6× faster than SipHash on short
//! keys and — unlike `RandomState` — fully deterministic, which fits this
//! crate's "identical seeds ⇒ identical timelines" contract.
//!
//! ```
//! use specfaas_sim::hash::FxHashMap;
//!
//! let mut m: FxHashMap<u64, &str> = FxHashMap::default();
//! m.insert(7, "seven");
//! assert_eq!(m.get(&7), Some(&"seven"));
//! ```

use std::hash::{BuildHasherDefault, Hasher};

/// 2^64 / φ, forced odd — the classic Fibonacci-hashing multiplier.
const SEED: u64 = 0x517c_c1b7_2722_0a95;

/// A fast non-cryptographic hasher for trusted, simulation-internal keys.
///
/// Not resistant to hash flooding; do not use for attacker-controlled
/// input. Output is stable across runs and platforms of the same width.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.fold(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "ab" ~ "ab\0" don't collide trivially.
            self.fold(u64::from_le_bytes(tail) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.fold(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.fold(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.fold(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.fold(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.fold(i as u64);
        self.fold((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.fold(i as u64);
    }
}

/// Default-constructible, deterministic `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with [`FxHasher`] — drop-in for hot simulation maps.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(hash_of(&12345u64), hash_of(&12345u64));
        assert_eq!(hash_of(&"memo-key"), hash_of(&"memo-key"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&"a"), hash_of(&"b"));
        assert_ne!(hash_of(&"ab"), hash_of(&"ab\0"));
        assert_ne!(hash_of(&(1u32, 2u32)), hash_of(&(2u32, 1u32)));
    }

    #[test]
    fn spreads_sequential_ids_across_buckets() {
        // Sequential ids are the common case (slot/instance counters);
        // make sure low bits vary, since HashMap masks to a power of two.
        let mut low3 = std::collections::HashSet::new();
        for i in 0u64..64 {
            low3.insert(hash_of(&i) & 0b111);
        }
        assert_eq!(low3.len(), 8, "low bits must not be constant");
    }

    #[test]
    fn map_and_set_roundtrip() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        m.insert("x".into(), 1);
        m.insert("y".into(), 2);
        assert_eq!(m.get("x"), Some(&1));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(42);
        assert!(s.contains(&42));
    }
}
