//! Deterministic Space-Saving top-K heavy-hitter sketch.
//!
//! [`SpaceSaving`] answers "which keys account for the most weight?"
//! (requests per function, squashed core-time per function, …) while
//! tracking at most `k` keys — constant memory however many distinct keys
//! the stream contains. It is the classic Space-Saving algorithm of
//! Metwally, Agrawal & El Abbadi (2005): when a new key arrives and the
//! sketch is full, the key with the *minimum* counter is evicted and the
//! newcomer inherits its count (recording that inherited amount as the
//! entry's error bound).
//!
//! # Guarantees
//!
//! With capacity `k` over a stream of total weight `n`:
//! - every entry's true weight `t` satisfies `count - error ≤ t ≤ count`;
//! - any key whose true weight exceeds `n / k` is guaranteed to be
//!   present in the sketch (the classic heavy-hitter guarantee the
//!   property tests assert).
//!
//! # Determinism
//!
//! Entries live in a `BTreeMap` keyed by the item itself, and every
//! scan (min-eviction, [`SpaceSaving::top`] ordering) breaks count ties
//! by key order. Two sketches fed the same stream — or merged from the
//! same shards in any order-insensitive way the caller arranges — render
//! identically, which keeps `--jobs` output byte-stable.

use std::collections::BTreeMap;

/// One tracked entry: an over-estimate `count` and the inherited
/// over-estimation bound `error` (true weight is in `[count-error, count]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TopEntry {
    /// Estimated (never under-) weight of the key.
    pub count: u64,
    /// Maximum over-estimation: weight inherited from evicted keys.
    pub error: u64,
}

/// Deterministic Space-Saving sketch over keys of type `K`.
///
/// See the [module documentation](self) for guarantees and the
/// determinism argument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpaceSaving<K: Ord + Clone> {
    entries: BTreeMap<K, TopEntry>,
    capacity: usize,
    total: u64,
}

impl<K: Ord + Clone> SpaceSaving<K> {
    /// Creates a sketch tracking at most `k` keys.
    ///
    /// # Panics
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "SpaceSaving capacity must be positive");
        SpaceSaving {
            entries: BTreeMap::new(),
            capacity: k,
            total: 0,
        }
    }

    /// Capacity `k` the sketch was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total weight of the stream seen so far (including evicted keys).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of keys currently tracked (≤ `k`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no weight has been added.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds weight 1 to `key`.
    pub fn add(&mut self, key: K) {
        self.add_weight(key, 1);
    }

    /// Adds weight `w` to `key`. If the sketch is full and `key` is new,
    /// the minimum-count entry (ties broken by smallest key) is evicted
    /// and `key` inherits its count as both offset and error bound.
    pub fn add_weight(&mut self, key: K, w: u64) {
        if w == 0 {
            return;
        }
        self.total += w;
        if let Some(e) = self.entries.get_mut(&key) {
            e.count += w;
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.insert(key, TopEntry { count: w, error: 0 });
            return;
        }
        // Evict the minimum-count entry; BTreeMap iteration order makes
        // the smallest key win count ties deterministically.
        let victim = self
            .entries
            .iter()
            .min_by_key(|(_, e)| e.count)
            .map(|(k, e)| (k.clone(), e.count))
            .expect("capacity > 0, sketch full");
        self.entries.remove(&victim.0);
        self.entries.insert(
            key,
            TopEntry {
                count: victim.1 + w,
                error: victim.1,
            },
        );
    }

    /// The tracked entries sorted by descending count, count ties broken
    /// by ascending key — a total, deterministic order.
    pub fn top(&self) -> Vec<(K, TopEntry)> {
        let mut v: Vec<(K, TopEntry)> = self.entries.iter().map(|(k, e)| (k.clone(), *e)).collect();
        v.sort_by(|(ka, ea), (kb, eb)| eb.count.cmp(&ea.count).then_with(|| ka.cmp(kb)));
        v
    }

    /// The estimated count for `key`, if tracked.
    pub fn get(&self, key: &K) -> Option<TopEntry> {
        self.entries.get(key).copied()
    }

    /// Folds another sketch into this one by replaying its entries as
    /// weighted additions in key order (each entry keeps its own error,
    /// plus any inherited on eviction). The result depends only on the
    /// multiset of shard entries fed in a fixed fold order — callers that
    /// merge shards in submission order (as `run_cells` returns them) get
    /// byte-identical output at any job count.
    pub fn merge(&mut self, other: &SpaceSaving<K>) {
        self.total += other.total;
        for (k, e) in &other.entries {
            self.total -= e.count; // add_weight re-adds it below
            let prior_err = self.entries.get(k).map(|mine| mine.error).unwrap_or(0);
            self.add_weight(k.clone(), e.count);
            if let Some(mine) = self.entries.get_mut(k) {
                // Propagate the shard's own over-estimation bound on top of
                // whatever this sketch already attributed to the key.
                mine.error = mine.error.max(prior_err) + e.error;
            }
        }
    }
}

impl SpaceSaving<String> {
    /// [`SpaceSaving::add_weight`] by borrowed key: allocation-free when
    /// `key` is already tracked (the per-event hot path in the metrics
    /// registry), cloning only on first sight or eviction.
    pub fn add_weight_str(&mut self, key: &str, w: u64) {
        if w == 0 {
            return;
        }
        if let Some(e) = self.entries.get_mut(key) {
            e.count += w;
            self.total += w;
            return;
        }
        self.add_weight(key.to_string(), w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_exact_counts_under_capacity() {
        let mut s = SpaceSaving::new(4);
        for _ in 0..5 {
            s.add("a");
        }
        for _ in 0..3 {
            s.add("b");
        }
        let top = s.top();
        assert_eq!(top[0], ("a", TopEntry { count: 5, error: 0 }));
        assert_eq!(top[1], ("b", TopEntry { count: 3, error: 0 }));
        assert_eq!(s.total(), 8);
    }

    #[test]
    fn eviction_inherits_min_count_as_error() {
        let mut s = SpaceSaving::new(2);
        s.add_weight("a", 10);
        s.add_weight("b", 3);
        s.add_weight("c", 1); // evicts b (min), inherits 3
        let c = s.get(&"c").unwrap();
        assert_eq!(c, TopEntry { count: 4, error: 3 });
        assert!(s.get(&"b").is_none());
        assert_eq!(s.total(), 14);
    }

    #[test]
    fn count_ties_evict_smallest_key() {
        let mut s = SpaceSaving::new(2);
        s.add_weight("x", 2);
        s.add_weight("y", 2);
        s.add_weight("z", 1);
        // x and y tie at 2; x (smaller key) is the deterministic victim.
        assert!(s.get(&"x").is_none());
        assert!(s.get(&"y").is_some());
        assert_eq!(s.get(&"z"), Some(TopEntry { count: 3, error: 2 }));
    }

    #[test]
    fn heavy_hitter_guarantee_smoke() {
        // 1000 total, k=10: anything above 100 must survive arbitrary noise.
        let mut s = SpaceSaving::new(10);
        for i in 0..850u64 {
            s.add(format!("noise-{}", i % 97));
        }
        for _ in 0..150 {
            s.add("whale".to_string());
        }
        let e = s.get(&"whale".to_string()).expect("heavy hitter evicted");
        assert!(e.count >= 150, "count {} underestimates", e.count);
        assert!(e.count - e.error <= 150);
    }

    #[test]
    fn top_order_is_total_and_deterministic() {
        let mut s = SpaceSaving::new(8);
        for k in ["d", "b", "a", "c"] {
            s.add_weight(k, 7);
        }
        let keys: Vec<&str> = s.top().into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["a", "b", "c", "d"]);
    }

    #[test]
    fn merge_preserves_totals_and_bounds() {
        let mut a = SpaceSaving::new(4);
        let mut b = SpaceSaving::new(4);
        for _ in 0..6 {
            a.add("x");
        }
        for _ in 0..4 {
            b.add("x");
        }
        b.add_weight("y", 9);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.total(), a.total() + b.total());
        let x = merged.get(&"x").unwrap();
        assert!(x.count >= 10, "merged count {} lost weight", x.count);
    }
}
