//! Simulated time: a virtual clock measured in microseconds.
//!
//! The paper reports application response times in milliseconds, overheads
//! down to ~1 ms (the process-kill squash cost), and storage operations in
//! the sub-millisecond range, so microsecond resolution is sufficient for
//! every experiment while keeping arithmetic in plain `u64`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant on the simulated clock, in microseconds since simulation start.
///
/// `SimTime` is a monotone instant; the difference of two instants is a
/// [`SimDuration`]. Use [`SimTime::ZERO`] for the simulation epoch.
///
/// # Example
///
/// ```
/// use specfaas_sim::{SimTime, SimDuration};
///
/// let t0 = SimTime::ZERO;
/// let t1 = t0 + SimDuration::from_millis(3);
/// assert_eq!(t1 - t0, SimDuration::from_millis(3));
/// assert_eq!(t1.as_micros(), 3_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
///
/// # Example
///
/// ```
/// use specfaas_sim::SimDuration;
///
/// let d = SimDuration::from_millis(2) + SimDuration::from_micros(500);
/// assert_eq!(d.as_micros(), 2_500);
/// assert_eq!(d.as_millis_f64(), 2.5);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `micros` microseconds after the epoch.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant `millis` milliseconds after the epoch.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since the epoch (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the epoch as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`.
    ///
    /// Returns [`SimDuration::ZERO`] if `earlier` is in the future, mirroring
    /// `std::time::Instant::saturating_duration_since`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a duration from fractional milliseconds, rounding to the
    /// nearest microsecond. Negative inputs clamp to zero.
    pub fn from_millis_f64(millis: f64) -> Self {
        if millis <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((millis * 1_000.0).round() as u64)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// microsecond. Negative inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1e6).round() as u64)
    }

    /// Length in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Length in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Length in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Length in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The longer of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The shorter of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Multiplies by a non-negative float, rounding to microseconds.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0, "duration factor must be non-negative");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// # Panics
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    /// # Panics
    /// Panics in debug builds on underflow; use
    /// [`SimDuration::saturating_sub`] when the ordering is not guaranteed.
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction underflow");
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = f64;
    /// Ratio of two durations. Dividing by the zero duration yields `NaN`
    /// or infinity per IEEE 754.
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.0 as f64 / 1_000.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.0 as f64 / 1_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_millis(10) + SimDuration::from_micros(250);
        assert_eq!(t.as_micros(), 10_250);
        assert_eq!(t - SimTime::from_millis(10), SimDuration::from_micros(250));
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(5);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_millis(4));
    }

    #[test]
    fn duration_float_conversions() {
        let d = SimDuration::from_millis_f64(1.5);
        assert_eq!(d.as_micros(), 1_500);
        assert_eq!(d.as_millis_f64(), 1.5);
        assert_eq!(SimDuration::from_millis_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(0.002).as_micros(), 2_000);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d * 3, SimDuration::from_millis(30));
        assert_eq!(d / 2, SimDuration::from_millis(5));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_millis(5));
        assert_eq!(d / SimDuration::from_millis(4), 2.5);
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }

    #[test]
    fn display_formats_millis() {
        assert_eq!(SimDuration::from_micros(1_500).to_string(), "1.500ms");
        assert_eq!(SimTime::from_millis(2).to_string(), "2.000ms");
    }

    #[test]
    fn min_max_helpers() {
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let x = SimDuration::from_millis(1);
        let y = SimDuration::from_millis(2);
        assert_eq!(x.max(y), y);
        assert_eq!(x.min(y), x);
    }
}
