//! Deterministic fault injection: seed-driven fault plans, the injector
//! that evaluates them against the sim clock, and the retry policy the
//! engines apply when a fault fires.
//!
//! Real FaaS platforms treat failure as the common case: containers crash
//! mid-execution, storage operations fail transiently, and invocations
//! hang until a watchdog times them out. SpecFaaS's core claim is that
//! speculative state is always recoverable via squash-and-replay, so the
//! reproduction must be able to exercise the squash machinery with faults
//! — not just mispredictions — while staying bit-for-bit reproducible.
//!
//! Design rules:
//!
//! * **Dedicated RNG stream.** The injector owns a [`SimRng`] derived
//!   from the run seed with a fixed salt. Fault decisions never draw from
//!   the engine's stream, so enabling faults does not perturb workload
//!   generation, and a disabled plan ([`FaultPlan::none`]) draws nothing
//!   at all — runs without faults are bit-identical to the pre-fault
//!   engine.
//! * **Per-site probability + schedule.** Each fault site has its own
//!   probability, and the whole plan can be gated to a window of
//!   simulated time (`active_from` / `active_until`), which lets
//!   experiments inject a burst of faults mid-run.
//! * **Counting at the injector.** The injector counts what it injected
//!   per site; the engines separately count what they did about it
//!   (retries, squashes, aborts) in their run metrics.

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Salt XOR-ed into the run seed to derive the injector's private RNG
/// stream. Arbitrary constant; fixed so runs are reproducible.
const FAULT_STREAM_SALT: u64 = 0xFA_17_5E_ED_0B_AD_CA_FE;

/// Where a fault can strike.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// The container running a function crashes at an execution step
    /// boundary; all progress in that invocation is lost.
    ContainerCrash,
    /// A KV read fails transiently (remote storage hiccup).
    KvGet,
    /// A KV write fails transiently; the write is not applied.
    KvSet,
    /// A speculative slot's pre-launch is dropped by the platform; the
    /// function falls back to non-speculative (in-order) execution.
    SlotDrop,
    /// The invocation hangs: it stops making progress and only a
    /// watchdog timeout (see [`RetryPolicy::invocation_timeout`]) can
    /// recover it.
    Hang,
}

/// All sites, in a fixed order (used for counters and reports).
pub const ALL_SITES: [FaultSite; 5] = [
    FaultSite::ContainerCrash,
    FaultSite::KvGet,
    FaultSite::KvSet,
    FaultSite::SlotDrop,
    FaultSite::Hang,
];

impl FaultSite {
    /// Stable index into per-site counter arrays.
    fn index(self) -> usize {
        match self {
            FaultSite::ContainerCrash => 0,
            FaultSite::KvGet => 1,
            FaultSite::KvSet => 2,
            FaultSite::SlotDrop => 3,
            FaultSite::Hang => 4,
        }
    }

    /// Short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::ContainerCrash => "container-crash",
            FaultSite::KvGet => "kv-get",
            FaultSite::KvSet => "kv-set",
            FaultSite::SlotDrop => "slot-drop",
            FaultSite::Hang => "hang",
        }
    }
}

/// A deterministic, seed-driven fault schedule: per-site probabilities
/// plus an active window on the sim clock.
///
/// # Example
///
/// ```
/// use specfaas_sim::fault::FaultPlan;
///
/// let none = FaultPlan::none();
/// assert!(!none.any_enabled());
///
/// let plan = FaultPlan::none()
///     .with_container_crash(0.05)
///     .with_kv_get(0.02);
/// assert!(plan.any_enabled());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Probability a running function crashes at each execution step.
    pub container_crash: f64,
    /// Probability a KV read fails transiently.
    pub kv_get: f64,
    /// Probability a KV write fails transiently.
    pub kv_set: f64,
    /// Probability a speculative slot launch is dropped.
    pub slot_drop: f64,
    /// Probability an invocation hangs at its first execution step.
    pub hang: f64,
    /// Faults only fire at or after this instant.
    pub active_from: SimTime,
    /// If set, faults only fire strictly before this instant.
    pub active_until: Option<SimTime>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// A plan that injects nothing. Zero-cost: the injector never draws
    /// from its RNG under this plan.
    pub fn none() -> Self {
        FaultPlan {
            container_crash: 0.0,
            kv_get: 0.0,
            kv_set: 0.0,
            slot_drop: 0.0,
            hang: 0.0,
            active_from: SimTime::ZERO,
            active_until: None,
        }
    }

    /// A moderate all-site plan used by ablations and tests: every site
    /// fires with probability `p`, except hangs which fire at `p / 4`
    /// (hangs are only survivable with a watchdog, and real platforms
    /// see them far less often than transient storage errors).
    pub fn uniform(p: f64) -> Self {
        FaultPlan {
            container_crash: p,
            kv_get: p,
            kv_set: p,
            slot_drop: p,
            hang: p / 4.0,
            active_from: SimTime::ZERO,
            active_until: None,
        }
    }

    /// Sets the container-crash probability.
    pub fn with_container_crash(mut self, p: f64) -> Self {
        self.container_crash = p;
        self
    }

    /// Sets the KV-read fault probability.
    pub fn with_kv_get(mut self, p: f64) -> Self {
        self.kv_get = p;
        self
    }

    /// Sets the KV-write fault probability.
    pub fn with_kv_set(mut self, p: f64) -> Self {
        self.kv_set = p;
        self
    }

    /// Sets the speculative-slot-drop probability.
    pub fn with_slot_drop(mut self, p: f64) -> Self {
        self.slot_drop = p;
        self
    }

    /// Sets the invocation-hang probability.
    pub fn with_hang(mut self, p: f64) -> Self {
        self.hang = p;
        self
    }

    /// Restricts the plan to `[from, until)` on the sim clock.
    pub fn with_window(mut self, from: SimTime, until: Option<SimTime>) -> Self {
        self.active_from = from;
        self.active_until = until;
        self
    }

    /// Probability configured for `site`.
    pub fn probability(&self, site: FaultSite) -> f64 {
        match site {
            FaultSite::ContainerCrash => self.container_crash,
            FaultSite::KvGet => self.kv_get,
            FaultSite::KvSet => self.kv_set,
            FaultSite::SlotDrop => self.slot_drop,
            FaultSite::Hang => self.hang,
        }
    }

    /// True if any site has a positive probability.
    pub fn any_enabled(&self) -> bool {
        ALL_SITES.iter().any(|s| self.probability(*s) > 0.0)
    }

    /// True if the plan is active at `now`.
    pub fn active_at(&self, now: SimTime) -> bool {
        now >= self.active_from && self.active_until.map(|u| now < u).unwrap_or(true)
    }
}

/// Evaluates a [`FaultPlan`] against the sim clock, with a private RNG
/// stream split off the run seed.
///
/// # Example
///
/// ```
/// use specfaas_sim::fault::{FaultInjector, FaultPlan, FaultSite};
/// use specfaas_sim::SimTime;
///
/// let mut inj = FaultInjector::new(FaultPlan::uniform(1.0), 42);
/// assert!(inj.roll(FaultSite::KvGet, SimTime::ZERO));
/// assert_eq!(inj.injected(FaultSite::KvGet), 1);
///
/// let mut off = FaultInjector::disabled();
/// assert!(!off.roll(FaultSite::KvGet, SimTime::ZERO));
/// assert_eq!(off.total_injected(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SimRng,
    injected: [u64; ALL_SITES.len()],
}

impl FaultInjector {
    /// An injector with [`FaultPlan::none`]: never fires, never draws.
    pub fn disabled() -> Self {
        FaultInjector::new(FaultPlan::none(), 0)
    }

    /// Creates an injector for one run. `seed` should be the engine's
    /// run seed; the injector derives its own independent stream from it
    /// so fault decisions never perturb workload randomness.
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        FaultInjector {
            plan,
            rng: SimRng::seed(seed ^ FAULT_STREAM_SALT),
            injected: [0; ALL_SITES.len()],
        }
    }

    /// The plan under evaluation.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// True if any fault site can ever fire. Engines use this to skip
    /// fault bookkeeping entirely when faults are off.
    pub fn enabled(&self) -> bool {
        self.plan.any_enabled()
    }

    /// Decides whether a fault strikes `site` at `now`, counting it if
    /// so. Draws from the private stream only when the site has positive
    /// probability and the plan is active — a disabled injector performs
    /// no RNG work at all.
    pub fn roll(&mut self, site: FaultSite, now: SimTime) -> bool {
        let p = self.plan.probability(site);
        if p <= 0.0 || !self.plan.active_at(now) {
            return false;
        }
        let hit = self.rng.chance(p);
        if hit {
            self.injected[site.index()] += 1;
        }
        hit
    }

    /// Number of faults injected at `site` so far.
    pub fn injected(&self, site: FaultSite) -> u64 {
        self.injected[site.index()]
    }

    /// Total faults injected across all sites.
    pub fn total_injected(&self) -> u64 {
        self.injected.iter().sum()
    }
}

/// Retry semantics the engines apply when an invocation faults:
/// bounded attempts with exponential backoff, plus an optional watchdog
/// timeout that recovers hung invocations.
///
/// Also re-exported as `specfaas_core::config::RetryPolicy`.
///
/// # Example
///
/// ```
/// use specfaas_sim::fault::RetryPolicy;
/// use specfaas_sim::SimDuration;
///
/// let r = RetryPolicy::default();
/// assert!(r.backoff(2) > r.backoff(1));
/// assert!(r.backoff(100) <= r.max_backoff);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per invocation, including the first. At least 1.
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: SimDuration,
    /// Multiplier applied per additional retry (exponential backoff).
    pub backoff_multiplier: f64,
    /// Upper bound on any single backoff.
    pub max_backoff: SimDuration,
    /// If set, a watchdog kills (and retries) any invocation still
    /// running after this long. Required to survive [`FaultSite::Hang`].
    pub invocation_timeout: Option<SimDuration>,
}

impl Default for RetryPolicy {
    /// Three attempts, 10 ms base backoff doubling per retry, capped at
    /// 1 s, no watchdog. With no faults injected this policy is inert.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: SimDuration::from_millis(10),
            backoff_multiplier: 2.0,
            max_backoff: SimDuration::from_millis(1_000),
            invocation_timeout: None,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries and never times out: the first fault
    /// aborts the request.
    pub fn no_retries() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: SimDuration::ZERO,
            backoff_multiplier: 1.0,
            max_backoff: SimDuration::ZERO,
            invocation_timeout: None,
        }
    }

    /// Sets the watchdog timeout.
    pub fn with_timeout(mut self, timeout: SimDuration) -> Self {
        self.invocation_timeout = Some(timeout);
        self
    }

    /// Sets the attempt budget (clamped to at least 1).
    pub fn with_max_attempts(mut self, n: u32) -> Self {
        self.max_attempts = n.max(1);
        self
    }

    /// Backoff before retry number `retry` (1-based: the delay between
    /// attempt N failing and attempt N+1 starting is `backoff(N)`).
    pub fn backoff(&self, retry: u32) -> SimDuration {
        let exp = retry.saturating_sub(1).min(30);
        let scaled =
            self.base_backoff.as_micros() as f64 * self.backoff_multiplier.powi(exp as i32);
        let capped = scaled.min(self.max_backoff.as_micros() as f64).max(0.0);
        SimDuration::from_micros(capped as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_never_fires_and_never_draws() {
        let mut inj = FaultInjector::disabled();
        let before = inj.rng.clone();
        for _ in 0..1_000 {
            assert!(!inj.roll(FaultSite::ContainerCrash, SimTime::ZERO));
            assert!(!inj.roll(FaultSite::KvGet, SimTime::from_millis(5)));
        }
        assert_eq!(inj.rng, before, "disabled injector must not consume RNG");
        assert_eq!(inj.total_injected(), 0);
    }

    #[test]
    fn same_seed_same_plan_same_decisions() {
        let plan = FaultPlan::uniform(0.3);
        let mut a = FaultInjector::new(plan.clone(), 99);
        let mut b = FaultInjector::new(plan, 99);
        for i in 0..5_000u64 {
            let site = ALL_SITES[(i % 5) as usize];
            let t = SimTime::from_micros(i);
            assert_eq!(a.roll(site, t), b.roll(site, t));
        }
        for site in ALL_SITES {
            assert_eq!(a.injected(site), b.injected(site));
        }
    }

    #[test]
    fn fault_stream_is_independent_of_engine_stream() {
        // Same seed: the injector's draws must not be the engine's draws.
        let mut engine_rng = SimRng::seed(7);
        let mut inj = FaultInjector::new(FaultPlan::uniform(0.5), 7);
        let engine_draws: Vec<bool> = (0..100).map(|_| engine_rng.chance(0.5)).collect();
        let fault_draws: Vec<bool> = (0..100)
            .map(|_| inj.roll(FaultSite::KvGet, SimTime::ZERO))
            .collect();
        assert_ne!(engine_draws, fault_draws);
    }

    #[test]
    fn window_gates_injection() {
        let plan = FaultPlan::uniform(1.0)
            .with_window(SimTime::from_millis(10), Some(SimTime::from_millis(20)));
        let mut inj = FaultInjector::new(plan, 1);
        assert!(!inj.roll(FaultSite::KvGet, SimTime::from_millis(9)));
        assert!(inj.roll(FaultSite::KvGet, SimTime::from_millis(10)));
        assert!(inj.roll(FaultSite::KvGet, SimTime::from_millis(19)));
        assert!(!inj.roll(FaultSite::KvGet, SimTime::from_millis(20)));
        assert_eq!(inj.total_injected(), 2);
    }

    #[test]
    fn per_site_counters_track_hits() {
        let plan = FaultPlan::none().with_kv_set(1.0);
        let mut inj = FaultInjector::new(plan, 3);
        for _ in 0..4 {
            assert!(inj.roll(FaultSite::KvSet, SimTime::ZERO));
            assert!(!inj.roll(FaultSite::ContainerCrash, SimTime::ZERO));
        }
        assert_eq!(inj.injected(FaultSite::KvSet), 4);
        assert_eq!(inj.injected(FaultSite::ContainerCrash), 0);
        assert_eq!(inj.total_injected(), 4);
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let r = RetryPolicy {
            max_attempts: 10,
            base_backoff: SimDuration::from_millis(10),
            backoff_multiplier: 2.0,
            max_backoff: SimDuration::from_millis(55),
            invocation_timeout: None,
        };
        assert_eq!(r.backoff(1), SimDuration::from_millis(10));
        assert_eq!(r.backoff(2), SimDuration::from_millis(20));
        assert_eq!(r.backoff(3), SimDuration::from_millis(40));
        assert_eq!(r.backoff(4), SimDuration::from_millis(55), "cap applies");
        assert_eq!(r.backoff(30), SimDuration::from_millis(55));
    }

    #[test]
    fn no_retries_policy_gives_single_attempt() {
        let r = RetryPolicy::no_retries();
        assert_eq!(r.max_attempts, 1);
        assert_eq!(r.backoff(1), SimDuration::ZERO);
    }
}
